#!/usr/bin/env bash
# Hermetic CI for the workspace: everything runs --offline against an
# empty registry. If any step here needs the network, that is the bug.
set -euo pipefail
cd "$(dirname "$0")"

echo "== guard: no registry dependencies"
# Every [dependencies]/[dev-dependencies] entry in every crate manifest
# must resolve inside the workspace: `foo.workspace = true` or an
# explicit `path = ...`. A version requirement or git URL means someone
# reintroduced an external crate — fail loudly before cargo even runs.
bad=0
for m in Cargo.toml crates/*/Cargo.toml; do
  deps=$(awk '/^\[(dev-|build-)?dependencies/{on=1; next} /^\[/{on=0} on' "$m" \
    | grep -vE '^\s*(#|$)' \
    | grep -vE 'workspace\s*=\s*true|path\s*=' || true)
  if [ -n "$deps" ]; then
    echo "non-path dependency in $m:" >&2
    echo "$deps" >&2
    bad=1
  fi
done
# The workspace dependency table itself must also be path-only.
wsdeps=$(awk '/^\[workspace.dependencies\]/{on=1; next} /^\[/{on=0} on' Cargo.toml \
  | grep -vE '^\s*(#|$)' \
  | grep -vE 'path\s*=' || true)
if [ -n "$wsdeps" ]; then
  echo "non-path entry in [workspace.dependencies]:" >&2
  echo "$wsdeps" >&2
  bad=1
fi
[ "$bad" -eq 0 ] || exit 1
echo "   ok: all dependencies are path deps"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (offline, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings
# The sharded dispatch plane, the exec layer and the crates carrying
# async-ported bodies get a second, explicit pass so a future narrowing
# of the workspace lint scope can't silently drop them.
cargo clippy --offline -p sns-core -p sns-rt -p sns-transend -p sns-tacc -p sns-chaos \
  --all-targets -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== docs stage: rustdoc (warnings are errors) + doctests"
# The public API carries #![warn(missing_docs)]; promoting rustdoc
# warnings to errors here keeps every exported item documented and every
# intra-doc link resolvable. Doctests keep the examples in those docs
# compiling.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
cargo test --doc -q --offline --workspace

echo "== bench stage: sim_throughput macro-bench (release, 1M events/run)"
# The scheduler macro-bench doubles as a determinism check: it asserts
# in-process that heap and wheel runs of every profile dispatch the
# exact same events, then records the rows. An empty or missing
# BENCH_sim.json means the bench silently stopped measuring.
cargo run -p sns-bench --release --offline --bin sim_throughput -- BENCH_sim.json
if [ ! -s BENCH_sim.json ]; then
  echo "BENCH_sim.json missing or empty after the bench stage" >&2
  exit 1
fi
echo "== bench stage: trace_overhead (disabled-path + sampled-path guards)"
# Runs the TranSend request-path profile disabled / disabled-again /
# enabled / head-sampled-1-in-64 in one process, asserts all four runs
# dispatched bit-identical event streams, and fails if the disabled
# path regresses more than 2% against its A/A control or the
# enabled-but-sampled-out path costs more than 2% over disabled.
# Appends request_path/* rows and the span-derived slo/* summary rows
# to BENCH_sim.json (replacing stale ones), so the row guard covers
# both bench binaries and the SLO pipeline.
cargo run -p sns-bench --release --offline --bin trace_overhead -- BENCH_sim.json

echo "== bench stage: sim_scale (sharded lanes + million-user flow replay)"
# Proves fidelity before it measures: sequential/parallel fingerprints
# must match at 1/2/4 shards, and the flow-mode replay must deliver the
# same request count as the per-datagram path with delays inside the
# (0.5, 2.0) band. Appends scale/* and replay/* rows to BENCH_sim.json.
# Two gates ride the rows: the flow-vs-datagram replay speedup is
# algorithmic and must always hold (>= 10x on the matched window); the
# 4-shard route-profile speedup needs real cores, so it is only
# enforced on hosts with >= 4 CPUs.
cargo run -p sns-bench --release --offline --bin sim_scale -- BENCH_sim.json
scale_min() {
  grep "\"bench\":\"$1\"" BENCH_sim.json \
    | sed -E 's/.*"min_ns":([0-9.]+).*/\1/'
}
for row in scale/route/shards1 scale/route/shards2 scale/route/shards4 \
           replay/datagram_window replay/flow_window replay/flow_24h; do
  if [ -z "$(scale_min "$row")" ]; then
    echo "BENCH_sim.json is missing the $row row after sim_scale" >&2
    exit 1
  fi
done
dgram=$(scale_min replay/datagram_window)
flow=$(scale_min replay/flow_window)
flow_speedup=$(awk -v a="$dgram" -v b="$flow" \
  'BEGIN { if (a > 0 && b > 0) printf "%.1f", a / b; else print "0" }')
echo "   flow-level replay speedup: ${flow_speedup}x"
if ! awk -v r="$flow_speedup" 'BEGIN { exit !(r >= 10.0) }'; then
  echo "flow replay speedup $flow_speedup < 10.0: flow mode stopped paying" >&2
  exit 1
fi
cores=$(nproc 2>/dev/null || echo 1)
s1=$(scale_min scale/route/shards1)
s4=$(scale_min scale/route/shards4)
shard_speedup=$(awk -v a="$s1" -v b="$s4" \
  'BEGIN { if (a > 0 && b > 0) printf "%.2f", a / b; else print "0" }')
echo "   4-shard route-profile speedup: ${shard_speedup}x on $cores core(s)"
if [ "$cores" -ge 4 ]; then
  if ! awk -v r="$shard_speedup" 'BEGIN { exit !(r >= 2.0) }'; then
    echo "4-shard speedup $shard_speedup < 2.0 on a $cores-core host: lanes are serializing" >&2
    exit 1
  fi
  echo "   ok: shard speedup $shard_speedup >= 2.0"
else
  echo "   SKIPPED shard-speedup gate: host has $cores core(s), needs >= 4 to measure parallelism"
fi

rows=$(grep -c '"bench"' BENCH_sim.json || true)
if [ "$rows" -lt 21 ]; then
  echo "BENCH_sim.json carries $rows rows, expected >= 21 (6 scheduler + 4 trace_overhead + >= 5 slo + 6 sim_scale)" >&2
  exit 1
fi
echo "   ok: $rows bench rows in BENCH_sim.json"

echo "== bench stage: rt_throughput macro-bench (release, threaded submit path)"
cargo run -p sns-bench --release --offline --bin rt_throughput -- BENCH_rt.json
if [ ! -s BENCH_rt.json ]; then
  echo "BENCH_rt.json missing or empty after the rt bench stage" >&2
  exit 1
fi
rows=$(grep -c '"bench"' BENCH_rt.json || true)
if [ "$rows" -lt 11 ]; then
  echo "BENCH_rt.json carries $rows rows, expected >= 11 (2 submit + 5 scaling + >= 4 slo)" >&2
  exit 1
fi
echo "   ok: $rows bench rows in BENCH_rt.json"

echo "== trace_diff stage: request-path latency composition gate"
# Replays a pinned-seed TranSend profile fully traced and diffs the
# normalized latency breakdown (overhead/compute/queue/service/net
# shares) against the checked-in TRACE_BASELINE.json. Virtual time
# makes the shares bit-deterministic, so any drift is a real change to
# the request path's shape. The second run proves the gate has teeth:
# a synthetic 10% dispatch-path slowdown must make it fail.
cargo run -p sns-bench --release --offline --bin trace_diff
if SNS_TRACE_DIFF_INJECT=dispatch:1.10 cargo run -p sns-bench --release --offline --bin trace_diff >/dev/null 2>&1; then
  echo "trace_diff did not fail under an injected 10% dispatch-path slowdown" >&2
  exit 1
fi
echo "   ok: gate passes clean and catches the injected slowdown"

echo "== rt_scaling stage: worker-scaling curve guard"
# The sharded dispatch plane must keep the scaling curve near-linear:
# 8 workers at least 2x the 1-worker throughput on the service-bound
# batch (the bench itself reports ~7.7x; 2.0 leaves headroom for a
# loaded single-core runner). A regression here means submits are
# serializing on a shared lock again.
scaling_mean() {
  grep "\"bench\":\"scaling/workers$1\"" BENCH_rt.json \
    | sed -E 's/.*"mean_ns":([0-9.]+).*/\1/'
}
w1=$(scaling_mean 1)
w8=$(scaling_mean 8)
ratio=$(awk -v a="$w1" -v b="$w8" \
  'BEGIN { if (a > 0 && b > 0) printf "%.2f", a / b; else print "0" }')
echo "   scaling 1->8 workers: ${ratio}x"
if ! awk -v r="$ratio" 'BEGIN { exit !(r >= 2.0) }'; then
  echo "rt scaling ratio $ratio < 2.0: dispatch plane is serializing" >&2
  exit 1
fi
echo "   ok: scaling ratio $ratio >= 2.0"

echo "== rt_parity stage: one control plane, two drivers"
# The differential suite runs the same fault script through the sim and
# rt drivers of the shared sans-IO control plane and diffs the canonical
# decision streams; the rt chaos suite replays FaultPlans against real
# threads. Both ride the same pinned seed and roster guard as the chaos
# suites below.
chaos_suite() {
  pkg="$1"; suite="$2"; want="$3"
  out=$(SNS_TESTKIT_SEED=3259 cargo test -q --offline -p "$pkg" --test "$suite" 2>&1) || {
    echo "$out"
    echo "chaos suite $pkg::$suite FAILED" >&2
    exit 1
  }
  ran=$(printf '%s\n' "$out" | grep -oE '[0-9]+ passed' | awk '{s+=$1} END {print s+0}')
  if [ "$ran" -lt "$want" ]; then
    echo "$out"
    echo "chaos suite $pkg::$suite ran $ran tests, expected >= $want (filtered or deleted?)" >&2
    exit 1
  fi
  echo "   ok: $pkg::$suite ($ran tests)"
}
chaos_suite cluster-sns control_plane_parity 3
chaos_suite cluster-sns cluster_api 2
chaos_suite sns-chaos rt_chaos 2
chaos_suite sns-rt scaling 2

echo "== chaos stage: fault-injection suites under a pinned seed"
# The chaos suites must both run and keep their full rosters: a test
# that got #[ignore]d, filtered out or deleted would otherwise slip
# through CI silently. Each suite's pass count is checked against the
# number of tests it is supposed to carry.
chaos_suite sns-chaos prop 5
chaos_suite cluster-sns failure_recovery 12
chaos_suite cluster-sns determinism 13
chaos_suite cluster-sns paper_shapes 4
chaos_suite cluster-sns trace_shapes 3
chaos_suite cluster-sns flow_shapes 5
chaos_suite sns-sim sched_equiv 3
chaos_suite sns-sim lane_equiv 4

echo "== exec stage: deterministic executor + async request path"
# The executor-contract property suite (wake-order replay, timeout /
# race cancellation under engine-ordered timer delivery) and the
# whole-stack async path: legacy-vs-async client equivalence plus the
# same pipeline body serving on the sim and rt backends. Roster-guarded
# like the chaos suites — a filtered-out determinism proof is no proof.
chaos_suite sns-core exec 4
chaos_suite cluster-sns async_path 3

echo "== cluster_ops stage: operations chaos under a pinned seed"
# Rolling upgrades under load (UpgradeNoJobLoss on both backends),
# quorum regroup (minority kill survives QuorumSafety, majority kill is
# detected unrecoverable), drain/rejoin parity diffs, stable-index
# fault skips, and the multi-tenant flash-crowd isolation scenario —
# all deterministic under the pinned seed.
chaos_suite cluster-sns cluster_ops 11

echo "== CI green"
