#!/usr/bin/env bash
# Hermetic CI for the workspace: everything runs --offline against an
# empty registry. If any step here needs the network, that is the bug.
set -euo pipefail
cd "$(dirname "$0")"

echo "== guard: no registry dependencies"
# Every [dependencies]/[dev-dependencies] entry in every crate manifest
# must resolve inside the workspace: `foo.workspace = true` or an
# explicit `path = ...`. A version requirement or git URL means someone
# reintroduced an external crate — fail loudly before cargo even runs.
bad=0
for m in Cargo.toml crates/*/Cargo.toml; do
  deps=$(awk '/^\[(dev-|build-)?dependencies/{on=1; next} /^\[/{on=0} on' "$m" \
    | grep -vE '^\s*(#|$)' \
    | grep -vE 'workspace\s*=\s*true|path\s*=' || true)
  if [ -n "$deps" ]; then
    echo "non-path dependency in $m:" >&2
    echo "$deps" >&2
    bad=1
  fi
done
# The workspace dependency table itself must also be path-only.
wsdeps=$(awk '/^\[workspace.dependencies\]/{on=1; next} /^\[/{on=0} on' Cargo.toml \
  | grep -vE '^\s*(#|$)' \
  | grep -vE 'path\s*=' || true)
if [ -n "$wsdeps" ]; then
  echo "non-path entry in [workspace.dependencies]:" >&2
  echo "$wsdeps" >&2
  bad=1
fi
[ "$bad" -eq 0 ] || exit 1
echo "   ok: all dependencies are path deps"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (offline, warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release --offline"
cargo build --release --offline --workspace

echo "== cargo test -q --offline"
cargo test -q --offline --workspace

echo "== CI green"
