//! Checksummed write-ahead log with pluggable storage devices.
//!
//! Record framing: `[len: u32 LE][crc32: u32 LE][payload: len bytes]`.
//! A record is atomic: recovery reads records until the first truncated or
//! corrupt frame and discards everything from there on (committed-prefix
//! semantics). A torn final write therefore never surfaces a partial
//! transaction.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Errors from WAL operations.
#[derive(Debug)]
pub enum WalError {
    /// Underlying device I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) implemented locally so record framing
/// never depends on an external crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB88320;
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// An append-only byte device a [`Wal`] writes to.
pub trait LogDevice {
    /// Appends bytes at the end of the device.
    fn append(&mut self, buf: &[u8]) -> Result<(), WalError>;
    /// Forces appended bytes to stable storage.
    fn sync(&mut self) -> Result<(), WalError>;
    /// Reads the whole device contents.
    fn read_all(&mut self) -> Result<Vec<u8>, WalError>;
    /// Discards all contents (post-checkpoint truncation).
    fn truncate(&mut self) -> Result<(), WalError>;
}

/// An in-memory device that distinguishes *written* from *durable* bytes,
/// so tests can simulate crashes that lose unsynced data and torn final
/// writes.
#[derive(Debug, Default)]
pub struct MemDevice {
    buf: Vec<u8>,
    durable_len: usize,
    /// Count of sync() calls (experiments charge fsync latency per sync).
    pub syncs: u64,
}

impl MemDevice {
    /// Creates an empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates a crash: everything not yet synced is lost, and
    /// additionally the last `torn_tail` durable bytes are corrupted
    /// (models a torn sector write).
    pub fn crash(&mut self, torn_tail: usize) {
        self.buf.truncate(self.durable_len);
        let n = torn_tail.min(self.buf.len());
        let start = self.buf.len() - n;
        for b in &mut self.buf[start..] {
            *b ^= 0xA5;
        }
        self.durable_len = self.buf.len();
    }

    /// Bytes currently held (durable + volatile).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the device holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl LogDevice for MemDevice {
    fn append(&mut self, buf: &[u8]) -> Result<(), WalError> {
        self.buf.extend_from_slice(buf);
        Ok(())
    }
    fn sync(&mut self) -> Result<(), WalError> {
        self.durable_len = self.buf.len();
        self.syncs += 1;
        Ok(())
    }
    fn read_all(&mut self) -> Result<Vec<u8>, WalError> {
        Ok(self.buf.clone())
    }
    fn truncate(&mut self) -> Result<(), WalError> {
        self.buf.clear();
        self.durable_len = 0;
        Ok(())
    }
}

/// A real file-backed device.
#[derive(Debug)]
pub struct FileDevice {
    file: File,
}

impl FileDevice {
    /// Opens (creating if absent) a log file.
    pub fn open(path: &Path) -> Result<Self, WalError> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        Ok(FileDevice { file })
    }
}

impl LogDevice for FileDevice {
    fn append(&mut self, buf: &[u8]) -> Result<(), WalError> {
        self.file.write_all(buf)?;
        Ok(())
    }
    fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        Ok(())
    }
    fn read_all(&mut self) -> Result<Vec<u8>, WalError> {
        let mut out = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut out)?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(out)
    }
    fn truncate(&mut self) -> Result<(), WalError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        Ok(())
    }
}

/// A write-ahead log of checksummed records over a [`LogDevice`].
pub struct Wal<D> {
    device: D,
}

impl<D: LogDevice> Wal<D> {
    /// Wraps a device.
    pub fn new(device: D) -> Self {
        Wal { device }
    }

    /// Access to the underlying device (e.g. to crash a [`MemDevice`]).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.device
    }

    /// Consumes the WAL, returning the device.
    pub fn into_device(self) -> D {
        self.device
    }

    /// Appends one record and makes it durable.
    pub fn append_record(&mut self, payload: &[u8]) -> Result<(), WalError> {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.device.append(&frame)?;
        self.device.sync()
    }

    /// Reads back every intact record, stopping at the first truncated or
    /// corrupt frame (committed prefix).
    pub fn read_records(&mut self) -> Result<Vec<Vec<u8>>, WalError> {
        let bytes = self.device.read_all()?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = match start.checked_add(len) {
                Some(e) if e <= bytes.len() => e,
                _ => break, // truncated final record
            };
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                break; // torn/corrupt record: discard it and the rest
            }
            out.push(payload.to_vec());
            pos = end;
        }
        Ok(out)
    }

    /// Discards the log (after a checkpoint).
    pub fn truncate(&mut self) -> Result<(), WalError> {
        self.device.truncate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_golden() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn roundtrip_records() {
        let mut wal = Wal::new(MemDevice::new());
        wal.append_record(b"one").unwrap();
        wal.append_record(b"two").unwrap();
        wal.append_record(b"").unwrap();
        let recs = wal.read_records().unwrap();
        assert_eq!(recs, vec![b"one".to_vec(), b"two".to_vec(), vec![]]);
    }

    #[test]
    fn unsynced_tail_lost_on_crash() {
        let mut dev = MemDevice::new();
        dev.append(b"junk-that-was-never-synced").unwrap();
        dev.crash(0);
        assert!(dev.is_empty());
    }

    #[test]
    fn torn_write_discards_last_record_only() {
        let mut wal = Wal::new(MemDevice::new());
        wal.append_record(b"alpha").unwrap();
        wal.append_record(b"beta").unwrap();
        // Corrupt the tail of the durable bytes (simulated torn sector).
        wal.device_mut().crash(3);
        let recs = wal.read_records().unwrap();
        assert_eq!(recs, vec![b"alpha".to_vec()]);
    }

    #[test]
    fn truncated_frame_header_ignored() {
        let mut wal = Wal::new(MemDevice::new());
        wal.append_record(b"alpha").unwrap();
        // Append a lone partial header directly.
        wal.device_mut().append(&[7, 0, 0]).unwrap();
        wal.device_mut().sync().unwrap();
        let recs = wal.read_records().unwrap();
        assert_eq!(recs, vec![b"alpha".to_vec()]);
    }

    #[test]
    fn truncate_clears() {
        let mut wal = Wal::new(MemDevice::new());
        wal.append_record(b"alpha").unwrap();
        wal.truncate().unwrap();
        assert!(wal.read_records().unwrap().is_empty());
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("snswal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::new(FileDevice::open(&path).unwrap());
            wal.append_record(b"persisted").unwrap();
        }
        {
            let mut wal = Wal::new(FileDevice::open(&path).unwrap());
            assert_eq!(wal.read_records().unwrap(), vec![b"persisted".to_vec()]);
            wal.append_record(b"second").unwrap();
            assert_eq!(wal.read_records().unwrap().len(), 2);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
