//! Primary/backup replication with synchronous log shipping — HotBot's
//! Informix configuration (§3.2: "HotBot uses Informix with
//! primary/backup failover for the user profile and ad revenue tracking
//! database").
//!
//! Commits are shipped to the backup and applied there *before* the
//! commit is acknowledged, so failover never loses an acknowledged
//! transaction. This is classic process-*pair* (hard-state) fault
//! tolerance — exactly the mechanism the paper contrasts with the BASE
//! process-peer approach used everywhere else (§3.1.3).

use crate::db::{DbError, Profile, ProfileDb, Txn};
use crate::wal::{LogDevice, MemDevice, Wal};

/// Which role a replica currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Serving reads and writes.
    Primary,
    /// Applying shipped log records.
    Backup,
}

/// A primary/backup pair of profile databases.
pub struct ReplicatedDb<D> {
    primary: Option<ProfileDb<D>>,
    backup: Option<ProfileDb<D>>,
    failovers: u64,
}

impl ReplicatedDb<MemDevice> {
    /// Creates an in-memory pair (the common simulation configuration).
    pub fn new_in_memory() -> Result<Self, DbError> {
        Ok(ReplicatedDb {
            primary: Some(ProfileDb::open(Wal::new(MemDevice::new()))?),
            backup: Some(ProfileDb::open(Wal::new(MemDevice::new()))?),
            failovers: 0,
        })
    }
}

impl<D: LogDevice> ReplicatedDb<D> {
    /// Creates a pair from two opened databases.
    pub fn from_pair(primary: ProfileDb<D>, backup: ProfileDb<D>) -> Self {
        ReplicatedDb {
            primary: Some(primary),
            backup: Some(backup),
            failovers: 0,
        }
    }

    /// Commits on the primary and synchronously ships to the backup.
    /// Returns an error if there is no live replica.
    pub fn commit(&mut self, txn: Txn) -> Result<(), DbError> {
        let record = ProfileDb::<D>::encode_for_shipping(&txn);
        let p = self
            .primary
            .as_mut()
            .ok_or(DbError::Corrupt("no live primary"))?;
        p.commit(txn)?;
        if let Some(b) = self.backup.as_mut() {
            b.apply_shipped(&record)?;
        }
        Ok(())
    }

    /// Reads one setting from the primary.
    pub fn get(&mut self, user: &str, key: &str) -> Option<String> {
        self.primary
            .as_mut()
            .and_then(|p| p.get(user, key).map(|s| s.to_string()))
    }

    /// Reads a whole profile from the primary.
    pub fn profile(&mut self, user: &str) -> Option<Profile> {
        self.primary.as_mut().and_then(|p| p.profile(user).cloned())
    }

    /// Simulates primary failure: the backup is promoted. Acknowledged
    /// commits remain visible because shipping was synchronous.
    pub fn fail_primary(&mut self) {
        self.primary = self.backup.take();
        self.failovers += 1;
    }

    /// Attaches a fresh (empty or recovered) database as the new backup.
    pub fn attach_backup(&mut self, db: ProfileDb<D>) {
        self.backup = Some(db);
    }

    /// Whether a primary is live.
    pub fn has_primary(&self) -> bool {
        self.primary.is_some()
    }

    /// Failovers performed so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_preserves_acknowledged_commits() {
        let mut db = ReplicatedDb::new_in_memory().unwrap();
        db.commit(Txn::new().put("u", "k", "v1")).unwrap();
        db.commit(Txn::new().put("u", "k2", "v2")).unwrap();
        db.fail_primary();
        assert_eq!(db.get("u", "k"), Some("v1".into()));
        assert_eq!(db.get("u", "k2"), Some("v2".into()));
        assert_eq!(db.failovers(), 1);
    }

    #[test]
    fn commits_continue_after_failover_without_backup() {
        let mut db = ReplicatedDb::new_in_memory().unwrap();
        db.commit(Txn::new().put("u", "k", "v1")).unwrap();
        db.fail_primary();
        // No backup now, but commits still work on the promoted node.
        db.commit(Txn::new().put("u", "k", "v2")).unwrap();
        assert_eq!(db.get("u", "k"), Some("v2".into()));
    }

    #[test]
    fn double_failure_loses_service() {
        let mut db = ReplicatedDb::new_in_memory().unwrap();
        db.fail_primary();
        db.fail_primary();
        assert!(!db.has_primary());
        assert!(db.commit(Txn::new().put("u", "k", "v")).is_err());
    }

    #[test]
    fn new_backup_catches_up_via_fresh_pairing() {
        let mut db = ReplicatedDb::new_in_memory().unwrap();
        db.commit(Txn::new().put("u", "k", "v1")).unwrap();
        db.fail_primary();
        db.attach_backup(ProfileDb::open(Wal::new(MemDevice::new())).unwrap());
        db.commit(Txn::new().put("u", "k2", "v2")).unwrap();
        db.fail_primary(); // promoted backup has only post-attach commits
        assert_eq!(db.get("u", "k2"), Some("v2".into()));
        assert_eq!(db.get("u", "k"), None, "pre-attach state needs a full copy");
    }
}
