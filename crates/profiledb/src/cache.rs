//! The front end's write-through profile read cache (§3.1.4).
//!
//! "User preference reads are much more frequent than writes, and the
//! reads are absorbed by a write-through cache in the front end." Reads
//! hit the cache; writes commit to the ACID store *first* and then update
//! the cache, so the cache never serves data that is not durable.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::db::{DbError, Profile, ProfileDb, Txn};
use crate::wal::LogDevice;

/// A bounded write-through read cache over a [`ProfileDb`].
pub struct ProfileCache {
    entries: BTreeMap<String, Option<Profile>>,
    order: VecDeque<String>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl ProfileCache {
    /// Creates a cache holding at most `capacity` profiles.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        ProfileCache {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Reads a profile through the cache. Negative results are cached too
    /// (absent users are common for unregistered tokens).
    pub fn get<D: LogDevice>(&mut self, db: &mut ProfileDb<D>, user: &str) -> Option<Profile> {
        if let Some(cached) = self.entries.get(user) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let fresh = db.profile(user).cloned();
        self.insert(user.to_string(), fresh.clone());
        fresh
    }

    /// Commits a write to the database and updates the cache on success
    /// (write-through: durable before visible).
    pub fn write_through<D: LogDevice>(
        &mut self,
        db: &mut ProfileDb<D>,
        txn: Txn,
    ) -> Result<(), DbError> {
        db.commit(txn)?;
        // Invalidate conservatively: the txn may touch several users, so
        // refresh lazily by dropping all cached entries whose users we
        // cannot cheaply identify. To stay simple and correct, clear.
        self.entries.clear();
        self.order.clear();
        Ok(())
    }

    fn insert(&mut self, user: String, value: Option<Profile>) {
        if !self.entries.contains_key(&user) {
            self.order.push_back(user.clone());
            if self.order.len() > self.capacity {
                if let Some(victim) = self.order.pop_front() {
                    self.entries.remove(&victim);
                }
            }
        }
        self.entries.insert(user, value);
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{MemDevice, Wal};

    fn db_with(users: usize) -> ProfileDb<MemDevice> {
        let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
        for i in 0..users {
            db.commit(Txn::new().put(format!("u{i}"), "k", format!("v{i}")))
                .unwrap();
        }
        db
    }

    #[test]
    fn reads_are_absorbed() {
        let mut db = db_with(3);
        let mut cache = ProfileCache::new(10);
        let before_reads = db.stats().reads;
        for _ in 0..100 {
            let p = cache.get(&mut db, "u1").unwrap();
            assert_eq!(p.get("k").map(String::as_str), Some("v1"));
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 99);
        assert_eq!(db.stats().reads - before_reads, 1, "db touched once");
    }

    #[test]
    fn negative_caching() {
        let mut db = db_with(1);
        let mut cache = ProfileCache::new(10);
        assert!(cache.get(&mut db, "ghost").is_none());
        assert!(cache.get(&mut db, "ghost").is_none());
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn write_through_is_durable_then_visible() {
        let mut db = db_with(1);
        let mut cache = ProfileCache::new(10);
        let _ = cache.get(&mut db, "u0");
        cache
            .write_through(&mut db, Txn::new().put("u0", "k", "updated"))
            .unwrap();
        let p = cache.get(&mut db, "u0").unwrap();
        assert_eq!(p.get("k").map(String::as_str), Some("updated"));
        // And it really is durable: recover the device.
        let dev = std::mem::replace(db.device_mut(), MemDevice::new());
        let mut db2 = ProfileDb::open(Wal::new(dev)).unwrap();
        assert_eq!(db2.get("u0", "k"), Some("updated"));
    }

    #[test]
    fn capacity_bounded() {
        let mut db = db_with(100);
        let mut cache = ProfileCache::new(8);
        for i in 0..100 {
            let _ = cache.get(&mut db, &format!("u{i}"));
        }
        assert!(cache.len() <= 8);
    }
}
