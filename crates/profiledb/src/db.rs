//! The profile store: atomic transactions over the WAL, crash recovery,
//! and checkpointing.
//!
//! A user profile is a set of key-value customisation settings (§2.3: the
//! customisation database "maps a user identification token … to a list
//! of key-value pairs for each user of the service"). All mutation happens
//! through transactions; a transaction is durable and atomic: it is one
//! WAL record, forced to stable storage before being applied in memory.

use std::collections::BTreeMap;
use std::fmt;

use crate::wal::{LogDevice, Wal, WalError};

/// A user's customisation settings.
pub type Profile = BTreeMap<String, String>;

/// Errors from database operations.
#[derive(Debug)]
pub enum DbError {
    /// The log failed.
    Wal(WalError),
    /// A log record could not be decoded (only possible with foreign or
    /// corrupted-but-CRC-valid logs).
    Corrupt(&'static str),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Wal(e) => write!(f, "database log error: {e}"),
            DbError::Corrupt(what) => write!(f, "database log corrupt: {what}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<WalError> for DbError {
    fn from(e: WalError) -> Self {
        DbError::Wal(e)
    }
}

/// One mutation inside a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Sets `user[key] = value`.
    Put {
        /// User token.
        user: String,
        /// Setting name.
        key: String,
        /// Setting value.
        value: String,
    },
    /// Removes one setting.
    Delete {
        /// User token.
        user: String,
        /// Setting name.
        key: String,
    },
    /// Removes a whole profile.
    DeleteUser {
        /// User token.
        user: String,
    },
}

/// A transaction under construction. All ops commit atomically or not at
/// all.
#[derive(Debug, Default, Clone)]
pub struct Txn {
    ops: Vec<Op>,
}

impl Txn {
    /// Starts an empty transaction.
    pub fn new() -> Self {
        Txn::default()
    }

    /// Adds a put.
    pub fn put(
        mut self,
        user: impl Into<String>,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> Self {
        self.ops.push(Op::Put {
            user: user.into(),
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Adds a single-key delete.
    pub fn delete(mut self, user: impl Into<String>, key: impl Into<String>) -> Self {
        self.ops.push(Op::Delete {
            user: user.into(),
            key: key.into(),
        });
        self
    }

    /// Adds a whole-profile delete.
    pub fn delete_user(mut self, user: impl Into<String>) -> Self {
        self.ops.push(Op::DeleteUser { user: user.into() });
        self
    }

    /// Number of ops queued.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbStats {
    /// Transactions committed in this process lifetime.
    pub commits: u64,
    /// Transactions replayed during the last recovery.
    pub replayed: u64,
    /// Point reads served.
    pub reads: u64,
}

// ---- record encoding -------------------------------------------------
// [op_count u32] then per op: [tag u8][strings: len u32 + bytes...]

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, DbError> {
    if *pos + 4 > buf.len() {
        return Err(DbError::Corrupt("string length truncated"));
    }
    let len = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
    *pos += 4;
    if *pos + len > buf.len() {
        return Err(DbError::Corrupt("string body truncated"));
    }
    let s = std::str::from_utf8(&buf[*pos..*pos + len])
        .map_err(|_| DbError::Corrupt("non-utf8 string"))?
        .to_string();
    *pos += len;
    Ok(s)
}

fn encode_txn(txn: &Txn) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(txn.ops.len() as u32).to_le_bytes());
    for op in &txn.ops {
        match op {
            Op::Put { user, key, value } => {
                buf.push(0);
                put_str(&mut buf, user);
                put_str(&mut buf, key);
                put_str(&mut buf, value);
            }
            Op::Delete { user, key } => {
                buf.push(1);
                put_str(&mut buf, user);
                put_str(&mut buf, key);
            }
            Op::DeleteUser { user } => {
                buf.push(2);
                put_str(&mut buf, user);
            }
        }
    }
    buf
}

fn decode_txn(buf: &[u8]) -> Result<Txn, DbError> {
    let mut pos = 0usize;
    if buf.len() < 4 {
        return Err(DbError::Corrupt("record too short"));
    }
    let count = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    pos += 4;
    let mut txn = Txn::new();
    for _ in 0..count {
        if pos >= buf.len() {
            return Err(DbError::Corrupt("op tag truncated"));
        }
        let tag = buf[pos];
        pos += 1;
        let op = match tag {
            0 => Op::Put {
                user: get_str(buf, &mut pos)?,
                key: get_str(buf, &mut pos)?,
                value: get_str(buf, &mut pos)?,
            },
            1 => Op::Delete {
                user: get_str(buf, &mut pos)?,
                key: get_str(buf, &mut pos)?,
            },
            2 => Op::DeleteUser {
                user: get_str(buf, &mut pos)?,
            },
            _ => return Err(DbError::Corrupt("unknown op tag")),
        };
        txn.ops.push(op);
    }
    Ok(txn)
}

/// The ACID profile database.
///
/// # Examples
///
/// ```
/// use sns_profiledb::{MemDevice, ProfileDb, Txn, Wal};
///
/// let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
/// db.commit(Txn::new().put("user1", "max_image_kb", "2")).unwrap();
/// assert_eq!(db.get("user1", "max_image_kb"), Some("2"));
/// ```
pub struct ProfileDb<D> {
    wal: Wal<D>,
    mem: BTreeMap<String, Profile>,
    stats: DbStats,
}

impl<D: LogDevice> ProfileDb<D> {
    /// Opens a database, replaying the committed prefix of the log.
    pub fn open(mut wal: Wal<D>) -> Result<Self, DbError> {
        let mut mem = BTreeMap::new();
        let mut replayed = 0;
        for record in wal.read_records()? {
            let txn = decode_txn(&record)?;
            Self::apply(&mut mem, &txn);
            replayed += 1;
        }
        Ok(ProfileDb {
            wal,
            mem,
            stats: DbStats {
                replayed,
                ..Default::default()
            },
        })
    }

    fn apply(mem: &mut BTreeMap<String, Profile>, txn: &Txn) {
        for op in &txn.ops {
            match op {
                Op::Put { user, key, value } => {
                    mem.entry(user.clone())
                        .or_default()
                        .insert(key.clone(), value.clone());
                }
                Op::Delete { user, key } => {
                    if let Some(p) = mem.get_mut(user) {
                        p.remove(key);
                        if p.is_empty() {
                            mem.remove(user);
                        }
                    }
                }
                Op::DeleteUser { user } => {
                    mem.remove(user);
                }
            }
        }
    }

    /// Commits a transaction: logged and synced before being applied.
    pub fn commit(&mut self, txn: Txn) -> Result<(), DbError> {
        if txn.is_empty() {
            return Ok(());
        }
        self.wal.append_record(&encode_txn(&txn))?;
        Self::apply(&mut self.mem, &txn);
        self.stats.commits += 1;
        Ok(())
    }

    /// Reads one setting.
    pub fn get(&mut self, user: &str, key: &str) -> Option<&str> {
        self.stats.reads += 1;
        self.mem
            .get(user)
            .and_then(|p| p.get(key))
            .map(|s| s.as_str())
    }

    /// Reads a whole profile.
    pub fn profile(&mut self, user: &str) -> Option<&Profile> {
        self.stats.reads += 1;
        self.mem.get(user)
    }

    /// Number of users with a profile.
    pub fn user_count(&self) -> usize {
        self.mem.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// Checkpoints into `fresh` (snapshot as one transaction), swaps it in
    /// as the live log, and returns the old device. Callers make the swap
    /// atomic at their storage layer (e.g. file rename).
    pub fn checkpoint(&mut self, fresh: D) -> Result<D, DbError> {
        let mut snap = Txn::new();
        for (user, profile) in &self.mem {
            for (k, v) in profile {
                snap = snap.put(user.clone(), k.clone(), v.clone());
            }
        }
        let mut new_wal = Wal::new(fresh);
        if !snap.is_empty() {
            new_wal.append_record(&encode_txn(&snap))?;
        }
        let old = std::mem::replace(&mut self.wal, new_wal);
        Ok(old.into_device())
    }

    /// Direct access to the WAL device (tests crash it).
    pub fn device_mut(&mut self) -> &mut D {
        self.wal.device_mut()
    }

    /// Encodes a committed transaction for log shipping (replication).
    pub fn encode_for_shipping(txn: &Txn) -> Vec<u8> {
        encode_txn(txn)
    }

    /// Applies a shipped transaction record (backup side). The record is
    /// logged locally (durable on the backup) then applied.
    pub fn apply_shipped(&mut self, record: &[u8]) -> Result<(), DbError> {
        let txn = decode_txn(record)?;
        self.wal.append_record(record)?;
        Self::apply(&mut self.mem, &txn);
        self.stats.commits += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemDevice;

    fn fresh() -> ProfileDb<MemDevice> {
        ProfileDb::open(Wal::new(MemDevice::new())).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut db = fresh();
        db.commit(
            Txn::new()
                .put("u1", "quality", "25")
                .put("u1", "scale", "2"),
        )
        .unwrap();
        assert_eq!(db.get("u1", "quality"), Some("25"));
        assert_eq!(db.get("u1", "scale"), Some("2"));
        assert_eq!(db.get("u1", "missing"), None);
        assert_eq!(db.get("u2", "quality"), None);
    }

    #[test]
    fn delete_ops() {
        let mut db = fresh();
        db.commit(Txn::new().put("u1", "a", "1").put("u1", "b", "2"))
            .unwrap();
        db.commit(Txn::new().delete("u1", "a")).unwrap();
        assert_eq!(db.get("u1", "a"), None);
        assert_eq!(db.get("u1", "b"), Some("2"));
        db.commit(Txn::new().delete_user("u1")).unwrap();
        assert!(db.profile("u1").is_none());
        assert_eq!(db.user_count(), 0);
    }

    #[test]
    fn recovery_replays_committed_txns() {
        let mut db = fresh();
        db.commit(Txn::new().put("u1", "k", "v1")).unwrap();
        db.commit(Txn::new().put("u2", "k", "v2")).unwrap();
        let dev = std::mem::replace(db.device_mut(), MemDevice::new());
        let mut db2 = ProfileDb::open(Wal::new(dev)).unwrap();
        assert_eq!(db2.get("u1", "k"), Some("v1"));
        assert_eq!(db2.get("u2", "k"), Some("v2"));
        assert_eq!(db2.stats().replayed, 2);
    }

    #[test]
    fn torn_write_loses_only_last_txn() {
        let mut db = fresh();
        db.commit(Txn::new().put("u1", "k", "v1")).unwrap();
        db.commit(Txn::new().put("u2", "k", "v2")).unwrap();
        let mut dev = std::mem::replace(db.device_mut(), MemDevice::new());
        dev.crash(2); // torn tail corrupts the second record
        let mut db2 = ProfileDb::open(Wal::new(dev)).unwrap();
        assert_eq!(db2.get("u1", "k"), Some("v1"), "committed prefix survives");
        assert_eq!(db2.get("u2", "k"), None, "torn record discarded");
    }

    #[test]
    fn atomicity_all_or_nothing() {
        let mut db = fresh();
        // One multi-op transaction; after a clean crash either all three
        // ops are visible or none.
        db.commit(
            Txn::new()
                .put("u", "a", "1")
                .put("u", "b", "2")
                .put("u", "c", "3"),
        )
        .unwrap();
        let dev = std::mem::replace(db.device_mut(), MemDevice::new());
        let mut db2 = ProfileDb::open(Wal::new(dev)).unwrap();
        let p = db2.profile("u").unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let mut db = fresh();
        for i in 0..50 {
            db.commit(Txn::new().put("u", format!("k{i}"), format!("v{i}")))
                .unwrap();
        }
        db.commit(Txn::new().delete("u", "k0")).unwrap();
        let _old = db.checkpoint(MemDevice::new()).unwrap();
        // Recover from the checkpointed log only.
        let dev = std::mem::replace(db.device_mut(), MemDevice::new());
        let mut db2 = ProfileDb::open(Wal::new(dev)).unwrap();
        assert_eq!(db2.stats().replayed, 1, "one snapshot record");
        assert_eq!(db2.get("u", "k0"), None);
        assert_eq!(db2.get("u", "k49"), Some("v49"));
        assert_eq!(db2.profile("u").unwrap().len(), 49);
    }

    #[test]
    fn empty_txn_is_noop() {
        let mut db = fresh();
        db.commit(Txn::new()).unwrap();
        assert_eq!(db.stats().commits, 0);
    }

    #[test]
    fn shipping_roundtrip() {
        let mut primary = fresh();
        let mut backup = fresh();
        let txn = Txn::new().put("u", "k", "v");
        primary.commit(txn.clone()).unwrap();
        let record = ProfileDb::<MemDevice>::encode_for_shipping(&txn);
        backup.apply_shipped(&record).unwrap();
        assert_eq!(backup.get("u", "k"), Some("v"));
    }

    #[test]
    fn file_backed_db_survives_reopen() {
        use crate::wal::FileDevice;
        let dir = std::env::temp_dir().join(format!("snsdb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profiles.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut db = ProfileDb::open(Wal::new(FileDevice::open(&path).unwrap())).unwrap();
            db.commit(Txn::new().put("u1", "quality", "25")).unwrap();
            db.commit(Txn::new().put("u2", "device", "palm")).unwrap();
        }
        {
            let mut db = ProfileDb::open(Wal::new(FileDevice::open(&path).unwrap())).unwrap();
            assert_eq!(db.get("u1", "quality"), Some("25"));
            assert_eq!(db.get("u2", "device"), Some("palm"));
            assert_eq!(db.stats().replayed, 2);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn encode_decode_property_smoke() {
        let txn = Txn::new()
            .put("αβγ", "ключ", "数值")
            .delete("u", "")
            .delete_user("x");
        let enc = encode_txn(&txn);
        let dec = decode_txn(&enc).unwrap();
        assert_eq!(dec.ops, txn.ops);
    }
}
