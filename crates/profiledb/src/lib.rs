//! # sns-profiledb — the ACID customisation database
//!
//! The one deliberately-ACID island in an otherwise BASE system (§1.4,
//! §3.1.4): the customisation database maps a user identification token to
//! a list of key-value pairs, must survive crashes (durability), and must
//! apply multi-key profile updates atomically. TranSend used gdbm with a
//! front-end write-through read cache; HotBot used parallel Informix with
//! primary/backup failover. This crate implements the equivalent from
//! scratch:
//!
//! * [`wal`] — a checksummed write-ahead log over a pluggable
//!   [`wal::LogDevice`] (in-memory simulated disk or a real file), with
//!   torn-write detection;
//! * [`db`] — [`db::ProfileDb`]: atomic multi-op transactions, recovery
//!   (committed-prefix replay), snapshot + log truncation;
//! * [`cache`] — the front end's write-through read cache (§3.1.4: "user
//!   preference reads are much more frequent than writes, and the reads
//!   are absorbed by a write-through cache in the front end");
//! * [`replica`] — primary/backup pairing with synchronous log shipping
//!   and failover, the HotBot Informix configuration (§3.2).

#![warn(missing_docs)]

pub mod cache;
pub mod db;
pub mod replica;
pub mod wal;

pub use cache::ProfileCache;
pub use db::{DbError, DbStats, Profile, ProfileDb, Txn};
pub use replica::ReplicatedDb;
pub use wal::{FileDevice, LogDevice, MemDevice, Wal, WalError};
