//! Property tests for the ACID store: arbitrary transaction histories
//! with crashes at arbitrary points always recover exactly the committed
//! prefix, atomically, matching a naive in-memory reference model.

use std::collections::BTreeMap;

use proptest::prelude::*;

use sns_profiledb::{MemDevice, ProfileDb, Txn, Wal};

#[derive(Debug, Clone)]
enum POp {
    Put(u8, u8, u8),
    Delete(u8, u8),
    DeleteUser(u8),
}

fn txn_strategy() -> impl Strategy<Value = Vec<POp>> {
    proptest::collection::vec(
        prop_oneof![
            ((0u8..6), (0u8..6), any::<u8>()).prop_map(|(u, k, v)| POp::Put(u, k, v)),
            ((0u8..6), (0u8..6)).prop_map(|(u, k)| POp::Delete(u, k)),
            (0u8..6).prop_map(POp::DeleteUser),
        ],
        1..5,
    )
}

fn to_txn(ops: &[POp]) -> Txn {
    let mut t = Txn::new();
    for op in ops {
        t = match op {
            POp::Put(u, k, v) => t.put(format!("u{u}"), format!("k{k}"), format!("v{v}")),
            POp::Delete(u, k) => t.delete(format!("u{u}"), format!("k{k}")),
            POp::DeleteUser(u) => t.delete_user(format!("u{u}")),
        };
    }
    t
}

type Model = BTreeMap<String, BTreeMap<String, String>>;

fn apply_model(model: &mut Model, ops: &[POp]) {
    for op in ops {
        match op {
            POp::Put(u, k, v) => {
                model
                    .entry(format!("u{u}"))
                    .or_default()
                    .insert(format!("k{k}"), format!("v{v}"));
            }
            POp::Delete(u, k) => {
                let user = format!("u{u}");
                if let Some(p) = model.get_mut(&user) {
                    p.remove(&format!("k{k}"));
                    if p.is_empty() {
                        model.remove(&user);
                    }
                }
            }
            POp::DeleteUser(u) => {
                model.remove(&format!("u{u}"));
            }
        }
    }
}

fn assert_matches_model(db: &mut ProfileDb<MemDevice>, model: &Model) {
    assert_eq!(db.user_count(), model.len());
    for (user, profile) in model {
        let got = db.profile(user).expect("user present").clone();
        assert_eq!(&got, profile, "profile mismatch for {user}");
    }
}

proptest! {
    #[test]
    fn recovery_replays_exactly_the_committed_history(
        txns in proptest::collection::vec(txn_strategy(), 1..30),
    ) {
        let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
        let mut model: Model = BTreeMap::new();
        for ops in &txns {
            db.commit(to_txn(ops)).unwrap();
            apply_model(&mut model, ops);
        }
        // Clean crash: everything synced survives.
        let dev = std::mem::replace(db.device_mut(), MemDevice::new());
        let mut recovered = ProfileDb::open(Wal::new(dev)).unwrap();
        assert_matches_model(&mut recovered, &model);
    }

    #[test]
    fn torn_tail_loses_at_most_the_final_txn_and_stays_atomic(
        txns in proptest::collection::vec(txn_strategy(), 2..20),
        torn in 1usize..8,
    ) {
        let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
        let mut prefix_models: Vec<Model> = Vec::new();
        let mut model: Model = BTreeMap::new();
        for ops in &txns {
            db.commit(to_txn(ops)).unwrap();
            apply_model(&mut model, ops);
            prefix_models.push(model.clone());
        }
        let mut dev = std::mem::replace(db.device_mut(), MemDevice::new());
        dev.crash(torn);
        let mut recovered = ProfileDb::open(Wal::new(dev)).unwrap();
        // The recovered state must equal the model after N or N-1
        // transactions — never anything in between (atomicity).
        let n = recovered.stats().replayed as usize;
        prop_assert!(n == txns.len() || n == txns.len() - 1, "replayed {n} of {}", txns.len());
        assert_matches_model(&mut recovered, &prefix_models[n - 1]);
    }

    #[test]
    fn checkpoint_is_state_preserving(
        txns in proptest::collection::vec(txn_strategy(), 1..20),
    ) {
        let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
        let mut model: Model = BTreeMap::new();
        for ops in &txns {
            db.commit(to_txn(ops)).unwrap();
            apply_model(&mut model, ops);
        }
        db.checkpoint(MemDevice::new()).unwrap();
        let dev = std::mem::replace(db.device_mut(), MemDevice::new());
        let mut recovered = ProfileDb::open(Wal::new(dev)).unwrap();
        prop_assert!(recovered.stats().replayed <= 1, "compacted to one snapshot");
        assert_matches_model(&mut recovered, &model);
    }
}
