//! Property tests for the ACID store: arbitrary transaction histories
//! with crashes at arbitrary points always recover exactly the committed
//! prefix, atomically, matching a naive in-memory reference model.

use std::collections::BTreeMap;

use sns_testkit::{gens, props, tk_assert, Gen};

use sns_profiledb::{MemDevice, ProfileDb, Txn, Wal};

#[derive(Debug, Clone)]
enum POp {
    Put(u8, u8, u8),
    Delete(u8, u8),
    DeleteUser(u8),
}

fn txn_gen() -> Gen<Vec<POp>> {
    let op = gens::one_of(vec![
        gens::u8_in(0..6).flat_map(|u| {
            gens::u8_in(0..6).flat_map(move |k| gens::any_u8().map(move |v| POp::Put(u, k, v)))
        }),
        gens::u8_in(0..6).flat_map(|u| gens::u8_in(0..6).map(move |k| POp::Delete(u, k))),
        gens::u8_in(0..6).map(POp::DeleteUser),
    ]);
    gens::vec(op, 1..5)
}

fn to_txn(ops: &[POp]) -> Txn {
    let mut t = Txn::new();
    for op in ops {
        t = match op {
            POp::Put(u, k, v) => t.put(format!("u{u}"), format!("k{k}"), format!("v{v}")),
            POp::Delete(u, k) => t.delete(format!("u{u}"), format!("k{k}")),
            POp::DeleteUser(u) => t.delete_user(format!("u{u}")),
        };
    }
    t
}

type Model = BTreeMap<String, BTreeMap<String, String>>;

fn apply_model(model: &mut Model, ops: &[POp]) {
    for op in ops {
        match op {
            POp::Put(u, k, v) => {
                model
                    .entry(format!("u{u}"))
                    .or_default()
                    .insert(format!("k{k}"), format!("v{v}"));
            }
            POp::Delete(u, k) => {
                let user = format!("u{u}");
                if let Some(p) = model.get_mut(&user) {
                    p.remove(&format!("k{k}"));
                    if p.is_empty() {
                        model.remove(&user);
                    }
                }
            }
            POp::DeleteUser(u) => {
                model.remove(&format!("u{u}"));
            }
        }
    }
}

fn assert_matches_model(db: &mut ProfileDb<MemDevice>, model: &Model) {
    assert_eq!(db.user_count(), model.len());
    for (user, profile) in model {
        let got = db.profile(user).expect("user present").clone();
        assert_eq!(&got, profile, "profile mismatch for {user}");
    }
}

props! {
    fn recovery_replays_exactly_the_committed_history(
        txns in gens::vec(txn_gen(), 1..30),
    ) {
        let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
        let mut model: Model = BTreeMap::new();
        for ops in &txns {
            db.commit(to_txn(ops)).unwrap();
            apply_model(&mut model, ops);
        }
        // Clean crash: everything synced survives.
        let dev = std::mem::replace(db.device_mut(), MemDevice::new());
        let mut recovered = ProfileDb::open(Wal::new(dev)).unwrap();
        assert_matches_model(&mut recovered, &model);
    }

    fn torn_tail_loses_at_most_the_final_txn_and_stays_atomic(
        txns in gens::vec(txn_gen(), 2..20),
        torn in gens::usize_in(1..8),
    ) {
        let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
        let mut prefix_models: Vec<Model> = Vec::new();
        let mut model: Model = BTreeMap::new();
        for ops in &txns {
            db.commit(to_txn(ops)).unwrap();
            apply_model(&mut model, ops);
            prefix_models.push(model.clone());
        }
        let mut dev = std::mem::replace(db.device_mut(), MemDevice::new());
        dev.crash(torn);
        let mut recovered = ProfileDb::open(Wal::new(dev)).unwrap();
        // The recovered state must equal the model after N or N-1
        // transactions — never anything in between (atomicity).
        let n = recovered.stats().replayed as usize;
        tk_assert!(n == txns.len() || n == txns.len() - 1, "replayed {n} of {}", txns.len());
        assert_matches_model(&mut recovered, &prefix_models[n - 1]);
    }

    fn checkpoint_is_state_preserving(
        txns in gens::vec(txn_gen(), 1..20),
    ) {
        let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
        let mut model: Model = BTreeMap::new();
        for ops in &txns {
            db.commit(to_txn(ops)).unwrap();
            apply_model(&mut model, ops);
        }
        db.checkpoint(MemDevice::new()).unwrap();
        let dev = std::mem::replace(db.device_mut(), MemDevice::new());
        let mut recovered = ProfileDb::open(Wal::new(dev)).unwrap();
        tk_assert!(recovered.stats().replayed <= 1, "compacted to one snapshot");
        assert_matches_model(&mut recovered, &model);
    }
}
