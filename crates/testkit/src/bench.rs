//! The wall-clock micro-benchmark harness that replaces criterion.
//!
//! Auto-calibrated batching (so `Instant` overhead does not dominate
//! nanosecond-scale routines), a warmup phase, and per-batch samples
//! recorded into the repo's own [`Summary`] for mean/p50/p99. Results
//! print as a table and serialise as JSON rows (`BENCH_*.json` trajectory
//! format: one object per benchmark with `group`, `bench`, `iters`,
//! `mean_ns`, `p50_ns`, `p99_ns`, `min_ns`, `max_ns`, `samples`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

use sns_sim::stats::Summary;

/// Harness timing knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Warmup wall-clock budget per benchmark.
    pub warmup: Duration,
    /// Measurement wall-clock budget per benchmark.
    pub measure: Duration,
    /// Target wall-clock per timed batch (controls batch size).
    pub batch_target: Duration,
    /// Minimum timed batches per benchmark, regardless of the
    /// wall-clock budget. A routine slower than `measure` would
    /// otherwise report a single sample — a point estimate masquerading
    /// as a distribution — making any p50/p99 regression band
    /// meaningless. Macro benches set this ≥ 5.
    pub min_samples: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(500),
            batch_target: Duration::from_micros(50),
            min_samples: 1,
        }
    }
}

/// One benchmark's results, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Group (suite) name.
    pub group: String,
    /// Benchmark name.
    pub bench: String,
    /// Total timed iterations.
    pub iters: u64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Median ns/iter (over per-batch means).
    pub p50_ns: f64,
    /// 99th percentile ns/iter (over per-batch means).
    pub p99_ns: f64,
    /// Fastest per-batch mean.
    pub min_ns: f64,
    /// Slowest per-batch mean.
    pub max_ns: f64,
    /// Number of timed batches (the percentile population).
    pub samples: u64,
}

/// A named collection of benchmarks sharing one configuration.
pub struct BenchSuite {
    group: String,
    cfg: BenchConfig,
    rows: Vec<BenchRow>,
}

impl BenchSuite {
    /// Creates a suite with default timing.
    pub fn new(group: impl Into<String>) -> Self {
        Self::with_config(group, BenchConfig::default())
    }

    /// Creates a suite with explicit timing knobs.
    pub fn with_config(group: impl Into<String>, cfg: BenchConfig) -> Self {
        let group = group.into();
        println!("== bench group '{group}'");
        BenchSuite {
            group,
            cfg,
            rows: Vec::new(),
        }
    }

    /// Benchmarks `f` called in a tight loop. Return values are passed
    /// through [`black_box`] so the work is not optimised away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Calibrate the batch size against the routine's own speed.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let batch = (self.cfg.batch_target.as_nanos() / probe.as_nanos()).clamp(1, 1 << 20) as u64;

        let warmup_until = Instant::now() + self.cfg.warmup;
        while Instant::now() < warmup_until {
            for _ in 0..batch {
                black_box(f());
            }
        }

        let mut summary = Summary::with_capacity(16_384);
        let mut iters = 0u64;
        let measure_until = Instant::now() + self.cfg.measure;
        while Instant::now() < measure_until || summary.count() < self.cfg.min_samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            summary.record(ns);
            iters += batch;
        }
        self.push_row(name, iters, summary);
    }

    /// Benchmarks `routine` on a fresh, untimed `setup()` input per
    /// sample — the criterion `iter_batched` pattern for routines that
    /// consume their input or mutate shared state.
    pub fn bench_batched<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        let warmup_until = Instant::now() + self.cfg.warmup;
        loop {
            let input = setup();
            black_box(routine(input));
            if Instant::now() >= warmup_until {
                break;
            }
        }
        let mut summary = Summary::with_capacity(16_384);
        let mut iters = 0u64;
        let measure_until = Instant::now() + self.cfg.measure;
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            summary.record(t.elapsed().as_nanos() as f64);
            iters += 1;
            if Instant::now() >= measure_until && summary.count() >= self.cfg.min_samples {
                break;
            }
        }
        self.push_row(name, iters, summary);
    }

    fn push_row(&mut self, name: &str, iters: u64, mut summary: Summary) {
        let row = BenchRow {
            group: self.group.clone(),
            bench: name.to_string(),
            iters,
            mean_ns: summary.mean(),
            p50_ns: summary.quantile(0.5),
            p99_ns: summary.quantile(0.99),
            min_ns: summary.min(),
            max_ns: summary.max(),
            samples: summary.count(),
        };
        println!(
            "  {:<32} {:>12.1} ns/iter  (p50 {:>10.1}  p99 {:>10.1}  n={})",
            row.bench, row.mean_ns, row.p50_ns, row.p99_ns, row.iters
        );
        self.rows.push(row);
    }

    /// All results so far.
    pub fn rows(&self) -> &[BenchRow] {
        &self.rows
    }

    /// Serialises results as a JSON array of row objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"group\":{},\"bench\":{},\"iters\":{},\"mean_ns\":{:.1},\
                 \"p50_ns\":{:.1},\"p99_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\
                 \"samples\":{}}}{}\n",
                json_str(&r.group),
                json_str(&r.bench),
                r.iters,
                r.mean_ns,
                r.p50_ns,
                r.p99_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push(']');
        out
    }

    /// Writes [`BenchSuite::to_json`] to `path` (conventionally
    /// `BENCH_<group>.json`).
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> BenchConfig {
        BenchConfig {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
            batch_target: Duration::from_micros(20),
            min_samples: 1,
        }
    }

    #[test]
    fn bench_produces_sane_rows_and_json() {
        let mut suite = BenchSuite::with_config("selftest", fast_cfg());
        suite.bench("sum_1k", || (0..1000u64).sum::<u64>());
        suite.bench_batched(
            "vec_drain",
            || (0..256u64).collect::<Vec<_>>(),
            |mut v| v.drain(..).sum::<u64>(),
        );
        assert_eq!(suite.rows().len(), 2);
        for r in suite.rows() {
            assert!(r.iters > 0);
            assert!(r.mean_ns > 0.0);
            assert!(r.min_ns <= r.p50_ns && r.p50_ns <= r.max_ns);
            assert!(r.p50_ns <= r.p99_ns);
        }
        let json = suite.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"bench\":\"sum_1k\""));
        assert!(json.contains("\"group\":\"selftest\""));
        assert_eq!(json.matches("mean_ns").count(), 2);
    }

    #[test]
    fn min_samples_floors_the_batch_count_for_slow_routines() {
        // A routine slower than the whole measurement budget: without
        // the floor both loops would stop after one timed batch.
        let mut suite = BenchSuite::with_config(
            "selftest",
            BenchConfig {
                warmup: Duration::from_millis(1),
                measure: Duration::from_millis(1),
                batch_target: Duration::from_micros(1),
                min_samples: 5,
            },
        );
        suite.bench("slow", || std::thread::sleep(Duration::from_millis(2)));
        suite.bench_batched(
            "slow_batched",
            || (),
            |()| std::thread::sleep(Duration::from_millis(2)),
        );
        for r in suite.rows() {
            assert!(r.samples >= 5, "{} got {} samples", r.bench, r.samples);
        }
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("tab\there"), "\"tab\\u0009here\"");
    }
}
