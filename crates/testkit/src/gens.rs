//! The standard generator library: integers, floats, booleans,
//! collections, character-class strings and alternation.
//!
//! Every generator maps the all-zero choice stream to its simplest value
//! (smallest integer, empty/shortest collection, first alternative), which
//! is what the shrinker drives toward.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::gen::Gen;

/// Always generates a clone of `v` (consumes no choices).
pub fn just<T: Clone + 'static>(v: T) -> Gen<T> {
    Gen::new(move |_| v.clone())
}

/// Any `u64` (the zero choice maps to 0).
pub fn any_u64() -> Gen<u64> {
    Gen::new(|src| src.next_u64())
}

/// Any `u32`.
pub fn any_u32() -> Gen<u32> {
    Gen::new(|src| src.next_u64() as u32)
}

/// Any `u8`.
pub fn any_u8() -> Gen<u8> {
    Gen::new(|src| src.next_u64() as u8)
}

/// Any `bool` (zero maps to `false`).
pub fn any_bool() -> Gen<bool> {
    Gen::new(|src| src.bool())
}

macro_rules! int_in {
    ($name:ident, $t:ty) => {
        /// Integer in the half-open range (zero choice maps to the low end).
        pub fn $name(r: Range<$t>) -> Gen<$t> {
            assert!(r.start < r.end, "empty range {:?}", r);
            Gen::new(move |src| r.start + src.below((r.end - r.start) as u64) as $t)
        }
    };
}

int_in!(u8_in, u8);
int_in!(u32_in, u32);
int_in!(u64_in, u64);
int_in!(usize_in, usize);

/// Signed integer in the half-open range (zero choice maps to the low end).
pub fn i64_in(r: Range<i64>) -> Gen<i64> {
    assert!(r.start < r.end, "empty range {r:?}");
    let span = r.end.wrapping_sub(r.start) as u64;
    Gen::new(move |src| r.start.wrapping_add(src.below(span) as i64))
}

/// `f64` in the half-open range (zero choice maps to the low end).
pub fn f64_in(r: Range<f64>) -> Gen<f64> {
    assert!(r.start < r.end, "empty range {r:?}");
    Gen::new(move |src| r.start + (r.end - r.start) * src.unit_f64())
}

/// `Duration` in the half-open range at millisecond granularity (the zero
/// choice maps to the low end). Millisecond steps keep the choice space
/// small enough for the shrinker to binary-search event times.
pub fn duration_in(r: Range<std::time::Duration>) -> Gen<std::time::Duration> {
    assert!(r.start < r.end, "empty range {r:?}");
    let lo = r.start.as_millis() as u64;
    let hi = (r.end.as_millis() as u64).max(lo + 1);
    Gen::new(move |src| std::time::Duration::from_millis(lo + src.below(hi - lo)))
}

/// `Vec` of `len` in `len_range` (half-open) elements; the zero stream
/// maps to the shortest vector of simplest elements.
pub fn vec<T: 'static>(g: Gen<T>, len_range: Range<usize>) -> Gen<Vec<T>> {
    assert!(len_range.start < len_range.end, "empty range {len_range:?}");
    Gen::new(move |src| {
        let len = len_range.start + src.below((len_range.end - len_range.start) as u64) as usize;
        (0..len).map(|_| g.run(src)).collect()
    })
}

/// `BTreeSet` with a size drawn from `size_range` (half-open). If the
/// element space is too small to reach the drawn size, the set is as
/// large as a bounded number of draws could make it.
pub fn btree_set<T: Ord + 'static>(g: Gen<T>, size_range: Range<usize>) -> Gen<BTreeSet<T>> {
    assert!(
        size_range.start < size_range.end,
        "empty range {size_range:?}"
    );
    Gen::new(move |src| {
        let target =
            size_range.start + src.below((size_range.end - size_range.start) as u64) as usize;
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(g.run(src));
            attempts += 1;
        }
        set
    })
}

/// `BTreeMap` with a size drawn from `size_range` (half-open); duplicate
/// keys overwrite, so small key spaces may yield smaller maps.
pub fn btree_map<K: Ord + 'static, V: 'static>(
    kg: Gen<K>,
    vg: Gen<V>,
    size_range: Range<usize>,
) -> Gen<BTreeMap<K, V>> {
    assert!(
        size_range.start < size_range.end,
        "empty range {size_range:?}"
    );
    Gen::new(move |src| {
        let target =
            size_range.start + src.below((size_range.end - size_range.start) as u64) as usize;
        let mut map = BTreeMap::new();
        let mut attempts = 0;
        while map.len() < target && attempts < target * 10 + 16 {
            map.insert(kg.run(src), vg.run(src));
            attempts += 1;
        }
        map
    })
}

/// Picks one of the alternatives uniformly; the zero choice maps to the
/// first (put the simplest alternative first).
pub fn one_of<T: 'static>(alts: Vec<Gen<T>>) -> Gen<T> {
    assert!(!alts.is_empty(), "one_of of nothing");
    Gen::new(move |src| alts[src.below(alts.len() as u64) as usize].run(src))
}

/// Picks one of the alternatives with the given relative weights.
pub fn weighted_of<T: 'static>(alts: Vec<(u32, Gen<T>)>) -> Gen<T> {
    assert!(!alts.is_empty(), "weighted_of of nothing");
    let weights: Vec<u32> = alts.iter().map(|(w, _)| *w).collect();
    Gen::new(move |src| alts[src.weighted(&weights)].1.run(src))
}

/// Uniformly picks one element of a non-empty slice (cloned).
pub fn element_of<T: Clone + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "element_of of nothing");
    Gen::new(move |src| items[src.below(items.len() as u64) as usize].clone())
}

/// One parsed `[class]{m,n}` (or literal) atom of a string pattern.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the regex subset used throughout the test suites: a
/// concatenation of literal characters and `[...]` classes (with `a-z`
/// ranges; a trailing `-` is literal), each optionally quantified by
/// `{n}` or `{m,n}` (inclusive). Panics on anything else — patterns are
/// compile-time constants in tests.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let inner = &chars[i + 1..close];
                let mut set = Vec::new();
                let mut j = 0;
                while j < inner.len() {
                    if j + 2 < inner.len() && inner[j + 1] == '-' {
                        let (lo, hi) = (inner[j] as u32, inner[j + 2] as u32);
                        assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(inner[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                set
            }
            '{' | '}' | ']' => panic!("unsupported pattern syntax in {pattern:?}"),
            c => {
                i += 1;
                std::vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("pattern quantifier"),
                    n.trim().parse().expect("pattern quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("pattern quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

/// Strings matching a `[class]{m,n}` pattern (literals, `[a-z0-9_]`
/// classes and `{m}`/`{m,n}` quantifiers). The zero stream maps to the
/// shortest string of first-in-class characters.
pub fn string(pattern: &str) -> Gen<String> {
    let atoms = parse_pattern(pattern);
    Gen::new(move |src| {
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + src.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[src.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;

    #[test]
    fn zero_stream_is_minimal_everywhere() {
        let z = || Source::replay(Vec::new());
        assert_eq!(u64_in(5..10).run(&mut z()), 5);
        assert_eq!(f64_in(2.0..4.0).run(&mut z()), 2.0);
        assert_eq!(vec(any_u8(), 0..10).run(&mut z()), Vec::<u8>::new());
        assert_eq!(string("[a-z]{0,8}").run(&mut z()), "");
        assert_eq!(string("[a-z]{2,8}").run(&mut z()), "aa");
    }

    #[test]
    fn pattern_strings_match_their_class() {
        let g = string("[a-zA-Z0-9/:._-]{1,40}");
        let mut src = Source::live(11);
        for _ in 0..500 {
            let s = g.run(&mut src);
            assert!((1..=40).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '/' | ':' | '.' | '_' | '-')));
        }
    }

    #[test]
    fn printable_ascii_range_pattern() {
        let g = string("[ -~]{1,64}");
        let mut src = Source::live(13);
        for _ in 0..300 {
            let s = g.run(&mut src);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literal_and_exact_quantifier_patterns() {
        let g = string("u[0-9]{3}");
        let mut src = Source::live(17);
        for _ in 0..100 {
            let s = g.run(&mut src);
            assert_eq!(s.len(), 4);
            assert!(s.starts_with('u'));
            assert!(s[1..].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn collections_respect_size_bounds() {
        let mut src = Source::live(19);
        for _ in 0..200 {
            let v = vec(any_u8(), 1..40).run(&mut src);
            assert!((1..40).contains(&v.len()));
            let s = btree_set(u32_in(0..32), 2..10).run(&mut src);
            assert!(s.len() < 10);
            assert!(s.iter().all(|&x| x < 32));
            let m = btree_map(string("[a-z]{1,6}"), any_u8(), 0..6).run(&mut src);
            assert!(m.len() < 6);
        }
    }

    #[test]
    fn one_of_covers_all_alternatives() {
        let g = one_of(std::vec![just(1u8), just(2), just(3)]);
        let mut seen = BTreeSet::new();
        let mut src = Source::live(23);
        for _ in 0..200 {
            seen.insert(g.run(&mut src));
        }
        assert_eq!(seen.len(), 3);
    }
}
