//! # sns-testkit — hermetic property testing and micro-benchmarking
//!
//! The workspace's in-repo replacement for `proptest` and `criterion`,
//! built on the repo's own deterministic [`Pcg32`](sns_sim::rng::Pcg32)
//! and [`Summary`](sns_sim::stats::Summary). No registry dependencies:
//! the whole workspace builds and tests offline.
//!
//! ## Property testing
//!
//! Generators decode values from a recorded **choice stream** (the
//! Hypothesis design): shrinking minimises the integer stream and
//! re-decodes, so it works through [`Gen::map`]/[`Gen::flat_map`] and
//! collection structure with no per-type shrinkers. Differences from
//! proptest, deliberately:
//!
//! * **Deterministic seeds** — the base seed is a fixed constant mixed
//!   with the property name; every machine runs the same cases. Override
//!   with `SNS_TESTKIT_SEED` (a failure report prints the seed to replay).
//! * **Explicit shrink budget** — shrinking spends at most
//!   `SNS_TESTKIT_SHRINK` (default 512) re-runs, so worst-case test time
//!   is bounded and predictable.
//! * **No persistence files** — reproduction is by seed, not by
//!   `.proptest-regressions` artifacts.
//!
//! ```
//! use sns_testkit::{props, gens, tk_assert, tk_assert_eq};
//!
//! props! {
//!     fn addition_commutes(a in gens::u64_in(0..1000), b in gens::u64_in(0..1000)) {
//!         tk_assert_eq!(a + b, b + a);
//!         tk_assert!(a + b >= a, "no overflow in this range");
//!     }
//! }
//! # // `props!` emits `#[test]` items (inert in a doctest); run the
//! # // equivalent check directly so the example is exercised.
//! # sns_testkit::check(
//! #     "addition_commutes",
//! #     (gens::u64_in(0..1000), gens::u64_in(0..1000)),
//! #     |(a, b)| { tk_assert_eq!(a + b, b + a); Ok(()) },
//! # );
//! ```
//!
//! ## Micro-benchmarks
//!
//! [`BenchSuite`] replaces criterion: warmup, auto-calibrated batching,
//! mean/p50/p99 via [`Summary`](sns_sim::stats::Summary), and JSON rows
//! written to `BENCH_<group>.json`.

#![warn(missing_docs)]

pub mod bench;
pub mod gen;
pub mod gens;
pub mod runner;
pub mod shrink;
pub mod source;

pub use bench::{black_box, BenchConfig, BenchRow, BenchSuite};
pub use gen::{Gen, GenSet};
pub use runner::{check, check_config, Config, Failed};
pub use source::Source;

/// Declares property test functions. Each `fn name(arg in gen, ...) { body }`
/// item becomes a `#[test]` running [`check`] over the generator tuple;
/// the body uses [`tk_assert!`]-family macros (or plain panics) to fail.
#[macro_export]
macro_rules! props {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            $crate::check(
                stringify!($name),
                ($($gen,)+),
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::props! { $($rest)* }
    };
}

/// Asserts a condition inside a property body; on failure the case is
/// reported (and shrunk) with the stringified condition or a formatted
/// message.
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Failed::msg(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Failed::msg(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal (Debug-printed on failure).
#[macro_export]
macro_rules! tk_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::Failed::msg(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::Failed::msg(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts two expressions are unequal (Debug-printed on failure).
#[macro_export]
macro_rules! tk_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err($crate::Failed::msg(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err($crate::Failed::msg(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Discards the current case when an assumption does not hold (the
/// proptest `prop_assume!` equivalent); discarded cases do not count
/// toward the pass target.
#[macro_export]
macro_rules! tk_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Failed::discard());
        }
    };
}

#[cfg(test)]
mod macro_tests {
    use crate::gens;

    crate::props! {
        fn props_macro_generates_passing_tests(
            a in gens::u64_in(0..50),
            v in gens::vec(gens::u8_in(0..10), 0..8),
        ) {
            crate::tk_assume!(a != 49);
            crate::tk_assert!(a < 50);
            crate::tk_assert_eq!(v.len(), v.iter().map(|&b| usize::from(b < 10)).sum());
            crate::tk_assert_ne!(a, 50, "a={} must differ from 50", a);
        }

        fn props_macro_supports_trailing_comma(x in gens::any_bool(),) {
            crate::tk_assert!(x as u8 <= 1);
        }
    }
}
