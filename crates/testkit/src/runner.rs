//! The property runner: seeded case iteration, discard handling,
//! shrinking and failure reporting.
//!
//! Unlike proptest, runs are **deterministic by default**: the base seed
//! is a fixed constant mixed with the property name, so CI and laptops
//! explore identical cases. `SNS_TESTKIT_SEED` overrides the base seed
//! (printed on failure for reproduction), `SNS_TESTKIT_CASES` the case
//! count, and `SNS_TESTKIT_SHRINK` the shrink budget (property re-runs
//! spent minimising a counterexample).

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::gen::GenSet;
use crate::shrink::{shrink, Rerun};
use crate::source::Source;

/// Why a property case did not pass.
#[derive(Debug, Clone)]
pub struct Failed {
    message: String,
    discard: bool,
}

impl Failed {
    /// A genuine failure with a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Failed {
            message: message.into(),
            discard: false,
        }
    }

    /// A discarded case (unmet assumption); does not count as a failure.
    pub fn discard() -> Self {
        Failed {
            message: "assumption not met".into(),
            discard: true,
        }
    }
}

impl From<String> for Failed {
    fn from(message: String) -> Self {
        Failed::msg(message)
    }
}

impl From<&str> for Failed {
    fn from(message: &str) -> Self {
        Failed::msg(message)
    }
}

/// Runner knobs; read from the environment by [`Config::from_env`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Passing cases required (default 64).
    pub cases: u32,
    /// Base seed; mixed with the case index per run.
    pub seed: u64,
    /// Maximum property re-runs spent shrinking (default 512).
    pub shrink_budget: u32,
}

/// Fixed default base seed ("SNSTESTK" in ASCII).
pub const DEFAULT_SEED: u64 = 0x534e_5354_4553_544b;

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be an integer, got {raw:?}"),
    }
}

impl Config {
    /// Environment-driven configuration for the named property.
    pub fn from_env(name: &str) -> Self {
        Config {
            cases: env_u64("SNS_TESTKIT_CASES").map_or(64, |v| v as u32),
            seed: env_u64("SNS_TESTKIT_SEED").unwrap_or(DEFAULT_SEED ^ fnv1a(name.as_bytes())),
            shrink_budget: env_u64("SNS_TESTKIT_SHRINK").map_or(512, |v| v as u32),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn case_seed(base: u64, case: u64) -> u64 {
    let mut z = base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

enum Outcome {
    Pass,
    Discard,
    Fail(String),
}

fn run_source<G, F>(gens: &G, prop: &F, mut src: Source) -> (Outcome, Vec<u64>)
where
    G: GenSet,
    F: Fn(G::Value) -> Result<(), Failed>,
{
    let result = catch_unwind(AssertUnwindSafe(|| {
        let value = gens.generate(&mut src);
        prop(value)
    }));
    let outcome = match result {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(f)) if f.discard => Outcome::Discard,
        Ok(Err(f)) => Outcome::Fail(f.message),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panicked".into());
            Outcome::Fail(format!("panic: {msg}"))
        }
    };
    (outcome, src.into_recorded())
}

/// Checks a property against generated inputs with the environment
/// configuration; panics with a seed and a shrunk counterexample on
/// failure. `gens` is a tuple of [`crate::Gen`]s; `prop` receives the
/// generated argument tuple.
pub fn check<G, F>(name: &str, gens: G, prop: F)
where
    G: GenSet,
    F: Fn(G::Value) -> Result<(), Failed>,
{
    check_config(name, &Config::from_env(name), gens, prop);
}

/// [`check`] with an explicit configuration.
pub fn check_config<G, F>(name: &str, cfg: &Config, gens: G, prop: F)
where
    G: GenSet,
    F: Fn(G::Value) -> Result<(), Failed>,
{
    let mut passed = 0u32;
    let mut discarded = 0u32;
    let max_attempts = cfg.cases.saturating_mul(10).max(cfg.cases);
    for attempt in 0..u64::from(max_attempts) {
        if passed >= cfg.cases {
            return;
        }
        let src = Source::live(case_seed(cfg.seed, attempt));
        let (outcome, stream) = run_source(&gens, &prop, src);
        match outcome {
            Outcome::Pass => passed += 1,
            Outcome::Discard => discarded += 1,
            Outcome::Fail(first_msg) => {
                fail(name, cfg, &gens, &prop, attempt, stream, first_msg);
            }
        }
    }
    if passed < cfg.cases {
        panic!(
            "[sns-testkit] property '{name}' gave up: only {passed}/{} cases passed \
             after {discarded} discards (weaken assumptions or raise SNS_TESTKIT_CASES)",
            cfg.cases
        );
    }
}

fn fail<G, F>(
    name: &str,
    cfg: &Config,
    gens: &G,
    prop: &F,
    case: u64,
    stream: Vec<u64>,
    first_msg: String,
) -> !
where
    G: GenSet,
    F: Fn(G::Value) -> Result<(), Failed>,
{
    let (best, steps) = shrink(stream, cfg.shrink_budget, |cand| {
        let (outcome, consumed) = run_source(gens, prop, Source::replay(cand));
        Rerun {
            fails: matches!(outcome, Outcome::Fail(_)),
            consumed,
        }
    });
    // Re-run the winning stream once more for the report (panic-guarded:
    // the failure may itself be a panic).
    let (outcome, consumed) = run_source(gens, prop, Source::replay(best));
    let final_msg = match outcome {
        Outcome::Fail(msg) => msg,
        _ => first_msg,
    };
    let shrunk = catch_unwind(AssertUnwindSafe(|| {
        let mut src = Source::replay(consumed);
        format!("{:#?}", gens.generate(&mut src))
    }))
    .unwrap_or_else(|_| "<generation panicked while printing>".into());
    panic!(
        "[sns-testkit] property '{name}' failed at case {case}\n  \
         base seed: {seed:#x} — rerun with SNS_TESTKIT_SEED={seed}\n  \
         shrunk counterexample ({steps} shrink rounds, budget {budget}):\n  {shrunk}\n  \
         failure: {final_msg}",
        seed = cfg.seed,
        budget = cfg.shrink_budget,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gens;

    fn quiet_cfg() -> Config {
        Config {
            cases: 64,
            seed: 0xfeed,
            shrink_budget: 512,
        }
    }

    #[test]
    fn passing_property_passes() {
        check_config(
            "sum_commutes",
            &quiet_cfg(),
            (gens::any_u32(), gens::any_u32()),
            |(a, b)| {
                if u64::from(a) + u64::from(b) == u64::from(b) + u64::from(a) {
                    Ok(())
                } else {
                    Err("math broke".into())
                }
            },
        );
    }

    #[test]
    fn failing_property_reports_shrunk_seedful_counterexample() {
        let result = std::panic::catch_unwind(|| {
            check_config(
                "no_big_values",
                &quiet_cfg(),
                (gens::vec(gens::u64_in(0..1000), 0..20),),
                |(v,)| {
                    if v.iter().any(|&x| x >= 100) {
                        Err(format!("saw {v:?}").into())
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("SNS_TESTKIT_SEED="), "{msg}");
        assert!(msg.contains("no_big_values"), "{msg}");
        // The shrunk witness is the minimal one: a single element, 100.
        assert!(msg.contains("100"), "{msg}");
        assert!(!msg.contains("101"), "shrinker left slack: {msg}");
    }

    #[test]
    fn panics_are_failures_too() {
        let result = std::panic::catch_unwind(|| {
            check_config(
                "index_panics",
                &quiet_cfg(),
                (gens::vec(gens::any_u8(), 0..8),),
                |(v,)| {
                    let _ = v[3]; // panics whenever len <= 3
                    Ok(())
                },
            );
        });
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("panic"), "{msg}");
    }

    #[test]
    fn discards_do_not_fail_but_exhaustion_does() {
        // Mild assumption: passes.
        check_config("mild_assumption", &quiet_cfg(), (gens::any_u8(),), |(x,)| {
            if x < 16 {
                Err(Failed::discard())
            } else {
                Ok(())
            }
        });
        // Impossible assumption: gives up with a clear message.
        let result = std::panic::catch_unwind(|| {
            check_config(
                "impossible_assumption",
                &quiet_cfg(),
                (gens::any_u8(),),
                |(_,)| Err(Failed::discard()),
            );
        });
        let msg = *result
            .unwrap_err()
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("gave up"), "{msg}");
    }

    #[test]
    fn same_seed_same_cases() {
        use std::cell::RefCell;
        let observed = RefCell::new(Vec::new());
        let run = || {
            observed.borrow_mut().clear();
            check_config("determinism", &quiet_cfg(), (gens::any_u64(),), |(x,)| {
                observed.borrow_mut().push(x);
                Ok(())
            });
            observed.borrow().clone()
        };
        assert_eq!(run(), run());
    }
}
