//! The generator abstraction: a total decoding function from a choice
//! [`Source`] to a value. Totality is the contract that makes stream
//! shrinking sound — any mutated stream must decode to *some* value.

use std::fmt;
use std::rc::Rc;

use crate::source::Source;

/// A value generator. Cloning is cheap (shared function).
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            f: Rc::clone(&self.f),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a decoding function.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Decodes one value from the source.
    pub fn run(&self, src: &mut Source) -> T {
        (self.f)(src)
    }

    /// Applies `f` to every generated value. Shrinking passes through:
    /// the underlying choices shrink and the mapped value is re-derived.
    pub fn map<U: 'static>(&self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let g = self.clone();
        Gen::new(move |src| f(g.run(src)))
    }

    /// Generates an intermediate value, then runs the generator `f`
    /// builds from it (dependent generation).
    pub fn flat_map<U: 'static>(&self, f: impl Fn(T) -> Gen<U> + 'static) -> Gen<U> {
        let g = self.clone();
        Gen::new(move |src| f(g.run(src)).run(src))
    }
}

impl<T> fmt::Debug for Gen<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Gen(..)")
    }
}

/// A tuple of generators, as taken by [`crate::check`]: produces the
/// tuple of argument values a property consumes.
pub trait GenSet {
    /// The generated argument tuple.
    type Value: fmt::Debug;
    /// Decodes the full argument tuple from one source.
    fn generate(&self, src: &mut Source) -> Self::Value;
}

macro_rules! gen_set_tuple {
    ($($G:ident $g:ident),+) => {
        impl<$($G: fmt::Debug + 'static),+> GenSet for ($(Gen<$G>,)+) {
            type Value = ($($G,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                let ($($g,)+) = self;
                ($($g.run(src),)+)
            }
        }
    };
}

gen_set_tuple!(A a);
gen_set_tuple!(A a, B b);
gen_set_tuple!(A a, B b, C c);
gen_set_tuple!(A a, B b, C c, D d);
gen_set_tuple!(A a, B b, C c, D d, E e);
gen_set_tuple!(A a, B b, C c, D d, E e, F f);
gen_set_tuple!(A a, B b, C c, D d, E e, F f, G g);
gen_set_tuple!(A a, B b, C c, D d, E e, F f, G g, H h);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gens;

    #[test]
    fn map_and_flat_map_compose() {
        let g = gens::u64_in(1..10)
            .map(|n| n * 2)
            .flat_map(|n| gens::u64_in(0..n));
        let mut src = Source::live(42);
        for _ in 0..100 {
            let v = g.run(&mut src);
            assert!(v < 18);
        }
    }

    #[test]
    fn tuple_genset_draws_in_order() {
        let gs = (gens::u64_in(0..10), gens::u64_in(10..20));
        let mut src = Source::replay(vec![3, 4]);
        let (a, b) = gs.generate(&mut src);
        assert_eq!((a, b), (3, 14));
    }
}
