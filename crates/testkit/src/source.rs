//! The choice stream underlying every generator.
//!
//! Generators never touch an RNG directly: they draw `u64` *choices* from
//! a [`Source`], which records every draw. A live source forwards to a
//! seeded [`Pcg32`]; a replay source plays back a recorded (possibly
//! mutated) stream and substitutes `0` once the stream is exhausted.
//! Because every generator maps the zero choice to its simplest value,
//! shrinking reduces to minimising the recorded integer stream and
//! re-decoding — structure-aware shrinking falls out for free, even
//! through `map`/`flat_map`.

use sns_sim::rng::Pcg32;

/// A recording stream of `u64` choices, either live (RNG-backed) or
/// replaying a fixed prefix.
#[derive(Debug)]
pub struct Source {
    rng: Option<Pcg32>,
    replay: Vec<u64>,
    pos: usize,
    recorded: Vec<u64>,
}

impl Source {
    /// A live source drawing fresh choices from a seeded generator.
    pub fn live(seed: u64) -> Self {
        Source {
            rng: Some(Pcg32::new(seed)),
            replay: Vec::new(),
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// A replay source: draws come from `stream`, then `0` forever.
    pub fn replay(stream: Vec<u64>) -> Self {
        Source {
            rng: None,
            replay: stream,
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// The next raw choice.
    pub fn next_u64(&mut self) -> u64 {
        let v = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else {
            match &mut self.rng {
                Some(rng) => rng.next_u64(),
                None => 0,
            }
        };
        self.pos += 1;
        self.recorded.push(v);
        v
    }

    /// Choices drawn so far (the stream that reproduces this run).
    pub fn recorded(&self) -> &[u64] {
        &self.recorded
    }

    /// Consumes the source, returning the recorded stream.
    pub fn into_recorded(self) -> Vec<u64> {
        self.recorded
    }

    /// Uniform-ish value in `[0, bound)`; the zero choice maps to `0`.
    ///
    /// Plain modulo on purpose: unlike [`Pcg32::below`] it never rejects,
    /// so replaying a mutated stream is total, and smaller choices decode
    /// to smaller values (the shrinking invariant).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.next_u64() % bound
    }

    /// Value in `[lo, hi)`; the zero choice maps to `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// `f64` in `[0, 1)` with 53 bits of precision; zero maps to `0.0`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Boolean; the zero choice maps to `false`.
    pub fn bool(&mut self) -> bool {
        self.below(2) == 1
    }

    /// Index into `weights` proportional to weight; the zero choice maps
    /// to the first positively-weighted index (put the simplest
    /// alternative first).
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "weights must have positive sum");
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_source_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut s = Source::live(seed);
            (0..32).map(|_| s.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn replay_substitutes_zero_after_exhaustion() {
        let mut s = Source::replay(vec![5, 6]);
        assert_eq!(s.next_u64(), 5);
        assert_eq!(s.next_u64(), 6);
        assert_eq!(s.next_u64(), 0);
        assert_eq!(s.recorded(), &[5, 6, 0]);
    }

    #[test]
    fn zero_stream_decodes_to_minimal_values() {
        let mut s = Source::replay(Vec::new());
        assert_eq!(s.below(100), 0);
        assert_eq!(s.range(7, 30), 7);
        assert_eq!(s.unit_f64(), 0.0);
        assert!(!s.bool());
        assert_eq!(s.weighted(&[1, 2, 3]), 0);
    }

    #[test]
    fn weighted_skips_zero_weights() {
        let mut s = Source::live(3);
        for _ in 0..200 {
            let i = s.weighted(&[0, 4, 0, 1]);
            assert!(i == 1 || i == 3);
        }
    }
}
