//! Choice-stream shrinking: given a recorded stream whose decoded value
//! fails the property, search for a shorter/smaller stream that still
//! fails. Works on the integer stream, so it shrinks *through* `map`,
//! `flat_map` and collection structure without any per-type shrinkers.
//!
//! The search runs three pass families to a fixpoint (or budget):
//! block deletion (structural shrinking — drops collection elements),
//! block zeroing (simplest values), and per-element minimisation
//! (binary-search toward zero). Every accepted candidate is replaced by
//! the stream actually *recorded* while re-running it, which canonicalises
//! away unread tail choices.

/// Outcome of re-running the property on a candidate stream: does it
/// still fail, and what stream was actually consumed?
pub struct Rerun {
    /// True when the property still fails on this stream.
    pub fails: bool,
    /// The choices actually drawn during the re-run.
    pub consumed: Vec<u64>,
}

/// Shrinks `stream` against `rerun`, spending at most `budget` re-runs.
/// Returns the smallest failing stream found and the number of accepted
/// shrink steps.
pub fn shrink(
    stream: Vec<u64>,
    budget: u32,
    mut rerun: impl FnMut(Vec<u64>) -> Rerun,
) -> (Vec<u64>, u32) {
    // Trailing zeros are inert under replay (an exhausted stream yields
    // zeros), but the recorded `consumed` stream re-grows them — trim so
    // deletions genuinely shorten the stream instead of thrashing.
    fn trim(mut v: Vec<u64>) -> Vec<u64> {
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    let mut current = trim(stream);
    let mut spent = 0u32;
    let mut steps = 0u32;
    let mut try_candidate = |cand: Vec<u64>, current: &mut Vec<u64>, spent: &mut u32| -> bool {
        let cand = trim(cand);
        if *spent >= budget || cand == *current {
            return false;
        }
        *spent += 1;
        let r = rerun(cand);
        if r.fails {
            *current = trim(r.consumed);
            true
        } else {
            false
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: delete blocks, largest first (structural shrinking).
        for size in [8usize, 4, 2, 1] {
            let mut start = 0;
            while start < current.len() && spent < budget {
                if size > current.len() - start {
                    break;
                }
                let mut cand = current.clone();
                cand.drain(start..start + size);
                if try_candidate(cand, &mut current, &mut spent) {
                    improved = true;
                    // Re-test the same offset: the stream shifted left.
                } else {
                    start += 1;
                }
            }
        }

        // Pass 2: zero blocks (simplest decoded values).
        for size in [8usize, 4, 2, 1] {
            let mut start = 0;
            while start < current.len() && spent < budget {
                let end = (start + size).min(current.len());
                if current[start..end].iter().all(|&x| x == 0) {
                    start += size;
                    continue;
                }
                let mut cand = current.clone();
                cand[start..end].iter_mut().for_each(|x| *x = 0);
                if try_candidate(cand, &mut current, &mut spent) {
                    improved = true;
                }
                start += size;
            }
        }

        // Pass 3: minimise individual choices by bisection toward zero
        // (`lo` always decodes to a pass, `current[i]` to a failure).
        let mut i = 0;
        while i < current.len() && spent < budget {
            if current[i] > 0 {
                let mut cand = current.clone();
                cand[i] = 0;
                if try_candidate(cand, &mut current, &mut spent) {
                    improved = true;
                } else {
                    let mut lo = 0u64;
                    while spent < budget {
                        let v = match current.get(i) {
                            Some(&v) if v > lo + 1 => v,
                            _ => break,
                        };
                        let mid = lo + (v - lo) / 2;
                        let mut cand = current.clone();
                        cand[i] = mid;
                        if try_candidate(cand, &mut current, &mut spent) {
                            improved = true;
                        } else {
                            lo = mid;
                        }
                    }
                }
            }
            i += 1;
        }

        if !improved || spent >= budget {
            break;
        }
        steps += 1;
    }
    (current, steps.max(u32::from(spent > 0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Property: fails whenever the first choice is >= 10. Minimal
    /// failing stream should be exactly [10].
    #[test]
    fn shrinks_to_boundary() {
        let rerun = |cand: Vec<u64>| {
            let v = cand.first().copied().unwrap_or(0);
            Rerun {
                fails: v >= 10,
                consumed: std::vec![v],
            }
        };
        let (best, _) = shrink(std::vec![981, 55, 7, 3], 512, rerun);
        assert_eq!(best, std::vec![10]);
    }

    /// Property over a decoded vector: fails when it contains any value
    /// of 5 or more. Stream layout: `[len, e0, e1, ...]`. The minimal
    /// failing case is a single-element vector `[5]`.
    #[test]
    fn shrinks_collections_structurally() {
        let decode = |s: &[u64]| -> Vec<u64> {
            let len = s.first().copied().unwrap_or(0) % 10;
            (0..len as usize)
                .map(|i| s.get(1 + i).copied().unwrap_or(0) % 100)
                .collect()
        };
        let rerun = |cand: Vec<u64>| {
            let v = decode(&cand);
            let consumed: Vec<u64> = cand.iter().copied().take(1 + v.len()).collect();
            Rerun {
                fails: v.iter().any(|&x| x >= 5),
                consumed,
            }
        };
        let (best, _) = shrink(std::vec![7, 93, 2, 88, 4, 61, 9, 12], 2048, rerun);
        let v = decode(&best);
        assert_eq!(
            v,
            std::vec![5],
            "expected minimal counterexample, got {v:?}"
        );
    }

    #[test]
    fn budget_bounds_the_search() {
        let mut runs = 0;
        let rerun = |cand: Vec<u64>| {
            runs += 1;
            Rerun {
                fails: true,
                consumed: cand,
            }
        };
        let _ = shrink((0..64).collect(), 10, rerun);
        assert!(runs <= 10);
    }
}
