//! Property tests for the cache structures: LRU behaviour is checked
//! against a naive reference model; the consistent-hash ring against its
//! minimal-remapping contract.

use proptest::prelude::*;

use sns_cache::lru::LruCache;
use sns_cache::ring::HashRing;
use sns_cache::{fnv1a, CacheKey};

/// Naive reference model of a byte-capacity LRU.
struct ModelLru {
    cap: u64,
    /// (key, size), most recently used last.
    entries: Vec<(u8, u64)>,
}

impl ModelLru {
    fn get(&mut self, k: u8) -> bool {
        if let Some(i) = self.entries.iter().position(|&(key, _)| key == k) {
            let e = self.entries.remove(i);
            self.entries.push(e);
            true
        } else {
            false
        }
    }
    fn put(&mut self, k: u8, size: u64) {
        if size > self.cap {
            return;
        }
        self.entries.retain(|&(key, _)| key != k);
        let mut used: u64 = self.entries.iter().map(|&(_, s)| s).sum();
        while used + size > self.cap {
            let (_, s) = self.entries.remove(0);
            used -= s;
        }
        self.entries.push((k, size));
    }
}

#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Put(u8, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..24).prop_map(Op::Get),
        ((0u8..24), (1u64..400)).prop_map(|(k, s)| Op::Put(k, s)),
    ]
}

proptest! {
    #[test]
    fn lru_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut real: LruCache<u8, Vec<u8>> = LruCache::new(1000);
        let mut model = ModelLru { cap: 1000, entries: Vec::new() };
        for op in ops {
            match op {
                Op::Get(k) => {
                    let r = real.get(&k, 0).is_some();
                    let m = model.get(k);
                    prop_assert_eq!(r, m, "get({}) diverged", k);
                }
                Op::Put(k, s) => {
                    real.put(k, vec![0u8; s as usize], 0, None);
                    model.put(k, s);
                }
            }
            let model_used: u64 = model.entries.iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(real.used(), model_used);
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert!(real.used() <= 1000);
        }
    }

    #[test]
    fn ring_remaps_minimally_on_any_removal(
        partitions in proptest::collection::btree_set(0u32..32, 2..10),
        victim_idx in 0usize..10,
        keys in proptest::collection::vec("[a-z0-9]{1,16}", 50..150),
    ) {
        let parts: Vec<u32> = partitions.into_iter().collect();
        let victim = parts[victim_idx % parts.len()];
        let mut ring = HashRing::with_vnodes(32);
        for &p in &parts {
            ring.add(p);
        }
        let before: Vec<u32> = keys.iter().map(|k| *ring.lookup(fnv1a(k.as_bytes())).unwrap()).collect();
        ring.remove(&victim);
        for (key, &owner_before) in keys.iter().zip(&before) {
            let after = *ring.lookup(fnv1a(key.as_bytes())).unwrap();
            if owner_before != victim {
                prop_assert_eq!(after, owner_before, "non-victim keys must not move");
            } else {
                prop_assert_ne!(after, victim);
            }
        }
    }

    #[test]
    fn ring_lookup_is_total_and_stable(
        partitions in proptest::collection::btree_set(0u32..64, 1..12),
        hash in any::<u64>(),
    ) {
        let mut ring = HashRing::new();
        for &p in &partitions {
            ring.add(p);
        }
        let a = *ring.lookup(hash).unwrap();
        let b = *ring.lookup(hash).unwrap();
        prop_assert_eq!(a, b);
        prop_assert!(partitions.contains(&a));
    }

    #[test]
    fn cache_key_variants_always_colocate(url in "[ -~]{1,64}", variant in any::<u64>()) {
        let a = CacheKey::original(&url);
        let b = CacheKey::variant(&url, variant);
        prop_assert_eq!(a.placement_hash(), b.placement_hash());
    }
}
