//! Property tests for the cache structures: LRU behaviour is checked
//! against a naive reference model; the consistent-hash ring against its
//! minimal-remapping contract.

use sns_testkit::{gens, props, tk_assert, tk_assert_eq, tk_assert_ne, Gen};

use sns_cache::lru::LruCache;
use sns_cache::ring::HashRing;
use sns_cache::{fnv1a, CacheKey};

/// Naive reference model of a byte-capacity LRU.
struct ModelLru {
    cap: u64,
    /// (key, size), most recently used last.
    entries: Vec<(u8, u64)>,
}

impl ModelLru {
    fn get(&mut self, k: u8) -> bool {
        if let Some(i) = self.entries.iter().position(|&(key, _)| key == k) {
            let e = self.entries.remove(i);
            self.entries.push(e);
            true
        } else {
            false
        }
    }
    fn put(&mut self, k: u8, size: u64) {
        if size > self.cap {
            return;
        }
        self.entries.retain(|&(key, _)| key != k);
        let mut used: u64 = self.entries.iter().map(|&(_, s)| s).sum();
        while used + size > self.cap {
            let (_, s) = self.entries.remove(0);
            used -= s;
        }
        self.entries.push((k, size));
    }
}

#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Put(u8, u64),
}

fn op_gen() -> Gen<Op> {
    gens::one_of(vec![
        gens::u8_in(0..24).map(Op::Get),
        gens::u8_in(0..24).flat_map(|k| gens::u64_in(1..400).map(move |s| Op::Put(k, s))),
    ])
}

props! {
    fn lru_matches_reference_model(ops in gens::vec(op_gen(), 1..200)) {
        let mut real: LruCache<u8, Vec<u8>> = LruCache::new(1000);
        let mut model = ModelLru { cap: 1000, entries: Vec::new() };
        for op in ops {
            match op {
                Op::Get(k) => {
                    let r = real.get(&k, 0).is_some();
                    let m = model.get(k);
                    tk_assert_eq!(r, m, "get({}) diverged", k);
                }
                Op::Put(k, s) => {
                    real.put(k, vec![0u8; s as usize], 0, None);
                    model.put(k, s);
                }
            }
            let model_used: u64 = model.entries.iter().map(|&(_, s)| s).sum();
            tk_assert_eq!(real.used(), model_used);
            tk_assert_eq!(real.len(), model.entries.len());
            tk_assert!(real.used() <= 1000);
        }
    }

    fn ring_remaps_minimally_on_any_removal(
        partitions in gens::btree_set(gens::u32_in(0..32), 2..10),
        victim_idx in gens::usize_in(0..10),
        keys in gens::vec(gens::string("[a-z0-9]{1,16}"), 50..150),
    ) {
        let parts: Vec<u32> = partitions.into_iter().collect();
        let victim = parts[victim_idx % parts.len()];
        let mut ring = HashRing::with_vnodes(32);
        for &p in &parts {
            ring.add(p);
        }
        let before: Vec<u32> = keys
            .iter()
            .map(|k| *ring.lookup(fnv1a(k.as_bytes())).unwrap())
            .collect();
        ring.remove(&victim);
        for (key, &owner_before) in keys.iter().zip(&before) {
            let after = *ring.lookup(fnv1a(key.as_bytes())).unwrap();
            if owner_before != victim {
                tk_assert_eq!(after, owner_before, "non-victim keys must not move");
            } else {
                tk_assert_ne!(after, victim);
            }
        }
    }

    fn ring_lookup_is_total_and_stable(
        partitions in gens::btree_set(gens::u32_in(0..64), 1..12),
        hash in gens::any_u64(),
    ) {
        let mut ring = HashRing::new();
        for &p in &partitions {
            ring.add(p);
        }
        let a = *ring.lookup(hash).unwrap();
        let b = *ring.lookup(hash).unwrap();
        tk_assert_eq!(a, b);
        tk_assert!(partitions.contains(&a));
    }

    fn cache_key_variants_always_colocate(
        url in gens::string("[ -~]{1,64}"),
        variant in gens::any_u64(),
    ) {
        let a = CacheKey::original(&url);
        let b = CacheKey::variant(&url, variant);
        tk_assert_eq!(a.placement_hash(), b.placement_hash());
    }
}
