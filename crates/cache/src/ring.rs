//! Consistent-hash ring for the virtual cache.
//!
//! §3.1.5: "the manager stub can manage a number of separate cache nodes
//! as a single virtual cache, hashing the key space across the separate
//! caches and automatically re-hashing when cache nodes are added or
//! removed." A consistent-hash ring with virtual points per partition
//! keeps that re-hash *minimal*: adding or removing one of `n` partitions
//! moves only ~1/n of the key space.

use std::collections::BTreeMap;

use crate::fnv1a;

/// Default virtual points per partition (trade-off between balance and
/// ring size).
pub const DEFAULT_VNODES: u32 = 64;

/// A consistent-hash ring mapping 64-bit key hashes to partition ids.
#[derive(Debug, Clone)]
pub struct HashRing<P> {
    /// Ring position → partition. BTreeMap gives ordered successor lookup.
    points: BTreeMap<u64, P>,
    vnodes: u32,
}

impl<P: Clone + Ord + std::fmt::Debug> HashRing<P> {
    /// Creates an empty ring with the default virtual-node count.
    pub fn new() -> Self {
        Self::with_vnodes(DEFAULT_VNODES)
    }

    /// Creates an empty ring with `vnodes` virtual points per partition.
    pub fn with_vnodes(vnodes: u32) -> Self {
        assert!(vnodes > 0);
        HashRing {
            points: BTreeMap::new(),
            vnodes,
        }
    }

    fn point(&self, partition: &P, replica: u32) -> u64 {
        // FNV avalanches poorly on short labels; finish with a 64-bit
        // mixer (MurmurHash3 finaliser) so virtual points spread evenly.
        let label = format!("{partition:?}#{replica}");
        let mut z = fnv1a(label.as_bytes());
        z ^= z >> 33;
        z = z.wrapping_mul(0xff51afd7ed558ccd);
        z ^= z >> 33;
        z = z.wrapping_mul(0xc4ceb9fe1a85ec53);
        z ^= z >> 33;
        z
    }

    /// Adds a partition's virtual points to the ring.
    pub fn add(&mut self, partition: P) {
        for r in 0..self.vnodes {
            let h = self.point(&partition, r);
            self.points.insert(h, partition.clone());
        }
    }

    /// Removes a partition from the ring.
    pub fn remove(&mut self, partition: &P) {
        self.points.retain(|_, p| p != partition);
    }

    /// Number of distinct partitions on the ring.
    pub fn partitions(&self) -> usize {
        let mut set: Vec<&P> = self.points.values().collect();
        set.sort();
        set.dedup();
        set.len()
    }

    /// Whether the ring has no partitions.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maps a key hash to its owning partition (clockwise successor).
    pub fn lookup(&self, key_hash: u64) -> Option<&P> {
        if self.points.is_empty() {
            return None;
        }
        self.points
            .range(key_hash..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, p)| p)
    }

    /// Maps a key hash to up to `n` distinct partitions (successor walk);
    /// used for sibling replication.
    pub fn lookup_n(&self, key_hash: u64, n: usize) -> Vec<P> {
        let mut out: Vec<P> = Vec::with_capacity(n);
        if self.points.is_empty() || n == 0 {
            return out;
        }
        for (_, p) in self.points.range(key_hash..).chain(self.points.iter()) {
            if !out.contains(p) {
                out.push(p.clone());
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }
}

impl<P: Clone + Ord + std::fmt::Debug> Default for HashRing<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyspace() -> Vec<u64> {
        (0..20_000u64)
            .map(|i| fnv1a(format!("http://host/{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn lookup_empty_is_none() {
        let ring: HashRing<u32> = HashRing::new();
        assert!(ring.lookup(42).is_none());
    }

    #[test]
    fn all_keys_map_to_some_partition() {
        let mut ring = HashRing::new();
        for p in 0..4u32 {
            ring.add(p);
        }
        for k in keyspace() {
            assert!(ring.lookup(k).is_some());
        }
    }

    #[test]
    fn balance_is_reasonable() {
        let mut ring = HashRing::with_vnodes(128);
        for p in 0..4u32 {
            ring.add(p);
        }
        let mut counts = [0usize; 4];
        for k in keyspace() {
            counts[*ring.lookup(k).unwrap() as usize] += 1;
        }
        let total: usize = counts.iter().sum();
        for c in counts {
            let share = c as f64 / total as f64;
            assert!(
                (share - 0.25).abs() < 0.10,
                "partition share {share} too far from 1/4: {counts:?}"
            );
        }
    }

    #[test]
    fn removal_moves_minimal_keys() {
        let mut ring = HashRing::with_vnodes(128);
        for p in 0..5u32 {
            ring.add(p);
        }
        let keys = keyspace();
        let before: Vec<u32> = keys.iter().map(|&k| *ring.lookup(k).unwrap()).collect();
        ring.remove(&2);
        let mut moved = 0;
        for (i, &k) in keys.iter().enumerate() {
            let after = *ring.lookup(k).unwrap();
            if before[i] != 2 {
                assert_eq!(
                    before[i], after,
                    "keys on surviving partitions must not move"
                );
            } else {
                assert_ne!(after, 2);
                moved += 1;
            }
        }
        // ~1/5 of keys lived on partition 2.
        let share = moved as f64 / keys.len() as f64;
        assert!((share - 0.2).abs() < 0.08, "moved share {share}");
    }

    #[test]
    fn addition_moves_only_to_new_partition() {
        let mut ring = HashRing::with_vnodes(128);
        for p in 0..4u32 {
            ring.add(p);
        }
        let keys = keyspace();
        let before: Vec<u32> = keys.iter().map(|&k| *ring.lookup(k).unwrap()).collect();
        ring.add(4);
        for (i, &k) in keys.iter().enumerate() {
            let after = *ring.lookup(k).unwrap();
            assert!(
                after == before[i] || after == 4,
                "keys may only move to the new partition"
            );
        }
    }

    #[test]
    fn lookup_n_distinct() {
        let mut ring = HashRing::new();
        for p in 0..3u32 {
            ring.add(p);
        }
        let sibs = ring.lookup_n(12345, 3);
        assert_eq!(sibs.len(), 3);
        let mut s = sibs.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), 3);
        // Asking for more than exist returns all of them.
        assert_eq!(ring.lookup_n(12345, 10).len(), 3);
    }
}
