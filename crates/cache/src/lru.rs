//! Byte-capacity LRU object store with TTL expiry — the storage engine of
//! one cache partition.
//!
//! Uses an ordered recency index (monotonic sequence numbers in a
//! `BTreeMap`) rather than an intrusive list: O(log n) operations, no
//! unsafe code, deterministic iteration.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::hash::Hash;
use std::time::Duration;

/// Objects stored in an [`LruCache`] report their size for byte-capacity
/// accounting.
pub trait Weighted {
    /// Size in bytes this value occupies.
    fn weight(&self) -> u64;
}

impl Weighted for Vec<u8> {
    fn weight(&self) -> u64 {
        self.len() as u64
    }
}

impl Weighted for String {
    fn weight(&self) -> u64 {
        self.len() as u64
    }
}

impl Weighted for u64 {
    fn weight(&self) -> u64 {
        8
    }
}

struct Entry<V> {
    value: V,
    size: u64,
    seq: u64,
    /// Absolute expiry in nanoseconds-of-simulation (or any monotonic
    /// clock the caller uses); `u64::MAX` = never.
    expires_at_ns: u64,
}

/// Hit/miss/eviction counters for one cache store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped because their TTL lapsed.
    pub expirations: u64,
}

impl LruStats {
    /// Hit ratio in `[0, 1]` (0 if no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A least-recently-used object cache bounded by total bytes.
///
/// # Examples
///
/// ```
/// use sns_cache::lru::LruCache;
///
/// let mut c: LruCache<&str, Vec<u8>> = LruCache::new(100);
/// c.put("a", vec![0u8; 60], 0, None);
/// c.put("b", vec![0u8; 60], 0, None); // evicts "a": 120 > 100
/// assert!(c.get(&"a", 0).is_none());
/// assert!(c.get(&"b", 0).is_some());
/// ```
pub struct LruCache<K, V> {
    capacity: u64,
    used: u64,
    seq: u64,
    map: HashMap<K, Entry<V>>,
    /// Recency index: seq → key. Smallest seq = least recently used.
    order: BTreeMap<u64, K>,
    stats: LruStats,
}

impl<K: Eq + Hash + Clone + Ord, V: Weighted> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            seq: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            stats: LruStats::default(),
        }
    }

    /// Total byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LruStats {
        self.stats
    }

    fn touch(&mut self, key: &K) {
        if let Some(e) = self.map.get_mut(key) {
            self.order.remove(&e.seq);
            self.seq += 1;
            e.seq = self.seq;
            self.order.insert(self.seq, key.clone());
        }
    }

    /// Looks up `key` at time `now_ns`; refreshes recency on hit. Expired
    /// entries are removed and count as misses.
    pub fn get(&mut self, key: &K, now_ns: u64) -> Option<&V> {
        let expired = match self.map.get(key) {
            None => {
                self.stats.misses += 1;
                return None;
            }
            Some(e) => e.expires_at_ns <= now_ns,
        };
        if expired {
            self.remove(key);
            self.stats.expirations += 1;
            self.stats.misses += 1;
            return None;
        }
        self.stats.hits += 1;
        self.touch(key);
        self.map.get(key).map(|e| &e.value)
    }

    /// Checks for a live entry without counting a lookup or refreshing
    /// recency.
    pub fn peek(&self, key: &K, now_ns: u64) -> Option<&V> {
        self.map
            .get(key)
            .filter(|e| e.expires_at_ns > now_ns)
            .map(|e| &e.value)
    }

    /// Inserts (or replaces) an object, evicting LRU entries as needed.
    /// Objects larger than the whole capacity are not cached. `ttl = None`
    /// means the entry never expires.
    pub fn put(&mut self, key: K, value: V, now_ns: u64, ttl: Option<Duration>) {
        let size = value.weight();
        if size > self.capacity {
            return;
        }
        self.remove(&key);
        while self.used + size > self.capacity {
            let Some((&oldest_seq, _)) = self.order.iter().next() else {
                break;
            };
            let victim = self.order[&oldest_seq].clone();
            self.remove(&victim);
            self.stats.evictions += 1;
        }
        self.seq += 1;
        let expires_at_ns = match ttl {
            None => u64::MAX,
            Some(d) => now_ns.saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
        };
        self.order.insert(self.seq, key.clone());
        self.map.insert(
            key,
            Entry {
                value,
                size,
                seq: self.seq,
                expires_at_ns,
            },
        );
        self.used += size;
    }

    /// Removes an entry; returns its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let e = self.map.remove(key)?;
        self.order.remove(&e.seq);
        self.used -= e.size;
        Some(e.value)
    }

    /// Discards everything (BASE: throwing the cache away is always safe).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.used = 0;
    }

    /// Iterates keys from least to most recently used.
    pub fn keys_lru_order(&self) -> impl Iterator<Item = &K> {
        self.order.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_put_get() {
        let mut c: LruCache<String, Vec<u8>> = LruCache::new(1000);
        c.put("k".into(), vec![1, 2, 3], 0, None);
        assert_eq!(c.get(&"k".to_string(), 0), Some(&vec![1, 2, 3]));
        assert_eq!(c.used(), 3);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn eviction_is_lru() {
        let mut c: LruCache<&str, Vec<u8>> = LruCache::new(100);
        c.put("a", vec![0; 40], 0, None);
        c.put("b", vec![0; 40], 0, None);
        // Touch "a" so "b" becomes LRU.
        assert!(c.get(&"a", 0).is_some());
        c.put("c", vec![0; 40], 0, None);
        assert!(c.get(&"b", 0).is_none(), "b was LRU and must be evicted");
        assert!(c.get(&"a", 0).is_some());
        assert!(c.get(&"c", 0).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_objects_are_not_cached() {
        let mut c: LruCache<&str, Vec<u8>> = LruCache::new(10);
        c.put("big", vec![0; 11], 0, None);
        assert!(c.get(&"big", 0).is_none());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn replace_updates_size() {
        let mut c: LruCache<&str, Vec<u8>> = LruCache::new(100);
        c.put("k", vec![0; 60], 0, None);
        c.put("k", vec![0; 10], 0, None);
        assert_eq!(c.used(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ttl_expiry() {
        let mut c: LruCache<&str, Vec<u8>> = LruCache::new(100);
        c.put("k", vec![0; 10], 0, Some(Duration::from_secs(1)));
        assert!(c.get(&"k", 999_999_999).is_some());
        assert!(
            c.get(&"k", 1_000_000_000).is_none(),
            "expired at exactly ttl"
        );
        assert_eq!(c.stats().expirations, 1);
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn peek_does_not_touch() {
        let mut c: LruCache<&str, Vec<u8>> = LruCache::new(80);
        c.put("a", vec![0; 40], 0, None);
        c.put("b", vec![0; 40], 0, None);
        let _ = c.peek(&"a", 0); // must NOT refresh recency
        c.put("c", vec![0; 40], 0, None);
        assert!(c.peek(&"a", 0).is_none(), "a stayed LRU and was evicted");
    }

    #[test]
    fn clear_resets() {
        let mut c: LruCache<&str, Vec<u8>> = LruCache::new(100);
        c.put("a", vec![0; 10], 0, None);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
        assert!(c.get(&"a", 0).is_none());
    }

    #[test]
    fn lru_order_iteration() {
        let mut c: LruCache<&str, u64> = LruCache::new(1000);
        c.put("a", 1, 0, None);
        c.put("b", 2, 0, None);
        c.put("c", 3, 0, None);
        let _ = c.get(&"a", 0);
        let order: Vec<&&str> = c.keys_lru_order().collect();
        assert_eq!(order, vec![&"b", &"c", &"a"]);
    }
}
