//! # sns-cache — Harvest-like object caching for the SNS architecture
//!
//! The paper runs Harvest object caches on dedicated nodes (§3.1.5) and
//! has the manager stub treat a set of cache nodes as a **single virtual
//! cache**, hashing the key space across partitions and re-hashing when
//! nodes are added or removed. This crate provides:
//!
//! * [`lru::LruCache`] — a byte-capacity LRU object store with TTLs, the
//!   per-partition storage engine;
//! * [`ring::HashRing`] — the consistent-hash ring the virtual cache uses
//!   so that partition changes move a minimal fraction of keys;
//! * [`vcache::VirtualCache`] — the partition directory (key → partition);
//! * [`simulator`] — a trace-driven hit-rate simulator reproducing the
//!   §4.4 cache-size / user-population study;
//! * [`timing::CacheTiming`] — the §4.4 service-time model (27 ms mean
//!   hit, of which 15 ms is TCP connection overhead; heavy-tailed miss
//!   penalty of 100 ms – 100 s).
//!
//! Everything cached is **BASE data** (§3.1.5): "all cached data can be
//! thrown away at the cost of performance". There is deliberately no
//! persistence and no coherence protocol; distilled variants are
//! regenerable by computation.

#![warn(missing_docs)]

pub mod lru;
pub mod ring;
pub mod simulator;
pub mod timing;
pub mod vcache;

pub use lru::{LruCache, Weighted};
pub use ring::HashRing;
pub use simulator::{CacheSim, CacheSimReport};
pub use timing::CacheTiming;
pub use vcache::VirtualCache;

/// A cache key: the object URL plus a variant discriminator.
///
/// Variant 0 is the original object; non-zero variants identify
/// post-transformation representations (hash of the distillation
/// parameters), letting TranSend cache original, intermediate and
/// distilled content side by side (§2.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Source object identifier (URL).
    pub url: String,
    /// Transformation-variant discriminator (0 = original).
    pub variant: u64,
}

impl CacheKey {
    /// Key for an original (untransformed) object.
    pub fn original(url: impl Into<String>) -> Self {
        CacheKey {
            url: url.into(),
            variant: 0,
        }
    }

    /// Key for a transformed variant of an object.
    pub fn variant(url: impl Into<String>, variant: u64) -> Self {
        CacheKey {
            url: url.into(),
            variant,
        }
    }

    /// Stable 64-bit hash used for partition placement. Only the URL is
    /// hashed so all variants of an object live on the same partition
    /// (locality for "reload gets the distilled version", §3.1.8).
    pub fn placement_hash(&self) -> u64 {
        fnv1a(self.url.as_bytes())
    }
}

/// FNV-1a 64-bit hash; stable across platforms and releases (placement
/// must not change under rustc upgrades, unlike `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_share_placement() {
        let a = CacheKey::original("http://x/y.gif");
        let b = CacheKey::variant("http://x/y.gif", 42);
        assert_eq!(a.placement_hash(), b.placement_hash());
        assert_ne!(a, b);
    }

    #[test]
    fn fnv_is_stable() {
        // Golden value: placement must never change between releases.
        assert_eq!(fnv1a(b"hello"), 0xa430d84680aabd0b);
    }
}
