//! The single **virtual cache** over many partitions (§3.1.5).
//!
//! Front ends (through the manager stub) see one logical cache; this
//! directory maps each key to the partition that owns it, supports sibling
//! lookups, and re-hashes minimally as partitions come and go (e.g. when
//! the manager restarts a crashed cache worker on a different node).

use crate::ring::HashRing;
use crate::CacheKey;

/// Directory of cache partitions behind a single logical cache.
#[derive(Debug, Clone)]
pub struct VirtualCache<P> {
    ring: HashRing<P>,
    members: Vec<P>,
}

impl<P: Clone + Ord + std::fmt::Debug> VirtualCache<P> {
    /// Creates an empty virtual cache.
    pub fn new() -> Self {
        VirtualCache {
            ring: HashRing::new(),
            members: Vec::new(),
        }
    }

    /// Adds a partition (idempotent).
    pub fn add_partition(&mut self, p: P) {
        if !self.members.contains(&p) {
            self.ring.add(p.clone());
            self.members.push(p);
            self.members.sort();
        }
    }

    /// Removes a partition (idempotent). Keys it owned re-hash to the
    /// survivors; their cached contents are simply lost (BASE).
    pub fn remove_partition(&mut self, p: &P) {
        if let Some(i) = self.members.iter().position(|m| m == p) {
            self.members.remove(i);
            self.ring.remove(p);
        }
    }

    /// Current partition membership (sorted).
    pub fn partitions(&self) -> &[P] {
        &self.members
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no partitions are registered.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The partition owning `key`, if any partitions exist.
    pub fn route(&self, key: &CacheKey) -> Option<&P> {
        self.ring.lookup(key.placement_hash())
    }

    /// Up to `n` distinct partitions for `key` (owner first), for sibling
    /// fallback reads.
    pub fn route_n(&self, key: &CacheKey, n: usize) -> Vec<P> {
        self.ring.lookup_n(key.placement_hash(), n)
    }

    /// Fraction of a sampled key population whose owner changes if `p`
    /// were removed; used by tests and the monitor to predict re-hash
    /// impact.
    pub fn removal_impact(&self, p: &P, sample_urls: &[String]) -> f64 {
        if sample_urls.is_empty() {
            return 0.0;
        }
        let moved = sample_urls
            .iter()
            .filter(|u| self.route(&CacheKey::original(u.as_str())) == Some(p))
            .count();
        moved as f64 / sample_urls.len() as f64
    }
}

impl<P: Clone + Ord + std::fmt::Debug> Default for VirtualCache<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_stable_for_same_key() {
        let mut vc = VirtualCache::new();
        for p in 0..4u32 {
            vc.add_partition(p);
        }
        let k = CacheKey::original("http://a/b");
        assert_eq!(vc.route(&k), vc.route(&k));
    }

    #[test]
    fn add_remove_membership() {
        let mut vc = VirtualCache::new();
        vc.add_partition(1u32);
        vc.add_partition(1u32);
        assert_eq!(vc.len(), 1);
        vc.add_partition(2);
        assert_eq!(vc.partitions(), &[1, 2]);
        vc.remove_partition(&1);
        assert_eq!(vc.partitions(), &[2]);
        vc.remove_partition(&1);
        assert_eq!(vc.len(), 1);
    }

    #[test]
    fn empty_routes_none() {
        let vc: VirtualCache<u32> = VirtualCache::new();
        assert!(vc.route(&CacheKey::original("x")).is_none());
    }

    #[test]
    fn removal_impact_is_partition_share() {
        let mut vc = VirtualCache::new();
        for p in 0..4u32 {
            vc.add_partition(p);
        }
        let urls: Vec<String> = (0..4000).map(|i| format!("http://h/{i}")).collect();
        let total: f64 = (0..4u32).map(|p| vc.removal_impact(&p, &urls)).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares must sum to 1");
        for p in 0..4u32 {
            let share = vc.removal_impact(&p, &urls);
            assert!((share - 0.25).abs() < 0.12, "share {share} for {p}");
        }
    }

    #[test]
    fn variants_route_together() {
        let mut vc = VirtualCache::new();
        for p in 0..8u32 {
            vc.add_partition(p);
        }
        for i in 0..100 {
            let url = format!("http://h/{i}");
            let orig = vc.route(&CacheKey::original(&url)).copied();
            let var = vc.route(&CacheKey::variant(&url, 7)).copied();
            assert_eq!(orig, var);
        }
    }
}
