//! The §4.4 cache service-time model.
//!
//! Measured Harvest behaviour reported in the paper:
//!
//! * average cache **hit** takes 27 ms including network and OS overhead,
//!   of which ~15 ms is TCP connection setup/teardown (each cache request
//!   needs a fresh connection because the Harvest interface is HTTP);
//! * 95% of hits complete in under 100 ms (low variation);
//! * the **miss penalty** — fetching from the Internet — ranges from
//!   100 ms to 100 s and dominates end-to-end latency.

use std::time::Duration;

use sns_sim::rng::Pcg32;

/// Parameters of the cache timing model. All draws are deterministic given
/// the RNG stream.
#[derive(Debug, Clone)]
pub struct CacheTiming {
    /// Fixed TCP connection setup + teardown cost per request.
    pub tcp_overhead: Duration,
    /// Log-normal `mu` of the hit processing time (seconds).
    pub hit_mu: f64,
    /// Log-normal `sigma` of the hit processing time.
    pub hit_sigma: f64,
    /// Log-normal `mu` of the miss (origin fetch) time (seconds).
    pub miss_mu: f64,
    /// Log-normal `sigma` of the miss time.
    pub miss_sigma: f64,
    /// Miss penalty clamp range.
    pub miss_min: Duration,
    /// Upper clamp of the miss penalty.
    pub miss_max: Duration,
}

impl Default for CacheTiming {
    /// Calibrated to §4.4: mean hit ≈ 27 ms (15 ms TCP + ~12 ms
    /// processing), 95th-percentile hit < 100 ms, miss in [0.1 s, 100 s].
    fn default() -> Self {
        CacheTiming {
            tcp_overhead: Duration::from_millis(15),
            // exp(mu + sigma^2/2) = 12 ms with sigma = 1.0.
            hit_mu: (0.012f64).ln() - 0.5,
            hit_sigma: 1.0,
            // Median origin fetch ≈ 1 s, heavy tail.
            miss_mu: 0.0,
            miss_sigma: 1.3,
            miss_min: Duration::from_millis(100),
            miss_max: Duration::from_secs(100),
        }
    }
}

impl CacheTiming {
    /// Service time for a cache hit.
    pub fn hit_time(&self, rng: &mut Pcg32) -> Duration {
        let proc = rng.lognormal(self.hit_mu, self.hit_sigma);
        self.tcp_overhead + Duration::from_secs_f64(proc)
    }

    /// Service time for a miss: the Internet fetch penalty.
    pub fn miss_penalty(&self, rng: &mut Pcg32) -> Duration {
        let t = rng.lognormal(self.miss_mu, self.miss_sigma);
        Duration::from_secs_f64(t.clamp(self.miss_min.as_secs_f64(), self.miss_max.as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_times_match_section_4_4() {
        let timing = CacheTiming::default();
        let mut rng = Pcg32::new(44);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| timing.hit_time(&mut rng).as_secs_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = samples[(n as f64 * 0.95) as usize];
        // Paper: 27 ms average, 95% under 100 ms.
        assert!((mean - 0.027).abs() < 0.005, "mean hit {mean}s");
        assert!(p95 < 0.100, "95th percentile {p95}s");
    }

    #[test]
    fn miss_penalty_spans_paper_range() {
        let timing = CacheTiming::default();
        let mut rng = Pcg32::new(45);
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for _ in 0..100_000 {
            let t = timing.miss_penalty(&mut rng).as_secs_f64();
            assert!((0.1..=100.0).contains(&t));
            lo = lo.min(t);
            hi = hi.max(t);
        }
        // The tail actually exercises a wide range.
        assert!(lo < 0.15, "min {lo}");
        assert!(hi > 10.0, "max {hi}");
    }

    #[test]
    fn miss_dominates_hit() {
        let timing = CacheTiming::default();
        let mut rng = Pcg32::new(46);
        let avg = |f: &mut dyn FnMut(&mut Pcg32) -> Duration, rng: &mut Pcg32| {
            (0..10_000).map(|_| f(rng).as_secs_f64()).sum::<f64>() / 10_000.0
        };
        let hit = avg(&mut |r| timing.hit_time(r), &mut rng);
        let miss = avg(&mut |r| timing.miss_penalty(r), &mut rng);
        assert!(miss > 20.0 * hit, "miss {miss}s vs hit {hit}s");
    }
}
