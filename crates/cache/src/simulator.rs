//! Trace-driven cache hit-rate simulation (§4.4).
//!
//! The paper supplements the Harvest measurements with simulations of the
//! relationship between user-population size, cache size and hit rate
//! under LRU replacement, finding that (a) hit rate grows monotonically
//! with cache size but plateaus at a population-dependent level, and
//! (b) for a fixed cache size, larger populations raise the hit rate
//! (cross-user locality) until their combined working set exceeds the
//! cache. [`CacheSim`] replays a reference stream and reports exactly
//! those curves; the `cache_perf` bench bin sweeps both axes.

use crate::lru::LruCache;
use crate::CacheKey;

/// One simulated cache running LRU over a reference stream.
pub struct CacheSim {
    store: LruCache<CacheKey, Sized64>,
    bytes_from_cache: u64,
    bytes_from_origin: u64,
}

/// Result of a cache simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSimReport {
    /// Request hit rate in `[0,1]`.
    pub hit_rate: f64,
    /// Byte hit rate in `[0,1]` (bandwidth saved).
    pub byte_hit_rate: f64,
    /// Requests replayed.
    pub requests: u64,
    /// Bytes served from cache.
    pub bytes_from_cache: u64,
    /// Bytes fetched from origin.
    pub bytes_from_origin: u64,
}

/// A value wrapper so `u64` object sizes weigh their own value.
#[derive(Debug, Clone, Copy)]
struct Sized64(u64);

impl crate::lru::Weighted for Sized64 {
    fn weight(&self) -> u64 {
        self.0
    }
}

impl CacheSim {
    /// Creates a simulator with `capacity` bytes of cache.
    pub fn new(capacity: u64) -> Self {
        CacheSim {
            store: LruCache::new(capacity),
            bytes_from_cache: 0,
            bytes_from_origin: 0,
        }
    }

    /// Replays one reference; returns whether it hit.
    pub fn access(&mut self, url: &str, size: u64) -> bool {
        let key = CacheKey::original(url);
        if self.store.get(&key, 0).is_some() {
            self.bytes_from_cache += size;
            true
        } else {
            self.bytes_from_origin += size;
            self.store.put(key, Sized64(size), 0, None);
            false
        }
    }

    /// Report over everything replayed so far.
    pub fn report(&self) -> CacheSimReport {
        let s = self.store.stats();
        let total_bytes = self.bytes_from_cache + self.bytes_from_origin;
        CacheSimReport {
            hit_rate: s.hit_rate(),
            byte_hit_rate: if total_bytes == 0 {
                0.0
            } else {
                self.bytes_from_cache as f64 / total_bytes as f64
            },
            requests: s.hits + s.misses,
            bytes_from_cache: self.bytes_from_cache,
            bytes_from_origin: self.bytes_from_origin,
        }
    }
}

impl CacheSim {
    /// Bytes currently resident (tests verify eviction is by object size).
    pub fn used_bytes(&self) -> u64 {
        self.store.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_sim::rng::Pcg32;

    #[test]
    fn repeated_access_hits() {
        let mut sim = CacheSim::new(1 << 20);
        assert!(!sim.access("a", 1000));
        assert!(sim.access("a", 1000));
        assert!(sim.access("a", 1000));
        let r = sim.report();
        assert_eq!(r.requests, 3);
        assert!((r.hit_rate - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn hit_rate_monotone_in_cache_size() {
        // Zipf-ish reference stream over 2000 objects.
        let gen_stream = || {
            let mut rng = Pcg32::new(99);
            (0..30_000)
                .map(|_| {
                    let r = rng.f64();
                    let obj = ((2000.0f64).powf(r) - 1.0) as u64; // log-uniform popularity
                    (format!("u{obj}"), 5_000u64)
                })
                .collect::<Vec<_>>()
        };
        let mut last = -1.0;
        for cap_objs in [50u64, 200, 800, 2000] {
            let mut sim = CacheSim::new(cap_objs * 5_000);
            for (u, s) in gen_stream() {
                sim.access(&u, s);
            }
            let hr = sim.report().hit_rate;
            assert!(hr >= last, "hit rate must grow with capacity");
            last = hr;
        }
        assert!(last > 0.5, "full-capacity hit rate {last}");
    }

    #[test]
    fn plateau_when_working_set_fits() {
        // 100 objects of 1 KB; any capacity >= 100 KB gives the same rate.
        let run = |cap: u64| {
            let mut sim = CacheSim::new(cap);
            let mut rng = Pcg32::new(7);
            for _ in 0..20_000 {
                let o = rng.below(100);
                sim.access(&format!("o{o}"), 1000);
            }
            sim.report().hit_rate
        };
        let r1 = run(100 * 1000);
        let r2 = run(1000 * 1000);
        assert!((r1 - r2).abs() < 1e-9, "plateau: {r1} vs {r2}");
    }

    #[test]
    fn byte_accounting() {
        let mut sim = CacheSim::new(1 << 20);
        sim.access("a", 1000);
        sim.access("a", 1000);
        sim.access("b", 500);
        let r = sim.report();
        assert_eq!(r.bytes_from_origin, 1500);
        assert_eq!(r.bytes_from_cache, 1000);
        assert_eq!(sim.used_bytes(), 1500, "entries weigh their object size");
    }
}
