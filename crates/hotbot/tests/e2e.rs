//! End-to-end HotBot tests: fan-out/collation correctness, graceful
//! degradation on partition loss (the 54M→51M scenario), and recovery.

use std::time::Duration;

use sns_hotbot::HotBotBuilder;
use sns_sim::time::SimTime;

#[test]
fn queries_fan_out_and_answer_with_full_coverage() {
    let mut cluster = HotBotBuilder::new()
        .with_partitions(8)
        .with_corpus_docs(800)
        .with_frontends(1)
        .build();
    let report = cluster.attach_client(5.0, 50, Duration::from_secs(4));
    cluster.sim.run_until(SimTime::from_secs(40));
    let r = report.borrow();
    assert_eq!(r.sent, 50);
    assert_eq!(r.answered, 50);
    assert_eq!(r.errors, 0);
    assert_eq!(r.full_coverage, 50, "all partitions up ⇒ full coverage");
    assert!(r.results.mean() > 0.5, "queries mostly find documents");
}

#[test]
fn partition_loss_degrades_coverage_then_recovers() {
    let mut cluster = HotBotBuilder::new()
        .with_partitions(26)
        .with_corpus_docs(2600)
        .with_frontends(1)
        .with_auto_restart_partitions(true)
        .build();
    let report = cluster.attach_client(8.0, 400, Duration::from_secs(5));
    // Kill one partition's node mid-run (the paper's example: one of 26
    // nodes dies; the database drops from 54M to ~51M docs), then "fast
    // restart" it (§3.2: RAID keeps the data; restart minimises impact).
    let victim = cluster.partition_nodes[3];
    cluster
        .sim
        .at(SimTime::from_secs(15), move |sim| sim.kill_node(victim));
    cluster
        .sim
        .at(SimTime::from_secs(35), move |sim| sim.revive_node(victim));
    cluster.sim.run_until(SimTime::from_secs(90));

    let r = report.borrow();
    assert_eq!(r.answered, 400, "every query answered");
    assert_eq!(r.errors, 0, "partition loss never fails a query");
    assert!(
        r.partial_coverage > 0,
        "some queries saw the degraded window"
    );
    // Coverage during the outage ≈ 25/26 ≈ 96%, never catastrophic.
    assert!(
        r.min_coverage > 0.90,
        "losing 1 of 26 partitions costs ~4% coverage, saw {}",
        r.min_coverage
    );
    assert!(
        r.full_coverage > r.partial_coverage,
        "recovery restores full coverage for later queries"
    );
}

#[test]
fn incremental_delivery_pages_from_the_recent_search_cache() {
    use sns_core::msg::{ClientRequest, SnsMsg};
    use sns_core::payload_as;
    use sns_hotbot::logic::{QueryRequest, SearchPage};
    use sns_sim::engine::{Component, Ctx};
    use sns_sim::ComponentId;
    use std::sync::Arc;

    struct PagingClient {
        fe: ComponentId,
        sent_page2: bool,
    }
    impl Component<SnsMsg> for PagingClient {
        fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
            ctx.timer(Duration::from_secs(4), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _t: u64) {
            ctx.send(
                self.fe,
                SnsMsg::Request(Arc::new(ClientRequest {
                    id: 1,
                    user: "u".into(),
                    url: "hotbot://q".into(),
                    body: Some(Arc::new(QueryRequest {
                        query: "w0".into(),
                        page: 0,
                        page_size: 5,
                    })),
                })),
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _f: ComponentId, msg: SnsMsg) {
            let SnsMsg::Response(resp) = msg else { return };
            let Ok(p) = &resp.result else {
                ctx.stats().incr("page.errors", 1);
                return;
            };
            let page = payload_as::<SearchPage>(p).expect("search page");
            ctx.stats()
                .incr("page.results_total", page.hits.len() as u64);
            if !self.sent_page2 {
                self.sent_page2 = true;
                ctx.stats().incr("page.first_answered", 1);
                // "Next 5": the FE serves this from the recent-search
                // cache without re-running the fan-out.
                ctx.send(
                    self.fe,
                    SnsMsg::Request(Arc::new(ClientRequest {
                        id: 2,
                        user: "u".into(),
                        url: "hotbot://q".into(),
                        body: Some(Arc::new(QueryRequest {
                            query: "w0".into(),
                            page: 1,
                            page_size: 5,
                        })),
                    })),
                );
            } else {
                ctx.stats().incr("page.second_answered", 1);
            }
        }
    }

    let mut cluster = HotBotBuilder::new()
        .with_partitions(6)
        .with_corpus_docs(600)
        .with_frontends(1)
        .build();
    let fe = cluster.fes[0];
    let node = cluster.client_node;
    cluster.sim.spawn(
        node,
        Box::new(PagingClient {
            fe,
            sent_page2: false,
        }),
        "paging",
    );
    cluster.sim.run_until(SimTime::from_secs(30));
    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("page.errors"), 0);
    assert_eq!(stats.counter("page.first_answered"), 1);
    assert_eq!(stats.counter("page.second_answered"), 1);
    assert!(
        stats.counter("page.results_total") > 5,
        "page 2 had content"
    );
    assert_eq!(
        stats.counter("hb.qcache_hits"),
        1,
        "the second page came from the recent-search cache"
    );
    // Only one fan-out happened: 6 partitions answered exactly once each.
    assert_eq!(stats.counter("hb.queries"), 2);
}

#[test]
fn deterministic_replay() {
    let run = || {
        let mut cluster = HotBotBuilder::new()
            .with_partitions(6)
            .with_corpus_docs(600)
            .with_frontends(1)
            .build();
        let report = cluster.attach_client(5.0, 30, Duration::from_secs(4));
        cluster.sim.run_until(SimTime::from_secs(30));
        let r = report.borrow();
        (
            r.answered,
            r.latency.mean(),
            cluster.sim.events_dispatched(),
        )
    };
    assert_eq!(run(), run());
}
