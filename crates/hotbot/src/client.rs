//! A query client modelling HotBot's load: Zipf-distributed query
//! popularity over the synthetic vocabulary, constant or bursty rates.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use sns_core::msg::{ClientRequest, SnsMsg};
use sns_core::payload_as;
use sns_sim::engine::{Component, Ctx};
use sns_sim::rng::Pcg32;
use sns_sim::stats::Summary;
use sns_sim::time::SimTime;
use sns_sim::ComponentId;

use crate::logic::{QueryRequest, SearchPage};

/// What the query client measured.
#[derive(Debug, Default)]
pub struct QueryReport {
    /// Queries sent.
    pub sent: u64,
    /// Answers received.
    pub answered: u64,
    /// Answers with full coverage.
    pub full_coverage: u64,
    /// Answers with partial coverage (degraded).
    pub partial_coverage: u64,
    /// Errors.
    pub errors: u64,
    /// Minimum coverage observed.
    pub min_coverage: f64,
    /// Query latency summary (seconds).
    pub latency: Summary,
    /// Result-count summary.
    pub results: Summary,
}

/// Shared handle to the report.
pub type QueryReportHandle = Rc<RefCell<QueryReport>>;

/// The client component.
pub struct HotBotClient {
    fes: Vec<ComponentId>,
    rate: f64,
    n: u64,
    start_delay: Duration,
    sent: u64,
    next_fe: usize,
    rng: Pcg32,
    vocab: usize,
    outstanding: std::collections::BTreeMap<u64, SimTime>,
    report: QueryReportHandle,
}

impl HotBotClient {
    const SEND: u64 = 1;

    /// Creates a client issuing `n` queries at `rate`/s after a warm-up.
    pub fn new(
        fes: Vec<ComponentId>,
        rate: f64,
        n: u64,
        vocab: usize,
        seed: u64,
        start_delay: Duration,
    ) -> (Self, QueryReportHandle) {
        assert!(!fes.is_empty() && rate > 0.0);
        let report: QueryReportHandle = Rc::new(RefCell::new(QueryReport {
            min_coverage: 1.0,
            latency: Summary::with_capacity(8192),
            results: Summary::with_capacity(8192),
            ..Default::default()
        }));
        (
            HotBotClient {
                fes,
                rate,
                n,
                start_delay,
                sent: 0,
                next_fe: 0,
                rng: Pcg32::new(seed ^ 0x4077b07),
                vocab,
                outstanding: std::collections::BTreeMap::new(),
                report: Rc::clone(&report),
            },
            report,
        )
    }

    /// Zipf-flavoured query: 1-3 terms biased toward common words.
    fn make_query(&mut self) -> String {
        let terms = 1 + self.rng.below(3);
        let mut parts = Vec::new();
        for _ in 0..terms {
            // Log-uniform rank: strong head bias like real query logs.
            let r = self.rng.f64();
            let rank = ((self.vocab as f64).powf(r) - 1.0) as usize;
            parts.push(format!("w{}", rank.min(self.vocab - 1)));
        }
        parts.join(" ")
    }
}

impl Component<SnsMsg> for HotBotClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        ctx.timer(self.start_delay, Self::SEND);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _from: ComponentId, msg: SnsMsg) {
        let SnsMsg::Response(resp) = msg else {
            return;
        };
        let Some(sent_at) = self.outstanding.remove(&resp.id) else {
            return;
        };
        let latency = ctx.now().since(sent_at).as_secs_f64();
        ctx.stats().observe("hb.client_latency_s", latency);
        let mut r = self.report.borrow_mut();
        r.answered += 1;
        r.latency.record(latency);
        match &resp.result {
            Ok(payload) => {
                if let Some(page) = payload_as::<SearchPage>(payload) {
                    r.results.record(page.hits.len() as f64);
                    if page.coverage >= 1.0 - 1e-9 {
                        r.full_coverage += 1;
                    } else {
                        r.partial_coverage += 1;
                    }
                    if page.coverage < r.min_coverage {
                        r.min_coverage = page.coverage;
                    }
                }
            }
            Err(_) => r.errors += 1,
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        if token != Self::SEND || self.sent >= self.n {
            return;
        }
        self.sent += 1;
        let id = self.sent;
        let fe = self.fes[self.next_fe % self.fes.len()];
        self.next_fe += 1;
        let query = self.make_query();
        self.outstanding.insert(id, ctx.now());
        self.report.borrow_mut().sent += 1;
        ctx.send(
            fe,
            SnsMsg::Request(Arc::new(ClientRequest {
                id,
                user: format!("q{}", id % 100),
                url: format!("hotbot://search?q={query}"),
                body: Some(Arc::new(QueryRequest {
                    query,
                    page: 0,
                    page_size: 10,
                })),
            })),
        );
        let gap = self.rng.exp(1.0 / self.rate);
        ctx.timer(Duration::from_secs_f64(gap), Self::SEND);
    }

    fn kind(&self) -> &'static str {
        "client"
    }
}
