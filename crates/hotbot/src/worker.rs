//! One search partition as an SNS worker.
//!
//! The partition's inverted index is immutable, shared read-only data
//! (the paper's "static partitioning of read-only data"): the factory
//! holds an `Arc` to it, so a restarted worker re-attaches to the same
//! index — modelling the original Inktomi cross-mounted databases /
//! RAID-backed local storage (§3.2).

use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

use sns_core::msg::Job;
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{AppData, Payload, WorkerClass};
use sns_search::index::{InvertedIndex, SearchHit};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;

/// A query dispatched to one partition.
#[derive(Debug, Clone)]
pub struct PartitionQuery {
    /// Query text.
    pub query: String,
    /// Per-partition top-k to return.
    pub k: usize,
}

impl AppData for PartitionQuery {
    fn wire_size(&self) -> u64 {
        self.query.len() as u64 + 16
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// One partition's answer.
#[derive(Debug, Clone)]
pub struct PartitionResults {
    /// Partition index.
    pub partition: usize,
    /// Local top-k hits.
    pub hits: Vec<SearchHit>,
    /// Documents searchable on this partition.
    pub docs: u64,
}

impl AppData for PartitionResults {
    fn wire_size(&self) -> u64 {
        self.hits.len() as u64 * 16 + 24
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The partition worker logic.
pub struct SearchWorker {
    partition: usize,
    index: Arc<InvertedIndex>,
}

impl SearchWorker {
    /// Creates a worker serving `partition` from a shared index.
    pub fn new(partition: usize, index: Arc<InvertedIndex>) -> Self {
        SearchWorker { partition, index }
    }
}

impl WorkerLogic for SearchWorker {
    fn class(&self) -> WorkerClass {
        WorkerClass::new(crate::partition_class(self.partition))
    }

    fn service_time(&mut self, job: &Job, _now: SimTime, rng: &mut Pcg32) -> Duration {
        let base = match sns_core::payload_as::<PartitionQuery>(&job.input) {
            Some(q) => self.index.query_cost_estimate(&q.query),
            None => 100e-6,
        };
        // Small multiplicative noise for OS-level variance.
        let noise = rng.lognormal(-0.02, 0.2);
        Duration::from_secs_f64(base * noise)
    }

    fn process(
        &mut self,
        job: &Job,
        _now: SimTime,
        _rng: &mut Pcg32,
    ) -> Result<Payload, WorkerError> {
        let Some(q) = sns_core::payload_as::<PartitionQuery>(&job.input) else {
            return Err(WorkerError::Failed("bad partition query".into()));
        };
        let hits = self.index.query(&q.query, q.k);
        Ok(Arc::new(PartitionResults {
            partition: self.partition,
            hits,
            docs: self.index.doc_count(),
        }))
    }

    /// Index scans are CPU-bound.
    fn cpu_bound(&self) -> bool {
        true
    }

    /// Multi-threaded search processes served several queries at once.
    fn concurrency(&self) -> u32 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_search::doc::CorpusGenerator;
    use sns_sim::ComponentId;

    fn worker() -> SearchWorker {
        let mut ix = InvertedIndex::new();
        for d in CorpusGenerator::with_defaults(3).generate(50) {
            ix.add(&d);
        }
        SearchWorker::new(2, Arc::new(ix))
    }

    #[test]
    fn answers_queries_with_partition_id() {
        let mut w = worker();
        let mut rng = Pcg32::new(1);
        let job = Job {
            id: 1,
            class: w.class(),
            op: "query".into(),
            input: Arc::new(PartitionQuery {
                query: "w0 w1".into(),
                k: 5,
            }),
            profile: None,
            reply_to: ComponentId(1),
            sampled: true,
        };
        let out = w.process(&job, SimTime::ZERO, &mut rng).unwrap();
        let r = sns_core::payload_as::<PartitionResults>(&out).unwrap();
        assert_eq!(r.partition, 2);
        assert!(!r.hits.is_empty());
        assert!(r.hits.len() <= 5);
        assert_eq!(r.docs, 50);
    }

    #[test]
    fn class_names_partition() {
        let w = worker();
        assert_eq!(w.class().name(), "search/p2");
    }

    #[test]
    fn common_terms_cost_more() {
        let mut w = worker();
        let mut rng = Pcg32::new(1);
        let mk = |q: &str| Job {
            id: 1,
            class: WorkerClass::new("search/p2"),
            op: "query".into(),
            input: Arc::new(PartitionQuery {
                query: q.into(),
                k: 5,
            }),
            profile: None,
            reply_to: ComponentId(1),
            sampled: true,
        };
        let avg = |w: &mut SearchWorker, j: &Job, rng: &mut Pcg32| -> Duration {
            (0..200)
                .map(|_| w.service_time(j, SimTime::ZERO, rng))
                .sum::<Duration>()
                / 200
        };
        let common = avg(&mut w, &mk("w0"), &mut rng);
        let rare = avg(&mut w, &mk("w19999"), &mut rng);
        assert!(common > rare);
    }
}
