//! HotBot's front-end logic: all-partitions fan-out, collation, dynamic
//! HTML generation, the recent-search cache, and graceful degradation.
//!
//! §3.2: "every query goes to all workers in parallel"; partitions that
//! are down or time out simply reduce *coverage* — the query still
//! succeeds with the surviving partitions' documents (BASE approximate
//! answers: "it is acceptable to lose part of the database temporarily").

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use sns_core::frontend::{Action, FeEvent, ReqState, SvcView};
use sns_core::msg::JobResult;
use sns_core::{payload_as, AppData, ServiceLogic, WorkerClass};
use sns_search::index::SearchHit;
use sns_search::qcache::QueryCache;
use sns_tacc::content::ContentObject;
use sns_workload::MimeType;

use crate::worker::{PartitionQuery, PartitionResults};

/// A search request from a client.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Query text.
    pub query: String,
    /// Zero-based result page (incremental delivery).
    pub page: usize,
    /// Results per page.
    pub page_size: usize,
}

impl AppData for QueryRequest {
    fn wire_size(&self) -> u64 {
        self.query.len() as u64 + 24
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The structured reply (also rendered as HTML in the content object).
#[derive(Debug, Clone)]
pub struct SearchPage {
    /// The page of hits.
    pub hits: Vec<SearchHit>,
    /// Fraction of the corpus searched, `[0,1]`.
    pub coverage: f64,
    /// Partitions that answered.
    pub partitions_answered: usize,
    /// Partitions that failed/timed out.
    pub partitions_missing: usize,
    /// The rendered result page.
    pub html: ContentObject,
}

impl AppData for SearchPage {
    fn wire_size(&self) -> u64 {
        self.html.wire_size()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

const TAG_PART0: u64 = 32;
const TAG_RENDER: u64 = 2;

struct QState {
    query: QueryRequest,
    expected: usize,
    answered: BTreeMap<usize, PartitionResults>,
    missing: usize,
    total_docs_known: u64,
    rendered: Option<SearchPage>,
}

/// The HotBot service logic.
pub struct HotBotLogic {
    /// Number of index partitions (fan-out width).
    partitions: usize,
    /// Expected docs per partition (coverage accounting when some are
    /// down; refreshed from answers).
    docs_per_partition: Vec<u64>,
    /// Integrated cache of recent searches (Table 1).
    qcache: QueryCache,
    /// Per-result render cost (dynamic HTML via Tcl macros, §3.2).
    render_cost_per_hit: Duration,
}

impl HotBotLogic {
    /// Creates the logic for an `n`-partition corpus.
    pub fn new(partitions: usize) -> Self {
        HotBotLogic {
            partitions,
            docs_per_partition: vec![0; partitions],
            qcache: QueryCache::new(512),
            render_cost_per_hit: Duration::from_micros(200),
        }
    }

    fn render(query: &str, hits: &[SearchHit], coverage: f64) -> ContentObject {
        use std::fmt::Write as _;
        let mut html =
            format!("<html><head><title>HotBot: {query}</title></head><body><h1>{query}</h1>\n");
        if coverage < 1.0 {
            let _ = writeln!(
                html,
                "<p><i>Results from {:.0}% of the index (partial database availability).</i></p>",
                coverage * 100.0
            );
        }
        html.push_str("<ol>\n");
        for h in hits {
            let _ = writeln!(
                html,
                "<li><a href=\"http://doc/{}\">Document {}</a> (score {:.2})</li>",
                h.doc, h.doc, h.score
            );
        }
        html.push_str("</ol></body></html>\n");
        ContentObject::text(format!("hotbot://q={query}"), MimeType::Html, html)
    }

    fn finish(&mut self, st: &mut QState, view: &mut SvcView<'_, '_>, out: &mut Vec<Action>) {
        // Collate all partition top-k lists into the global ranking.
        let mut all: Vec<SearchHit> = Vec::new();
        let mut docs_searched = 0u64;
        for (p, r) in &st.answered {
            all.extend(r.hits.iter().cloned());
            docs_searched += r.docs;
            self.docs_per_partition[*p] = r.docs;
        }
        all.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then(a.doc.cmp(&b.doc))
        });
        let total_known: u64 = self.docs_per_partition.iter().sum();
        let coverage = if total_known == 0 {
            if st.missing == 0 {
                1.0
            } else {
                st.answered.len() as f64 / st.expected as f64
            }
        } else {
            docs_searched as f64 / total_known as f64
        };
        st.total_docs_known = total_known;
        view.stats().observe("hb.coverage", coverage);
        let now = view.now;
        view.stats().sample("hb.coverage_ts", now, coverage);
        if st.missing > 0 {
            view.stats().incr("hb.partial_answers", 1);
            out.push(Action::MarkDegraded);
        }
        // Cache the full collated list for incremental delivery.
        let full = all.clone();
        self.qcache.page(&st.query.query, 0, usize::MAX, || full);

        let page_hits: Vec<SearchHit> = all
            .iter()
            .skip(st.query.page * st.query.page_size)
            .take(st.query.page_size)
            .cloned()
            .collect();
        let html = Self::render(&st.query.query, &page_hits, coverage);
        let page = SearchPage {
            hits: page_hits,
            coverage,
            partitions_answered: st.answered.len(),
            partitions_missing: st.missing,
            html,
        };
        // Dynamic HTML generation burns front-end CPU (§3.2).
        let cost = self.render_cost_per_hit * (page.hits.len().max(1) as u32);
        st.rendered = Some(page);
        out.push(Action::Compute {
            tag: TAG_RENDER,
            cost,
        });
    }
}

impl ServiceLogic for HotBotLogic {
    fn on_request(
        &mut self,
        req: &mut ReqState,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        view.stats().incr("hb.queries", 1);
        let query = req
            .request
            .body
            .as_ref()
            .and_then(|b| payload_as::<QueryRequest>(b).cloned())
            .unwrap_or(QueryRequest {
                query: req.request.url.clone(),
                page: 0,
                page_size: 10,
            });

        // Incremental delivery: later pages come straight from the
        // recent-search cache when present.
        if query.page > 0 {
            let mut served = None;
            // Peek without recomputing: a miss falls through to fan-out.
            let q = query.query.clone();
            let mut missed = false;
            let hits = self.qcache.page(&q, query.page, query.page_size, || {
                missed = true;
                Vec::new()
            });
            if !missed {
                view.stats().incr("hb.qcache_hits", 1);
                let html = Self::render(&q, &hits, 1.0);
                served = Some(SearchPage {
                    hits,
                    coverage: 1.0,
                    partitions_answered: 0,
                    partitions_missing: 0,
                    html,
                });
            }
            if let Some(page) = served {
                out.push(Action::Reply(Ok(Arc::new(page))));
                return;
            }
        }

        // Fan out to every *live* partition in parallel (§3.2); a
        // partition with no live worker is immediately counted as
        // missing — the query proceeds with reduced coverage rather than
        // waiting for a node that may be down for minutes.
        let k = (query.page + 1) * query.page_size;
        let mut missing = 0;
        let mut dispatched = 0;
        for p in 0..self.partitions {
            let class = WorkerClass::new(crate::partition_class(p));
            if view.stub.workers_of(&class).is_empty() {
                missing += 1;
                view.stats().incr("hb.partition_misses", 1);
                continue;
            }
            dispatched += 1;
            out.push(Action::Dispatch {
                tag: TAG_PART0 + p as u64,
                class,
                op: "query".into(),
                input: Arc::new(PartitionQuery {
                    query: query.query.clone(),
                    k,
                }),
                profile: None,
            });
        }
        let mut st = QState {
            query,
            expected: self.partitions,
            answered: BTreeMap::new(),
            missing,
            total_docs_known: 0,
            rendered: None,
        };
        if dispatched == 0 {
            // Whole index unavailable: an (empty) approximate answer now
            // beats an error (§1.4).
            self.finish(&mut st, view, out);
        }
        req.data = Some(Box::new(st));
    }

    fn on_event(
        &mut self,
        req: &mut ReqState,
        ev: FeEvent<'_>,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        let Some(data) = req.data.take() else {
            return;
        };
        let Ok(mut st) = data.downcast::<QState>() else {
            return;
        };
        match ev {
            FeEvent::WorkerReply { tag, result } if tag >= TAG_PART0 => {
                match result {
                    JobResult::Ok(p) => {
                        if let Some(r) = payload_as::<PartitionResults>(p) {
                            st.answered.insert(r.partition, r.clone());
                        } else {
                            st.missing += 1;
                        }
                    }
                    JobResult::Failed(_) => st.missing += 1,
                }
                if st.answered.len() + st.missing == st.expected {
                    self.finish(&mut st, view, out);
                }
            }
            FeEvent::DispatchFailed { tag, .. } if tag >= TAG_PART0 => {
                // Partition down: degrade coverage, never the query.
                st.missing += 1;
                view.stats().incr("hb.partition_misses", 1);
                if st.answered.len() + st.missing == st.expected {
                    self.finish(&mut st, view, out);
                }
            }
            FeEvent::ComputeDone { tag } if tag == TAG_RENDER => {
                if let Some(page) = st.rendered.take() {
                    view.stats().incr("hb.answers", 1);
                    out.push(Action::Reply(Ok(Arc::new(page))));
                }
            }
            _ => {}
        }
        req.data = Some(st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_marks_partial_coverage() {
        let hits = vec![SearchHit { doc: 1, score: 2.0 }];
        let full = HotBotLogic::render("q", &hits, 1.0);
        let partial = HotBotLogic::render("q", &hits, 25.0 / 26.0);
        let text = |o: &ContentObject| match &o.body {
            sns_tacc::content::Body::Text(t) => t.clone(),
            _ => panic!("text"),
        };
        assert!(!text(&full).contains("partial database"));
        assert!(text(&partial).contains("96% of the index"));
    }
}
