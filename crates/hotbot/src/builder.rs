//! HotBot cluster assembly: synthetic corpus → static partitioning →
//! per-node pinned partition workers → front ends with fan-out logic →
//! primary/backup profile database (ads/profiles, §3.2).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use sns_core::frontend::FeConfig;
use sns_core::manager::{Manager, ManagerConfig, WorkerSpec};
use sns_core::monitor::Monitor;
use sns_core::msg::SnsMsg;
use sns_core::worker::{WorkerStub, WorkerStubConfig};
use sns_core::{ClusterTopology, FrontEnd, SnsConfig, WorkerClass};
use sns_san::{San, SanConfig};
use sns_search::doc::CorpusGenerator;
use sns_search::index::InvertedIndex;
use sns_sim::engine::{NodeSpec, Sim, SimConfig};
use sns_sim::sched::SchedulerKind;
use sns_sim::{ComponentId, GroupId, NodeId};

use crate::client::{HotBotClient, QueryReportHandle};
use crate::logic::HotBotLogic;
use crate::worker::SearchWorker;

/// Fluent HotBot cluster builder.
///
/// The physical shape is a shared [`ClusterTopology`]; HotBot reads its
/// `worker_nodes` as the index partition count (one dedicated node per
/// partition, §3.2). The `Default` preset is the paper's example: 26
/// partitions on Myrinet with two front ends.
///
/// ```no_run
/// use sns_hotbot::HotBotBuilder;
///
/// let cluster = HotBotBuilder::new()
///     .with_partitions(4)
///     .with_corpus_docs(400)
///     .build();
/// # let _ = cluster;
/// ```
pub struct HotBotBuilder {
    topology: ClusterTopology,
    sns: SnsConfig,
    corpus_docs: usize,
    vocab: usize,
    auto_restart_partitions: bool,
    scheduler: SchedulerKind,
    tracing: bool,
    trace_sample_rate: u32,
}

impl Default for HotBotBuilder {
    fn default() -> Self {
        HotBotBuilder {
            topology: ClusterTopology {
                seed: 0x4077,
                san: SanConfig::myrinet(),
                worker_nodes: 26,
                frontends: 2,
                cores_per_node: 2,
            },
            sns: SnsConfig::default(),
            corpus_docs: 5_200,
            vocab: 20_000,
            auto_restart_partitions: true,
            scheduler: SchedulerKind::default(),
            tracing: false,
            trace_sample_rate: 1,
        }
    }
}

impl HotBotBuilder {
    /// The §3.2 preset; same as `Default`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the whole physical shape at once. `worker_nodes` is
    /// read as the partition count.
    pub fn with_topology(mut self, topology: ClusterTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the engine seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.topology.seed = seed;
        self
    }

    /// Selects the engine's pending-event scheduler (both kinds dispatch
    /// in bit-identical order; see [`SchedulerKind`]).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the SAN model (HotBot ran Myrinet, §3.2).
    pub fn with_san(mut self, san: SanConfig) -> Self {
        self.topology.san = san;
        self
    }

    /// Sets the SNS-layer knobs.
    pub fn with_sns(mut self, sns: SnsConfig) -> Self {
        self.sns = sns;
        self
    }

    /// Sets the number of index partitions (one worker node each).
    pub fn with_partitions(mut self, n: usize) -> Self {
        self.topology.worker_nodes = n;
        self
    }

    /// Sets the synthetic corpus size in documents.
    pub fn with_corpus_docs(mut self, docs: usize) -> Self {
        self.corpus_docs = docs;
        self
    }

    /// Sets the vocabulary size of the corpus generator.
    pub fn with_vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self
    }

    /// Sets the number of front ends.
    pub fn with_frontends(mut self, n: usize) -> Self {
        self.topology.frontends = n;
        self
    }

    /// Enables/disables automatic restart of dead partition workers
    /// (disable to measure degradation windows).
    pub fn with_auto_restart_partitions(mut self, on: bool) -> Self {
        self.auto_restart_partitions = on;
        self
    }

    /// Enables end-to-end request tracing: every query, partition
    /// fan-out dispatch, queue wait and service stage is recorded as a
    /// span, exportable via [`HotBotCluster::trace`] — see
    /// `OBSERVABILITY.md`.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Sets the head-sampling rate used when tracing: keep roughly one
    /// query in `rate` (`<= 1` keeps all), decided from the topology
    /// seed (see `OBSERVABILITY.md`).
    pub fn with_trace_sampling(mut self, rate: u32) -> Self {
        self.trace_sample_rate = rate;
        self
    }
}

/// The built HotBot cluster.
pub struct HotBotCluster {
    /// The simulation.
    pub sim: Sim<SnsMsg, San>,
    /// Front ends.
    pub fes: Vec<ComponentId>,
    /// The manager.
    pub manager: ComponentId,
    /// Beacon group.
    pub beacon: GroupId,
    /// Monitor group.
    pub monitor_group: GroupId,
    /// Node hosting partition `i`.
    pub partition_nodes: Vec<NodeId>,
    /// Client node.
    pub client_node: NodeId,
    /// Documents per partition (ground truth).
    pub docs_per_partition: Vec<u64>,
    /// Vocabulary size (for query generation).
    pub vocab: usize,
}

impl HotBotBuilder {
    /// Builds the cluster.
    pub fn build(self) -> HotBotCluster {
        let topo = &self.topology;
        let partitions = topo.worker_nodes;
        // Generate and statically partition the corpus (random doc →
        // partition placement, §3.2).
        let mut gen = CorpusGenerator::new(topo.seed ^ 0xc0de, self.vocab, 120, 1.0);
        let mut indexes: Vec<InvertedIndex> =
            (0..partitions).map(|_| InvertedIndex::new()).collect();
        let mut docs_per_partition = vec![0u64; partitions];
        for doc in gen.generate(self.corpus_docs) {
            // Stable splitmix placement (same scheme as
            // `sns_search::partition`).
            let mut z = doc.id.wrapping_mul(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            let p = ((z ^ (z >> 31)) % partitions as u64) as usize;
            indexes[p].add(&doc);
            docs_per_partition[p] += 1;
        }
        let shared: Vec<Arc<InvertedIndex>> = indexes.into_iter().map(Arc::new).collect();

        let mut sim: Sim<SnsMsg, San> = Sim::new(
            SimConfig {
                seed: topo.seed,
                scheduler: self.scheduler,
                ..Default::default()
            },
            San::new(topo.san.clone()),
        );
        if self.tracing {
            sim.set_tracer(sns_core::trace::Tracer::sampled(
                sns_core::trace::Sampling::per(self.trace_sample_rate, topo.seed),
            ));
        }
        // One dedicated node per partition; workers are bound to them.
        let partition_nodes: Vec<NodeId> = (0..partitions)
            .map(|_| sim.add_node(NodeSpec::new(topo.cores_per_node, "dedicated")))
            .collect();
        let infra = sim.add_node(NodeSpec::new(topo.cores_per_node, "infra"));
        let fe_nodes: Vec<NodeId> = (0..topo.frontends)
            .map(|_| sim.add_node(NodeSpec::new(topo.cores_per_node, "frontend")))
            .collect();
        let client_node = sim.add_node(NodeSpec::new(4, "client"));

        let beacon = sim.create_group();
        let monitor_group = sim.create_group();
        let stub_cfg = WorkerStubConfig {
            beacon_group: beacon,
            monitor_group,
            report_period: self.sns.report_period,
            cost_weight_unit: None,
        };

        // Manager: pinned per-partition classes. Restart policy is
        // configurable; partition identity (and its index Arc) lives in
        // the factory, so a restarted worker re-attaches to its data.
        let mut classes = BTreeMap::new();
        for (p, index) in shared.iter().enumerate() {
            let index = Arc::clone(index);
            let cfg = stub_cfg.clone();
            let mut spec = WorkerSpec::pinned(
                1,
                Box::new(move || {
                    Box::new(WorkerStub::new(
                        Box::new(SearchWorker::new(p, Arc::clone(&index))),
                        cfg.clone(),
                    ))
                }),
            );
            spec.policy.restart_on_crash = self.auto_restart_partitions;
            // Workers are bound to their nodes (§3.2): partition p only
            // ever runs on its own node; while that node is down the
            // partition is simply unavailable.
            spec.policy.pinned_node = Some(partition_nodes[p]);
            classes.insert(WorkerClass::new(crate::partition_class(p)), spec);
        }
        let manager = sim.spawn(
            infra,
            Box::new(Manager::new(ManagerConfig {
                sns: self.sns.clone(),
                beacon_group: beacon,
                monitor_group,
                incarnation: 1,
                classes,
                fe_factory: None,
            })),
            "manager",
        );
        sim.spawn(
            infra,
            Box::new(Monitor::new(monitor_group, Duration::from_secs(10))),
            "monitor",
        );

        let mut fes = Vec::new();
        for &node in &fe_nodes {
            fes.push(sim.spawn(
                node,
                Box::new(FrontEnd::new(
                    Box::new(HotBotLogic::new(partitions)),
                    FeConfig {
                        sns: self.sns.clone(),
                        beacon_group: beacon,
                        monitor_group,
                        manager_factory: None,
                    },
                )),
                "frontend",
            ));
        }

        HotBotCluster {
            sim,
            fes,
            manager,
            beacon,
            monitor_group,
            partition_nodes,
            client_node,
            docs_per_partition,
            vocab: self.vocab,
        }
    }
}

impl HotBotCluster {
    /// Snapshot of the recorded request trace, or `None` unless the
    /// cluster was built with [`HotBotBuilder::with_tracing`]. Export
    /// with [`sns_core::trace::to_jsonl`] or
    /// [`sns_core::trace::to_chrome`].
    pub fn trace(&self) -> Option<sns_core::trace::TraceLog> {
        self.sim.tracer().snapshot()
    }

    /// Attaches a query client; returns its report handle.
    pub fn attach_client(
        &mut self,
        rate: f64,
        queries: u64,
        start_delay: Duration,
    ) -> QueryReportHandle {
        let (client, report) = HotBotClient::new(
            self.fes.clone(),
            rate,
            queries,
            self.vocab,
            self.sim.stats().counter("unused") ^ 7,
            start_delay,
        );
        self.sim.spawn(self.client_node, Box::new(client), "client");
        report
    }

    /// Live worker component of a partition, if any.
    pub fn partition_worker(&self, p: usize) -> Option<ComponentId> {
        self.sim
            .components_of_kind(sns_core::intern_class(&crate::partition_class(p)))
            .first()
            .copied()
    }

    /// Total corpus size.
    pub fn total_docs(&self) -> u64 {
        self.docs_per_partition.iter().sum()
    }
}
