//! # sns-hotbot — the HotBot search service (§3.2)
//!
//! HotBot (the commercial Inktomi engine) is the paper's second
//! validation service, architecturally contrasted with TranSend in
//! Table 1: **static** partitioning of read-only data instead of dynamic
//! load balancing, every query fanned out to **all** workers in
//! parallel, workers **bound to their nodes** (each owns an index
//! partition), graceful degradation on partition loss ("with 26 nodes
//! the loss of one machine results in the database dropping from 54M to
//! about 51M documents"), an ACID primary/backup profile+ads database,
//! and an integrated cache of recent searches for incremental delivery.
//!
//! * [`worker::SearchWorker`] — one index partition as SNS worker logic;
//! * [`logic::HotBotLogic`] — the front-end fan-out/collation state
//!   machine with the recent-search cache and partial-result tolerance;
//! * [`client::HotBotClient`] — a Zipf-query client model;
//! * [`builder::HotBotBuilder`] — cluster assembly: corpus generation,
//!   partitioning, pinned per-node partition workers, front ends.

#![warn(missing_docs)]

pub mod builder;
pub mod client;
pub mod logic;
pub mod worker;

pub use builder::{HotBotBuilder, HotBotCluster};
pub use client::{HotBotClient, QueryReport};
pub use logic::{HotBotLogic, QueryRequest, SearchPage};
pub use worker::{PartitionResults, SearchWorker};

/// Class name for search partition `i`.
pub fn partition_class(i: usize) -> String {
    format!("search/p{i}")
}
