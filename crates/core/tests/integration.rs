//! End-to-end SNS-layer tests: a full cluster (manager, workers, front
//! end, clients) over the simulated SAN, exercising the paper's core
//! availability claims — operation on stale hints through manager death,
//! process-peer restarts, timeout-driven retry, and on-demand spawning.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use sns_core::frontend::{FeConfig, FeEvent, ManagerFactory, ReqState, SvcView};
use sns_core::manager::{Manager, ManagerConfig, WorkerFactory, WorkerSpec};
use sns_core::monitor::Monitor;
use sns_core::msg::{ClientRequest, Job, JobResult, SnsMsg};
use sns_core::worker::{WorkerError, WorkerLogic, WorkerStub, WorkerStubConfig};
use sns_core::{Action, Blob, FrontEnd, Payload, ServiceLogic, SnsConfig, WorkerClass};
use sns_san::{San, SanConfig};
use sns_sim::engine::{Component, Ctx, NodeSpec, Sim, SimConfig};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, GroupId};

/// A 20 ms CPU-bound echo worker.
struct Echo;

impl WorkerLogic for Echo {
    fn class(&self) -> WorkerClass {
        "echo".into()
    }
    fn service_time(&mut self, _job: &Job, _now: SimTime, _rng: &mut Pcg32) -> Duration {
        Duration::from_millis(20)
    }
    fn process(
        &mut self,
        job: &Job,
        _now: SimTime,
        _rng: &mut Pcg32,
    ) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size() / 2, "echoed"))
    }
}

/// Service logic: forward the request body to one echo worker, reply with
/// its output; fall back to a degraded original on dispatch failure.
struct EchoService;

impl ServiceLogic for EchoService {
    fn on_request(
        &mut self,
        req: &mut ReqState,
        _view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        out.push(Action::Dispatch {
            tag: 1,
            class: "echo".into(),
            op: "echo".into(),
            input: req
                .request
                .body
                .clone()
                .unwrap_or_else(|| Blob::payload(1000, "default")),
            profile: None,
        });
    }

    fn on_event(
        &mut self,
        _req: &mut ReqState,
        ev: FeEvent<'_>,
        _view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        match ev {
            FeEvent::WorkerReply { result, .. } => match result {
                JobResult::Ok(p) => out.push(Action::Reply(Ok(p.clone()))),
                JobResult::Failed(e) => out.push(Action::Reply(Err(e.clone()))),
            },
            FeEvent::DispatchFailed { .. } => {
                // BASE approximate answer: reply with the original.
                out.push(Action::MarkDegraded);
                out.push(Action::Reply(Ok(Blob::payload(100, "original"))));
            }
            FeEvent::ComputeDone { .. } | FeEvent::NapDone { .. } => {}
        }
    }
}

/// A client that fires `n` requests at a fixed rate and counts replies.
struct TestClient {
    fe: ComponentId,
    n: u64,
    period: Duration,
    sent: u64,
    /// Warm-up before the first request (lets the cluster bootstrap).
    delay: Duration,
}

impl Component<SnsMsg> for TestClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        ctx.timer(self.delay + self.period, 0);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _from: ComponentId, msg: SnsMsg) {
        if let SnsMsg::Response(r) = msg {
            ctx.stats().incr("client.responses", 1);
            if r.result.is_ok() {
                ctx.stats().incr("client.ok", 1);
            }
            if r.degraded {
                ctx.stats().incr("client.degraded", 1);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _token: u64) {
        if self.sent >= self.n {
            return;
        }
        self.sent += 1;
        ctx.send(
            self.fe,
            SnsMsg::Request(Arc::new(ClientRequest {
                id: self.sent,
                user: format!("u{}", self.sent % 5),
                url: format!("http://x/{}", self.sent),
                body: Some(Blob::payload(2000, "in")),
            })),
        );
        ctx.timer(self.period, 0);
    }
}

struct Cluster {
    sim: Sim<SnsMsg, San>,
    fe: ComponentId,
    manager: ComponentId,
    beacon: GroupId,
    monitor_group: GroupId,
}

fn worker_factory(beacon: GroupId, monitor: GroupId) -> WorkerFactory {
    Box::new(move || {
        Box::new(WorkerStub::new(
            Box::new(Echo),
            WorkerStubConfig {
                beacon_group: beacon,
                monitor_group: monitor,
                report_period: Duration::from_millis(500),
                cost_weight_unit: None,
            },
        ))
    })
}

fn manager_factory(
    beacon: GroupId,
    monitor: GroupId,
    sns: SnsConfig,
    min_workers: u32,
) -> ManagerFactory {
    Box::new(move |incarnation| {
        let mut classes = BTreeMap::new();
        classes.insert(
            WorkerClass::new("echo"),
            WorkerSpec::scaled(min_workers, worker_factory(beacon, monitor)),
        );
        Box::new(Manager::new(ManagerConfig {
            sns: sns.clone(),
            beacon_group: beacon,
            monitor_group: monitor,
            incarnation,
            classes,
            fe_factory: None,
        }))
    })
}

/// Builds a 6-node cluster: manager node, FE node, 3 worker nodes, 1
/// overflow node; one monitor; `min_workers` echo workers.
fn cluster(min_workers: u32) -> Cluster {
    let san = San::new(SanConfig::switched_100mbps());
    let mut sim: Sim<SnsMsg, San> = Sim::new(SimConfig::default(), san);
    let nodes: Vec<_> = (0..5)
        .map(|_| sim.add_node(NodeSpec::new(2, "dedicated")))
        .collect();
    sim.add_node(NodeSpec::new(2, "overflow"));
    let beacon = sim.create_group();
    let monitor_group = sim.create_group();
    let sns = SnsConfig::default();

    let mut mk_mgr = manager_factory(beacon, monitor_group, sns.clone(), min_workers);
    let manager = sim.spawn(nodes[0], mk_mgr(1), "manager");

    let fe = sim.spawn(
        nodes[1],
        Box::new(FrontEnd::new(
            Box::new(EchoService),
            FeConfig {
                sns: sns.clone(),
                beacon_group: beacon,
                monitor_group,
                manager_factory: Some(manager_factory(
                    beacon,
                    monitor_group,
                    sns.clone(),
                    min_workers,
                )),
            },
        )),
        "frontend",
    );
    sim.spawn(
        nodes[0],
        Box::new(Monitor::new(monitor_group, Duration::from_secs(5))),
        "monitor",
    );
    Cluster {
        sim,
        fe,
        manager,
        beacon,
        monitor_group,
    }
}

#[test]
fn end_to_end_request_response() {
    let mut c = cluster(2);
    let fe = c.fe;
    let client_node = c.sim.nodes_with_tag("dedicated")[4];
    c.sim.spawn(
        client_node,
        Box::new(TestClient {
            fe,
            n: 50,
            period: Duration::from_millis(100),
            sent: 0,
            delay: Duration::from_secs(3),
        }),
        "client",
    );
    c.sim.run_until(SimTime::from_secs(20));
    let stats = c.sim.stats();
    assert_eq!(stats.counter("client.responses"), 50);
    assert_eq!(stats.counter("client.ok"), 50);
    assert_eq!(stats.counter("client.degraded"), 0);
    // Latency sanity: overhead (4 ms) + queueing + 20 ms service + wire.
    let lat = stats.summary("fe.latency_s").expect("latencies recorded");
    assert!(lat.mean() > 0.02 && lat.mean() < 0.5, "mean {}", lat.mean());
}

#[test]
fn manager_death_stale_hints_and_peer_restart() {
    let mut c = cluster(2);
    let fe = c.fe;
    let manager = c.manager;
    let client_node = c.sim.nodes_with_tag("dedicated")[4];
    c.sim.spawn(
        client_node,
        Box::new(TestClient {
            fe,
            n: 200,
            period: Duration::from_millis(50),
            sent: 0,
            delay: Duration::ZERO,
        }),
        "client",
    );
    // Let the system warm up, then kill the manager mid-run.
    c.sim.run_until(SimTime::from_secs(3));
    assert_eq!(c.sim.components_of_kind("manager").len(), 1);
    c.sim.kill_component(manager);
    c.sim.run_until(SimTime::from_secs(30));
    let stats = c.sim.stats();
    // Every request answered despite the manager dying: cached hints
    // carried the front end through (§3.1.8).
    assert_eq!(stats.counter("client.responses"), 200);
    assert_eq!(stats.counter("client.ok"), 200);
    // The front end restarted the manager (process peers)…
    assert!(stats.counter("fe.manager_restarts") >= 1);
    let managers = c.sim.components_of_kind("manager");
    assert_eq!(managers.len(), 1, "exactly one live manager after recovery");
    assert_ne!(managers[0], manager);
    // …and workers re-registered with the new incarnation: it advertises
    // them again (check via a fresh worker spawn NOT being needed —
    // still exactly two echo workers).
    assert_eq!(c.sim.components_of_kind("echo").len(), 2);
}

#[test]
fn worker_death_timeout_retry() {
    let mut c = cluster(2);
    let fe = c.fe;
    let client_node = c.sim.nodes_with_tag("dedicated")[4];
    c.sim.spawn(
        client_node,
        Box::new(TestClient {
            fe,
            n: 100,
            period: Duration::from_millis(100),
            sent: 0,
            delay: Duration::ZERO,
        }),
        "client",
    );
    c.sim.run_until(SimTime::from_secs(3));
    let workers = c.sim.components_of_kind("echo");
    assert_eq!(workers.len(), 2);
    // Kill one worker; in-flight jobs to it will time out and retry on
    // the survivor; the manager respawns the dead one.
    c.sim.kill_component(workers[0]);
    c.sim.run_until(SimTime::from_secs(30));
    let stats = c.sim.stats();
    assert_eq!(stats.counter("client.responses"), 100, "no request lost");
    // The manager restarted the worker.
    assert_eq!(c.sim.components_of_kind("echo").len(), 2);
    assert!(stats.counter("manager.worker_deaths") >= 1);
}

#[test]
fn on_demand_spawn_for_unknown_class() {
    // Start with zero echo workers: the first dispatch finds no worker,
    // the stub asks the manager, the manager spawns one, the pending
    // dispatch flushes after the next beacon.
    let mut c = cluster(0);
    let fe = c.fe;
    let client_node = c.sim.nodes_with_tag("dedicated")[4];
    c.sim.spawn(
        client_node,
        Box::new(TestClient {
            fe,
            n: 5,
            period: Duration::from_millis(200),
            sent: 0,
            delay: Duration::ZERO,
        }),
        "client",
    );
    c.sim.run_until(SimTime::from_secs(15));
    let stats = c.sim.stats();
    assert_eq!(stats.counter("client.responses"), 5);
    assert_eq!(stats.counter("client.ok"), 5);
    assert!(!c.sim.components_of_kind("echo").is_empty());
    assert!(stats.counter("manager.spawns") >= 1);
}

#[test]
fn deterministic_cluster_replay() {
    let run = || {
        let mut c = cluster(2);
        let fe = c.fe;
        let client_node = c.sim.nodes_with_tag("dedicated")[4];
        c.sim.spawn(
            client_node,
            Box::new(TestClient {
                fe,
                n: 30,
                period: Duration::from_millis(70),
                sent: 0,
                delay: Duration::ZERO,
            }),
            "client",
        );
        c.sim.run_until(SimTime::from_secs(10));
        (
            c.sim.events_dispatched(),
            c.sim.stats().counter("client.responses"),
            c.sim
                .stats()
                .summary("fe.latency_s")
                .map(|s| s.mean())
                .unwrap_or(0.0),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed ⇒ identical run");
    let _ = (a, b);
}

#[test]
fn thread_pool_queues_excess_connections() {
    // §3.1.1/§4.4: each in-flight request holds one FE thread; excess
    // connections wait in the accept queue but are never refused.
    let mut c = cluster(1);
    let fe = c.fe;
    // Shrink the pool drastically via a fresh FE on another node.
    let tiny_pool = SnsConfig {
        fe_threads: 2,
        ..Default::default()
    };
    let node = c.sim.nodes_with_tag("dedicated")[3];
    let small_fe = c.sim.spawn(
        node,
        Box::new(FrontEnd::new(
            Box::new(EchoService),
            FeConfig {
                sns: tiny_pool,
                beacon_group: c.beacon,
                monitor_group: c.monitor_group,
                manager_factory: None,
            },
        )),
        "frontend",
    );
    let _ = fe;
    c.sim.spawn(
        c.sim.nodes_with_tag("dedicated")[4],
        Box::new(TestClient {
            fe: small_fe,
            n: 40,
            period: Duration::from_millis(5), // much faster than service
            sent: 0,
            delay: Duration::from_secs(3),
        }),
        "client",
    );
    c.sim.run_until(SimTime::from_secs(30));
    let stats = c.sim.stats();
    assert_eq!(stats.counter("client.responses"), 40, "nothing refused");
    assert!(
        stats.counter("fe.queued") > 0,
        "the 2-thread pool forced connections to queue"
    );
}

#[test]
fn manager_restarts_dead_front_end() {
    // Build a cluster whose manager owns an FE factory (the other half
    // of the process-peer relationship: "The manager detects and
    // restarts a crashed front end", §3.1.3).
    let san = San::new(SanConfig::switched_100mbps());
    let mut sim: Sim<SnsMsg, San> = Sim::new(SimConfig::default(), san);
    let nodes: Vec<_> = (0..4)
        .map(|_| sim.add_node(NodeSpec::new(2, "dedicated")))
        .collect();
    let beacon = sim.create_group();
    let monitor_group = sim.create_group();
    let sns = SnsConfig::default();

    let fe_factory: Box<dyn FnMut() -> Box<dyn sns_sim::engine::Component<SnsMsg>> + Send> = {
        let sns = sns.clone();
        Box::new(move || {
            Box::new(FrontEnd::new(
                Box::new(EchoService),
                FeConfig {
                    sns: sns.clone(),
                    beacon_group: beacon,
                    monitor_group,
                    manager_factory: None,
                },
            ))
        })
    };
    let mut classes = BTreeMap::new();
    classes.insert(
        WorkerClass::new("echo"),
        sns_core::manager::WorkerSpec::scaled(1, worker_factory(beacon, monitor_group)),
    );
    let manager = Manager::new(ManagerConfig {
        sns: sns.clone(),
        beacon_group: beacon,
        monitor_group,
        incarnation: 1,
        classes,
        fe_factory: Some(fe_factory),
    });
    sim.spawn(nodes[0], Box::new(manager), "manager");
    let fe = sim.spawn(
        nodes[1],
        Box::new(FrontEnd::new(
            Box::new(EchoService),
            FeConfig {
                sns: sns.clone(),
                beacon_group: beacon,
                monitor_group,
                manager_factory: None,
            },
        )),
        "frontend",
    );
    // Let the FE register with the manager, then kill it.
    sim.at(SimTime::from_secs(3), move |s| s.kill_component(fe));
    sim.run_until(SimTime::from_secs(10));
    let fes = sim.components_of_kind("frontend");
    assert_eq!(fes.len(), 1, "manager restarted the front end");
    assert_ne!(fes[0], fe, "it is a fresh process");
    assert!(sim.stats().counter("manager.fe_deaths") >= 1);
}

#[test]
fn monitor_sees_cluster_lifecycle() {
    let mut c = cluster(1);
    let fe = c.fe;
    let _ = (c.beacon, c.monitor_group);
    let client_node = c.sim.nodes_with_tag("dedicated")[4];
    c.sim.spawn(
        client_node,
        Box::new(TestClient {
            fe,
            n: 10,
            period: Duration::from_millis(100),
            sent: 0,
            delay: Duration::ZERO,
        }),
        "client",
    );
    c.sim.run_until(SimTime::from_secs(10));
    assert!(c.sim.stats().counter("monitor.events") > 10);
}
