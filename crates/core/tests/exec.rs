//! Executor-contract suite: the properties the deterministic executor
//! must hold for async bodies to replay bit-identically. Failures
//! shrink to a minimal operation sequence via the testkit's
//! choice-stream shrinking (`SNS_TESTKIT_SEED` / `SNS_TESTKIT_CASES`).

use std::collections::{BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sns_testkit::{gens, props, tk_assert, tk_assert_eq};

use sns_core::exec::{
    mailbox, race, sleep, timeout, BoxFut, Either, Executor, MailboxSender, TimerHub, VirtualClock,
};
use sns_sim::time::SimTime;

/// Drives a hub like the sim adapter does: pops armed timers in
/// `(deadline, id)` order — exactly how the engine's scheduler would
/// deliver them — advancing the clock and running the executor after
/// each fire.
struct HarnessClock {
    clock: Arc<VirtualClock>,
    hub: Arc<TimerHub>,
    pending: Vec<(SimTime, u64)>,
}

impl HarnessClock {
    fn new() -> Self {
        let clock = VirtualClock::new();
        let hub = TimerHub::new(clock.clone());
        HarnessClock {
            clock,
            hub,
            pending: Vec::new(),
        }
    }

    fn drain(&mut self) {
        for (id, deadline) in self.hub.drain_armed() {
            self.pending.push((deadline, id));
        }
        self.pending.sort();
    }

    /// Fires the next armed timer (tombstones included, like a stale
    /// engine timer popping into nothing); false when none remain.
    fn fire_next(&mut self, ex: &mut Executor) -> bool {
        self.drain();
        if self.pending.is_empty() {
            return false;
        }
        let (deadline, id) = self.pending.remove(0);
        self.clock.set(deadline);
        self.hub.fire(id);
        ex.run_ready();
        true
    }
}

props! {
    /// Poll order is a pure function of wake order: for any interleaving
    /// of wakes and run_ready flushes, tasks are polled in FIFO wake
    /// order with duplicate wakes suppressed — the model below *is* the
    /// spec, and the executor must match it word for word.
    fn poll_order_replays_wake_order(
        words in gens::vec(gens::any_u64(), 1..160),
        n_tasks in gens::u64_in(1..8),
    ) {
        let n = n_tasks as usize;
        let mut ex = Executor::new();
        let polled: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let mut txs: Vec<MailboxSender<()>> = Vec::new();
        for i in 0..n {
            let (tx, rx) = mailbox::<()>();
            txs.push(tx);
            let log = Arc::clone(&polled);
            ex.spawn(Box::pin(async move {
                // Each recv that yields marks one poll-after-wake.
                while rx.recv().await.is_some() {
                    log.lock().unwrap().push(i as u64);
                }
            }) as BoxFut);
        }
        ex.run_ready(); // initial polls park every task
        polled.lock().unwrap().clear();

        // Model: FIFO wake queue with duplicate suppression; a woken
        // task drains its whole mailbox in one poll, so a flush emits
        // each queued task once per value it had pending, tasks in wake
        // order.
        let mut queue: VecDeque<u64> = VecDeque::new();
        let mut queued: BTreeSet<u64> = BTreeSet::new();
        let mut values = vec![0u64; n];
        let mut expected: Vec<u64> = Vec::new();
        let flush = |queue: &mut VecDeque<u64>,
                         queued: &mut BTreeSet<u64>,
                         values: &mut Vec<u64>,
                         expected: &mut Vec<u64>| {
            while let Some(t) = queue.pop_front() {
                queued.remove(&t);
                for _ in 0..values[t as usize] {
                    expected.push(t);
                }
                values[t as usize] = 0;
            }
        };
        for &w in &words {
            if w % 4 == 0 {
                ex.run_ready();
                flush(&mut queue, &mut queued, &mut values, &mut expected);
            } else {
                let t = (w >> 2) % n_tasks;
                txs[t as usize].send(());
                values[t as usize] += 1;
                // The mailbox wakes only on the transition to a parked
                // waker; a second send before the poll queues the value
                // but not another wake.
                if queued.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        ex.run_ready();
        flush(&mut queue, &mut queued, &mut values, &mut expected);
        tk_assert_eq!(*polled.lock().unwrap(), expected);
    }

    /// Timeout truth table under engine-ordered timer delivery: the body
    /// (a sleep) beats the deadline iff it expires no later, losers are
    /// dropped, and the hub ends every round with zero pending timers —
    /// cancellation leaks nothing, no matter the delays.
    fn timeout_resolves_by_deadline_and_cancels_cleanly(
        rounds in gens::vec(gens::any_u64(), 1..40),
    ) {
        let mut h = HarnessClock::new();
        let mut ex = Executor::new();
        for (i, &w) in rounds.iter().enumerate() {
            let body_ms = w % 512;
            let deadline_ms = (w >> 9) % 512;
            let body = sleep(&h.hub, Duration::from_millis(body_ms));
            let deadline = sleep(&h.hub, Duration::from_millis(deadline_ms));
            let out: Arc<Mutex<Option<Option<()>>>> = Arc::new(Mutex::new(None));
            let sink = Arc::clone(&out);
            let id = ex.spawn(Box::pin(async move {
                *sink.lock().unwrap() = Some(timeout(body, deadline).await);
            }));
            ex.run_ready();
            while ex.is_live(id) {
                tk_assert!(h.fire_next(&mut ex), "task starved at round {i}");
            }
            // Ties go to the body: race polls it first.
            let want = body_ms <= deadline_ms;
            tk_assert_eq!(out.lock().unwrap().take(), Some(want.then_some(())));
            tk_assert_eq!(h.hub.pending(), 0);
        }
    }

    /// Race truth table: first expiry wins (body-side on ties), the
    /// loser's sleep is cancelled by the drop — its already-armed engine
    /// timer pops into a tombstone, never a wake.
    fn race_picks_the_earlier_side_and_drops_the_loser(
        rounds in gens::vec(gens::any_u64(), 1..40),
    ) {
        let mut h = HarnessClock::new();
        let mut ex = Executor::new();
        for (i, &w) in rounds.iter().enumerate() {
            let a_ms = w % 512;
            let b_ms = (w >> 9) % 512;
            let a = sleep(&h.hub, Duration::from_millis(a_ms));
            let b = sleep(&h.hub, Duration::from_millis(b_ms));
            let won: Arc<Mutex<Option<bool>>> = Arc::new(Mutex::new(None));
            let sink = Arc::clone(&won);
            let id = ex.spawn(Box::pin(async move {
                let left = matches!(race(a, b).await, Either::Left(()));
                *sink.lock().unwrap() = Some(left);
            }));
            ex.run_ready();
            while ex.is_live(id) {
                tk_assert!(h.fire_next(&mut ex), "race starved at round {i}");
            }
            tk_assert_eq!(won.lock().unwrap().take(), Some(a_ms <= b_ms));
            tk_assert_eq!(h.hub.pending(), 0, "loser leaked a timer");
        }
    }
}

/// Integration shape of the hedged distill stage: primary races a
/// delayed hedge under a give-up deadline, driven purely by
/// engine-ordered timer pops. The winner flips with the delays; the
/// executor and hub end empty either way.
#[test]
fn hedged_race_under_timeout_resolves_deterministically() {
    // (primary_ms, hedge_after_ms, give_up_ms) → expect Some(left?)
    // (None = gave up).
    let cases = [
        (50u64, 200u64, 1_000u64, Some(true)), // primary wins
        (400, 100, 1_000, Some(false)),        // hedge fires and wins
        (900, 800, 700, None),                 // neither beats give-up
    ];
    for (primary_ms, hedge_ms, give_up_ms, want) in cases {
        let mut h = HarnessClock::new();
        let mut ex = Executor::new();
        let hub = Arc::clone(&h.hub);
        let out: Arc<Mutex<Option<Option<bool>>>> = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&out);
        let id = ex.spawn(Box::pin(async move {
            let primary = sleep(&hub, Duration::from_millis(primary_ms));
            let hedge: BoxFut = Box::pin({
                let hub = Arc::clone(&hub);
                async move {
                    sleep(&hub, Duration::from_millis(hedge_ms)).await;
                }
            });
            let give_up = sleep(&hub, Duration::from_millis(give_up_ms));
            let r = timeout(race(primary, hedge), give_up).await;
            *sink.lock().unwrap() = Some(r.map(|e| matches!(e, Either::Left(()))));
        }));
        ex.run_ready();
        while ex.is_live(id) {
            assert!(h.fire_next(&mut ex), "stage starved");
        }
        assert_eq!(
            out.lock().unwrap().take(),
            Some(want),
            "case ({primary_ms},{hedge_ms},{give_up_ms})"
        );
        assert_eq!(h.hub.pending(), 0, "cancellation must clean the hub");
        assert!(ex.is_empty());
    }
}
