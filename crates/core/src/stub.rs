//! The manager stub (§2.2.5, §3.1.2): the front-end half of the narrow
//! SNS API.
//!
//! The stub caches the hints piggybacked on manager beacons and makes
//! *local* scheduling decisions from them — so the front end keeps
//! operating on slightly stale data even while the manager is down
//! (§3.1.8). Worker selection is lottery scheduling with tickets
//! inversely proportional to the estimated queue length; the estimate is
//! the manager's smoothed report **plus this stub's own net dispatches
//! since that report** — the §4.5 queue-delta correction that eliminated
//! the load-balancing oscillations (toggle
//! [`ManagerStub::set_delta_correction`] off to reproduce them).
//! Timeouts infer failures from stale choices; timed-out workers are
//! dropped from the hint cache and the request retried elsewhere
//! (§3.1.8).

use std::collections::BTreeMap;
use std::sync::Arc;

use sns_sim::engine::Ctx;
use sns_sim::time::SimTime;
use sns_sim::ComponentId;

use crate::msg::{BeaconData, Job, ProfileData, SnsMsg};
use crate::{Payload, SnsConfig, WorkerClass};

#[derive(Debug, Clone)]
struct HintEntry {
    worker: ComponentId,
    est_qlen: f64,
}

/// A dispatch awaiting a response.
#[derive(Debug, Clone)]
pub struct Outstanding {
    /// Class the job targets.
    pub class: WorkerClass,
    /// Worker currently assigned (None while waiting for one to exist).
    pub worker: Option<ComponentId>,
    /// Attempts so far (1 = first try).
    pub attempts: u32,
    /// Whether the caller pinned the worker (no lottery, no retry).
    pub explicit: bool,
    op: String,
    input: Payload,
    profile: Option<ProfileData>,
    reply_to: ComponentId,
    workers_tried: Vec<ComponentId>,
}

/// Verdict of a dispatch timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeoutVerdict {
    /// The job was re-sent to another worker; re-arm the timeout.
    Retried,
    /// Retries are exhausted (or the dispatch was pinned); the service
    /// layer decides the fallback (§2.2.4).
    GaveUp(WorkerClass),
    /// The job id was unknown (already answered).
    Unknown,
}

/// The front-end-resident manager stub.
pub struct ManagerStub {
    cfg: SnsConfig,
    manager: Option<ComponentId>,
    incarnation: u64,
    last_beacon: Option<SimTime>,
    hints: BTreeMap<WorkerClass, Vec<HintEntry>>,
    /// Net dispatches (sent − answered) per worker since the last beacon.
    inflight: BTreeMap<ComponentId, i64>,
    outstanding: BTreeMap<u64, Outstanding>,
    next_job: u64,
    delta_correction: bool,
}

impl ManagerStub {
    /// Creates a stub.
    pub fn new(cfg: SnsConfig) -> Self {
        ManagerStub {
            cfg,
            manager: None,
            incarnation: 0,
            last_beacon: None,
            hints: BTreeMap::new(),
            inflight: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            next_job: 1,
            delta_correction: true,
        }
    }

    /// Enables/disables the §4.5 queue-delta correction (ablation knob).
    pub fn set_delta_correction(&mut self, on: bool) {
        self.delta_correction = on;
    }

    /// The manager, if one has been heard from.
    pub fn manager(&self) -> Option<ComponentId> {
        self.manager
    }

    /// Incarnation of the last manager heard from.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// When the last beacon arrived.
    pub fn last_beacon(&self) -> Option<SimTime> {
        self.last_beacon
    }

    /// Live workers of a class per the hint cache (the virtual-cache ring
    /// is built from this, §3.1.5).
    pub fn workers_of(&self, class: &WorkerClass) -> Vec<ComponentId> {
        self.hints
            .get(class)
            .map(|v| v.iter().map(|h| h.worker).collect())
            .unwrap_or_default()
    }

    /// Estimated queue length for a worker (report + local delta).
    pub fn estimate(&self, class: &WorkerClass, worker: ComponentId) -> Option<f64> {
        let base = self
            .hints
            .get(class)?
            .iter()
            .find(|h| h.worker == worker)?
            .est_qlen;
        let delta = if self.delta_correction {
            self.inflight.get(&worker).copied().unwrap_or(0) as f64
        } else {
            0.0
        };
        Some((base + delta).max(0.0))
    }

    /// Ingests a beacon. Returns `true` when it announces a manager (or
    /// incarnation) this stub has not registered with yet.
    pub fn on_beacon(&mut self, b: &BeaconData) -> bool {
        let new = self.manager != Some(b.manager) || self.incarnation != b.incarnation;
        self.manager = Some(b.manager);
        self.incarnation = b.incarnation;
        self.last_beacon = Some(b.at);
        self.hints = b
            .hints
            .iter()
            .map(|(class, v)| {
                (
                    class.clone(),
                    v.iter()
                        .map(|h| HintEntry {
                            worker: h.worker,
                            est_qlen: h.est_qlen,
                        })
                        .collect(),
                )
            })
            .collect();
        // Fresh reports fold in everything we had dispatched before the
        // report was made; restart the local delta.
        self.inflight.clear();
        for o in self.outstanding.values() {
            if let Some(w) = o.worker {
                *self.inflight.entry(w).or_insert(0) += 1;
            }
        }
        new
    }

    /// Lottery-picks a worker of `class` (excluding `exclude`), tickets
    /// inversely proportional to estimated queue length (§3.1.2).
    fn pick(
        &self,
        ctx: &mut Ctx<'_, SnsMsg>,
        class: &WorkerClass,
        exclude: &[ComponentId],
    ) -> Option<ComponentId> {
        let candidates: Vec<&HintEntry> = self
            .hints
            .get(class)?
            .iter()
            .filter(|h| !exclude.contains(&h.worker))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let tickets: Vec<f64> = candidates
            .iter()
            .map(|h| {
                let delta = if self.delta_correction {
                    self.inflight.get(&h.worker).copied().unwrap_or(0) as f64
                } else {
                    0.0
                };
                1.0 / (1.0 + (h.est_qlen + delta).max(0.0))
            })
            .collect();
        let i = ctx.rng().weighted(&tickets);
        Some(candidates[i].worker)
    }

    fn send_job(&mut self, ctx: &mut Ctx<'_, SnsMsg>, job_id: u64, worker: ComponentId) {
        let o = self.outstanding.get_mut(&job_id).expect("job exists");
        o.worker = Some(worker);
        o.workers_tried.push(worker);
        *self.inflight.entry(worker).or_insert(0) += 1;
        let job = Arc::new(Job {
            id: job_id,
            class: o.class.clone(),
            op: o.op.clone(),
            input: o.input.clone(),
            profile: o.profile.clone(),
            reply_to: o.reply_to,
        });
        ctx.send(worker, SnsMsg::WorkRequest(job));
        ctx.stats().incr("stub.dispatches", 1);
    }

    /// Dispatches a job to the least-loaded worker of `class` (lottery).
    /// If no worker is known the dispatch stays pending — the caller's
    /// timeout drives a retry once the manager has spawned one — and the
    /// manager is asked via [`SnsMsg::NeedWorker`]. Returns the job id.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch(
        &mut self,
        ctx: &mut Ctx<'_, SnsMsg>,
        class: WorkerClass,
        op: impl Into<String>,
        input: Payload,
        profile: Option<ProfileData>,
    ) -> u64 {
        let job_id = self.next_job;
        self.next_job += 1;
        let me = ctx.me();
        self.outstanding.insert(
            job_id,
            Outstanding {
                class: class.clone(),
                worker: None,
                attempts: 1,
                explicit: false,
                op: op.into(),
                input,
                profile,
                reply_to: me,
                workers_tried: Vec::new(),
            },
        );
        match self.pick(ctx, &class, &[]) {
            Some(w) => self.send_job(ctx, job_id, w),
            None => self.request_worker(ctx, &class),
        }
        job_id
    }

    /// Dispatches to a pinned worker (cache-ring routing, search
    /// partition fan-out). No lottery, no retry.
    pub fn dispatch_to(
        &mut self,
        ctx: &mut Ctx<'_, SnsMsg>,
        worker: ComponentId,
        class: WorkerClass,
        op: impl Into<String>,
        input: Payload,
        profile: Option<ProfileData>,
    ) -> u64 {
        let job_id = self.next_job;
        self.next_job += 1;
        let me = ctx.me();
        self.outstanding.insert(
            job_id,
            Outstanding {
                class,
                worker: None,
                attempts: 1,
                explicit: true,
                op: op.into(),
                input,
                profile,
                reply_to: me,
                workers_tried: Vec::new(),
            },
        );
        self.send_job(ctx, job_id, worker);
        job_id
    }

    fn request_worker(&self, ctx: &mut Ctx<'_, SnsMsg>, class: &WorkerClass) {
        if let Some(mgr) = self.manager {
            let me = ctx.me();
            ctx.send(
                mgr,
                SnsMsg::NeedWorker {
                    fe: me,
                    class: class.clone(),
                },
            );
        }
    }

    /// Records a response; returns the dispatch if it was outstanding.
    pub fn on_response(&mut self, job_id: u64) -> Option<Outstanding> {
        let o = self.outstanding.remove(&job_id)?;
        if let Some(w) = o.worker {
            *self.inflight.entry(w).or_insert(0) -= 1;
        }
        Some(o)
    }

    /// Handles a dispatch timeout: evict the suspected-dead worker from
    /// the hint cache and retry elsewhere, or give up (§3.1.8).
    pub fn on_timeout(&mut self, ctx: &mut Ctx<'_, SnsMsg>, job_id: u64) -> TimeoutVerdict {
        let Some(o) = self.outstanding.get(&job_id) else {
            return TimeoutVerdict::Unknown;
        };
        let class = o.class.clone();
        let explicit = o.explicit;
        let attempts = o.attempts;
        let suspected = o.worker;
        // A timed-out worker is suspect: drop it so other requests stop
        // choosing it until the manager re-advertises it.
        if let Some(w) = suspected {
            if let Some(v) = self.hints.get_mut(&class) {
                v.retain(|h| h.worker != w);
            }
            *self.inflight.entry(w).or_insert(0) -= 1;
            ctx.stats().incr("stub.timeouts", 1);
        }
        if explicit || attempts > self.cfg.max_retries {
            self.outstanding.remove(&job_id);
            ctx.stats().incr("stub.gave_up", 1);
            return TimeoutVerdict::GaveUp(class);
        }
        let tried = self
            .outstanding
            .get(&job_id)
            .map(|o| o.workers_tried.clone())
            .unwrap_or_default();
        match self.pick(ctx, &class, &tried) {
            Some(w) => {
                let o = self.outstanding.get_mut(&job_id).expect("still present");
                o.attempts += 1;
                self.send_job(ctx, job_id, w);
                ctx.stats().incr("stub.retries", 1);
                TimeoutVerdict::Retried
            }
            None => {
                // Nobody (left) to try: ask the manager and keep waiting;
                // the re-armed timeout will try again.
                let o = self.outstanding.get_mut(&job_id).expect("still present");
                o.attempts += 1;
                o.worker = None;
                self.request_worker(ctx, &class);
                TimeoutVerdict::Retried
            }
        }
    }

    /// Jobs currently outstanding (waiting on workers).
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Pending dispatches of `class` that have no worker yet get sent as
    /// soon as hints advertise one (called after each beacon).
    pub fn flush_pending(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        let waiting: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.worker.is_none() && !o.explicit)
            .map(|(&id, _)| id)
            .collect();
        for job_id in waiting {
            let (class, tried) = {
                let o = &self.outstanding[&job_id];
                (o.class.clone(), o.workers_tried.clone())
            };
            if let Some(w) = self.pick(ctx, &class, &tried) {
                self.send_job(ctx, job_id, w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::WorkerHint;
    use sns_sim::NodeId;

    fn beacon(workers: &[(u64, f64)]) -> BeaconData {
        let mut hints = BTreeMap::new();
        hints.insert(
            WorkerClass::new("w"),
            workers
                .iter()
                .map(|&(id, q)| WorkerHint {
                    worker: ComponentId(id),
                    node: NodeId(0),
                    est_qlen: q,
                    overflow: false,
                })
                .collect(),
        );
        BeaconData {
            manager: ComponentId(99),
            incarnation: 1,
            hints,
            at: SimTime::from_secs(1),
        }
    }

    #[test]
    fn beacon_updates_membership_and_detects_new_manager() {
        let mut stub = ManagerStub::new(SnsConfig::default());
        assert!(stub.on_beacon(&beacon(&[(1, 0.0), (2, 3.0)])));
        assert_eq!(stub.manager(), Some(ComponentId(99)));
        assert_eq!(
            stub.workers_of(&"w".into()),
            vec![ComponentId(1), ComponentId(2)]
        );
        // Same manager, same incarnation: not new.
        assert!(!stub.on_beacon(&beacon(&[(1, 0.0)])));
        let mut b2 = beacon(&[(1, 0.0)]);
        b2.incarnation = 2;
        assert!(stub.on_beacon(&b2), "new incarnation requires re-register");
    }

    #[test]
    fn estimate_includes_delta() {
        let mut stub = ManagerStub::new(SnsConfig::default());
        stub.on_beacon(&beacon(&[(1, 2.0)]));
        assert_eq!(stub.estimate(&"w".into(), ComponentId(1)), Some(2.0));
        stub.inflight.insert(ComponentId(1), 3);
        assert_eq!(stub.estimate(&"w".into(), ComponentId(1)), Some(5.0));
        stub.set_delta_correction(false);
        assert_eq!(stub.estimate(&"w".into(), ComponentId(1)), Some(2.0));
    }

    #[test]
    fn unknown_job_response_is_none() {
        let mut stub = ManagerStub::new(SnsConfig::default());
        assert!(stub.on_response(42).is_none());
    }
}
