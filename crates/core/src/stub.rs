//! The manager stub (§2.2.5, §3.1.2): the front-end half of the narrow
//! SNS API.
//!
//! The stub caches the hints piggybacked on manager beacons and makes
//! *local* scheduling decisions from them — so the front end keeps
//! operating on slightly stale data even while the manager is down
//! (§3.1.8). Worker selection is lottery scheduling with tickets
//! inversely proportional to the estimated queue length; the estimate is
//! the manager's smoothed report **plus this stub's own net dispatches
//! since that report** — the §4.5 queue-delta correction that eliminated
//! the load-balancing oscillations (toggle
//! [`ManagerStub::set_delta_correction`] off to reproduce them).
//! Timeouts infer failures from stale choices; timed-out workers are
//! dropped from the hint cache and the request retried elsewhere
//! (§3.1.8).
//!
//! All of that decision logic lives in the sans-IO
//! [`DispatchPlane`] ([`crate::control`]), shared with the threaded
//! runtime's submit path. This type is the simulator driver: it feeds
//! the plane the component's RNG and maps the returned
//! [`DispatchEffect`]s onto `ctx.send` / stats calls, in order.

use sns_sim::engine::Ctx;
use sns_sim::time::SimTime;
use sns_sim::ComponentId;

use crate::control::{DispatchEffect, DispatchPlane};
pub use crate::control::{Outstanding, TimeoutVerdict};
use crate::msg::{BeaconData, ProfileData, SnsMsg};
use crate::trace::{Sampling, SpanCtx};
use crate::{Payload, SnsConfig, WorkerClass};

/// The front-end-resident manager stub.
pub struct ManagerStub {
    plane: DispatchPlane,
}

impl ManagerStub {
    /// Creates a stub.
    pub fn new(cfg: SnsConfig) -> Self {
        ManagerStub {
            plane: DispatchPlane::new(cfg),
        }
    }

    /// Applies plane effects, in order, onto engine calls.
    fn apply(&mut self, ctx: &mut Ctx<'_, SnsMsg>, effects: Vec<DispatchEffect>) {
        for effect in effects {
            match effect {
                DispatchEffect::SendJob { worker, job } => {
                    ctx.send(worker, SnsMsg::WorkRequest(job));
                }
                DispatchEffect::NeedWorker { manager, class } => {
                    let me = ctx.me();
                    ctx.send(manager, SnsMsg::NeedWorker { fe: me, class });
                }
                DispatchEffect::Incr { key, n } => ctx.stats().incr(key, n),
                DispatchEffect::Span(s) => ctx.tracer().record(s),
            }
        }
    }

    /// Enables/disables the §4.5 queue-delta correction (ablation knob).
    pub fn set_delta_correction(&mut self, on: bool) {
        self.plane.set_delta_correction(on);
    }

    /// Turns dispatch-span emission on/off (the front end mirrors the
    /// engine tracer's state here on start).
    pub fn set_tracing(&mut self, on: bool) {
        self.plane.set_tracing(on);
    }

    /// Installs the head-sampling policy used for root dispatches that
    /// arrive without a caller decision (mirrored from the engine
    /// tracer on start, like [`ManagerStub::set_tracing`]).
    pub fn set_sampling(&mut self, sampling: Sampling) {
        self.plane.set_sampling(sampling);
    }

    /// Assigns a worker class to a tenant for admission accounting.
    pub fn set_tenant(&mut self, class: WorkerClass, tenant: &'static str) {
        self.plane.set_tenant(class, tenant);
    }

    /// Installs a tenant's overload policy (outstanding quota + drop vs.
    /// degrade behavior past it).
    pub fn set_tenant_policy(&mut self, tenant: &'static str, policy: crate::TenantPolicy) {
        self.plane.set_tenant_policy(tenant, policy);
    }

    /// Admission check for one job of `class` against its tenant's
    /// overload policy; call before [`ManagerStub::dispatch`] and skip
    /// (or degrade) the dispatch on a non-[`Admission::Accept`](crate::Admission::Accept) verdict.
    pub fn admit(&mut self, ctx: &mut Ctx<'_, SnsMsg>, class: &WorkerClass) -> crate::Admission {
        let mut out = Vec::new();
        let verdict = self.plane.admit(class, &mut out);
        self.apply(ctx, out);
        verdict
    }

    /// The manager, if one has been heard from.
    pub fn manager(&self) -> Option<ComponentId> {
        self.plane.manager()
    }

    /// Incarnation of the last manager heard from.
    pub fn incarnation(&self) -> u64 {
        self.plane.incarnation()
    }

    /// When the last beacon arrived.
    pub fn last_beacon(&self) -> Option<SimTime> {
        self.plane.last_beacon()
    }

    /// Live workers of a class per the hint cache (the virtual-cache ring
    /// is built from this, §3.1.5).
    pub fn workers_of(&self, class: &WorkerClass) -> Vec<ComponentId> {
        self.plane.workers_of(class)
    }

    /// Estimated queue length for a worker (report + local delta).
    pub fn estimate(&self, class: &WorkerClass, worker: ComponentId) -> Option<f64> {
        self.plane.estimate(class, worker)
    }

    /// Ingests a beacon. Returns `true` when it announces a manager (or
    /// incarnation) this stub has not registered with yet.
    pub fn on_beacon(&mut self, b: &BeaconData) -> bool {
        self.plane.on_beacon(b)
    }

    /// Dispatches a job to the least-loaded worker of `class` (lottery).
    /// If no worker is known the dispatch stays pending — the caller's
    /// timeout drives a retry once the manager has spawned one — and the
    /// manager is asked via [`SnsMsg::NeedWorker`]. Returns the job id.
    /// `span` carries the caller's request-span parent and head-sampling
    /// decision (pass [`SpanCtx::root`] for root dispatches).
    pub fn dispatch(
        &mut self,
        ctx: &mut Ctx<'_, SnsMsg>,
        class: WorkerClass,
        op: impl Into<String>,
        input: Payload,
        profile: Option<ProfileData>,
        span: SpanCtx,
    ) -> u64 {
        let me = ctx.me();
        let now = ctx.now();
        let mut out = Vec::new();
        let job_id = self.plane.dispatch(
            ctx.rng(),
            now,
            me,
            class,
            op,
            input,
            profile,
            span,
            &mut out,
        );
        self.apply(ctx, out);
        job_id
    }

    /// Dispatches to a pinned worker (cache-ring routing, search
    /// partition fan-out). No lottery, no retry.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch_to(
        &mut self,
        ctx: &mut Ctx<'_, SnsMsg>,
        worker: ComponentId,
        class: WorkerClass,
        op: impl Into<String>,
        input: Payload,
        profile: Option<ProfileData>,
        span: SpanCtx,
    ) -> u64 {
        let me = ctx.me();
        let now = ctx.now();
        let mut out = Vec::new();
        let job_id = self
            .plane
            .dispatch_to(now, me, worker, class, op, input, profile, span, &mut out);
        self.apply(ctx, out);
        job_id
    }

    /// Records a response; returns the dispatch if it was outstanding.
    pub fn on_response(&mut self, ctx: &mut Ctx<'_, SnsMsg>, job_id: u64) -> Option<Outstanding> {
        let now = ctx.now();
        let mut out = Vec::new();
        let o = self.plane.on_response(job_id, now, &mut out);
        self.apply(ctx, out);
        o
    }

    /// Handles a dispatch timeout: evict the suspected-dead worker from
    /// the hint cache and retry elsewhere, or give up (§3.1.8).
    pub fn on_timeout(&mut self, ctx: &mut Ctx<'_, SnsMsg>, job_id: u64) -> TimeoutVerdict {
        let now = ctx.now();
        let mut out = Vec::new();
        let verdict = self.plane.on_timeout(ctx.rng(), now, job_id, &mut out);
        self.apply(ctx, out);
        verdict
    }

    /// Jobs currently outstanding (waiting on workers).
    pub fn outstanding_count(&self) -> usize {
        self.plane.outstanding_count()
    }

    /// Pending dispatches of `class` that have no worker yet get sent as
    /// soon as hints advertise one (called after each beacon).
    pub fn flush_pending(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        let mut out = Vec::new();
        self.plane.flush_pending(ctx.rng(), &mut out);
        self.apply(ctx, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::WorkerHint;
    use sns_sim::NodeId;
    use std::collections::BTreeMap;

    fn beacon(workers: &[(u64, f64)]) -> BeaconData {
        let mut hints = BTreeMap::new();
        hints.insert(
            WorkerClass::new("w"),
            workers
                .iter()
                .map(|&(id, q)| WorkerHint {
                    worker: ComponentId(id),
                    node: NodeId(0),
                    est_qlen: q,
                    overflow: false,
                })
                .collect(),
        );
        BeaconData {
            manager: ComponentId(99),
            incarnation: 1,
            hints,
            at: SimTime::from_secs(1),
        }
    }

    #[test]
    fn beacon_updates_membership_and_detects_new_manager() {
        let mut stub = ManagerStub::new(SnsConfig::default());
        assert!(stub.on_beacon(&beacon(&[(1, 0.0), (2, 3.0)])));
        assert_eq!(stub.manager(), Some(ComponentId(99)));
        assert_eq!(
            stub.workers_of(&"w".into()),
            vec![ComponentId(1), ComponentId(2)]
        );
        // Same manager, same incarnation: not new.
        assert!(!stub.on_beacon(&beacon(&[(1, 0.0)])));
        let mut b2 = beacon(&[(1, 0.0)]);
        b2.incarnation = 2;
        assert!(stub.on_beacon(&b2), "new incarnation requires re-register");
    }

    #[test]
    fn unknown_job_response_is_none() {
        let mut stub = ManagerStub::new(SnsConfig::default());
        assert!(stub
            .plane
            .on_response(42, SimTime::ZERO, &mut Vec::new())
            .is_none());
    }
}
