//! The centralised load-balancing manager (§2.2.2, §3.1.2, §4.5).
//!
//! All manager state is **soft** (§3.1.3): the worker registry is rebuilt
//! from registrations triggered by the manager's own beacons, and load
//! figures are refreshed by periodic reports. A restarted manager
//! therefore needs no recovery code at all.
//!
//! Every *decision* — placement, threshold-H spawning, reaping, rival
//! step-down, process-peer restarts — lives in the sans-IO
//! [`ControlPlane`] ([`crate::control`]), which the threaded runtime
//! drives too. This component is the simulator driver: it snapshots the
//! cluster into a [`ClusterView`], invokes one plane handler per engine
//! callback, and applies the returned [`ControlEffect`]s in order onto
//! engine calls (`ctx.spawn`, `ctx.multicast`, `ctx.watch`, stats).
//! Worker/front-end *factories* stay here — building components is I/O
//! from the plane's point of view.

use std::collections::BTreeMap;
use std::sync::Arc;

use sns_sim::engine::{Component, Ctx};
use sns_sim::{ComponentId, GroupId, NodeId};

use crate::control::{
    ClusterView, ControlConfig, ControlEffect, ControlPlane, NodeLoad, SpawnPolicy,
};
use crate::msg::SnsMsg;
use crate::{SnsConfig, WorkerClass};

/// Builds a fresh worker component (a `WorkerStub` around new service
/// logic) for a class. Invoked for demand spawning and crash restarts.
pub type WorkerFactory = Box<dyn FnMut() -> Box<dyn Component<SnsMsg>> + Send>;

/// Builds a replacement front end (process-peer restart).
pub type FrontEndFactory = Box<dyn FnMut() -> Box<dyn Component<SnsMsg>> + Send>;

/// A class's scaling policy plus the factory that builds its workers.
pub struct WorkerSpec {
    /// The pure scaling policy (shared with the threaded runtime).
    pub policy: SpawnPolicy,
    /// The factory.
    pub factory: WorkerFactory,
}

impl WorkerSpec {
    /// Typical spec for an auto-scaled, restartable worker class.
    pub fn scaled(min_workers: u32, factory: WorkerFactory) -> Self {
        WorkerSpec {
            policy: SpawnPolicy::scaled(min_workers),
            factory,
        }
    }

    /// Spec for pinned, non-scaled workers (cache partitions, search
    /// partitions): exactly `n`, restarted on crash.
    pub fn pinned(n: u32, factory: WorkerFactory) -> Self {
        WorkerSpec {
            policy: SpawnPolicy::pinned(n),
            factory,
        }
    }
}

/// Manager construction parameters.
pub struct ManagerConfig {
    /// Layer timing/policy knobs.
    pub sns: SnsConfig,
    /// Beacon multicast group.
    pub beacon_group: GroupId,
    /// Monitor multicast group.
    pub monitor_group: GroupId,
    /// This incarnation (strictly greater than any predecessor's).
    pub incarnation: u64,
    /// Scaling policy + factory per worker class.
    pub classes: BTreeMap<WorkerClass, WorkerSpec>,
    /// Factory for restarting dead front ends (process peers).
    pub fe_factory: Option<FrontEndFactory>,
}

/// The manager component: the simulator driver for [`ControlPlane`].
pub struct Manager {
    beacon_group: GroupId,
    monitor_group: GroupId,
    factories: BTreeMap<WorkerClass, WorkerFactory>,
    fe_factory: Option<FrontEndFactory>,
    plane: ControlPlane,
}

impl Manager {
    /// Timer token for the beacon/policy tick.
    const TICK: u64 = 0;

    /// Creates a manager.
    pub fn new(cfg: ManagerConfig) -> Self {
        let mut plane = ControlPlane::new(ControlConfig {
            sns: cfg.sns,
            incarnation: cfg.incarnation,
            restart_front_ends: cfg.fe_factory.is_some(),
        });
        let mut factories = BTreeMap::new();
        for (class, spec) in cfg.classes {
            plane.add_class(class.clone(), spec.policy);
            factories.insert(class, spec.factory);
        }
        Manager {
            beacon_group: cfg.beacon_group,
            monitor_group: cfg.monitor_group,
            factories,
            fe_factory: cfg.fe_factory,
            plane,
        }
    }

    /// The plane's beacon period (timer re-arm).
    fn beacon_period(&self) -> std::time::Duration {
        self.plane.sns().beacon_period
    }

    /// Snapshots the alive cluster for the plane's placement decisions.
    fn view(&self, ctx: &Ctx<'_, SnsMsg>) -> ClusterView {
        let load = |ctx: &Ctx<'_, SnsMsg>, nodes: Vec<NodeId>| -> Vec<NodeLoad> {
            nodes
                .into_iter()
                .map(|node| NodeLoad {
                    node,
                    components: ctx.components_on(node).len() as u32,
                })
                .collect()
        };
        ClusterView {
            dedicated: load(ctx, ctx.nodes_with_tag("dedicated")),
            overflow: load(ctx, ctx.nodes_with_tag("overflow")),
            pinned_alive: self
                .plane
                .pinned_nodes()
                .into_iter()
                .map(|n| (n, ctx.node_alive(n)))
                .collect(),
            spawn_latency: ctx.spawn_latency(),
        }
    }

    /// Applies plane effects, in order, onto engine calls.
    fn apply(&mut self, ctx: &mut Ctx<'_, SnsMsg>, effects: Vec<ControlEffect>) {
        for effect in effects {
            match effect {
                ControlEffect::Spawn {
                    token,
                    class,
                    node,
                    overflow: _,
                } => {
                    let comp = (self
                        .factories
                        .get_mut(&class)
                        .expect("plane only spawns registered classes"))(
                    );
                    let kind = crate::intern_class(class.name());
                    if let Some(spawned) = ctx.spawn(node, comp, kind) {
                        // Watch from birth: a worker dying before it
                        // registers must still trigger process-peer
                        // recovery.
                        ctx.watch(spawned);
                        self.plane.confirm_spawn(token, spawned);
                    }
                }
                ControlEffect::SpawnFrontEnd { node } => {
                    if let Some(factory) = self.fe_factory.as_mut() {
                        let comp = factory();
                        ctx.spawn(node, comp, "frontend");
                    }
                }
                ControlEffect::Shutdown { worker } => ctx.send(worker, SnsMsg::Shutdown),
                ControlEffect::Beacon(data) => {
                    ctx.multicast(self.beacon_group, SnsMsg::Beacon(data));
                }
                ControlEffect::Watch(id) => ctx.watch(id),
                ControlEffect::Unwatch(id) => ctx.unwatch(id),
                ControlEffect::Emit(ev) => {
                    ctx.multicast(self.monitor_group, SnsMsg::Monitor(Arc::new(ev)));
                }
                ControlEffect::Incr { key, n } => ctx.stats().incr(key, n),
                ControlEffect::Sample { key, at, value } => ctx.stats().sample(key, at, value),
                ControlEffect::StepDown => ctx.exit(),
            }
        }
    }

    /// Load reports processed (the §4.6 manager-capacity experiment reads
    /// this).
    pub fn load_reports_handled(&self) -> u64 {
        self.plane.load_reports_handled()
    }
}

impl Component<SnsMsg> for Manager {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        // The manager listens on its own beacon group to detect rival
        // incarnations (duplicate-restart resolution).
        ctx.join(self.beacon_group);
        let now = ctx.now();
        let me = ctx.me();
        let node = ctx.my_node();
        let view = self.view(ctx);
        let mut out = Vec::new();
        self.plane.on_start(now, me, node, &view, &mut out);
        self.apply(ctx, out);
        ctx.timer(self.beacon_period(), Self::TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _from: ComponentId, msg: SnsMsg) {
        let mut out = Vec::new();
        match msg {
            SnsMsg::RegisterWorker {
                worker,
                class,
                node,
                overflow,
            } => {
                let now = ctx.now();
                self.plane
                    .on_register_worker(worker, class, node, overflow, now, &mut out);
            }
            SnsMsg::DeregisterWorker { worker } => {
                self.plane.on_deregister_worker(worker, &mut out);
            }
            SnsMsg::LoadReport {
                worker,
                class,
                qlen,
            } => {
                let now = ctx.now();
                // Placement of an unknown (adopted) worker; pure queries,
                // so resolving them up front is observably identical.
                let node = ctx.node_of(worker).unwrap_or(NodeId(0));
                let overflow = ctx.node_tag(node).as_deref() == Some("overflow");
                self.plane
                    .on_load_report(worker, class, qlen, now, || (node, overflow), &mut out);
            }
            SnsMsg::NeedWorker { fe: _, class } => {
                let now = ctx.now();
                let view = self.view(ctx);
                self.plane.on_need_worker(&class, now, &view, &mut out);
            }
            SnsMsg::RegisterFrontEnd { fe, node } => {
                self.plane.on_register_front_end(fe, node, &mut out);
            }
            SnsMsg::DrainNode { node } => {
                self.plane.on_drain_node(node, &mut out);
            }
            SnsMsg::UndrainNode { node } => {
                self.plane.on_undrain_node(node, &mut out);
            }
            SnsMsg::UpgradeNode { node } => {
                self.plane.on_upgrade_node(node, &mut out);
            }
            SnsMsg::Beacon(b) => {
                self.plane.on_rival_beacon(&b, &mut out);
            }
            _ => {}
        }
        self.apply(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        if token != Self::TICK {
            return;
        }
        let now = ctx.now();
        let view = self.view(ctx);
        let mut out = Vec::new();
        self.plane.on_tick(now, &view, &mut out);
        self.apply(ctx, out);
        ctx.timer(self.beacon_period(), Self::TICK);
    }

    fn on_peer_death(&mut self, ctx: &mut Ctx<'_, SnsMsg>, peer: ComponentId) {
        let now = ctx.now();
        let view = self.view(ctx);
        let mut out = Vec::new();
        self.plane.on_peer_death(peer, now, &view, &mut out);
        self.apply(ctx, out);
    }

    fn kind(&self) -> &'static str {
        "manager"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{WorkerLogic, WorkerStub, WorkerStubConfig};
    use crate::{Blob, Payload};
    use sns_sim::engine::{NodeSpec, Sim, SimConfig};
    use sns_sim::network::IdealNetwork;
    use sns_sim::rng::Pcg32;
    use sns_sim::time::SimTime;
    use std::time::Duration;

    struct Sleepy;
    impl WorkerLogic for Sleepy {
        fn class(&self) -> WorkerClass {
            "sleepy".into()
        }
        fn service_time(
            &mut self,
            _j: &crate::msg::Job,
            _now: SimTime,
            _r: &mut Pcg32,
        ) -> Duration {
            Duration::from_millis(40)
        }
        fn process(
            &mut self,
            _j: &crate::msg::Job,
            _now: SimTime,
            _r: &mut Pcg32,
        ) -> Result<Payload, crate::worker::WorkerError> {
            Ok(Blob::payload(100, "done"))
        }
    }

    fn factory(beacon: GroupId, monitor: GroupId) -> WorkerFactory {
        Box::new(move || {
            Box::new(WorkerStub::new(
                Box::new(Sleepy),
                WorkerStubConfig {
                    beacon_group: beacon,
                    monitor_group: monitor,
                    report_period: Duration::from_millis(500),
                    cost_weight_unit: None,
                },
            ))
        })
    }

    fn build(
        nodes: usize,
        overflow_nodes: usize,
        min_workers: u32,
    ) -> (Sim<SnsMsg, IdealNetwork>, ComponentId) {
        let mut sim: Sim<SnsMsg, IdealNetwork> =
            Sim::new(SimConfig::default(), IdealNetwork::default());
        for _ in 0..nodes {
            sim.add_node(NodeSpec::new(1, "dedicated"));
        }
        for _ in 0..overflow_nodes {
            sim.add_node(NodeSpec::new(1, "overflow"));
        }
        let beacon = sim.create_group();
        let monitor = sim.create_group();
        let mut classes = BTreeMap::new();
        classes.insert(
            WorkerClass::new("sleepy"),
            WorkerSpec::scaled(min_workers, factory(beacon, monitor)),
        );
        let mgr = Manager::new(ManagerConfig {
            sns: SnsConfig::default(),
            beacon_group: beacon,
            monitor_group: monitor,
            incarnation: 1,
            classes,
            fe_factory: None,
        });
        let node0 = sim.nodes_with_tag("dedicated")[0];
        let mid = sim.spawn(node0, Box::new(mgr), "manager");
        (sim, mid)
    }

    #[test]
    fn bootstraps_min_workers() {
        let (mut sim, _) = build(3, 0, 2);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.components_of_kind("sleepy").len(), 2);
        assert_eq!(sim.stats().counter("manager.spawns"), 2);
    }

    #[test]
    fn crash_restart_process_peer() {
        let (mut sim, _) = build(3, 0, 1);
        sim.run_until(SimTime::from_secs(3));
        let w = sim.components_of_kind("sleepy")[0];
        sim.kill_component(w);
        sim.run_until(SimTime::from_secs(8));
        let workers = sim.components_of_kind("sleepy");
        assert_eq!(workers.len(), 1, "crashed worker must be restarted");
        assert_ne!(workers[0], w, "it is a fresh process");
        assert_eq!(sim.stats().counter("manager.worker_deaths"), 1);
    }

    #[test]
    fn spawns_on_demand_when_fe_needs_class() {
        let (mut sim, mgr) = build(2, 0, 0);
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.components_of_kind("sleepy").is_empty());
        sim.inject(
            mgr,
            SnsMsg::NeedWorker {
                fe: ComponentId::EXTERNAL,
                class: "sleepy".into(),
            },
        );
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.components_of_kind("sleepy").len(), 1);
    }

    #[test]
    fn rival_manager_steps_down() {
        let (mut sim, _mgr1) = build(2, 0, 0);
        sim.run_until(SimTime::from_secs(1));
        // Spawn a rival with a higher incarnation on node 1.
        let beacon = GroupId(0);
        let monitor = GroupId(1);
        let node1 = sim.nodes_with_tag("dedicated")[1];
        let rival = Manager::new(ManagerConfig {
            sns: SnsConfig::default(),
            beacon_group: beacon,
            monitor_group: monitor,
            incarnation: 2,
            classes: BTreeMap::new(),
            fe_factory: None,
        });
        sim.spawn(node1, Box::new(rival), "manager");
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(
            sim.components_of_kind("manager").len(),
            1,
            "exactly one manager survives"
        );
        assert_eq!(sim.stats().counter("manager.stepdowns"), 1);
    }

    #[test]
    fn overflow_pool_used_when_dedicated_full() {
        // One dedicated node, max_per_node 4 via scaled() policy; demand
        // min_workers 6 so two land on overflow.
        let (mut sim, _) = build(1, 2, 6);
        sim.run_until(SimTime::from_secs(6));
        assert_eq!(sim.components_of_kind("sleepy").len(), 6);
        assert!(sim.stats().counter("manager.overflow_spawns") >= 2);
    }
}
