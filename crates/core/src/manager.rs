//! The centralised load-balancing manager (§2.2.2, §3.1.2, §4.5).
//!
//! All manager state is **soft** (§3.1.3): the worker registry is rebuilt
//! from registrations triggered by the manager's own beacons, and load
//! figures are refreshed by periodic reports. A restarted manager
//! therefore needs no recovery code at all.
//!
//! Responsibilities:
//! * track workers and their loads (weighted moving averages of reported
//!   queue lengths);
//! * beacon its existence plus load-balancing hints on the well-known
//!   multicast group (the level of indirection that lets components find
//!   each other, §3.1.2);
//! * spawn workers on demand: when a class's average queue estimate
//!   crosses the threshold *H*, spawn one and disable spawning for *D*
//!   seconds (§4.5); prefer dedicated nodes, then recruit the overflow
//!   pool (§2.2.3);
//! * reap workers (overflow first) after sustained low load;
//! * process-peer fault tolerance: watch workers and front ends via the
//!   engine's broken-connection detection and restart them (§3.1.3).

use std::collections::BTreeMap;
use std::sync::Arc;

use sns_sim::engine::{Component, Ctx};
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, GroupId, NodeId};

use crate::monitor::MonitorEvent;
use crate::msg::{BeaconData, SnsMsg, WorkerHint};
use crate::{SnsConfig, WorkerClass};

/// Builds a fresh worker component (a `WorkerStub` around new service
/// logic) for a class. Invoked for demand spawning and crash restarts.
pub type WorkerFactory = Box<dyn FnMut() -> Box<dyn Component<SnsMsg>> + Send>;

/// Builds a replacement front end (process-peer restart).
pub type FrontEndFactory = Box<dyn FnMut() -> Box<dyn Component<SnsMsg>> + Send>;

/// Per-class scaling policy.
pub struct SpawnPolicy {
    /// Never fewer than this many workers (bootstrap + crash restarts).
    pub min_workers: u32,
    /// Hard cap on concurrently live workers of this class (0 = no cap).
    pub max_workers: u32,
    /// At most this many workers of this class per node.
    pub max_per_node: u32,
    /// Whether the threshold-H autoscaler manages this class (HotBot's
    /// pinned partition workers set this false, §3.2).
    pub auto_scale: bool,
    /// Restart crashed workers of this class.
    pub restart_on_crash: bool,
    /// Bind this class to one node (HotBot partition workers, §3.2:
    /// "All workers bound to their nodes"). While the node is down the
    /// class simply cannot run — coverage degrades instead.
    pub pinned_node: Option<NodeId>,
    /// The factory.
    pub factory: WorkerFactory,
}

impl SpawnPolicy {
    /// Typical policy for an auto-scaled, restartable worker class.
    pub fn scaled(min_workers: u32, factory: WorkerFactory) -> Self {
        SpawnPolicy {
            min_workers,
            max_workers: 0,
            max_per_node: 4,
            auto_scale: true,
            restart_on_crash: true,
            pinned_node: None,
            factory,
        }
    }

    /// Policy for pinned, non-scaled workers (cache partitions, search
    /// partitions): exactly `n`, restarted on crash.
    pub fn pinned(n: u32, factory: WorkerFactory) -> Self {
        SpawnPolicy {
            min_workers: n,
            max_workers: n,
            max_per_node: 1,
            auto_scale: false,
            restart_on_crash: true,
            pinned_node: None,
            factory,
        }
    }
}

/// Manager construction parameters.
pub struct ManagerConfig {
    /// Layer timing/policy knobs.
    pub sns: SnsConfig,
    /// Beacon multicast group.
    pub beacon_group: GroupId,
    /// Monitor multicast group.
    pub monitor_group: GroupId,
    /// This incarnation (strictly greater than any predecessor's).
    pub incarnation: u64,
    /// Scaling policy per worker class.
    pub classes: BTreeMap<WorkerClass, SpawnPolicy>,
    /// Factory for restarting dead front ends (process peers).
    pub fe_factory: Option<FrontEndFactory>,
}

#[derive(Debug, Clone)]
struct WorkerInfo {
    class: WorkerClass,
    node: NodeId,
    overflow: bool,
    /// Weighted moving average of reported queue length.
    wma: f64,
    last_report: SimTime,
}

#[derive(Debug, Default, Clone)]
struct ClassRuntime {
    last_spawn: Option<SimTime>,
    low_since: Option<SimTime>,
    /// Cached interned name of the class's average-queue series, so the
    /// periodic rebalance pass never allocates.
    avg_qlen_key: Option<sns_sim::MetricKey>,
}

/// A spawn issued whose worker has not yet registered.
#[derive(Debug, Clone)]
struct PendingSpawn {
    class: WorkerClass,
    node: NodeId,
    at: SimTime,
}

/// The manager component.
pub struct Manager {
    cfg: ManagerConfig,
    workers: BTreeMap<ComponentId, WorkerInfo>,
    fes: BTreeMap<ComponentId, NodeId>,
    runtime: BTreeMap<WorkerClass, ClassRuntime>,
    pending: BTreeMap<ComponentId, PendingSpawn>,
    /// Nodes taken out of service for hot upgrades (§2.2).
    drained: std::collections::BTreeSet<NodeId>,
    load_reports_handled: u64,
    started_at: Option<SimTime>,
}

impl Manager {
    /// Timer token for the beacon/policy tick.
    const TICK: u64 = 0;

    /// Creates a manager.
    pub fn new(cfg: ManagerConfig) -> Self {
        Manager {
            cfg,
            workers: BTreeMap::new(),
            fes: BTreeMap::new(),
            runtime: BTreeMap::new(),
            pending: BTreeMap::new(),
            drained: std::collections::BTreeSet::new(),
            load_reports_handled: 0,
            started_at: None,
        }
    }

    fn pending_of_class(&self, class: &WorkerClass) -> u32 {
        self.pending.values().filter(|p| &p.class == class).count() as u32
    }

    fn live_of_class(&self, class: &WorkerClass) -> Vec<(ComponentId, &WorkerInfo)> {
        self.workers
            .iter()
            .filter(|(_, w)| &w.class == class)
            .map(|(&id, w)| (id, w))
            .collect()
    }

    fn monitor(&self, ctx: &mut Ctx<'_, SnsMsg>, ev: MonitorEvent) {
        ctx.multicast(self.cfg.monitor_group, SnsMsg::Monitor(Arc::new(ev)));
    }

    /// Chooses a node for a new worker of `class`: dedicated nodes first
    /// (fewest workers of this class, then fewest total), then the
    /// overflow pool (§2.2.3). Returns the node and whether it is
    /// overflow.
    fn choose_node(
        &self,
        ctx: &Ctx<'_, SnsMsg>,
        class: &WorkerClass,
        max_per_node: u32,
    ) -> Option<(NodeId, bool)> {
        for (tag, is_overflow) in [("dedicated", false), ("overflow", true)] {
            let nodes = ctx.nodes_with_tag(tag);
            let mut best: Option<(u32, u32, NodeId)> = None;
            for node in nodes {
                if self.drained.contains(&node) {
                    continue;
                }
                let pending_here = self
                    .pending
                    .values()
                    .filter(|p| p.node == node && &p.class == class)
                    .count() as u32;
                let mine = self
                    .workers
                    .values()
                    .filter(|w| w.node == node && &w.class == class)
                    .count() as u32
                    + pending_here;
                if max_per_node > 0 && mine >= max_per_node {
                    continue;
                }
                let total = ctx.components_on(node).len() as u32;
                let cand = (mine, total, node);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
            if let Some((_, _, node)) = best {
                return Some((node, is_overflow));
            }
        }
        None
    }

    fn spawn_worker(&mut self, ctx: &mut Ctx<'_, SnsMsg>, class: &WorkerClass) -> bool {
        let Some(policy) = self.cfg.classes.get(class) else {
            return false;
        };
        let live = self.live_of_class(class).len() as u32;
        let pending = self.pending_of_class(class);
        if policy.max_workers > 0 && live + pending >= policy.max_workers {
            return false;
        }
        let max_per_node = policy.max_per_node;
        let placement = match policy.pinned_node {
            Some(n) if self.drained.contains(&n) => None,
            Some(n) if ctx.node_alive(n) => Some((n, false)),
            Some(_) => None, // pinned node is down: the class waits
            None => self.choose_node(ctx, class, max_per_node),
        };
        let Some((node, overflow)) = placement else {
            self.monitor(
                ctx,
                MonitorEvent::Warning(format!("no node available to spawn {class}")),
            );
            ctx.stats().incr("manager.spawn_no_node", 1);
            return false;
        };
        let comp = (self
            .cfg
            .classes
            .get_mut(class)
            .expect("checked above")
            .factory)();
        let kind = crate::intern_class(class.name());
        let Some(spawned) = ctx.spawn(node, comp, kind) else {
            return false;
        };
        // Watch from birth: a worker dying before it registers must still
        // trigger process-peer recovery.
        ctx.watch(spawned);
        let now = ctx.now();
        self.pending.insert(
            spawned,
            PendingSpawn {
                class: class.clone(),
                node,
                at: now,
            },
        );
        let rt = self.runtime.entry(class.clone()).or_default();
        rt.last_spawn = Some(now);
        ctx.stats().incr("manager.spawns", 1);
        if overflow {
            ctx.stats().incr("manager.overflow_spawns", 1);
        }
        self.monitor(
            ctx,
            MonitorEvent::SpawnedWorker {
                class: class.clone(),
                node,
                overflow,
            },
        );
        true
    }

    fn beacon(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        let mut hints: BTreeMap<WorkerClass, Vec<WorkerHint>> = BTreeMap::new();
        for (&id, w) in &self.workers {
            hints.entry(w.class.clone()).or_default().push(WorkerHint {
                worker: id,
                node: w.node,
                est_qlen: w.wma,
                overflow: w.overflow,
            });
        }
        let me = ctx.me();
        let data = BeaconData {
            manager: me,
            incarnation: self.cfg.incarnation,
            hints,
            at: ctx.now(),
        };
        ctx.multicast(self.cfg.beacon_group, SnsMsg::Beacon(Arc::new(data)));
        ctx.stats().incr("manager.beacons", 1);
    }

    fn policy_tick(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        let now = ctx.now();
        // Soft-state rebuild grace: a (re)started manager waits two
        // beacon rounds for surviving workers to re-register before
        // enforcing class minimums, otherwise it would double-spawn
        // workers that are alive and about to announce themselves
        // (§3.1.3).
        let grace = self.cfg.sns.beacon_period * 2;
        let in_grace = self.started_at.is_some_and(|t| now.since(t) < grace);
        // Expire pending spawns that never registered (their component is
        // watched, so deaths are handled; this is a backstop against lost
        // registrations).
        let expiry = ctx.spawn_latency() + self.cfg.sns.beacon_period * 2;
        self.pending.retain(|_, p| now.since(p.at) < expiry);
        // Timeout-based failure inference (§2.2.4): a worker whose load
        // reports have stopped is presumed unreachable (SAN partition,
        // wedged process). Drop it from the soft state — hints stop
        // advertising it next beacon — and replace it on a still-visible
        // node. If it was merely partitioned, it re-adopts itself with
        // its next report and any surplus is reaped.
        if !in_grace {
            let report_timeout = self.cfg.sns.worker_report_timeout;
            let silent: Vec<ComponentId> = self
                .workers
                .iter()
                .filter(|(_, w)| now.since(w.last_report) > report_timeout)
                .map(|(&id, _)| id)
                .collect();
            for id in silent {
                let Some(info) = self.workers.remove(&id) else {
                    continue;
                };
                ctx.unwatch(id);
                ctx.stats().incr("manager.report_timeouts", 1);
                self.monitor(
                    ctx,
                    MonitorEvent::Warning(format!(
                        "worker {id} ({}) stopped reporting; replacing it",
                        info.class
                    )),
                );
                let restart = self
                    .cfg
                    .classes
                    .get(&info.class)
                    .map(|p| p.restart_on_crash)
                    .unwrap_or(false);
                if restart {
                    self.spawn_worker(ctx, &info.class);
                }
            }
        }
        let classes: Vec<WorkerClass> = self.cfg.classes.keys().cloned().collect();
        for class in classes {
            let (min_workers, auto_scale, h, d) = {
                let p = &self.cfg.classes[&class];
                (
                    p.min_workers,
                    p.auto_scale,
                    self.cfg.sns.spawn_threshold_h,
                    self.cfg.sns.spawn_cooldown_d,
                )
            };
            let live: Vec<(ComponentId, f64, bool)> = self
                .workers
                .iter()
                .filter(|(_, w)| w.class == class)
                .map(|(&id, w)| (id, w.wma, w.overflow))
                .collect();
            let live_n = live.len() as u32;
            let pending = self.pending_of_class(&class);

            // Bootstrap / crash replacement up to the class minimum.
            if in_grace {
                continue;
            }
            if live_n + pending < min_workers {
                let need = min_workers - live_n - pending;
                for _ in 0..need {
                    if !self.spawn_worker(ctx, &class) {
                        break;
                    }
                }
                continue;
            }
            if !auto_scale || live_n == 0 {
                // Pinned classes can exceed strength when a partitioned
                // worker re-adopts itself after its replacement spawned:
                // reap the surplus gracefully.
                let max = self.cfg.classes[&class].max_workers;
                if max > 0 && live_n > max {
                    let mut ids: Vec<ComponentId> = live.iter().map(|&(id, _, _)| id).collect();
                    ids.sort();
                    for &victim in ids.iter().rev().take((live_n - max) as usize) {
                        ctx.send(victim, SnsMsg::Shutdown);
                        ctx.stats().incr("manager.reaps", 1);
                        self.monitor(
                            ctx,
                            MonitorEvent::ReapedWorker {
                                worker: victim,
                                class: class.clone(),
                            },
                        );
                    }
                }
                continue;
            }

            let avg: f64 = live.iter().map(|&(_, wma, _)| wma).sum::<f64>() / live_n as f64;
            if !self.runtime.contains_key(&class) {
                self.runtime.insert(class.clone(), ClassRuntime::default());
            }
            let rt = self.runtime.get_mut(&class).expect("just ensured");
            let key = *rt.avg_qlen_key.get_or_insert_with(|| {
                sns_sim::MetricKey::new(&format!("manager.avg_qlen.{class}"))
            });
            ctx.stats().sample(key, now, avg);

            // Threshold-H spawning with cooldown D (§4.5).
            let in_cooldown = self
                .runtime
                .get(&class)
                .and_then(|r| r.last_spawn)
                .is_some_and(|t| now.since(t) < d);
            if avg > h && !in_cooldown {
                self.spawn_worker(ctx, &class);
                continue;
            }

            // Reaping after sustained low load (overflow nodes first).
            if avg < self.cfg.sns.reap_threshold && live_n > min_workers {
                let rt = self.runtime.entry(class.clone()).or_default();
                let since = *rt.low_since.get_or_insert(now);
                if now.since(since) >= self.cfg.sns.reap_idle_for {
                    rt.low_since = None;
                    let victim = live
                        .iter()
                        .max_by_key(|&&(id, _, overflow)| (overflow, id))
                        .map(|&(id, _, _)| id);
                    if let Some(victim) = victim {
                        let vclass = class.clone();
                        ctx.send(victim, SnsMsg::Shutdown);
                        ctx.stats().incr("manager.reaps", 1);
                        self.monitor(
                            ctx,
                            MonitorEvent::ReapedWorker {
                                worker: victim,
                                class: vclass,
                            },
                        );
                    }
                }
            } else {
                if let Some(rt) = self.runtime.get_mut(&class) {
                    rt.low_since = None;
                }
            }
        }
    }

    /// Load reports processed (the §4.6 manager-capacity experiment reads
    /// this).
    pub fn load_reports_handled(&self) -> u64 {
        self.load_reports_handled
    }
}

impl Component<SnsMsg> for Manager {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        self.started_at = Some(ctx.now());
        // The manager listens on its own beacon group to detect rival
        // incarnations (duplicate-restart resolution).
        ctx.join(self.cfg.beacon_group);
        let me = ctx.me();
        let node = ctx.my_node();
        self.monitor(
            ctx,
            MonitorEvent::Started {
                who: me,
                kind: "manager",
                node,
            },
        );
        self.beacon(ctx);
        self.policy_tick(ctx);
        ctx.timer(self.cfg.sns.beacon_period, Self::TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _from: ComponentId, msg: SnsMsg) {
        match msg {
            SnsMsg::RegisterWorker {
                worker,
                class,
                node,
                overflow,
            } => {
                if !self.workers.contains_key(&worker) {
                    ctx.watch(worker);
                    self.pending.remove(&worker);
                }
                let now = ctx.now();
                self.workers.insert(
                    worker,
                    WorkerInfo {
                        class,
                        node,
                        overflow,
                        wma: 0.0,
                        last_report: now,
                    },
                );
            }
            SnsMsg::DeregisterWorker { worker } => {
                ctx.unwatch(worker);
                self.workers.remove(&worker);
            }
            SnsMsg::LoadReport {
                worker,
                class,
                qlen,
            } => {
                self.load_reports_handled += 1;
                ctx.stats().incr("manager.load_reports", 1);
                let now = ctx.now();
                let alpha = self.cfg.sns.wma_alpha;
                match self.workers.get_mut(&worker) {
                    Some(info) => {
                        info.wma = alpha * f64::from(qlen) + (1.0 - alpha) * info.wma;
                        info.last_report = now;
                    }
                    None => {
                        // Report from a worker we lost track of (e.g. a
                        // restarted manager hearing loads before the
                        // worker re-registers): adopt it — soft state.
                        ctx.watch(worker);
                        let node = ctx.node_of(worker).unwrap_or(NodeId(0));
                        let overflow = ctx.node_tag(node).as_deref() == Some("overflow");
                        self.workers.insert(
                            worker,
                            WorkerInfo {
                                class,
                                node,
                                overflow,
                                wma: f64::from(qlen),
                                last_report: now,
                            },
                        );
                    }
                }
            }
            SnsMsg::NeedWorker { fe: _, class }
                if self.live_of_class(&class).is_empty() && self.pending_of_class(&class) == 0 =>
            {
                self.spawn_worker(ctx, &class);
            }
            SnsMsg::RegisterFrontEnd { fe, node } => {
                if !self.fes.contains_key(&fe) {
                    ctx.watch(fe);
                }
                self.fes.insert(fe, node);
            }
            SnsMsg::DrainNode { node } if !self.drained.contains(&node) => {
                {
                    self.drained.insert(node);
                    ctx.stats().incr("manager.drains", 1);
                    // Gracefully shut down every worker we run there; the
                    // graceful path deregisters, and the class minimums
                    // respawn replacements on other nodes.
                    let victims: Vec<ComponentId> = self
                        .workers
                        .iter()
                        .filter(|(_, w)| w.node == node)
                        .map(|(&id, _)| id)
                        .collect();
                    for v in victims {
                        ctx.send(v, SnsMsg::Shutdown);
                    }
                    self.monitor(
                        ctx,
                        MonitorEvent::Warning(format!("{node} drained for hot upgrade")),
                    );
                }
            }
            SnsMsg::UndrainNode { node } if self.drained.contains(&node) => {
                self.drained.remove(&node);
                ctx.stats().incr("manager.undrains", 1);
                self.monitor(
                    ctx,
                    MonitorEvent::Warning(format!("{node} returned to service")),
                );
            }
            SnsMsg::Beacon(b) => {
                // A rival manager: the (incarnation, id)-greater one wins;
                // the loser steps down (duplicate restart resolution).
                let me = ctx.me();
                if b.manager != me && (b.incarnation, b.manager) >= (self.cfg.incarnation, me) {
                    ctx.stats().incr("manager.stepdowns", 1);
                    ctx.exit();
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        if token != Self::TICK {
            return;
        }
        self.beacon(ctx);
        self.policy_tick(ctx);
        let me = ctx.me();
        self.monitor(
            ctx,
            MonitorEvent::Heartbeat {
                who: me,
                kind: "manager",
                load: self.workers.len() as f64,
            },
        );
        ctx.timer(self.cfg.sns.beacon_period, Self::TICK);
    }

    fn on_peer_death(&mut self, ctx: &mut Ctx<'_, SnsMsg>, peer: ComponentId) {
        // A spawn that died before registering counts as a worker death.
        if let Some(p) = self.pending.remove(&peer) {
            ctx.stats().incr("manager.worker_deaths", 1);
            let restart = self
                .cfg
                .classes
                .get(&p.class)
                .map(|pol| pol.restart_on_crash)
                .unwrap_or(false);
            if restart {
                self.spawn_worker(ctx, &p.class);
            }
            return;
        }
        if let Some(info) = self.workers.remove(&peer) {
            ctx.stats().incr("manager.worker_deaths", 1);
            let restart = self
                .cfg
                .classes
                .get(&info.class)
                .map(|p| p.restart_on_crash)
                .unwrap_or(false);
            if restart {
                // Process-peer restart (§3.1.3): possibly on a different
                // node (choose_node re-evaluates).
                self.spawn_worker(ctx, &info.class);
                let me = ctx.me();
                self.monitor(
                    ctx,
                    MonitorEvent::PeerRestarted {
                        by: me,
                        kind: "worker",
                    },
                );
            }
            return;
        }
        if self.fes.remove(&peer).is_some() {
            ctx.stats().incr("manager.fe_deaths", 1);
            // "The manager detects and restarts a crashed front end."
            let spawned = if let Some(factory) = self.cfg.fe_factory.as_mut() {
                let comp = factory();
                let node = self
                    .choose_node(ctx, &WorkerClass::new("frontend"), 0)
                    .map(|(n, _)| n);
                match node {
                    Some(n) => ctx.spawn(n, comp, "frontend").is_some(),
                    None => false,
                }
            } else {
                false
            };
            if spawned {
                let me = ctx.me();
                self.monitor(
                    ctx,
                    MonitorEvent::PeerRestarted {
                        by: me,
                        kind: "frontend",
                    },
                );
            }
        }
    }

    fn kind(&self) -> &'static str {
        "manager"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{WorkerLogic, WorkerStub, WorkerStubConfig};
    use crate::{Blob, Payload};
    use sns_sim::engine::{NodeSpec, Sim, SimConfig};
    use sns_sim::network::IdealNetwork;
    use sns_sim::rng::Pcg32;
    use std::time::Duration;

    struct Sleepy;
    impl WorkerLogic for Sleepy {
        fn class(&self) -> WorkerClass {
            "sleepy".into()
        }
        fn service_time(
            &mut self,
            _j: &crate::msg::Job,
            _now: SimTime,
            _r: &mut Pcg32,
        ) -> Duration {
            Duration::from_millis(40)
        }
        fn process(
            &mut self,
            _j: &crate::msg::Job,
            _now: SimTime,
            _r: &mut Pcg32,
        ) -> Result<Payload, crate::worker::WorkerError> {
            Ok(Blob::payload(100, "done"))
        }
    }

    fn factory(beacon: GroupId, monitor: GroupId) -> WorkerFactory {
        Box::new(move || {
            Box::new(WorkerStub::new(
                Box::new(Sleepy),
                WorkerStubConfig {
                    beacon_group: beacon,
                    monitor_group: monitor,
                    report_period: Duration::from_millis(500),
                    cost_weight_unit: None,
                },
            ))
        })
    }

    fn build(
        nodes: usize,
        overflow_nodes: usize,
        min_workers: u32,
    ) -> (Sim<SnsMsg, IdealNetwork>, ComponentId) {
        let mut sim: Sim<SnsMsg, IdealNetwork> =
            Sim::new(SimConfig::default(), IdealNetwork::default());
        for _ in 0..nodes {
            sim.add_node(NodeSpec::new(1, "dedicated"));
        }
        for _ in 0..overflow_nodes {
            sim.add_node(NodeSpec::new(1, "overflow"));
        }
        let beacon = sim.create_group();
        let monitor = sim.create_group();
        let mut classes = BTreeMap::new();
        classes.insert(
            WorkerClass::new("sleepy"),
            SpawnPolicy::scaled(min_workers, factory(beacon, monitor)),
        );
        let mgr = Manager::new(ManagerConfig {
            sns: SnsConfig::default(),
            beacon_group: beacon,
            monitor_group: monitor,
            incarnation: 1,
            classes,
            fe_factory: None,
        });
        let node0 = sim.nodes_with_tag("dedicated")[0];
        let mid = sim.spawn(node0, Box::new(mgr), "manager");
        (sim, mid)
    }

    #[test]
    fn bootstraps_min_workers() {
        let (mut sim, _) = build(3, 0, 2);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.components_of_kind("sleepy").len(), 2);
        assert_eq!(sim.stats().counter("manager.spawns"), 2);
    }

    #[test]
    fn crash_restart_process_peer() {
        let (mut sim, _) = build(3, 0, 1);
        sim.run_until(SimTime::from_secs(3));
        let w = sim.components_of_kind("sleepy")[0];
        sim.kill_component(w);
        sim.run_until(SimTime::from_secs(8));
        let workers = sim.components_of_kind("sleepy");
        assert_eq!(workers.len(), 1, "crashed worker must be restarted");
        assert_ne!(workers[0], w, "it is a fresh process");
        assert_eq!(sim.stats().counter("manager.worker_deaths"), 1);
    }

    #[test]
    fn spawns_on_demand_when_fe_needs_class() {
        let (mut sim, mgr) = build(2, 0, 0);
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.components_of_kind("sleepy").is_empty());
        sim.inject(
            mgr,
            SnsMsg::NeedWorker {
                fe: ComponentId::EXTERNAL,
                class: "sleepy".into(),
            },
        );
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.components_of_kind("sleepy").len(), 1);
    }

    #[test]
    fn rival_manager_steps_down() {
        let (mut sim, _mgr1) = build(2, 0, 0);
        sim.run_until(SimTime::from_secs(1));
        // Spawn a rival with a higher incarnation on node 1.
        let beacon = GroupId(0);
        let monitor = GroupId(1);
        let node1 = sim.nodes_with_tag("dedicated")[1];
        let rival = Manager::new(ManagerConfig {
            sns: SnsConfig::default(),
            beacon_group: beacon,
            monitor_group: monitor,
            incarnation: 2,
            classes: BTreeMap::new(),
            fe_factory: None,
        });
        sim.spawn(node1, Box::new(rival), "manager");
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(
            sim.components_of_kind("manager").len(),
            1,
            "exactly one manager survives"
        );
        assert_eq!(sim.stats().counter("manager.stepdowns"), 1);
    }

    #[test]
    fn overflow_pool_used_when_dedicated_full() {
        // One dedicated node, max_per_node 4 via scaled() policy; demand
        // min_workers 6 so two land on overflow.
        let (mut sim, _) = build(1, 2, 6);
        sim.run_until(SimTime::from_secs(6));
        assert_eq!(sim.components_of_kind("sleepy").len(), 6);
        assert!(sim.stats().counter("manager.overflow_spawns") >= 2);
    }
}
