//! Recovery-invariant plumbing: a tap that records every
//! [`MonitorEvent`] a cluster multicasts, and a trait for checkers that
//! replay the recorded stream and render a verdict.
//!
//! The paper argues (§3.1.6, §4.5) that the SNS layer masks worker
//! crashes, manager failover and beacon loss from clients. Asserting that
//! requires more than end-state spot checks: fault-injection harnesses
//! (see the `sns-chaos` crate) attach a [`MonitorTap`] to the monitor
//! multicast group, run a fault plan, then feed the timestamped event log
//! through [`Invariant`] implementations — "no unexplained crashes",
//! "every kill was followed by a respawn", and so on. The log also has a
//! [`MonitorLog::canonical`] rendering whose bytes are a pure function of
//! the event sequence, which is what the determinism suite compares
//! across same-seed same-plan runs.

use std::cell::RefCell;
use std::rc::Rc;

use sns_sim::engine::{Component, Ctx};
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, GroupId};

use crate::monitor::MonitorEvent;
use crate::msg::SnsMsg;

/// A recovery property checked against a recorded monitor-event stream.
///
/// Implementations accumulate state in [`Invariant::on_event`] and
/// deliver a pass/fail verdict afterwards; they are deliberately
/// post-hoc (replayed over a [`MonitorLog`]) so a single run can be
/// checked against many invariants without re-executing it.
pub trait Invariant {
    /// Stable name, used in failure reports (e.g. `"chaos.spawn_budget"`).
    fn name(&self) -> &'static str;

    /// Observes one event from the stream, in timestamp order.
    fn on_event(&mut self, at: SimTime, event: &MonitorEvent);

    /// The verdict after the whole stream was observed; `Err` carries a
    /// human-readable explanation of the violation.
    fn verdict(&self) -> Result<(), String>;
}

/// An ordered, timestamped record of every monitor event a tap saw.
#[derive(Debug, Clone, Default)]
pub struct MonitorLog {
    entries: Vec<(SimTime, MonitorEvent)>,
}

impl MonitorLog {
    /// Appends an event (called by [`MonitorTap`]).
    pub fn push(&mut self, at: SimTime, event: MonitorEvent) {
        self.entries.push((at, event));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded entries in arrival order.
    pub fn entries(&self) -> &[(SimTime, MonitorEvent)] {
        &self.entries
    }

    /// Count of events whose [`MonitorEvent::kind_key`] matches `key`.
    pub fn count(&self, key: &str) -> usize {
        self.entries
            .iter()
            .filter(|(_, e)| e.kind_key() == key)
            .count()
    }

    /// Arrival times of events whose kind key matches `key`.
    pub fn times_of(&self, key: &str) -> Vec<SimTime> {
        self.entries
            .iter()
            .filter(|(_, e)| e.kind_key() == key)
            .map(|&(at, _)| at)
            .collect()
    }

    /// Replays the stream through a checker and returns its verdict.
    pub fn check(&self, inv: &mut dyn Invariant) -> Result<(), String> {
        for (at, ev) in &self.entries {
            inv.on_event(*at, ev);
        }
        inv.verdict()
            .map_err(|e| format!("invariant '{}' violated: {e}", inv.name()))
    }

    /// A byte-stable rendering of the whole log: one line per event,
    /// `<nanoseconds> <canonical event>`. Two runs of the same seed and
    /// the same fault plan must produce identical bytes here.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (at, ev) in &self.entries {
            let _ = writeln!(out, "{}ns {}", at.as_nanos(), ev.canonical());
        }
        out
    }
}

/// Shared handle to a tap's log. `Rc` is sound here: the engine is
/// single-threaded and components never leave it.
pub type TapHandle = Rc<RefCell<MonitorLog>>;

/// A passive component that joins the monitor multicast group and records
/// every [`MonitorEvent`] it receives into a shared [`MonitorLog`].
///
/// Unlike [`crate::Monitor`] it keeps no derived state and raises no
/// alerts — it exists so harness code *outside* the simulation can
/// inspect the full event stream after (or during) a run.
pub struct MonitorTap {
    group: GroupId,
    log: TapHandle,
}

impl MonitorTap {
    /// Creates a tap on `group`; returns the component and the log handle
    /// the harness keeps.
    pub fn new(group: GroupId) -> (Self, TapHandle) {
        let log: TapHandle = Rc::new(RefCell::new(MonitorLog::default()));
        (
            MonitorTap {
                group,
                log: Rc::clone(&log),
            },
            log,
        )
    }
}

impl Component<SnsMsg> for MonitorTap {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        ctx.join(self.group);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _from: ComponentId, msg: SnsMsg) {
        if let SnsMsg::Monitor(ev) = msg {
            self.log.borrow_mut().push(ctx.now(), (*ev).clone());
        }
    }

    fn kind(&self) -> &'static str {
        "montap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_sim::engine::{NodeSpec, Sim, SimConfig};
    use sns_sim::network::IdealNetwork;
    use sns_sim::NodeId;
    use std::sync::Arc;
    use std::time::Duration;

    struct CountCrashes {
        max: usize,
        seen: usize,
    }

    impl Invariant for CountCrashes {
        fn name(&self) -> &'static str {
            "test.crash_budget"
        }
        fn on_event(&mut self, _at: SimTime, event: &MonitorEvent) {
            if event.kind_key() == "crashed" {
                self.seen += 1;
            }
        }
        fn verdict(&self) -> Result<(), String> {
            if self.seen <= self.max {
                Ok(())
            } else {
                Err(format!(
                    "{} crashes observed, budget {}",
                    self.seen, self.max
                ))
            }
        }
    }

    fn crash(worker: u64) -> MonitorEvent {
        MonitorEvent::WorkerCrashed {
            worker: ComponentId(worker),
            class: crate::WorkerClass::new("w"),
        }
    }

    #[test]
    fn log_counts_and_checks() {
        let mut log = MonitorLog::default();
        log.push(SimTime::from_secs(1), crash(5));
        log.push(SimTime::from_secs(2), MonitorEvent::Warning("hm".into()));
        log.push(SimTime::from_secs(3), crash(6));
        assert_eq!(log.len(), 3);
        assert_eq!(log.count("crashed"), 2);
        assert_eq!(
            log.times_of("crashed"),
            vec![SimTime::from_secs(1), SimTime::from_secs(3)]
        );
        assert!(log.check(&mut CountCrashes { max: 2, seen: 0 }).is_ok());
        let err = log
            .check(&mut CountCrashes { max: 1, seen: 0 })
            .unwrap_err();
        assert!(err.contains("test.crash_budget"), "{err}");
        assert!(err.contains("2 crashes"), "{err}");
    }

    #[test]
    fn canonical_is_stable_and_line_oriented() {
        let mut log = MonitorLog::default();
        log.push(
            SimTime::from_millis(1500),
            MonitorEvent::Heartbeat {
                who: ComponentId(3),
                kind: "worker",
                load: 1.5,
            },
        );
        log.push(
            SimTime::from_secs(2),
            MonitorEvent::Started {
                who: ComponentId(4),
                kind: "manager",
                node: NodeId(0),
            },
        );
        assert_eq!(
            log.canonical(),
            "1500000000ns heartbeat who=c3 kind=worker load=1.500000\n\
             2000000000ns started who=c4 kind=manager node=node0\n"
        );
    }

    #[test]
    fn tap_records_group_events() {
        struct Emitter {
            group: GroupId,
        }
        impl Component<SnsMsg> for Emitter {
            fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
                ctx.timer(Duration::from_millis(100), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, SnsMsg>, _: ComponentId, _: SnsMsg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _: u64) {
                let me = ctx.me();
                let node = ctx.my_node();
                ctx.multicast(
                    self.group,
                    SnsMsg::Monitor(Arc::new(MonitorEvent::Started {
                        who: me,
                        kind: "emitter",
                        node,
                    })),
                );
            }
        }
        let mut sim: Sim<SnsMsg, IdealNetwork> =
            Sim::new(SimConfig::default(), IdealNetwork::default());
        let n = sim.add_node(NodeSpec::new(1, "infra"));
        let g = sim.create_group();
        let (tap, log) = MonitorTap::new(g);
        sim.spawn(n, Box::new(tap), "montap");
        sim.spawn(n, Box::new(Emitter { group: g }), "emitter");
        sim.run();
        assert_eq!(log.borrow().count("started"), 1);
        assert!(log.borrow().canonical().contains("kind=emitter"));
    }
}
