//! Physical cluster shape shared by every service builder.
//!
//! The paper's services differ in their worker logic but not in their
//! skeleton: a pool of worker nodes on a SAN, a handful of front-end
//! nodes, and a seed for the deterministic engine (§2.1, Figure 1).
//! [`ClusterTopology`] captures exactly that shape so service builders
//! (`TranSendBuilder`, `HotBotBuilder`) can share one vocabulary and
//! experiments can move a topology between services unchanged.

use sns_san::SanConfig;

/// Engine-level cluster shape: seed, interconnect, node counts.
///
/// Service builders embed one of these and expose it through
/// `with_topology`; the per-field `with_*` helpers below make one-line
/// tweaks read naturally:
///
/// ```
/// use sns_core::topology::ClusterTopology;
///
/// let topo = ClusterTopology::default()
///     .with_seed(42)
///     .with_worker_nodes(16)
///     .with_frontends(2);
/// assert_eq!(topo.worker_nodes, 16);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterTopology {
    /// Deterministic engine seed.
    pub seed: u64,
    /// Interconnect (system-area network) model.
    pub san: SanConfig,
    /// Dedicated worker-pool nodes. Services reinterpret this as their
    /// natural unit: TranSend's distiller pool, HotBot's index
    /// partitions (one node each, §3.2).
    pub worker_nodes: usize,
    /// Front ends, each on its own node.
    pub frontends: usize,
    /// Cores per node (SPARC-era boxes: 1-2).
    pub cores_per_node: u32,
}

impl Default for ClusterTopology {
    fn default() -> Self {
        ClusterTopology {
            seed: 0x0053_4e53, // "SNS"
            san: SanConfig::switched_100mbps(),
            worker_nodes: 8,
            frontends: 1,
            cores_per_node: 2,
        }
    }
}

impl ClusterTopology {
    /// Sets the engine seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the SAN model.
    pub fn with_san(mut self, san: SanConfig) -> Self {
        self.san = san;
        self
    }

    /// Sets the number of dedicated worker nodes.
    pub fn with_worker_nodes(mut self, n: usize) -> Self {
        self.worker_nodes = n;
        self
    }

    /// Sets the number of front ends.
    pub fn with_frontends(mut self, n: usize) -> Self {
        self.frontends = n;
        self
    }

    /// Sets the cores per node.
    pub fn with_cores_per_node(mut self, cores: u32) -> Self {
        self.cores_per_node = cores;
        self
    }
}
