//! Whole-component async bodies: the engine's "async component" kind.
//!
//! An [`AsyncComponent`] wraps one async body plus a private
//! [`Executor`] and adapts them to the legacy engine `Component`
//! trait. The engine keeps dispatching events exactly as before; the
//! adapter translates them (message → mailbox push, timer pop →
//! [`TimerHub::fire`]) and runs the executor, so every task wake-up is
//! keyed to an engine event and pops in seq order off the existing
//! `Scheduler` heap/wheel. After each run, newly armed sleeps drain
//! into engine timers and queued sends drain into `ctx.send` — in
//! emission order. Determinism therefore survives by construction:
//! the body's effects are a pure function of the engine's (already
//! bit-stable) event order.
//!
//! The rt driver (`sns_rt::exec::serve`) polls the *same* futures
//! with a [`super::WallClock`], parking on the executor's wake queue.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use sns_sim::engine::{Component, Ctx};
use sns_sim::time::SimTime;
use sns_sim::ComponentId;

use super::{
    mailbox, sleep, BoxFut, Executor, Mailbox, MailboxSender, Sleep, TimerHub, VirtualClock,
};

/// A queued effect of an async body, drained to the engine after each
/// executor run.
#[derive(Debug)]
enum AcOp<M> {
    Send(ComponentId, M),
    Incr(&'static str, u64),
    Observe(&'static str, f64),
}

/// The body's capability handle: the clock, sleeps, sends and stats.
/// Receiving happens on the [`Mailbox`] passed to the body.
#[derive(Debug)]
pub struct AcHandle<M> {
    clock: Arc<VirtualClock>,
    hub: Arc<TimerHub>,
    ops: Arc<Mutex<Vec<AcOp<M>>>>,
}

impl<M> Clone for AcHandle<M> {
    fn clone(&self) -> Self {
        AcHandle {
            clock: Arc::clone(&self.clock),
            hub: Arc::clone(&self.hub),
            ops: Arc::clone(&self.ops),
        }
    }
}

impl<M> AcHandle<M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        use super::Clock as _;
        self.clock.now()
    }

    /// The timer hub (for composing sleeps into `timeout`/`race`).
    pub fn hub(&self) -> &Arc<TimerHub> {
        &self.hub
    }

    /// Sleeps for `d` of virtual time.
    pub fn sleep(&self, d: Duration) -> Sleep {
        sleep(&self.hub, d)
    }

    /// Sends a message (delivered over the modelled network, in
    /// emission order).
    pub fn send(&self, to: ComponentId, msg: M) {
        self.ops
            .lock()
            .expect("async component ops poisoned")
            .push(AcOp::Send(to, msg));
    }

    /// Counts into the shared stats hub.
    pub fn incr(&self, key: &'static str, n: u64) {
        self.ops
            .lock()
            .expect("async component ops poisoned")
            .push(AcOp::Incr(key, n));
    }

    /// Samples into the shared stats hub.
    pub fn observe(&self, key: &'static str, v: f64) {
        self.ops
            .lock()
            .expect("async component ops poisoned")
            .push(AcOp::Observe(key, v));
    }
}

/// Builds the root task from its inbox and capability handle.
pub type AcBody<M> = Box<dyn FnOnce(Mailbox<(ComponentId, M)>, AcHandle<M>) -> BoxFut + Send>;

/// A body waiting for `on_start`, paired with the inbox it will own.
type PendingBody<M> = (Mailbox<(ComponentId, M)>, AcBody<M>);

/// An engine component whose behaviour is one async body (plus any
/// tasks it spawns on its private executor — all woken in engine event
/// order).
pub struct AsyncComponent<M> {
    kind: &'static str,
    clock: Arc<VirtualClock>,
    hub: Arc<TimerHub>,
    executor: Executor,
    inbox_tx: MailboxSender<(ComponentId, M)>,
    body: Option<PendingBody<M>>,
    handle: AcHandle<M>,
    exit_when_done: bool,
}

impl<M: Send + 'static> AsyncComponent<M> {
    /// Creates a component around `body`. `kind` is the engine kind
    /// tag harnesses query by.
    pub fn new(kind: &'static str, body: AcBody<M>) -> Self {
        let clock = VirtualClock::new();
        let hub = TimerHub::new(clock.clone() as Arc<dyn super::Clock>);
        let (inbox_tx, inbox) = mailbox();
        let handle = AcHandle {
            clock: Arc::clone(&clock),
            hub: Arc::clone(&hub),
            ops: Arc::new(Mutex::new(Vec::new())),
        };
        AsyncComponent {
            kind,
            clock,
            hub,
            executor: Executor::new(),
            inbox_tx,
            body: Some((inbox, body)),
            handle,
            exit_when_done: false,
        }
    }

    /// Exits the component when its root body (and every spawned task)
    /// finishes, instead of lingering.
    pub fn exit_when_done(mut self) -> Self {
        self.exit_when_done = true;
        self
    }

    /// Runs woken tasks, then drains sleeps into engine timers and
    /// sends/stats into the engine context — in emission order.
    fn run(&mut self, ctx: &mut Ctx<'_, M>) {
        self.clock.set(ctx.now());
        self.executor.run_ready();
        for (id, deadline) in self.hub.drain_armed() {
            ctx.timer(deadline.since(ctx.now()), id);
        }
        for op in self
            .handle
            .ops
            .lock()
            .expect("async component ops poisoned")
            .drain(..)
        {
            match op {
                AcOp::Send(to, msg) => ctx.send(to, msg),
                AcOp::Incr(key, n) => ctx.stats().incr(key, n),
                AcOp::Observe(key, v) => ctx.stats().observe(key, v),
            }
        }
        if self.exit_when_done && self.executor.is_empty() {
            ctx.exit();
        }
    }
}

impl<M: Send + 'static> Component<M> for AsyncComponent<M> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let (inbox, body) = self.body.take().expect("async component started twice");
        let fut = body(inbox, self.handle.clone());
        self.executor.spawn(fut);
        self.run(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ComponentId, msg: M) {
        self.inbox_tx.send((from, msg));
        self.run(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64) {
        // A cancelled sleep's engine timer pops into nothing: fire()
        // is a tombstoned no-op then, and no task wakes.
        self.hub.fire(token);
        self.run(ctx);
    }

    fn kind(&self) -> &'static str {
        self.kind
    }
}
