//! Deterministic async execution over virtual or wall-clock time.
//!
//! The paper's TACC programming model composes services from worker
//! modules; our components were hand-written state machines whose
//! control flow (timeouts, retries, multi-stage waits) was smeared
//! across `on_event` match arms. This module re-expresses that control
//! flow as `async fn` bodies polled by a deterministic executor — with
//! the **same futures** running under virtual time in the sim and under
//! wall-clock threads in `sns-rt`:
//!
//! * [`Clock`] — the virtual/wall split. [`VirtualClock`] is advanced
//!   by whoever drives the executor (the sim adapter sets it to
//!   `ctx.now()` before every poll); [`WallClock`] reads a monotonic
//!   `Instant` origin.
//! * [`TimerHub`] — the timer table behind [`sleep`]. Arming records a
//!   deadline; the sim adapter drains newly armed timers into engine
//!   timers (so sleeps pop in seq order off the existing `Scheduler`
//!   heap/wheel — determinism comes from the engine, not from here),
//!   while the rt driver parks until the earliest deadline.
//! * [`Mailbox`] — a typed inbox with an async [`Mailbox::recv`].
//! * [`timeout`] / [`race`] — give-up and hedged-retry combinators;
//!   the loser of a race is dropped, which cancels its timers.
//! * [`Executor`] — a std-only single-threaded task queue. Wakers are
//!   built with the std `Wake` adapter (the safe face of `RawWaker`);
//!   woken tasks are polled strictly in wake order, so task scheduling
//!   is a pure function of the event order that produced the wakes.
//!
//! Adapters keep migration incremental: [`component::AsyncComponent`]
//! runs a whole async body as a legacy engine `Component`, and
//! [`service::AsyncSvcLogic`] runs per-request async bodies behind the
//! legacy `ServiceLogic` trait (see `DESIGN.md` §6i).

pub mod component;
pub mod service;

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use sns_sim::time::SimTime;

/// A boxed task body: the unit the executor polls.
pub type BoxFut<T = ()> = Pin<Box<dyn Future<Output = T> + Send>>;

// ---------------------------------------------------------------------------
// Clock: the SimTime / wall-clock split.
// ---------------------------------------------------------------------------

/// A monotonic time source read by sleeps and bodies. The same future
/// works under either implementation — that is the whole point.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time on this clock's axis.
    fn now(&self) -> SimTime;
}

/// Virtual time: advanced explicitly by the driver (the sim adapter
/// sets it to `ctx.now()` before each poll). Stored as atomic
/// nanoseconds so clock reads never block.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Arc<Self> {
        Arc::new(VirtualClock::default())
    }

    /// Advances (or rewinds — drivers never do) to `t`.
    pub fn set(&self, t: SimTime) {
        self.nanos.store(t.as_nanos(), Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

/// Wall-clock time as nanoseconds since the clock's creation; the rt
/// driver's axis (matching its `SimTime`-since-start convention).
#[derive(Debug)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A clock whose zero is now.
    pub fn new() -> Arc<Self> {
        Arc::new(WallClock {
            origin: std::time::Instant::now(),
        })
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

// ---------------------------------------------------------------------------
// TimerHub + sleep.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct TimerSlot {
    deadline: SimTime,
    fired: bool,
    waker: Option<Waker>,
}

#[derive(Debug, Default)]
struct TimerInner {
    next_id: u64,
    slots: BTreeMap<u64, TimerSlot>,
    /// Timers armed since the last [`TimerHub::drain_armed`]: the sim
    /// adapter turns these into engine timers (token = timer id).
    newly_armed: Vec<(u64, SimTime)>,
}

/// The timer table shared by every [`Sleep`] of one executor domain.
/// Driver-agnostic: the sim adapter fires ids when engine timers pop;
/// the rt driver fires everything due by wall time.
#[derive(Debug)]
pub struct TimerHub {
    clock: Arc<dyn Clock>,
    inner: Mutex<TimerInner>,
}

impl TimerHub {
    /// A hub reading deadlines off `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(TimerHub {
            clock,
            inner: Mutex::new(TimerInner::default()),
        })
    }

    /// The hub's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    fn arm(&self, delay: Duration) -> u64 {
        let deadline = self.clock.now().saturating_add(delay);
        let mut inner = self.inner.lock().expect("timer hub poisoned");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.slots.insert(
            id,
            TimerSlot {
                deadline,
                fired: false,
                waker: None,
            },
        );
        inner.newly_armed.push((id, deadline));
        id
    }

    /// Takes the timers armed since the last drain, as
    /// `(id, deadline)`. The sim adapter converts each into an engine
    /// timer whose token is the id.
    pub fn drain_armed(&self) -> Vec<(u64, SimTime)> {
        std::mem::take(&mut self.inner.lock().expect("timer hub poisoned").newly_armed)
    }

    /// Fires timer `id` (the engine timer with this token popped).
    /// Returns false for cancelled/unknown ids — a dropped [`Sleep`]
    /// leaves its engine timer to pop into nothing.
    pub fn fire(&self, id: u64) -> bool {
        let waker = {
            let mut inner = self.inner.lock().expect("timer hub poisoned");
            let Some(slot) = inner.slots.get_mut(&id) else {
                return false;
            };
            slot.fired = true;
            slot.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
        true
    }

    /// Fires every timer whose deadline is at or before `now`; returns
    /// how many fired. The rt driver's per-iteration tick.
    pub fn fire_due(&self, now: SimTime) -> usize {
        let due: Vec<u64> = {
            let inner = self.inner.lock().expect("timer hub poisoned");
            inner
                .slots
                .iter()
                .filter(|(_, s)| !s.fired && s.deadline <= now)
                .map(|(&id, _)| id)
                .collect()
        };
        let n = due.len();
        for id in due {
            self.fire(id);
        }
        n
    }

    /// The earliest un-fired deadline, if any (the rt park horizon).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let inner = self.inner.lock().expect("timer hub poisoned");
        inner
            .slots
            .values()
            .filter(|s| !s.fired)
            .map(|s| s.deadline)
            .min()
    }

    /// Un-fired timers currently armed.
    pub fn pending(&self) -> usize {
        let inner = self.inner.lock().expect("timer hub poisoned");
        inner.slots.values().filter(|s| !s.fired).count()
    }
}

/// Sleeps for a duration on the hub's clock. Armed on creation;
/// dropping it cancels the timer (the combinator-cancellation path:
/// a [`race`] loser's sleep never fires its continuation).
#[derive(Debug)]
pub struct Sleep {
    hub: Arc<TimerHub>,
    id: u64,
}

/// Starts a sleep of `d` on `hub`'s clock.
pub fn sleep(hub: &Arc<TimerHub>, d: Duration) -> Sleep {
    Sleep {
        hub: Arc::clone(hub),
        id: hub.arm(d),
    }
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.hub.inner.lock().expect("timer hub poisoned");
        match inner.slots.get_mut(&self.id) {
            None => Poll::Ready(()), // already fired + reaped
            Some(slot) if slot.fired => {
                inner.slots.remove(&self.id);
                Poll::Ready(())
            }
            Some(slot) => {
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.hub.inner.lock() {
            inner.slots.remove(&self.id);
        }
    }
}

// ---------------------------------------------------------------------------
// Mailbox: typed inbox with an async recv.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct MailboxInner<T> {
    queue: VecDeque<T>,
    waker: Option<Waker>,
    closed: bool,
}

/// The receiving end of a typed inbox. One consumer: the most recent
/// `recv` waker wins (our drivers poll one body per mailbox).
#[derive(Debug)]
pub struct Mailbox<T> {
    inner: Arc<Mutex<MailboxInner<T>>>,
}

/// The sending end; cloneable across threads.
#[derive(Debug)]
pub struct MailboxSender<T> {
    inner: Arc<Mutex<MailboxInner<T>>>,
}

impl<T> Clone for MailboxSender<T> {
    fn clone(&self) -> Self {
        MailboxSender {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Creates a connected sender/receiver pair.
pub fn mailbox<T>() -> (MailboxSender<T>, Mailbox<T>) {
    let inner = Arc::new(Mutex::new(MailboxInner {
        queue: VecDeque::new(),
        waker: None,
        closed: false,
    }));
    (
        MailboxSender {
            inner: Arc::clone(&inner),
        },
        Mailbox { inner },
    )
}

impl<T> MailboxSender<T> {
    /// Enqueues a value and wakes the receiver.
    pub fn send(&self, value: T) {
        let waker = {
            let mut inner = self.inner.lock().expect("mailbox poisoned");
            inner.queue.push_back(value);
            inner.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Closes the mailbox: pending `recv`s drain the queue then yield
    /// `None`.
    pub fn close(&self) {
        let waker = {
            let mut inner = self.inner.lock().expect("mailbox poisoned");
            inner.closed = true;
            inner.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Mailbox<T> {
    /// Receives the next value; `None` once closed and drained.
    pub fn recv(&self) -> Recv<T> {
        Recv {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Queued values not yet received.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("mailbox poisoned").queue.len()
    }

    /// Whether no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Mailbox::recv`].
#[derive(Debug)]
pub struct Recv<T> {
    inner: Arc<Mutex<MailboxInner<T>>>,
}

impl<T> Future for Recv<T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut inner = self.inner.lock().expect("mailbox poisoned");
        if let Some(v) = inner.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if inner.closed {
            return Poll::Ready(None);
        }
        inner.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Combinators: race (hedged retry) and timeout (give-up).
// ---------------------------------------------------------------------------

/// Which side of a [`race`] won.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Future returned by [`race`].
#[derive(Debug)]
pub struct Race<A, B> {
    a: Option<A>,
    b: Option<B>,
}

/// Polls `a` then `b`; the first to finish wins and the **loser is
/// dropped immediately** — cancelling its sleeps and releasing its
/// slots. Poll order is fixed (a before b) so ties are deterministic.
pub fn race<A, B>(a: A, b: B) -> Race<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    Race {
        a: Some(a),
        b: Some(b),
    }
}

impl<A, B> Future for Race<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    type Output = Either<A::Output, B::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Some(a) = this.a.as_mut() {
            if let Poll::Ready(v) = Pin::new(a).poll(cx) {
                this.a = None;
                this.b = None; // drop the loser: cancellation
                return Poll::Ready(Either::Left(v));
            }
        }
        if let Some(b) = this.b.as_mut() {
            if let Poll::Ready(v) = Pin::new(b).poll(cx) {
                this.b = None;
                this.a = None;
                return Poll::Ready(Either::Right(v));
            }
        }
        Poll::Pending
    }
}

/// Future returned by [`timeout`].
#[derive(Debug)]
pub struct Timeout<F, D> {
    inner: Race<F, D>,
}

/// Runs `f` with a give-up deadline: `Some(output)` if `f` finishes
/// first, `None` if `deadline` (any future — usually a [`sleep`] or a
/// framework nap) fires first. On timeout `f` is dropped, cancelling
/// whatever it was waiting on.
pub fn timeout<F, D>(f: F, deadline: D) -> Timeout<F, D>
where
    F: Future + Unpin,
    D: Future + Unpin,
{
    Timeout {
        inner: race(f, deadline),
    }
}

impl<F, D> Future for Timeout<F, D>
where
    F: Future + Unpin,
    D: Future + Unpin,
{
    type Output = Option<F::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.get_mut().inner).poll(cx) {
            Poll::Ready(Either::Left(v)) => Poll::Ready(Some(v)),
            Poll::Ready(Either::Right(_)) => Poll::Ready(None),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Future returned by [`select_some`]: resolves with the index and
/// output of the first remaining future to finish, leaving the others
/// in place. Polls in index order, so simultaneous completions resolve
/// lowest-index first — deterministically.
#[derive(Debug)]
pub struct SelectSome<'a, F> {
    futs: &'a mut Vec<Option<F>>,
}

/// Awaits the next completion among `futs` (aggregation fan-in:
/// "process source fetches in arrival order"). Panics if every slot is
/// `None` — callers track how many remain.
pub fn select_some<F>(futs: &mut Vec<Option<F>>) -> SelectSome<'_, F>
where
    F: Future + Unpin,
{
    assert!(
        futs.iter().any(Option::is_some),
        "select_some over an empty set"
    );
    SelectSome { futs }
}

impl<F> Future for SelectSome<'_, F>
where
    F: Future + Unpin,
{
    type Output = (usize, F::Output);
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        for (i, slot) in this.futs.iter_mut().enumerate() {
            if let Some(f) = slot.as_mut() {
                if let Poll::Ready(v) = Pin::new(f).poll(cx) {
                    *slot = None;
                    return Poll::Ready((i, v));
                }
            }
        }
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Executor: single-threaded deterministic task queue.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ReadyInner {
    queue: VecDeque<u64>,
    queued: BTreeSet<u64>,
}

/// The wake queue shared by every task waker of one [`Executor`].
/// FIFO in wake order with duplicate suppression; the condvar lets a
/// blocking driver (rt) park until any waker fires.
#[derive(Debug, Default)]
pub struct ReadyQueue {
    inner: Mutex<ReadyInner>,
    cv: Condvar,
}

impl ReadyQueue {
    fn push(&self, id: u64) {
        let mut inner = self.inner.lock().expect("ready queue poisoned");
        if inner.queued.insert(id) {
            inner.queue.push_back(id);
        }
        self.cv.notify_one();
    }

    fn pop(&self) -> Option<u64> {
        let mut inner = self.inner.lock().expect("ready queue poisoned");
        let id = inner.queue.pop_front()?;
        inner.queued.remove(&id);
        Some(id)
    }

    /// Blocks until some waker fires or `dur` elapses (rt parking).
    pub fn wait(&self, dur: Duration) {
        let inner = self.inner.lock().expect("ready queue poisoned");
        if inner.queue.is_empty() {
            let _ = self
                .cv
                .wait_timeout(inner, dur)
                .expect("ready queue poisoned");
        }
    }
}

/// One task's waker target: pushes its id onto the shared queue. The
/// std `Wake` adapter turns this into a `RawWaker` without any unsafe
/// code of our own.
#[derive(Debug)]
struct TaskWaker {
    id: u64,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// A std-only, single-threaded, deterministic executor: tasks are
/// polled strictly in the order their wakes arrived. Drivers decide
/// *when* to run (the sim adapter after each engine event; the rt
/// driver in its park loop); the executor only decides *what*, and
/// that decision is a pure function of wake order.
pub struct Executor {
    tasks: BTreeMap<u64, BoxFut>,
    next_task: u64,
    ready: Arc<ReadyQueue>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("tasks", &self.tasks.keys().collect::<Vec<_>>())
            .field("next_task", &self.next_task)
            .finish_non_exhaustive()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl Executor {
    /// An empty executor.
    pub fn new() -> Self {
        Executor {
            tasks: BTreeMap::new(),
            next_task: 1,
            ready: Arc::new(ReadyQueue::default()),
        }
    }

    /// The shared wake queue (rt drivers park on it).
    pub fn ready_queue(&self) -> Arc<ReadyQueue> {
        Arc::clone(&self.ready)
    }

    /// Spawns a task; it is immediately woken (polled on the next
    /// [`Executor::run_ready`]). Returns its id.
    pub fn spawn(&mut self, fut: BoxFut) -> u64 {
        let id = self.next_task;
        self.next_task += 1;
        self.tasks.insert(id, fut);
        self.ready.push(id);
        id
    }

    /// Drops a task without polling it again (cancellation).
    pub fn cancel(&mut self, id: u64) {
        self.tasks.remove(&id);
    }

    /// Whether `id` is still live (spawned, not finished/cancelled).
    pub fn is_live(&self, id: u64) -> bool {
        self.tasks.contains_key(&id)
    }

    /// Live tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no tasks are live.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Polls woken tasks in wake order until the queue drains; tasks
    /// woken *during* a poll run in the same call, after everything
    /// already queued. Returns the ids of tasks that finished.
    pub fn run_ready(&mut self) -> Vec<u64> {
        let mut finished = Vec::new();
        // Bound: a task that wakes itself in a hot loop cannot starve
        // the driver forever (it would break sim determinism anyway —
        // debug builds make the bug loud).
        let mut budget = 65_536u32;
        while let Some(id) = self.ready.pop() {
            let Some(fut) = self.tasks.get_mut(&id) else {
                continue; // finished or cancelled after the wake
            };
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                ready: Arc::clone(&self.ready),
            }));
            let mut cx = Context::from_waker(&waker);
            if fut.as_mut().poll(&mut cx).is_ready() {
                self.tasks.remove(&id);
                finished.push(id);
            }
            budget -= 1;
            if budget == 0 {
                debug_assert!(false, "executor wake loop exceeded its budget");
                break;
            }
        }
        finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_explicit_and_wall_clock_monotonic() {
        let vc = VirtualClock::new();
        assert_eq!(vc.now(), SimTime::ZERO);
        vc.set(SimTime::from_millis(250));
        assert_eq!(vc.now(), SimTime::from_millis(250));
        let wc = WallClock::new();
        let a = wc.now();
        let b = wc.now();
        assert!(b >= a);
    }

    #[test]
    fn sleep_arms_fires_and_cancels_through_the_hub() {
        let clock = VirtualClock::new();
        let hub = TimerHub::new(clock.clone());
        let mut ex = Executor::new();
        let done = Arc::new(Mutex::new(false));
        let flag = Arc::clone(&done);
        let s = sleep(&hub, Duration::from_millis(10));
        ex.spawn(Box::pin(async move {
            s.await;
            *flag.lock().unwrap() = true;
        }));
        ex.run_ready();
        let armed = hub.drain_armed();
        assert_eq!(armed.len(), 1);
        assert_eq!(armed[0].1, SimTime::from_millis(10));
        assert!(!*done.lock().unwrap());
        clock.set(SimTime::from_millis(10));
        assert!(hub.fire(armed[0].0));
        ex.run_ready();
        assert!(*done.lock().unwrap());
        // A second fire of the same id is a tombstone.
        assert!(!hub.fire(armed[0].0));
    }

    #[test]
    fn mailbox_recv_wakes_in_send_order_and_drains_on_close() {
        let (tx, rx) = mailbox::<u32>();
        let got = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let mut ex = Executor::new();
        ex.spawn(Box::pin(async move {
            while let Some(v) = rx.recv().await {
                sink.lock().unwrap().push(v);
            }
            sink.lock().unwrap().push(999);
        }));
        ex.run_ready();
        tx.send(1);
        tx.send(2);
        ex.run_ready();
        tx.send(3);
        tx.close();
        ex.run_ready();
        assert_eq!(*got.lock().unwrap(), vec![1, 2, 3, 999]);
    }

    #[test]
    fn run_ready_polls_in_wake_order_not_task_order() {
        let mut ex = Executor::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut boxes = Vec::new();
        let mut txs = Vec::new();
        for i in 0..3u64 {
            let (tx, rx) = mailbox::<()>();
            txs.push(tx);
            let log = Arc::clone(&order);
            boxes.push(Box::pin(async move {
                rx.recv().await;
                log.lock().unwrap().push(i);
            }) as BoxFut);
        }
        for b in boxes {
            ex.spawn(b);
        }
        ex.run_ready(); // all park on their mailboxes
                        // Wake 2, then 0, then 1: poll order must follow the wakes.
        txs[2].send(());
        txs[0].send(());
        txs[1].send(());
        let finished = ex.run_ready();
        assert_eq!(*order.lock().unwrap(), vec![2, 0, 1]);
        assert_eq!(finished.len(), 3);
        assert!(ex.is_empty());
    }

    #[test]
    fn race_drops_the_loser_and_timeout_cancels_the_body() {
        let clock = VirtualClock::new();
        let hub = TimerHub::new(clock.clone());
        // Hedge: the fast branch wins, the slow branch's sleep is
        // cancelled (hub pending count returns to zero).
        let fast = sleep(&hub, Duration::from_millis(5));
        let slow = sleep(&hub, Duration::from_millis(50));
        let mut ex = Executor::new();
        let won = Arc::new(Mutex::new(None));
        let w = Arc::clone(&won);
        ex.spawn(Box::pin(async move {
            let r = race(fast, slow).await;
            *w.lock().unwrap() = Some(matches!(r, Either::Left(())));
        }));
        ex.run_ready();
        let armed = hub.drain_armed();
        assert_eq!(armed.len(), 2);
        clock.set(SimTime::from_millis(5));
        hub.fire(armed[0].0);
        ex.run_ready();
        assert_eq!(*won.lock().unwrap(), Some(true));
        assert_eq!(hub.pending(), 0, "loser's sleep cancelled on drop");
        assert!(
            !hub.fire(armed[1].0),
            "stale engine timer pops into nothing"
        );

        // Timeout: the deadline fires first, the body is dropped.
        let (_tx, rx) = mailbox::<u32>(); // never sent: body blocks forever
        let deadline = sleep(&hub, Duration::from_millis(7));
        let out = Arc::new(Mutex::new(Some(Some(0u32))));
        let o = Arc::clone(&out);
        ex.spawn(Box::pin(async move {
            let r = timeout(rx.recv(), deadline).await;
            *o.lock().unwrap() = r;
        }));
        ex.run_ready();
        let armed = hub.drain_armed();
        assert_eq!(armed.len(), 1);
        clock.set(SimTime::from_millis(12));
        hub.fire(armed[0].0);
        ex.run_ready();
        assert_eq!(*out.lock().unwrap(), None, "timed out");
    }

    #[test]
    fn select_some_resolves_in_completion_order() {
        let mut ex = Executor::new();
        let (txa, rxa) = mailbox::<u32>();
        let (txb, rxb) = mailbox::<u32>();
        let order = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&order);
        ex.spawn(Box::pin(async move {
            let mut futs = vec![Some(rxa.recv()), Some(rxb.recv())];
            while futs.iter().any(Option::is_some) {
                let (i, v) = select_some(&mut futs).await;
                log.lock().unwrap().push((i, v.unwrap()));
            }
        }));
        ex.run_ready();
        txb.send(20);
        ex.run_ready();
        txa.send(10);
        ex.run_ready();
        assert_eq!(*order.lock().unwrap(), vec![(1, 20), (0, 10)]);
    }
}
