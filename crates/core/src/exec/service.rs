//! Per-request async bodies behind the legacy front-end framework.
//!
//! An [`AsyncService`] writes one `async fn` per request: awaiting a
//! dispatch instead of matching on `FeEvent` tags, `timeout` instead of
//! a give-up tag, `race` instead of a hedge state machine. The
//! [`AsyncSvcLogic`] adapter runs those bodies behind the unchanged
//! [`ServiceLogic`] trait, so the [`crate::frontend::FrontEnd`]
//! component — thread accounting, overhead CPU, dispatch timeouts,
//! manager supervision, tracing — is untouched and legacy services
//! keep working while they migrate.
//!
//! Determinism: a body only runs when the framework delivers an event
//! for its request, and each poll's effects drain into the same
//! `Vec<Action>` the legacy callbacks fill — so the wire-visible event
//! order is a pure function of the engine's (already deterministic)
//! event order. The rt driver (`sns_rt::exec`) polls the *same* future
//! type against wall-clock time and a live cluster.

use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use sns_sim::time::SimTime;
use sns_sim::ComponentId;

use crate::frontend::{Action, FeEvent, ReqState, ServiceLogic, SvcView};
use crate::msg::{ClientRequest, JobResult, ProfileData};
use crate::{Payload, WorkerClass};

use super::BoxFut;

/// How an awaited framework operation resolved.
#[derive(Debug, Clone)]
pub enum EventOutcome {
    /// A worker answered (`FeEvent::WorkerReply`).
    Reply(JobResult),
    /// The dispatch failed permanently — timed out after retries, or
    /// the pinned worker died (`FeEvent::DispatchFailed`).
    Failed(WorkerClass),
    /// A compute burst or nap finished.
    Done,
}

impl EventOutcome {
    /// The successful payload, if any.
    pub fn ok_payload(&self) -> Option<&Payload> {
        match self {
            EventOutcome::Reply(JobResult::Ok(p)) => Some(p),
            _ => None,
        }
    }
}

/// One queued effect of a body poll: either a stat (applied to the
/// stats hub during the drain, exactly where a legacy callback would
/// have written it) or a framework [`Action`].
#[derive(Debug)]
pub enum SvcOp {
    /// `stats().incr(key, n)`.
    Incr(&'static str, u64),
    /// `stats().observe(key, v)`.
    Observe(&'static str, f64),
    /// A framework action; dispatch-like variants carry the awaited
    /// token as their tag.
    Act(Action),
}

#[derive(Debug)]
enum SlotState {
    Pending(Option<Waker>),
    Ready(EventOutcome),
}

/// Shared per-request state between the body (via [`SvcHandle`]) and
/// the driving adapter.
#[derive(Debug, Default)]
pub(crate) struct ReqShared {
    now: SimTime,
    next_token: u64,
    ops: Vec<SvcOp>,
    slots: BTreeMap<u64, SlotState>,
    hints: BTreeMap<WorkerClass, Vec<ComponentId>>,
    replied: bool,
}

impl ReqShared {
    fn new() -> Self {
        ReqShared {
            next_token: 1,
            ..ReqShared::default()
        }
    }
}

/// The body's capability handle: everything a request body may do.
/// Cloneable (bodies move clones into `async` blocks for hedging).
#[derive(Debug, Clone)]
pub struct SvcHandle {
    inner: Arc<Mutex<ReqShared>>,
}

impl SvcHandle {
    fn lock(&self) -> std::sync::MutexGuard<'_, ReqShared> {
        self.inner.lock().expect("request state poisoned")
    }

    /// Current time on the driving backend's axis.
    pub fn now(&self) -> SimTime {
        self.lock().now
    }

    /// Live workers of a hint class, as of the last event delivery —
    /// the same beacon-derived membership a legacy callback reads from
    /// `view.stub.workers_of`. Only classes the service declared in
    /// [`AsyncService::hint_classes`] are populated.
    pub fn workers_of(&self, class: &WorkerClass) -> Vec<ComponentId> {
        self.lock().hints.get(class).cloned().unwrap_or_default()
    }

    /// Counts into the shared stats hub.
    pub fn incr(&self, key: &'static str, n: u64) {
        self.lock().ops.push(SvcOp::Incr(key, n));
    }

    /// Samples into the shared stats hub.
    pub fn observe(&self, key: &'static str, v: f64) {
        self.lock().ops.push(SvcOp::Observe(key, v));
    }

    fn pend(&self, mk: impl FnOnce(u64) -> Action) -> Pending {
        let mut inner = self.lock();
        let token = inner.next_token;
        inner.next_token += 1;
        inner.slots.insert(token, SlotState::Pending(None));
        let act = mk(token);
        inner.ops.push(SvcOp::Act(act));
        Pending {
            shared: Arc::downgrade(&self.inner),
            token,
        }
    }

    /// Dispatches to the best worker of a class (lottery + retries);
    /// await the result. Dropping the future forgets the result
    /// (fire-and-forget, race loser) — the job itself still runs.
    pub fn dispatch(
        &self,
        class: WorkerClass,
        op: impl Into<String>,
        input: Payload,
        profile: Option<ProfileData>,
    ) -> Pending {
        let op = op.into();
        self.pend(|tag| Action::Dispatch {
            tag,
            class,
            op,
            input,
            profile,
        })
    }

    /// Dispatches to one specific worker (cache-ring routing).
    pub fn dispatch_to(
        &self,
        worker: ComponentId,
        class: WorkerClass,
        op: impl Into<String>,
        input: Payload,
        profile: Option<ProfileData>,
    ) -> Pending {
        let op = op.into();
        self.pend(|tag| Action::DispatchTo {
            tag,
            worker,
            class,
            op,
            input,
            profile,
        })
    }

    /// Burns front-end CPU; await completion.
    pub fn compute(&self, cost: Duration) -> Pending {
        self.pend(|tag| Action::Compute { tag, cost })
    }

    /// Sleeps on the backend's clock (virtual in sim, wall in rt); the
    /// give-up/hedge deadline for [`super::timeout`] / [`super::race`].
    pub fn nap(&self, delay: Duration) -> Pending {
        self.pend(|tag| Action::Nap { tag, delay })
    }

    /// Flags the eventual response as degraded (BASE approximate
    /// answers, §3.1.8).
    pub fn mark_degraded(&self) {
        self.lock().ops.push(SvcOp::Act(Action::MarkDegraded));
    }

    /// Finishes the request. The body should return soon after; any
    /// ops it emits past this point are dropped by the framework.
    pub fn reply(&self, result: Result<Payload, String>) {
        let mut inner = self.lock();
        inner.replied = true;
        inner.ops.push(SvcOp::Act(Action::Reply(result)));
    }

    // -- driver side ----------------------------------------------------

    /// (Driver.) Creates the per-request state pair.
    pub fn new_request() -> SvcHandle {
        SvcHandle {
            inner: Arc::new(Mutex::new(ReqShared::new())),
        }
    }

    /// (Driver.) Updates the clock and hint snapshot before a poll.
    pub fn sync(&self, now: SimTime, hints: BTreeMap<WorkerClass, Vec<ComponentId>>) {
        let mut inner = self.lock();
        inner.now = now;
        inner.hints = hints;
    }

    /// (Driver.) Resolves the awaited token; returns false when no one
    /// is waiting (cancelled future, fire-and-forget dispatch) — the
    /// driver then skips the poll, like the legacy early-returns.
    pub fn fill(&self, token: u64, outcome: EventOutcome) -> bool {
        let waker = {
            let mut inner = self.lock();
            match inner.slots.get_mut(&token) {
                Some(SlotState::Pending(w)) => {
                    let w = w.take();
                    inner.slots.insert(token, SlotState::Ready(outcome));
                    w
                }
                _ => return false,
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
        true
    }

    /// (Driver.) Takes the ops the last poll produced, in emission
    /// order.
    pub fn take_ops(&self) -> Vec<SvcOp> {
        std::mem::take(&mut self.lock().ops)
    }

    /// (Driver.) Whether the body replied.
    pub fn replied(&self) -> bool {
        self.lock().replied
    }
}

/// An awaited framework operation; resolves to an [`EventOutcome`].
/// Dropping it cancels the wait (not the underlying job).
#[derive(Debug)]
pub struct Pending {
    shared: Weak<Mutex<ReqShared>>,
    token: u64,
}

impl Future for Pending {
    type Output = EventOutcome;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<EventOutcome> {
        let Some(shared) = self.shared.upgrade() else {
            // Request state gone (body outlived its request — cannot
            // happen under the adapters, but never hang).
            return Poll::Ready(EventOutcome::Done);
        };
        let mut inner = shared.lock().expect("request state poisoned");
        match inner.slots.get_mut(&self.token) {
            Some(SlotState::Ready(_)) => {
                let Some(SlotState::Ready(outcome)) = inner.slots.remove(&self.token) else {
                    unreachable!()
                };
                Poll::Ready(outcome)
            }
            Some(SlotState::Pending(w)) => {
                *w = Some(cx.waker().clone());
                Poll::Pending
            }
            None => Poll::Ready(EventOutcome::Done),
        }
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.upgrade() {
            if let Ok(mut inner) = shared.lock() {
                inner.slots.remove(&self.token);
            }
        }
    }
}

/// A service whose per-request behaviour is one async body.
pub trait AsyncService: Send {
    /// Worker classes whose live membership bodies read via
    /// [`SvcHandle::workers_of`] (refreshed before every poll).
    fn hint_classes(&self) -> Vec<WorkerClass> {
        Vec::new()
    }

    /// Handles one request. The body awaits [`SvcHandle`] operations
    /// and must call [`SvcHandle::reply`] before returning; a body
    /// that returns without replying produces an error reply.
    fn handle(&mut self, request: Arc<ClientRequest>, svc: SvcHandle) -> BoxFut;
}

/// A waker that does nothing: the sim adapter re-polls a request's
/// body exactly when the framework delivers one of its events, so the
/// wake signal is redundant there (the rt driver, which parks, uses a
/// real condvar waker instead).
struct NoopWake;
impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

/// Per-request task stored in [`ReqState::data`].
struct ReqTask {
    fut: BoxFut,
    svc: SvcHandle,
}

/// Runs an [`AsyncService`] behind the legacy [`ServiceLogic`] trait:
/// the migration adapter (`DESIGN.md` §6i).
pub struct AsyncSvcLogic<S> {
    svc: S,
    hint_classes: Vec<WorkerClass>,
    waker: Waker,
}

impl<S: AsyncService> AsyncSvcLogic<S> {
    /// Wraps a service.
    pub fn new(svc: S) -> Self {
        let hint_classes = svc.hint_classes();
        AsyncSvcLogic {
            svc,
            hint_classes,
            waker: Waker::from(Arc::new(NoopWake)),
        }
    }

    fn snapshot(&self, view: &SvcView<'_, '_>) -> BTreeMap<WorkerClass, Vec<ComponentId>> {
        self.hint_classes
            .iter()
            .map(|c| {
                let mut live = view.stub.workers_of(c);
                live.sort();
                (c.clone(), live)
            })
            .collect()
    }

    /// Polls the task once and drains its effects: stats straight into
    /// the hub (legacy callbacks write them mid-callback too — always
    /// before `apply` runs the actions), actions into `out`.
    fn poll_and_drain(
        &mut self,
        task: &mut ReqTask,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) -> bool {
        task.svc.sync(view.now, self.snapshot(view));
        let mut cx = Context::from_waker(&self.waker);
        let done = task.fut.as_mut().poll(&mut cx).is_ready();
        for op in task.svc.take_ops() {
            match op {
                SvcOp::Incr(key, n) => view.stats().incr(key, n),
                SvcOp::Observe(key, v) => view.stats().observe(key, v),
                SvcOp::Act(a) => out.push(a),
            }
        }
        if done && !task.svc.replied() {
            view.stats().incr("exec.body_no_reply", 1);
            out.push(Action::Reply(Err(
                "service body returned without replying".into()
            )));
        }
        done
    }
}

impl<S: AsyncService> ServiceLogic for AsyncSvcLogic<S> {
    fn on_request(
        &mut self,
        req: &mut ReqState,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        let svc = SvcHandle::new_request();
        let fut = self.svc.handle(req.request.clone(), svc.clone());
        let mut task = ReqTask { fut, svc };
        if !self.poll_and_drain(&mut task, view, out) {
            req.data = Some(Box::new(task));
        }
    }

    fn on_event(
        &mut self,
        req: &mut ReqState,
        ev: FeEvent<'_>,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        let Some(data) = req.data.take() else {
            return;
        };
        let Ok(mut task) = data.downcast::<ReqTask>() else {
            return;
        };
        let (token, outcome) = match ev {
            FeEvent::WorkerReply { tag, result } => (tag, EventOutcome::Reply(result.clone())),
            FeEvent::DispatchFailed { tag, class } => (tag, EventOutcome::Failed(class)),
            FeEvent::ComputeDone { tag } => (tag, EventOutcome::Done),
            FeEvent::NapDone { tag } => (tag, EventOutcome::Done),
        };
        if !task.svc.fill(token, outcome) {
            // No awaiter: a fire-and-forget dispatch's late reply or a
            // race loser's event. Nothing can have changed; skip the
            // poll (the legacy logic's early-return arm).
            req.data = Some(task);
            return;
        }
        if !self.poll_and_drain(&mut task, view, out) {
            req.data = Some(task);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Blob;

    #[test]
    fn handle_allocates_tokens_and_queues_ops_in_emission_order() {
        let svc = SvcHandle::new_request();
        svc.incr("a", 1);
        let p1 = svc.dispatch(WorkerClass::new("echo"), "op", Blob::payload(4, "x"), None);
        svc.observe("b", 2.0);
        let p2 = svc.compute(Duration::from_millis(1));
        assert_eq!(p1.token, 1);
        assert_eq!(p2.token, 2);
        let ops = svc.take_ops();
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[0], SvcOp::Incr("a", 1)));
        assert!(matches!(
            ops[1],
            SvcOp::Act(Action::Dispatch { tag: 1, .. })
        ));
        assert!(matches!(ops[2], SvcOp::Observe("b", _)));
        assert!(matches!(ops[3], SvcOp::Act(Action::Compute { tag: 2, .. })));
    }

    #[test]
    fn fill_resolves_awaiters_and_reports_cancelled_slots() {
        let svc = SvcHandle::new_request();
        let pending = svc.nap(Duration::from_millis(5));
        let dropped = svc.nap(Duration::from_millis(5));
        let dropped_token = dropped.token;
        drop(dropped);
        assert!(
            !svc.fill(dropped_token, EventOutcome::Done),
            "slot gone on drop"
        );
        assert!(svc.fill(pending.token, EventOutcome::Done));
        assert!(!svc.fill(pending.token, EventOutcome::Done), "single-shot");
        let waker = Waker::from(Arc::new(NoopWake));
        let mut cx = Context::from_waker(&waker);
        let mut p = pending;
        assert!(matches!(
            Pin::new(&mut p).poll(&mut cx),
            Poll::Ready(EventOutcome::Done)
        ));
    }
}
