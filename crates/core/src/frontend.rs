//! The front-end framework (§2.2.1, §3.1.1): request shepherding over a
//! bounded thread pool, service-specific dispatch logic, and process-peer
//! supervision of the manager.
//!
//! "The static partitioning of functionality between front ends and
//! workers reflects our desire to keep workers as simple as possible, by
//! localizing in the front ends the control decisions associated with
//! satisfying user requests." A service plugs in a [`ServiceLogic`]: a
//! per-request state machine that reacts to request arrival, worker
//! replies, dispatch failures and local compute completions by emitting
//! [`Action`]s. The framework handles everything else: thread
//! accounting, per-request TCP/kernel overhead, dispatch timeouts and
//! retries (via the embedded [`ManagerStub`]), manager registration and
//! manager restart.

use std::any::Any;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use sns_sim::engine::{Component, Ctx};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, GroupId};

use crate::monitor::MonitorEvent;
use crate::msg::{ClientRequest, ClientResponse, JobResult, ProfileData, SnsMsg};
use crate::stub::{ManagerStub, TimeoutVerdict};
use crate::trace;
use crate::{Payload, SnsConfig, WorkerClass};

/// What service logic can ask the framework to do.
#[derive(Debug)]
pub enum Action {
    /// Dispatch a job to the best worker of a class (lottery + retries).
    Dispatch {
        /// Service-chosen correlation tag (unique per request).
        tag: u64,
        /// Worker class.
        class: WorkerClass,
        /// Worker operation.
        op: String,
        /// Input payload.
        input: Payload,
        /// Profile delivered with the job (§2.3).
        profile: Option<ProfileData>,
    },
    /// Dispatch a job to one specific worker (cache-ring routing,
    /// partition fan-out). No automatic retry.
    DispatchTo {
        /// Correlation tag.
        tag: u64,
        /// Target worker.
        worker: ComponentId,
        /// Worker class (for bookkeeping).
        class: WorkerClass,
        /// Worker operation.
        op: String,
        /// Input payload.
        input: Payload,
        /// Profile delivered with the job.
        profile: Option<ProfileData>,
    },
    /// Burn local front-end CPU (page assembly, parsing).
    Compute {
        /// Correlation tag.
        tag: u64,
        /// CPU time.
        cost: Duration,
    },
    /// Sleep without holding CPU (async bodies' give-up and hedge
    /// deadlines; see [`crate::exec::service::SvcHandle::nap`]).
    Nap {
        /// Correlation tag.
        tag: u64,
        /// How long to sleep.
        delay: Duration,
    },
    /// Finish the request.
    Reply(Result<Payload, String>),
    /// Flag the eventual response as degraded (approximate answer,
    /// §3.1.8).
    MarkDegraded,
}

/// Framework-maintained per-request state handed to the service logic.
pub struct ReqState {
    /// The original client request.
    pub request: Arc<ClientRequest>,
    /// Service-private state (parsed plan, partial results, …).
    pub data: Option<Box<dyn Any + Send>>,
    /// Set by [`Action::MarkDegraded`].
    pub degraded: bool,
    /// When the framework started processing.
    pub started: SimTime,
    client: ComponentId,
    /// Head-sampling decision, made once on arrival and gating every
    /// span of this request (see `crate::trace::Sampling`).
    sampled: bool,
}

/// Context available to service-logic callbacks: the clock, the RNG and
/// stats sink, and a read-only view of the hint cache.
pub struct SvcView<'a, 'k> {
    /// Current time.
    pub now: SimTime,
    /// The hint cache (worker membership, estimates).
    pub stub: &'a ManagerStub,
    ctx: &'a mut Ctx<'k, SnsMsg>,
}

impl<'a, 'k> SvcView<'a, 'k> {
    /// Deterministic RNG stream.
    pub fn rng(&mut self) -> &mut Pcg32 {
        self.ctx.rng()
    }

    /// The shared measurement sink.
    pub fn stats(&mut self) -> &mut sns_sim::stats::StatsHub {
        self.ctx.stats()
    }
}

/// Events delivered to service logic about one of its dispatches.
#[derive(Debug)]
pub enum FeEvent<'a> {
    /// A worker answered.
    WorkerReply {
        /// The dispatch's tag.
        tag: u64,
        /// The result.
        result: &'a JobResult,
    },
    /// A dispatch failed permanently (timeout after retries, or a pinned
    /// worker timed out). The service layer decides the fallback
    /// (§2.2.4).
    DispatchFailed {
        /// The dispatch's tag.
        tag: u64,
        /// The class it targeted.
        class: WorkerClass,
    },
    /// An [`Action::Compute`] finished.
    ComputeDone {
        /// The compute's tag.
        tag: u64,
    },
    /// An [`Action::Nap`] elapsed.
    NapDone {
        /// The nap's tag.
        tag: u64,
    },
}

/// Service-specific front-end behaviour: a per-request state machine.
pub trait ServiceLogic: Send {
    /// A request arrived and holds a thread; emit initial actions.
    fn on_request(&mut self, req: &mut ReqState, view: &mut SvcView<'_, '_>, out: &mut Vec<Action>);

    /// Something happened to one of this request's dispatches/computes.
    fn on_event(
        &mut self,
        req: &mut ReqState,
        ev: FeEvent<'_>,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    );
}

/// Builds a replacement manager with the given incarnation (front ends
/// are the manager's process peers, §3.1.3).
pub type ManagerFactory = Box<dyn FnMut(u64) -> Box<dyn Component<SnsMsg>> + Send>;

/// Front-end wiring configuration.
pub struct FeConfig {
    /// Layer knobs.
    pub sns: SnsConfig,
    /// Beacon multicast group.
    pub beacon_group: GroupId,
    /// Monitor multicast group.
    pub monitor_group: GroupId,
    /// Factory to restart a dead manager; `None` disables supervision.
    pub manager_factory: Option<ManagerFactory>,
}

// Timer-token spaces.
const KIND_SHIFT: u32 = 56;
const K_HEALTH: u64 = 1 << KIND_SHIFT;
const K_OVERHEAD: u64 = 2 << KIND_SHIFT;
const K_COMPUTE: u64 = 3 << KIND_SHIFT;
const K_DISPATCH: u64 = 4 << KIND_SHIFT;
const K_NAP: u64 = 5 << KIND_SHIFT;
const ID_MASK: u64 = (1 << KIND_SHIFT) - 1;

/// The front-end component.
pub struct FrontEnd {
    cfg: FeConfig,
    logic: Box<dyn ServiceLogic>,
    stub: ManagerStub,
    requests: BTreeMap<u64, ReqState>,
    /// job id → (request, tag).
    jobs: BTreeMap<u64, (u64, u64)>,
    /// compute token id → (request, tag, when requested).
    computes: BTreeMap<u64, (u64, u64, SimTime)>,
    /// nap token id → (request, tag).
    naps: BTreeMap<u64, (u64, u64)>,
    next_nap: u64,
    accept_queue: VecDeque<(ComponentId, Arc<ClientRequest>)>,
    active: u32,
    next_req: u64,
    next_compute: u64,
    registered_incarnation: Option<u64>,
    restart_pending: bool,
}

impl FrontEnd {
    /// Creates a front end around service logic.
    pub fn new(logic: Box<dyn ServiceLogic>, cfg: FeConfig) -> Self {
        let stub = ManagerStub::new(cfg.sns.clone());
        FrontEnd {
            cfg,
            logic,
            stub,
            requests: BTreeMap::new(),
            jobs: BTreeMap::new(),
            computes: BTreeMap::new(),
            naps: BTreeMap::new(),
            next_nap: 1,
            accept_queue: VecDeque::new(),
            active: 0,
            next_req: 1,
            next_compute: 1,
            registered_incarnation: None,
            restart_pending: false,
        }
    }

    /// Disables the §4.5 delta correction (ablation experiments).
    pub fn set_delta_correction(&mut self, on: bool) {
        self.stub.set_delta_correction(on);
    }

    /// Requests currently holding a thread.
    pub fn active_requests(&self) -> u32 {
        self.active
    }

    /// The span context dispatches of `req_id` carry: its request span
    /// as parent and its stored head-sampling decision.
    fn span_ctx(&self, ctx: &mut Ctx<'_, SnsMsg>, req_id: u64) -> trace::SpanCtx {
        let sampled = self
            .requests
            .get(&req_id)
            .map(|req| req.sampled)
            .unwrap_or(true);
        trace::SpanCtx::under(trace::request_span_id(ctx.me(), req_id), sampled)
    }

    fn begin(&mut self, ctx: &mut Ctx<'_, SnsMsg>, client: ComponentId, r: Arc<ClientRequest>) {
        let req_id = self.next_req;
        self.next_req += 1;
        self.active += 1;
        let now = ctx.now();
        // The head-sampling decision: made exactly once, here, where the
        // request enters the system; everything downstream (overhead,
        // compute, dispatch, worker queue/service spans) inherits it.
        let sampled = ctx.tracer().decide(req_id);
        self.requests.insert(
            req_id,
            ReqState {
                request: r,
                data: None,
                degraded: false,
                started: now,
                client,
                sampled,
            },
        );
        // Per-request TCP/kernel overhead occupies the FE's CPU first
        // (the §4.4 state-management cost).
        ctx.exec_cpu(self.cfg.sns.fe_request_overhead, K_OVERHEAD | req_id);
    }

    fn run_logic<F>(&mut self, ctx: &mut Ctx<'_, SnsMsg>, req_id: u64, f: F)
    where
        F: FnOnce(&mut dyn ServiceLogic, &mut ReqState, &mut SvcView<'_, '_>, &mut Vec<Action>),
    {
        let Some(mut req) = self.requests.remove(&req_id) else {
            return;
        };
        let mut out = Vec::new();
        {
            let mut view = SvcView {
                now: ctx.now(),
                stub: &self.stub,
                ctx,
            };
            f(self.logic.as_mut(), &mut req, &mut view, &mut out);
        }
        self.requests.insert(req_id, req);
        self.apply(ctx, req_id, out);
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, SnsMsg>, req_id: u64, actions: Vec<Action>) {
        for action in actions {
            if !self.requests.contains_key(&req_id) {
                // A Reply already finished this request; drop the rest.
                break;
            }
            match action {
                Action::Dispatch {
                    tag,
                    class,
                    op,
                    input,
                    profile,
                } => {
                    let span = self.span_ctx(ctx, req_id);
                    let job_id = self.stub.dispatch(ctx, class, op, input, profile, span);
                    self.jobs.insert(job_id, (req_id, tag));
                    ctx.timer(self.cfg.sns.dispatch_timeout, K_DISPATCH | job_id);
                }
                Action::DispatchTo {
                    tag,
                    worker,
                    class,
                    op,
                    input,
                    profile,
                } => {
                    let span = self.span_ctx(ctx, req_id);
                    let job_id = self
                        .stub
                        .dispatch_to(ctx, worker, class, op, input, profile, span);
                    self.jobs.insert(job_id, (req_id, tag));
                    ctx.timer(self.cfg.sns.dispatch_timeout, K_DISPATCH | job_id);
                }
                Action::Compute { tag, cost } => {
                    let cid = self.next_compute;
                    self.next_compute += 1;
                    self.computes.insert(cid, (req_id, tag, ctx.now()));
                    ctx.exec_cpu(cost, K_COMPUTE | cid);
                }
                Action::Nap { tag, delay } => {
                    let nid = self.next_nap;
                    self.next_nap += 1;
                    self.naps.insert(nid, (req_id, tag));
                    ctx.timer(delay, K_NAP | nid);
                }
                Action::MarkDegraded => {
                    if let Some(req) = self.requests.get_mut(&req_id) {
                        req.degraded = true;
                    }
                }
                Action::Reply(result) => {
                    let Some(req) = self.requests.remove(&req_id) else {
                        continue;
                    };
                    let now = ctx.now();
                    if req.sampled && ctx.tracer().is_enabled() {
                        let me = ctx.me();
                        let bytes = result.as_ref().map(|p| p.wire_size()).unwrap_or(0);
                        ctx.tracer().record(trace::span(
                            trace::request_span_id(me, req_id),
                            None,
                            trace::REQUEST,
                            trace::CAT_FE,
                            me,
                            "",
                            req.started,
                            now,
                            bytes,
                            result.is_ok(),
                        ));
                    }
                    let latency = now.since(req.started);
                    ctx.stats().observe("fe.latency_s", latency.as_secs_f64());
                    ctx.stats().incr("fe.replies", 1);
                    if req.degraded {
                        ctx.stats().incr("fe.degraded_replies", 1);
                    }
                    if result.is_err() {
                        ctx.stats().incr("fe.error_replies", 1);
                    }
                    ctx.send(
                        req.client,
                        SnsMsg::Response(Arc::new(ClientResponse {
                            id: req.request.id,
                            result,
                            degraded: req.degraded,
                        })),
                    );
                    self.active -= 1;
                    // Free thread: admit a queued connection.
                    if let Some((client, r)) = self.accept_queue.pop_front() {
                        self.begin(ctx, client, r);
                    }
                }
            }
        }
    }

    fn health_check(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        let now = ctx.now();
        let quiet = match self.stub.last_beacon() {
            None => false, // never seen one; bootstrap, nothing to restart
            Some(t) => now.since(t) > self.cfg.sns.beacon_loss_timeout,
        };
        if quiet && !self.restart_pending {
            if let Some(factory) = self.cfg.manager_factory.as_mut() {
                // Beacons stopped: the manager is presumed dead; restart
                // it with a fresh incarnation (process peers, §3.1.3).
                let inc = self.stub.incarnation() + 1;
                let comp = factory(inc);
                let node = ctx.my_node();
                if ctx.spawn(node, comp, "manager").is_some() {
                    self.restart_pending = true;
                    ctx.stats().incr("fe.manager_restarts", 1);
                    let me = ctx.me();
                    ctx.multicast(
                        self.cfg.monitor_group,
                        SnsMsg::Monitor(Arc::new(MonitorEvent::PeerRestarted {
                            by: me,
                            kind: "manager",
                        })),
                    );
                }
            }
        }
        let me = ctx.me();
        let load = f64::from(self.active);
        ctx.multicast(
            self.cfg.monitor_group,
            SnsMsg::Monitor(Arc::new(MonitorEvent::Heartbeat {
                who: me,
                kind: "frontend",
                load,
            })),
        );
        ctx.timer(self.cfg.sns.beacon_period, K_HEALTH);
    }
}

impl Component<SnsMsg> for FrontEnd {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        self.stub.set_tracing(ctx.tracer().is_enabled());
        self.stub.set_sampling(ctx.tracer().sampling());
        ctx.join(self.cfg.beacon_group);
        let me = ctx.me();
        let node = ctx.my_node();
        ctx.multicast(
            self.cfg.monitor_group,
            SnsMsg::Monitor(Arc::new(MonitorEvent::Started {
                who: me,
                kind: "frontend",
                node,
            })),
        );
        ctx.timer(self.cfg.sns.beacon_period, K_HEALTH);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, from: ComponentId, msg: SnsMsg) {
        match msg {
            SnsMsg::Request(r) => {
                ctx.stats().incr("fe.requests", 1);
                if self.active >= self.cfg.sns.fe_threads {
                    ctx.stats().incr("fe.queued", 1);
                    self.accept_queue.push_back((from, r));
                } else {
                    self.begin(ctx, from, r);
                }
            }
            SnsMsg::Beacon(b) => {
                let new_manager = self.stub.on_beacon(&b);
                self.restart_pending = false;
                if new_manager || self.registered_incarnation != Some(b.incarnation) {
                    self.registered_incarnation = Some(b.incarnation);
                    let me = ctx.me();
                    let node = ctx.my_node();
                    ctx.send(b.manager, SnsMsg::RegisterFrontEnd { fe: me, node });
                }
                self.stub.flush_pending(ctx);
            }
            SnsMsg::WorkResponse { job_id, result, .. } => {
                if self.stub.on_response(ctx, job_id).is_none() {
                    return; // late duplicate after timeout
                }
                let Some(&(req_id, tag)) = self.jobs.get(&job_id) else {
                    return;
                };
                self.jobs.remove(&job_id);
                self.run_logic(ctx, req_id, |logic, req, view, out| {
                    logic.on_event(
                        req,
                        FeEvent::WorkerReply {
                            tag,
                            result: &result,
                        },
                        view,
                        out,
                    );
                });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        let kind = token & !ID_MASK;
        let id = token & ID_MASK;
        match kind {
            K_HEALTH => self.health_check(ctx),
            K_DISPATCH => match self.stub.on_timeout(ctx, id) {
                TimeoutVerdict::Retried => {
                    ctx.timer(self.cfg.sns.dispatch_timeout, K_DISPATCH | id);
                }
                TimeoutVerdict::GaveUp(class) => {
                    if let Some((req_id, tag)) = self.jobs.remove(&id) {
                        self.run_logic(ctx, req_id, |logic, req, view, out| {
                            logic.on_event(req, FeEvent::DispatchFailed { tag, class }, view, out);
                        });
                    }
                }
                TimeoutVerdict::Unknown => {}
            },
            K_NAP => {
                if let Some((req_id, tag)) = self.naps.remove(&id) {
                    self.run_logic(ctx, req_id, |logic, req, view, out| {
                        logic.on_event(req, FeEvent::NapDone { tag }, view, out);
                    });
                }
            }
            _ => {}
        }
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        let kind = token & !ID_MASK;
        let id = token & ID_MASK;
        match kind {
            K_OVERHEAD => {
                if ctx.tracer().is_enabled() {
                    if let Some(req) = self.requests.get(&id).filter(|req| req.sampled) {
                        let me = ctx.me();
                        ctx.tracer().record(trace::span(
                            trace::overhead_span_id(me, id),
                            Some(trace::request_span_id(me, id)),
                            trace::OVERHEAD,
                            trace::CAT_FE,
                            me,
                            "",
                            req.started,
                            ctx.now(),
                            0,
                            true,
                        ));
                    }
                }
                self.run_logic(ctx, id, |logic, req, view, out| {
                    logic.on_request(req, view, out);
                });
            }
            K_COMPUTE => {
                if let Some((req_id, tag, started)) = self.computes.remove(&id) {
                    let sampled = self
                        .requests
                        .get(&req_id)
                        .map(|req| req.sampled)
                        .unwrap_or(false);
                    if sampled && ctx.tracer().is_enabled() {
                        let me = ctx.me();
                        ctx.tracer().record(trace::span(
                            trace::compute_span_id(me, id),
                            Some(trace::request_span_id(me, req_id)),
                            trace::COMPUTE,
                            trace::CAT_FE,
                            me,
                            "",
                            started,
                            ctx.now(),
                            0,
                            true,
                        ));
                    }
                    self.run_logic(ctx, req_id, |logic, req, view, out| {
                        logic.on_event(req, FeEvent::ComputeDone { tag }, view, out);
                    });
                }
            }
            _ => {}
        }
    }

    fn kind(&self) -> &'static str {
        "frontend"
    }
}
