//! The backend-agnostic cluster surface: one trait that chaos plans,
//! invariant checkers and parity tests drive, whether the cluster
//! underneath is the deterministic simulator or real OS threads.
//!
//! The paper's layered architecture (§2.2.5) deliberately narrows the
//! interface between the service and the SNS runtime; this trait is
//! that narrow waist for *test harnesses*. Everything a fault script
//! needs — submit load, count workers, crash things, partition the
//! beacon channel, read the monitor log — appears once here instead of
//! as two hand-matched inherent APIs on `RtCluster` and the sim
//! harness. A plan written against `&dyn Cluster` runs byte-for-byte
//! identically against either backend, which is how the
//! `control_plane_parity` discipline extends to chaos coverage.
//!
//! Backends are asynchronous in different senses (virtual event time
//! vs. wall clock), so the trait has no blocking per-job receive;
//! instead [`Cluster::submit`] is fire-and-remember and
//! [`Cluster::settle`] drives the backend until the submitted jobs
//! resolve (or a budget elapses), reporting how many answered.

use std::time::Duration;

use sns_sim::stats::MetricKey;

use crate::invariant::MonitorLog;
use crate::trace::TraceLog;
use crate::Payload;

/// Outcome of a [`Cluster::settle`] call: how the jobs submitted since
/// the previous settle resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SettleStats {
    /// Jobs that completed with a worker response.
    pub answered: u64,
    /// Jobs that did not resolve within the budget (still outstanding
    /// or explicitly failed by the dispatch plane).
    pub failed: u64,
}

impl SettleStats {
    /// Total jobs the settle accounted for.
    pub fn total(&self) -> u64 {
        self.answered + self.failed
    }
}

/// A running SNS cluster as seen by harness code: submit jobs, inject
/// faults, observe decisions. Implemented by the threaded
/// `sns_rt::RtCluster` and by the simulator harness in `sns-chaos`.
///
/// Fault injectors index *nodes* by position (`which`) in the stable
/// creation order of the worker pool — both backends create nodes in
/// the same order, so position is the portable name. A verb whose
/// target is not currently eligible (killing a node that is already
/// dead or drained, reviving one that is up, an index past the pool)
/// returns `false`/`None` and changes nothing: the injector reports a
/// skip instead of silently re-aiming the fault at a different live
/// node, so a plan always hits the node it names or visibly misses.
pub trait Cluster {
    /// Short backend name for diagnostics (`"sim"`, `"rt"`).
    fn backend(&self) -> &'static str;

    /// Queues one job of `class` for dispatch. The job is remembered
    /// and accounted for by the next [`Cluster::settle`].
    fn submit(&self, class: &str, op: &str, input: Payload);

    /// Runs the backend until all jobs submitted since the last settle
    /// resolve, or `budget` of backend time (virtual for the sim, wall
    /// clock for rt) elapses. With nothing pending, still advances the
    /// backend by up to `budget` — useful for letting recovery or
    /// beacon traffic play out.
    fn settle(&self, budget: Duration) -> SettleStats;

    /// Live workers of `class`.
    fn workers_of(&self, class: &str) -> usize;

    /// Crashes one live worker of `class`; `false` if none exist.
    fn crash_worker(&self, class: &str) -> bool;

    /// Kills the manager (its soft state dies with it, §3.1.5).
    fn kill_manager(&self);

    /// Starts a fresh manager incarnation that rebuilds state from
    /// re-registrations and load reports.
    fn restart_manager(&self);

    /// Kills the `which`-th pool node — all components on it die —
    /// returning how many components died, or `None` when the index is
    /// out of range or that node is already dead (a skip, not a re-aim).
    fn kill_node(&self, which: usize) -> Option<u64>;

    /// Brings the `which`-th pool node back, empty — the manager must
    /// repopulate it; `false` when the index is out of range or that
    /// node is already up.
    fn revive_node(&self, which: usize) -> bool;

    /// Slows the `which`-th pool node by `factor` (`1.0` restores
    /// normal speed); `false` when the index is out of range or that
    /// node is dead.
    fn set_node_slowdown(&self, which: usize, factor: f64) -> bool;

    /// Drains the `which`-th pool node: the manager stops placing work
    /// there and its workers shut down once their queues empty; `false`
    /// when the index is out of range or the node is dead or already
    /// drained.
    fn drain_node(&self, which: usize) -> bool;

    /// Returns the `which`-th pool node to service after a drain. With
    /// `upgraded` the node rejoins at a bumped upgrade epoch (a
    /// rolling-upgrade round completing); `false` when the index is out
    /// of range or the node is dead or not drained.
    fn rejoin_node(&self, which: usize, upgraded: bool) -> bool;

    /// Drops (or restores) all beacon traffic — the §3.1.8 "front ends
    /// keep serving from cached hints" partition.
    fn set_beacon_blackout(&self, on: bool);

    /// Snapshot of the monitor's decision log.
    fn monitor_log(&self) -> MonitorLog;

    /// Reads a counter by typed key (0 if never incremented).
    fn counter(&self, key: MetricKey) -> u64;

    /// Snapshot of the trace log, if tracing was enabled.
    fn trace_snapshot(&self) -> Option<TraceLog>;
}
