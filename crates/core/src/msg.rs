//! The SNS wire protocol: every message exchanged between SNS components.
//!
//! Sizes are estimated per variant so the SAN model can account for
//! bandwidth: beacons grow with the number of advertised workers, work
//! requests and responses carry their payload sizes.

use std::collections::BTreeMap;
use std::sync::Arc;

use sns_sim::engine::Wire;
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, NodeId};

use crate::monitor::MonitorEvent;
use crate::{Payload, WorkerClass};

/// A user profile as delivered to workers with each request (TACC
/// customisation, §2.3).
pub type ProfileData = Arc<BTreeMap<String, String>>;

/// One unit of work dispatched to a worker.
#[derive(Debug, Clone)]
pub struct Job {
    /// Front-end-unique dispatch tag (also used for retries).
    pub id: u64,
    /// Class the job is addressed to.
    pub class: WorkerClass,
    /// Worker-specific operation (e.g. `"distill"`, `"get"`, `"put"`,
    /// `"query"`).
    pub op: String,
    /// Input payload.
    pub input: Payload,
    /// The requesting user's profile, delivered alongside the data so
    /// generic workers can be reused across services (§2.3).
    pub profile: Option<ProfileData>,
    /// Component to send the [`SnsMsg::WorkResponse`] to.
    pub reply_to: ComponentId,
    /// Head-sampling decision of the request this job belongs to
    /// (see [`crate::trace::Sampling`]): workers emit queue/service
    /// spans only for sampled jobs, so a sampled request keeps its
    /// whole span tree in both backends. Always `true` when tracing
    /// runs unsampled; ignored when tracing is off. Costs no wire
    /// bytes — it is telemetry metadata, not payload.
    pub sampled: bool,
}

/// Result of a job.
#[derive(Debug, Clone)]
pub enum JobResult {
    /// Success with an output payload.
    Ok(Payload),
    /// The worker processed the job but declined it (soft failure; the
    /// service layer decides a fallback, §2.2.4).
    Failed(String),
}

/// Per-worker load information advertised in beacons.
#[derive(Debug, Clone)]
pub struct WorkerHint {
    /// The worker.
    pub worker: ComponentId,
    /// Node it runs on.
    pub node: NodeId,
    /// Manager's smoothed queue-length estimate.
    pub est_qlen: f64,
    /// Whether it runs on an overflow-pool node.
    pub overflow: bool,
}

/// The manager's periodic multicast beacon (§3.1.2): announces the
/// manager's existence (for discovery and failure detection) and
/// piggybacks load-balancing hints.
#[derive(Debug, Clone)]
pub struct BeaconData {
    /// The manager component.
    pub manager: ComponentId,
    /// Monotonically increasing incarnation; workers re-register when it
    /// changes (§3.1.3).
    pub incarnation: u64,
    /// Load hints per class.
    pub hints: BTreeMap<WorkerClass, Vec<WorkerHint>>,
    /// When the beacon was emitted.
    pub at: SimTime,
}

/// A client-visible request entering a front end.
#[derive(Debug, Clone)]
pub struct ClientRequest {
    /// Client-assigned id (echoed in the response).
    pub id: u64,
    /// User identification token (cookie / IP, §2.3).
    pub user: String,
    /// Request target (URL or query string).
    pub url: String,
    /// Service-specific extra payload.
    pub body: Option<Payload>,
}

/// The front end's reply to a client.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Echo of [`ClientRequest::id`].
    pub id: u64,
    /// Outcome payload (possibly an approximate answer) or error text.
    pub result: Result<Payload, String>,
    /// Whether the SNS layer degraded the answer (stale/original/partial
    /// content — BASE approximate answers, §3.1.8).
    pub degraded: bool,
}

/// Every message the SNS layer sends.
#[derive(Debug, Clone)]
pub enum SnsMsg {
    /// Worker → manager: announce existence (on start and on new manager
    /// incarnations).
    RegisterWorker {
        /// The worker stub.
        worker: ComponentId,
        /// Its class.
        class: WorkerClass,
        /// Node it runs on.
        node: NodeId,
        /// Whether its node is in the overflow pool.
        overflow: bool,
    },
    /// Worker → manager: clean shutdown.
    DeregisterWorker {
        /// The worker stub.
        worker: ComponentId,
    },
    /// Worker → manager: periodic load report (queue length, §3.1.2).
    LoadReport {
        /// The worker stub.
        worker: ComponentId,
        /// Its class.
        class: WorkerClass,
        /// Instantaneous queue length (queued + in service).
        qlen: u32,
    },
    /// Front end → manager: a dispatch found no worker of `class`; the
    /// manager locates or spawns one (§3.1.2).
    NeedWorker {
        /// Requesting front end.
        fe: ComponentId,
        /// Class needed.
        class: WorkerClass,
    },
    /// Front end → manager: register for supervision (process peers).
    RegisterFrontEnd {
        /// The front end.
        fe: ComponentId,
        /// Node it runs on.
        node: NodeId,
    },
    /// Manager → all (multicast): existence beacon + load hints.
    Beacon(Arc<BeaconData>),
    /// Front end → worker: do work.
    WorkRequest(Arc<Job>),
    /// Worker → front end: work result.
    WorkResponse {
        /// Echo of [`Job::id`].
        job_id: u64,
        /// The worker that processed it.
        worker: ComponentId,
        /// Outcome.
        result: JobResult,
    },
    /// Manager → worker: drain and exit (reaping, §3.1.2).
    Shutdown,
    /// Operator → manager: drain a node for a hot upgrade (§2.2:
    /// "temporarily disable a subset of nodes and then upgrade them in
    /// place"). Workers on it are drained and respawned elsewhere; no
    /// new work is placed on it until [`SnsMsg::UndrainNode`].
    DrainNode {
        /// Node to take out of service.
        node: NodeId,
    },
    /// Operator → manager: return an upgraded node to service.
    UndrainNode {
        /// Node to return to the placement pool.
        node: NodeId,
    },
    /// Operator → manager: a drained node finished its in-place upgrade
    /// and restarts at a new incarnation; return it to service and bump
    /// its upgrade epoch (rolling-upgrade rounds, §2.2).
    UpgradeNode {
        /// Node rejoining at a new incarnation.
        node: NodeId,
    },
    /// Client → front end.
    Request(Arc<ClientRequest>),
    /// Front end → client.
    Response(Arc<ClientResponse>),
    /// Any component → monitor (multicast group).
    Monitor(Arc<MonitorEvent>),
}

/// Estimated fixed header cost of any SNS message.
const HDR: u64 = 64;

impl Wire for SnsMsg {
    fn wire_size(&self) -> u64 {
        match self {
            SnsMsg::RegisterWorker { class, .. } => HDR + class.name().len() as u64 + 16,
            SnsMsg::DeregisterWorker { .. } => HDR,
            SnsMsg::LoadReport { class, .. } => HDR + class.name().len() as u64 + 8,
            SnsMsg::NeedWorker { class, .. } => HDR + class.name().len() as u64,
            SnsMsg::RegisterFrontEnd { .. } => HDR + 8,
            SnsMsg::Beacon(b) => {
                let hints: u64 = b
                    .hints
                    .iter()
                    .map(|(c, v)| c.name().len() as u64 + v.len() as u64 * 24)
                    .sum();
                HDR + 16 + hints
            }
            SnsMsg::WorkRequest(job) => {
                let profile: u64 = job
                    .profile
                    .as_ref()
                    .map(|p| p.iter().map(|(k, v)| (k.len() + v.len() + 8) as u64).sum())
                    .unwrap_or(0);
                HDR + job.op.len() as u64 + job.input.wire_size() + profile
            }
            SnsMsg::WorkResponse { result, .. } => {
                HDR + match result {
                    JobResult::Ok(p) => p.wire_size(),
                    JobResult::Failed(e) => e.len() as u64,
                }
            }
            SnsMsg::Shutdown => HDR,
            SnsMsg::DrainNode { .. } | SnsMsg::UndrainNode { .. } | SnsMsg::UpgradeNode { .. } => {
                HDR + 8
            }
            SnsMsg::Request(r) => {
                HDR + r.url.len() as u64
                    + r.user.len() as u64
                    + r.body.as_ref().map(|b| b.wire_size()).unwrap_or(0)
            }
            SnsMsg::Response(r) => {
                HDR + match &r.result {
                    Ok(p) => p.wire_size(),
                    Err(e) => e.len() as u64,
                }
            }
            SnsMsg::Monitor(_) => HDR + 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Blob;

    #[test]
    fn payload_sizes_flow_through() {
        let job = Arc::new(Job {
            id: 1,
            class: "distiller/gif".into(),
            op: "distill".into(),
            input: Blob::payload(10_000, "gif"),
            profile: None,
            reply_to: ComponentId(7),
            sampled: true,
        });
        let msg = SnsMsg::WorkRequest(job);
        assert!(msg.wire_size() > 10_000);
        assert!(msg.wire_size() < 10_200);
        let resp = SnsMsg::WorkResponse {
            job_id: 1,
            worker: ComponentId(9),
            result: JobResult::Ok(Blob::payload(1500, "distilled")),
        };
        assert_eq!(resp.wire_size(), 64 + 1500);
    }

    #[test]
    fn beacon_size_grows_with_hints() {
        let small = SnsMsg::Beacon(Arc::new(BeaconData {
            manager: ComponentId(1),
            incarnation: 1,
            hints: BTreeMap::new(),
            at: SimTime::ZERO,
        }));
        let mut hints = BTreeMap::new();
        hints.insert(
            WorkerClass::new("distiller/gif"),
            (0..100)
                .map(|i| WorkerHint {
                    worker: ComponentId(i),
                    node: NodeId(0),
                    est_qlen: 0.0,
                    overflow: false,
                })
                .collect(),
        );
        let big = SnsMsg::Beacon(Arc::new(BeaconData {
            manager: ComponentId(1),
            incarnation: 1,
            hints,
            at: SimTime::ZERO,
        }));
        assert!(big.wire_size() > small.wire_size() + 2000);
    }

    #[test]
    fn profile_counts_toward_request_size() {
        let mut profile = BTreeMap::new();
        profile.insert("quality".to_string(), "25".to_string());
        let with = SnsMsg::WorkRequest(Arc::new(Job {
            id: 1,
            class: "x".into(),
            op: "o".into(),
            input: Blob::payload(100, "b"),
            profile: Some(Arc::new(profile)),
            reply_to: ComponentId(1),
            sampled: true,
        }));
        let without = SnsMsg::WorkRequest(Arc::new(Job {
            id: 1,
            class: "x".into(),
            op: "o".into(),
            input: Blob::payload(100, "b"),
            profile: None,
            reply_to: ComponentId(1),
            sampled: true,
        }));
        assert!(with.wire_size() > without.wire_size());
    }
}
