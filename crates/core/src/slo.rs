//! Span-derived SLO summaries: streaming per-service / per-tenant
//! latency percentiles and the depth-1 request-path breakdown.
//!
//! The paper's SNS layer assumes a continuously *operated* service
//! (§3: the monitor "reports errors", operators watch utilization);
//! what makes that cheap in practice is deriving service-level
//! indicators from the sampled span stream instead of logging every
//! request. An [`SloAggregator`] consumes [`SpanRecord`]s one at a
//! time — from a [`TraceLog`] snapshot or as they stream out of a
//! sink — and maintains bounded-memory log-linear histograms:
//!
//! * **request latency** — `req` spans (front-end round trips), plus
//!   root `job` spans for drivers that submit straight into the
//!   dispatch plane (the rt `submit` path, the chaos harness);
//! * **per-service latency** — `job` spans grouped by worker class;
//! * **per-tenant latency** — the same, folded through a class→tenant
//!   assignment ([`SloAggregator::set_tenant`]);
//! * **depth-1 breakdown** — each dispatch's time split into
//!   queue-wait (`wq`), worker service (`ws`) and the remainder
//!   (dispatch + network), joined streamingly by job id.
//!
//! Because the input is head-sampled (see [`crate::trace::Sampling`]),
//! every histogram count is an unbiased 1-in-`rate` estimate:
//! [`SloRow`]s report the observed count as `samples` and the
//! scaled-up `count × rate` as `iters`, and the closure invariant
//! `samples × rate ≈ admitted requests` is what the cluster-ops suite
//! checks under chaos.
//!
//! Rows serialise in the `BENCH_*.json` trajectory format (a strict
//! superset of `sns_testkit::bench::BenchRow` — one extra `p95_ns`
//! field), so SLO rows append to the same files and the same CI
//! row-count guards see them.

use std::collections::BTreeMap;

use sns_sim::time::SimTime;

use crate::trace::{SpanId, SpanRecord, TraceLog};

/// Subbucket resolution: 2^3 = 8 subbuckets per octave, bounding the
/// relative quantile error at ~1/16 ≈ 6%.
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;
/// 512 buckets cover 0 ns ..= u64::MAX ns.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUBS as usize;

/// A bounded-memory log-linear histogram over nanosecond durations:
/// fixed 512 × u64 storage, ~6% relative quantile error, O(1) record.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: f64,
    min: u64,
    max: u64,
    /// Last sampled span id to land in each occupied bucket: the
    /// exemplar link from a percentile back to a concrete trace.
    exemplars: BTreeMap<usize, SpanId>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_of(ns: u64) -> usize {
    if ns < SUBS {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros();
    let sub = (ns >> (octave - SUB_BITS)) & (SUBS - 1);
    ((u64::from(octave) - u64::from(SUB_BITS) + 1) * SUBS + sub) as usize
}

/// Inclusive lower bound of a bucket (inverse of [`bucket_of`]).
fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBS {
        return idx;
    }
    let octave = idx / SUBS - 1 + u64::from(SUB_BITS);
    let sub = idx % SUBS;
    (SUBS + sub) << (octave - u64::from(SUB_BITS))
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
            exemplars: BTreeMap::new(),
        }
    }

    /// Records one duration, in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum += ns as f64;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Records one duration and remembers `id` as the bucket's
    /// exemplar (last writer wins; storage is bounded by the 512
    /// buckets). Quantile rows then link back to a concrete trace via
    /// [`Histogram::exemplar`].
    pub fn record_exemplar(&mut self, ns: u64, id: SpanId) {
        self.record(ns);
        self.exemplars.insert(bucket_of(ns), id);
    }

    /// The exemplar nearest the `q`-quantile's bucket: the span id of
    /// a real observation with approximately that latency. `None` when
    /// nothing was recorded via [`Histogram::record_exemplar`].
    pub fn exemplar(&self, q: f64) -> Option<SpanId> {
        if self.total == 0 || self.exemplars.is_empty() {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * (self.total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        let mut idx = BUCKETS - 1;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > target {
                idx = i;
                break;
            }
        }
        if let Some(id) = self.exemplars.get(&idx) {
            return Some(*id);
        }
        // Nearest occupied bucket with an exemplar, preferring the
        // slower side (the more interesting tail witness).
        for d in 1..BUCKETS {
            if let Some(id) = self.exemplars.get(&(idx + d)) {
                return Some(*id);
            }
            if d <= idx {
                if let Some(id) = self.exemplars.get(&(idx - d)) {
                    return Some(*id);
                }
            }
        }
        None
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of recorded durations (exact, not bucketed).
    pub fn sum_ns(&self) -> f64 {
        self.sum
    }

    /// Mean recorded duration.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Smallest recorded duration (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded duration.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (0.0 ..= 1.0) as a bucket-midpoint estimate,
    /// clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * (self.total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > target {
                let low = bucket_low(idx);
                let width = bucket_low((idx + 1).min(BUCKETS - 1)).saturating_sub(low);
                let mid = low + width / 2;
                return mid.clamp(self.min, self.max) as f64;
            }
        }
        self.max as f64
    }
}

/// One rendered SLO summary row (`BenchRow` superset: adds `p95_ns`).
#[derive(Debug, Clone)]
pub struct SloRow {
    /// Row name, e.g. `slo/request` or `slo/service/distiller-gif`.
    pub bench: String,
    /// Estimated population: observed count × sampling rate.
    pub iters: u64,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// Median, ns.
    pub p50_ns: f64,
    /// 95th percentile, ns.
    pub p95_ns: f64,
    /// 99th percentile, ns.
    pub p99_ns: f64,
    /// Fastest observation, ns.
    pub min_ns: f64,
    /// Slowest observation, ns.
    pub max_ns: f64,
    /// Observed (sampled) count.
    pub samples: u64,
    /// Trace id (canonical `kind:c<owner>:<n>` form) of a sampled
    /// observation near the p50 bucket — a concrete trace to pull up
    /// next to the number.
    pub p50_exemplar: Option<String>,
    /// Exemplar near the p95 bucket.
    pub p95_exemplar: Option<String>,
    /// Exemplar near the p99 bucket: the row's tail witness.
    pub p99_exemplar: Option<String>,
}

/// Partially joined per-job breakdown state (bounded by in-flight
/// sampled jobs: entries are removed when the closing `job` span
/// arrives).
#[derive(Debug, Default, Clone, Copy)]
struct OpenJob {
    queue_ns: u64,
    service_ns: u64,
}

/// Streaming SLO aggregation over a (sampled) span stream. See the
/// module docs for the derivation rules.
#[derive(Debug, Clone)]
pub struct SloAggregator {
    rate: u32,
    tenants: BTreeMap<String, String>,
    request: Histogram,
    by_class: BTreeMap<String, Histogram>,
    by_tenant: BTreeMap<String, Histogram>,
    overhead: Histogram,
    compute: Histogram,
    queue: Histogram,
    service: Histogram,
    net: Histogram,
    open: BTreeMap<(u64, u64), OpenJob>,
}

fn dur_ns(s: &SpanRecord) -> u64 {
    s.end.since(s.start).as_nanos() as u64
}

impl SloAggregator {
    /// An empty aggregator for a stream head-sampled at `rate`
    /// (`<= 1` = every request present).
    pub fn new(rate: u32) -> Self {
        SloAggregator {
            rate: rate.max(1),
            tenants: BTreeMap::new(),
            request: Histogram::new(),
            by_class: BTreeMap::new(),
            by_tenant: BTreeMap::new(),
            overhead: Histogram::new(),
            compute: Histogram::new(),
            queue: Histogram::new(),
            service: Histogram::new(),
            net: Histogram::new(),
            open: BTreeMap::new(),
        }
    }

    /// The 1-in-`rate` sampling this aggregator scales counts by.
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// Assigns a worker class to a tenant; `job` spans of that class
    /// additionally feed `slo/tenant/<tenant>`.
    pub fn set_tenant(&mut self, class: &str, tenant: &str) {
        self.tenants.insert(class.to_string(), tenant.to_string());
    }

    /// Consumes one span. Order-tolerant within a request, but the
    /// closing `job` span must arrive after its `wq`/`ws` children —
    /// which both backends guarantee (the dispatch span is emitted when
    /// the response reaches the submitter).
    pub fn observe(&mut self, s: &SpanRecord) {
        match s.id.kind {
            "req" => self.request.record_exemplar(dur_ns(s), s.id),
            "ovh" => self.overhead.record_exemplar(dur_ns(s), s.id),
            "cpu" => self.compute.record_exemplar(dur_ns(s), s.id),
            "wq" | "ws" => {
                if let Some(p) = s.parent {
                    let open = self.open.entry((p.owner.0, p.n)).or_default();
                    if s.id.kind == "wq" {
                        open.queue_ns += dur_ns(s);
                    } else {
                        open.service_ns += dur_ns(s);
                    }
                }
                if s.id.kind == "wq" {
                    self.queue.record_exemplar(dur_ns(s), s.id);
                } else {
                    self.service.record_exemplar(dur_ns(s), s.id);
                }
            }
            "job" => {
                let total = dur_ns(s);
                if s.parent.is_none() {
                    // Plane-root dispatch: the request-level latency for
                    // drivers without a front end.
                    self.request.record_exemplar(total, s.id);
                }
                if !s.class.is_empty() {
                    self.by_class
                        .entry(s.class.to_string())
                        .or_default()
                        .record_exemplar(total, s.id);
                    if let Some(tenant) = self.tenants.get(s.class) {
                        self.by_tenant
                            .entry(tenant.clone())
                            .or_default()
                            .record_exemplar(total, s.id);
                    }
                }
                let open = self
                    .open
                    .remove(&(s.id.owner.0, s.id.n))
                    .unwrap_or_default();
                self.net
                    .record_exemplar(total.saturating_sub(open.queue_ns + open.service_ns), s.id);
            }
            _ => {}
        }
    }

    /// Consumes a whole trace snapshot in emission order.
    pub fn ingest(&mut self, log: &TraceLog) {
        for s in log.spans() {
            self.observe(s);
        }
    }

    /// Observed (sampled) request-level spans so far. The closure
    /// invariant: `sampled_requests() × rate` estimates the number of
    /// admitted requests, within sampling noise.
    pub fn sampled_requests(&self) -> u64 {
        self.request.count()
    }

    /// The depth-1 breakdown as `(component, total ns)` sums —
    /// the normalization input for the `trace_diff` gate.
    pub fn breakdown_sums(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("overhead", self.overhead.sum_ns()),
            ("compute", self.compute.sum_ns()),
            ("queue", self.queue.sum_ns()),
            ("service", self.service.sum_ns()),
            ("net", self.net.sum_ns()),
        ]
    }

    /// All summary rows with at least one observation, in a stable
    /// order: request, per-service, per-tenant, breakdown components.
    pub fn rows(&self) -> Vec<SloRow> {
        let mut rows = Vec::new();
        let mut push = |name: String, h: &Histogram| {
            if h.count() == 0 {
                return;
            }
            rows.push(SloRow {
                bench: name,
                iters: h.count() * u64::from(self.rate),
                mean_ns: h.mean(),
                p50_ns: h.quantile(0.50),
                p95_ns: h.quantile(0.95),
                p99_ns: h.quantile(0.99),
                min_ns: h.min_ns() as f64,
                max_ns: h.max_ns() as f64,
                samples: h.count(),
                p50_exemplar: h.exemplar(0.50).map(|id| id.render()),
                p95_exemplar: h.exemplar(0.95).map(|id| id.render()),
                p99_exemplar: h.exemplar(0.99).map(|id| id.render()),
            });
        };
        push("slo/request".into(), &self.request);
        for (class, h) in &self.by_class {
            push(format!("slo/service/{}", class.replace('/', "-")), h);
        }
        for (tenant, h) in &self.by_tenant {
            push(format!("slo/tenant/{tenant}"), h);
        }
        for (name, h) in [
            ("overhead", &self.overhead),
            ("compute", &self.compute),
            ("queue", &self.queue),
            ("service", &self.service),
            ("net", &self.net),
        ] {
            push(format!("slo/breakdown/{name}"), h);
        }
        rows
    }

    /// Renders [`SloAggregator::rows`] as a JSON array in the
    /// `BENCH_*.json` trajectory format under `group`.
    pub fn to_json_rows(&self, group: &str) -> String {
        let rows = self.rows();
        let mut out = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            let mut exemplars = String::new();
            for (field, ex) in [
                ("p50_exemplar", &r.p50_exemplar),
                ("p95_exemplar", &r.p95_exemplar),
                ("p99_exemplar", &r.p99_exemplar),
            ] {
                if let Some(id) = ex {
                    exemplars.push_str(&format!(",\"{field}\":\"{id}\""));
                }
            }
            out.push_str(&format!(
                "  {{\"group\":\"{}\",\"bench\":\"{}\",\"iters\":{},\"mean_ns\":{:.1},\
                 \"p50_ns\":{:.1},\"p95_ns\":{:.1},\"p99_ns\":{:.1},\"min_ns\":{:.1},\
                 \"max_ns\":{:.1},\"samples\":{}{}}}{}\n",
                group,
                r.bench,
                r.iters,
                r.mean_ns,
                r.p50_ns,
                r.p95_ns,
                r.p99_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                exemplars,
                if i + 1 < rows.len() { "," } else { "" },
            ));
        }
        out.push(']');
        out
    }
}

/// Convenience: milliseconds → the nanosecond scale histograms use.
pub fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{span, SpanId};
    use sns_sim::ComponentId;

    #[test]
    fn histogram_buckets_partition_the_u64_range() {
        // Adjacent bucket bounds tile: low(i+1) follows low(i).
        for i in 0..BUCKETS - 1 {
            assert!(bucket_low(i) < bucket_low(i + 1), "bucket {i} ordered");
            assert_eq!(
                bucket_of(bucket_low(i)),
                i,
                "lower bound maps to its bucket"
            );
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_stay_within_the_resolution_band() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000); // 1 µs .. 10 ms, uniform
        }
        assert_eq!(h.count(), 10_000);
        for (q, exact) in [(0.5, 5_000_500.0), (0.95, 9_500_000.0), (0.99, 9_900_000.0)] {
            let got = h.quantile(q);
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.08, "q{q}: got {got}, exact {exact}, rel {rel}");
        }
        assert_eq!(h.min_ns(), 1000);
        assert_eq!(h.max_ns(), 10_000_000);
        assert!((h.mean() - 5_000_500.0).abs() < 1.0);
    }

    fn rec(
        kind: &'static str,
        owner: u64,
        n: u64,
        parent: Option<SpanId>,
        a: u64,
        b: u64,
    ) -> SpanRecord {
        span(
            SpanId {
                kind,
                owner: ComponentId(owner),
                n,
            },
            parent,
            "x",
            "test",
            ComponentId(owner),
            if kind == "job" { "echo" } else { "" },
            ms(a),
            ms(b),
            0,
            true,
        )
    }

    #[test]
    fn aggregator_joins_the_depth_1_breakdown_by_job_id() {
        let mut slo = SloAggregator::new(4);
        slo.set_tenant("echo", "transend");
        let job = SpanId {
            kind: "job",
            owner: ComponentId(50),
            n: 7,
        };
        // queue 2 ms, service 5 ms, total 10 ms → net 3 ms.
        slo.observe(&rec("wq", 9, 7, Some(job), 1, 3));
        slo.observe(&rec("ws", 9, 7, Some(job), 3, 8));
        slo.observe(&rec("job", 50, 7, None, 0, 10));
        assert_eq!(slo.sampled_requests(), 1, "root job = one request");
        let sums: BTreeMap<_, _> = slo.breakdown_sums().into_iter().collect();
        assert_eq!(sums["queue"], 2_000_000.0);
        assert_eq!(sums["service"], 5_000_000.0);
        assert_eq!(sums["net"], 3_000_000.0);
        assert!(slo.open.is_empty(), "join state drains with the job span");
        let rows = slo.rows();
        let find = |b: &str| rows.iter().find(|r| r.bench == b).expect("row");
        assert_eq!(find("slo/request").samples, 1);
        assert_eq!(find("slo/request").iters, 4, "scaled by the rate");
        assert_eq!(find("slo/service/echo").samples, 1);
        assert_eq!(find("slo/tenant/transend").samples, 1);
        assert_eq!(find("slo/breakdown/net").samples, 1);
    }

    #[test]
    fn rows_render_in_the_bench_trajectory_format() {
        let mut slo = SloAggregator::new(1);
        slo.observe(&rec("req", 3, 1, None, 0, 4));
        let json = slo.to_json_rows("sim");
        assert!(json.starts_with("[\n") && json.ends_with(']'));
        assert!(json.contains("\"group\":\"sim\""));
        assert!(json.contains("\"bench\":\"slo/request\""));
        assert!(json.contains("\"p95_ns\":"), "superset field present");
        assert!(json.contains("\"samples\":1"));
        assert!(
            json.contains("\"p99_exemplar\":\"req:c3:1\""),
            "the row links to the concrete trace: {json}"
        );
    }

    #[test]
    fn exemplars_link_percentile_buckets_to_trace_ids() {
        let mut h = Histogram::new();
        // 97 fast observations and three slow outliers: the p99
        // exemplar must name a slow span, the p50 one a fast span.
        for i in 0..97u64 {
            h.record_exemplar(
                1_000_000 + i,
                SpanId {
                    kind: "req",
                    owner: ComponentId(7),
                    n: i,
                },
            );
        }
        for i in 997..1000u64 {
            h.record_exemplar(
                900_000_000,
                SpanId {
                    kind: "req",
                    owner: ComponentId(7),
                    n: i,
                },
            );
        }
        assert!(h.exemplar(0.99).expect("tail exemplar").n >= 997);
        assert!(h.exemplar(0.50).expect("median exemplar").n < 97);
        // A histogram fed without exemplars yields none.
        let mut plain = Histogram::new();
        plain.record(5);
        assert!(plain.exemplar(0.5).is_none());
    }
}
