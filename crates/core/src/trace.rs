//! End-to-end request tracing (see `OBSERVABILITY.md`): the span model
//! the SNS layer emits and the std-only exporters that turn a recorded
//! [`TraceLog`] into something a human (or a trace viewer) can read.
//!
//! The recording substrate — [`Tracer`], [`SpanId`], [`SpanRecord`],
//! [`TraceLog`] — lives in `sns_sim::trace` because the engine kernel
//! holds the tracer; this module re-exports it and adds everything
//! SNS-specific on top:
//!
//! * **the id scheme**: request spans are numbered by the front end
//!   that admitted them ([`request_span_id`]); job spans are derived
//!   from the dispatching component and the [`crate::msg::Job`] id
//!   ([`job_span_id`]), which is exactly the pair (`reply_to`, `id`)
//!   that travels inside the job message — so a worker can parent its
//!   queue/service spans under the dispatch span *without any extra
//!   protocol field*, in both backends;
//! * **exporters**: newline-delimited JSON ([`JsonlSink`]), the
//!   Chrome `trace_event` format ([`ChromeSink`]), loadable directly in
//!   `chrome://tracing` / Perfetto, and the Perfetto *protobuf* format
//!   ([`PerfettoSink`]) — a hand-rolled, std-only TrackEvent encoder
//!   that streams packets with bounded memory, for ui.perfetto.dev;
//! * **head sampling** ([`Sampling`], [`SpanCtx`]): the always-on
//!   production mode — one keep/skip decision per request made where
//!   the request enters the system and carried through the `Job`, so
//!   both backends sample identical request sets for the same seed;
//! * **the parity rendering** ([`normalized`]): a timestamp-free,
//!   identity-free rendering of the causal forest, byte-comparable
//!   between a simulator run (virtual time) and a threaded-runtime run
//!   (wall-clock time) of the same scenario.
//!
//! Span names, categories and class tags are interned `&'static str`s
//! (the `sns_sim::intern` pool that also backs `MetricKey`), so span
//! construction on the hot path never allocates.
//!
//! ## Example
//!
//! ```
//! use sns_core::trace::{self, Tracer};
//! use sns_sim::{ComponentId, SimTime};
//!
//! let tracer = Tracer::enabled();
//! tracer.record(trace::span(
//!     trace::request_span_id(ComponentId(7), 1),
//!     None,
//!     trace::REQUEST,
//!     trace::CAT_FE,
//!     ComponentId(7),
//!     "",
//!     SimTime::ZERO,
//!     SimTime::from_millis(12),
//!     1024,
//!     true,
//! ));
//! let log = tracer.snapshot().unwrap();
//! assert!(trace::to_jsonl(&log).starts_with("{\"id\":\"req:c7:1\""));
//! assert!(trace::to_chrome(&log).starts_with("{\"traceEvents\":["));
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io;

use sns_sim::time::SimTime;
use sns_sim::ComponentId;

pub use sns_sim::trace::{Sampling, SpanId, SpanRecord, TraceLog, Tracer};

/// Span context a caller hands to a dispatch: the causal parent (the
/// front end's request span) plus the request's head-sampling decision.
/// Both travel together because a dispatch span must never be kept
/// while its request span is dropped (or vice versa) — sampling keeps
/// whole trees.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCtx {
    /// Causal parent for the dispatch span, when the caller has one.
    pub parent: Option<SpanId>,
    /// The head decision already made for this request, or `None` for a
    /// root dispatch — then the dispatch plane decides from the job id.
    pub sampled: Option<bool>,
}

impl SpanCtx {
    /// A root dispatch with no enclosing request: the plane makes the
    /// head decision from the job id, so sim and rt (where job ids
    /// align) sample the same set.
    pub fn root() -> Self {
        SpanCtx {
            parent: None,
            sampled: None,
        }
    }

    /// A dispatch under `parent` whose request already decided
    /// `sampled` at admission.
    pub fn under(parent: SpanId, sampled: bool) -> Self {
        SpanCtx {
            parent: Some(parent),
            sampled: Some(sampled),
        }
    }
}

/// Root span covering one client request inside a front end.
pub const REQUEST: &str = "request";
/// Per-request TCP/kernel overhead burned before service logic runs.
pub const OVERHEAD: &str = "overhead";
/// A local front-end compute burst (page assembly, collation).
pub const COMPUTE: &str = "compute";
/// A dispatched job, from lottery to response (includes queue wait,
/// retries and the network in both directions).
pub const DISPATCH: &str = "dispatch";
/// Time a job waited in a worker's queue before service began.
pub const QUEUE: &str = "queue";
/// Time a worker spent servicing a job.
pub const SERVICE: &str = "service";

/// Category for spans emitted by the front-end framework.
pub const CAT_FE: &str = "fe";
/// Category for spans emitted by the dispatch plane (manager stub).
pub const CAT_STUB: &str = "stub";
/// Category for spans emitted by worker stubs / worker threads.
pub const CAT_WORKER: &str = "worker";
/// Category for instantaneous monitor events mirrored into the trace.
pub const CAT_MONITOR: &str = "monitor";

/// Id of the root span for request `req_id` admitted by front end `fe`.
pub fn request_span_id(fe: ComponentId, req_id: u64) -> SpanId {
    SpanId {
        kind: "req",
        owner: fe,
        n: req_id,
    }
}

/// Id of the dispatch span for job `job_id` dispatched by `reply_to`.
/// Both values travel inside [`crate::msg::Job`], so the worker side
/// derives the same id without extra protocol state.
pub fn job_span_id(reply_to: ComponentId, job_id: u64) -> SpanId {
    SpanId {
        kind: "job",
        owner: reply_to,
        n: job_id,
    }
}

/// Id of the admission-overhead span for request `req_id` on front end
/// `fe` (the §4.4 TCP/kernel cost burned before service logic runs).
pub fn overhead_span_id(fe: ComponentId, req_id: u64) -> SpanId {
    SpanId {
        kind: "ovh",
        owner: fe,
        n: req_id,
    }
}

/// Id of a local front-end compute span (`compute_id` is the front
/// end's compute counter, unique across its requests).
pub fn compute_span_id(fe: ComponentId, compute_id: u64) -> SpanId {
    SpanId {
        kind: "cpu",
        owner: fe,
        n: compute_id,
    }
}

/// Id of the queue-wait span for job `job_id` inside worker `worker`.
pub fn queue_span_id(worker: ComponentId, job_id: u64) -> SpanId {
    SpanId {
        kind: "wq",
        owner: worker,
        n: job_id,
    }
}

/// Id of the service span for job `job_id` inside worker `worker`.
pub fn service_span_id(worker: ComponentId, job_id: u64) -> SpanId {
    SpanId {
        kind: "ws",
        owner: worker,
        n: job_id,
    }
}

/// Builds a [`SpanRecord`] (plain constructor, mirrors the field
/// order; keeps emission sites to one expression).
#[allow(clippy::too_many_arguments)]
pub fn span(
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    cat: &'static str,
    who: ComponentId,
    class: &'static str,
    start: SimTime,
    end: SimTime,
    bytes: u64,
    ok: bool,
) -> SpanRecord {
    SpanRecord {
        id,
        parent,
        name,
        cat,
        who,
        class,
        start,
        end,
        bytes,
        ok,
    }
}

/// A consumer of spans during export. Implementations accumulate into
/// an internal buffer; [`TraceSink::into_string`] closes any framing
/// and returns the finished document.
pub trait TraceSink {
    /// Consumes one span, in log order.
    fn span(&mut self, s: &SpanRecord);
    /// Finishes the export and returns the rendered document.
    fn into_string(self: Box<Self>) -> String;
}

/// Drives every span of `log` through `sink` and returns the document.
pub fn export(log: &TraceLog, mut sink: Box<dyn TraceSink>) -> String {
    for s in log.spans() {
        sink.span(s);
    }
    sink.into_string()
}

/// Renders `log` as newline-delimited JSON, one span per line, in
/// emission order. Same-seed runs produce byte-identical output (this
/// is the determinism surface checked in `tests/determinism.rs`).
pub fn to_jsonl(log: &TraceLog) -> String {
    export(log, Box::new(JsonlSink::new()))
}

/// Renders `log` in the Chrome `trace_event` format (a JSON object
/// with a `traceEvents` array), loadable in `chrome://tracing` and
/// Perfetto. Complete spans become `ph:"X"` events with microsecond
/// `ts`/`dur`; instants become `ph:"i"` events.
pub fn to_chrome(log: &TraceLog) -> String {
    export(log, Box::new(ChromeSink::new()))
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Newline-delimited JSON exporter: one object per span with the raw
/// model fields (`id`, `parent`, `name`, `cat`, `who`, `class`,
/// `start_ns`, `end_ns`, `bytes`, `ok`).
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }
}

impl TraceSink for JsonlSink {
    fn span(&mut self, s: &SpanRecord) {
        let out = &mut self.out;
        let _ = write!(out, "{{\"id\":\"{}\",", s.id.render());
        match s.parent {
            Some(p) => {
                let _ = write!(out, "\"parent\":\"{}\",", p.render());
            }
            None => out.push_str("\"parent\":null,"),
        }
        out.push_str("\"name\":\"");
        escape_into(out, s.name);
        out.push_str("\",\"cat\":\"");
        escape_into(out, s.cat);
        let _ = write!(out, "\",\"who\":{},\"class\":\"", s.who.0);
        escape_into(out, s.class);
        let _ = writeln!(
            out,
            "\",\"start_ns\":{},\"end_ns\":{},\"bytes\":{},\"ok\":{}}}",
            s.start.as_nanos(),
            s.end.as_nanos(),
            s.bytes,
            s.ok
        );
    }

    fn into_string(self: Box<Self>) -> String {
        self.out
    }
}

/// Chrome `trace_event` exporter. `pid` is always 1; `tid` is the
/// emitting component id, so each component gets its own track in the
/// viewer. Timestamps are microseconds with nanosecond precision kept
/// in three decimal places (rendered deterministically, no floats).
#[derive(Debug, Default)]
pub struct ChromeSink {
    out: String,
    any: bool,
}

impl ChromeSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        ChromeSink::default()
    }

    fn event_head(&mut self, s: &SpanRecord) {
        if self.any {
            self.out.push(',');
        } else {
            self.out.push_str("{\"traceEvents\":[");
            self.any = true;
        }
        self.out.push_str("{\"name\":\"");
        escape_into(&mut self.out, s.name);
        self.out.push_str("\",\"cat\":\"");
        escape_into(&mut self.out, s.cat);
        let ns = s.start.as_nanos();
        let _ = write!(
            self.out,
            "\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}",
            ns / 1_000,
            ns % 1_000,
            s.who.0
        );
    }

    fn event_tail(&mut self, s: &SpanRecord) {
        let _ = write!(self.out, ",\"args\":{{\"id\":\"{}\"", s.id.render());
        if let Some(p) = s.parent {
            let _ = write!(self.out, ",\"parent\":\"{}\"", p.render());
        }
        if !s.class.is_empty() {
            self.out.push_str(",\"class\":\"");
            escape_into(&mut self.out, s.class);
            self.out.push('"');
        }
        let _ = write!(self.out, ",\"bytes\":{},\"ok\":{}}}}}", s.bytes, s.ok);
    }
}

impl TraceSink for ChromeSink {
    fn span(&mut self, s: &SpanRecord) {
        self.event_head(s);
        if s.start == s.end {
            self.out.push_str(",\"ph\":\"i\",\"s\":\"g\"");
        } else {
            let dur = s.end.since(s.start).as_nanos() as u64;
            let _ = write!(
                self.out,
                ",\"ph\":\"X\",\"dur\":{}.{:03}",
                dur / 1_000,
                dur % 1_000
            );
        }
        self.event_tail(s);
    }

    fn into_string(self: Box<Self>) -> String {
        let mut out = self.out;
        if self.any {
            out.push_str("]}");
        } else {
            out.push_str("{\"traceEvents\":[]}");
        }
        out
    }
}

// ---------------------------------------------------------------------
// Perfetto protobuf (TrackEvent) — hand-rolled, std-only.
//
// Wire layout (field numbers from perfetto's trace.proto family):
//   Trace            { repeated TracePacket packet = 1; }
//   TracePacket      { uint64 timestamp = 8;
//                      uint32 trusted_packet_sequence_id = 10;
//                      TrackEvent track_event = 11;
//                      TrackDescriptor track_descriptor = 60; }
//   TrackDescriptor  { uint64 uuid = 1; string name = 2;
//                      uint64 parent_uuid = 5; }
//   TrackEvent       { Type type = 9;  // 1=BEGIN 2=END 3=INSTANT
//                      uint64 track_uuid = 11;
//                      repeated string categories = 22;
//                      string name = 23; }
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn put_field_varint(out: &mut Vec<u8>, field: u32, v: u64) {
    put_varint(out, (field as u64) << 3); // wire type 0
    put_varint(out, v);
}

fn put_field_bytes(out: &mut Vec<u8>, field: u32, bytes: &[u8]) {
    put_varint(out, ((field as u64) << 3) | 2);
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// The TrackEvent `type` enum values this exporter emits.
const SLICE_BEGIN: u64 = 1;
const SLICE_END: u64 = 2;
const INSTANT: u64 = 3;

/// Track uuid of the component-level track for `who` (the parent of
/// root spans and the home of monitor instants). Offset by one so
/// `ComponentId(0)` never maps to uuid 0 (unset in proto semantics).
fn component_track_uuid(who: ComponentId) -> u64 {
    who.0 + 1
}

/// Track uuid of the per-span track: FNV-1a over the id triple with
/// the high bit forced, so span tracks can never collide with the
/// low-numbered component tracks.
fn span_track_uuid(id: SpanId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(id.kind.as_bytes());
    eat(&[0xff]);
    eat(&id.owner.0.to_le_bytes());
    eat(&id.n.to_le_bytes());
    h | (1 << 63)
}

/// Streaming Perfetto protobuf exporter: feed spans in log order via
/// [`PerfettoSink::span`], then [`PerfettoSink::finish`]. Memory is
/// bounded by the number of distinct *components* seen (one `u64` per
/// component track already described), never by the span count — each
/// span's track descriptor and begin/end events are written and
/// forgotten as the span arrives, so a long-running capture can stream
/// to disk indefinitely. Open the output at <https://ui.perfetto.dev>.
///
/// Every span gets its own track, parented (via `parent_uuid`) under
/// its causal parent's track — or under its component's track for
/// roots — so the viewer renders the exact causal tree and sibling
/// spans never collapse into one another.
pub struct PerfettoSink<W: io::Write> {
    w: W,
    /// Component tracks already described (bounded by component count).
    components: BTreeSet<u64>,
    err: Option<io::Error>,
}

impl<W: io::Write> PerfettoSink<W> {
    /// Creates a sink streaming packets into `w`.
    pub fn new(w: W) -> Self {
        PerfettoSink {
            w,
            components: BTreeSet::new(),
            err: None,
        }
    }

    fn packet(&mut self, body: &[u8]) {
        if self.err.is_some() {
            return;
        }
        let mut framed = Vec::with_capacity(body.len() + 4);
        put_field_bytes(&mut framed, 1, body); // Trace.packet
        if let Err(e) = self.w.write_all(&framed) {
            self.err = Some(e);
        }
    }

    /// Emits the component track descriptor once per component.
    fn ensure_component_track(&mut self, who: ComponentId) -> u64 {
        let uuid = component_track_uuid(who);
        if self.components.insert(uuid) {
            let mut desc = Vec::new();
            put_field_varint(&mut desc, 1, uuid);
            put_field_bytes(&mut desc, 2, format!("c{}", who.0).as_bytes());
            let mut body = Vec::new();
            put_field_varint(&mut body, 10, 1);
            put_field_bytes(&mut body, 60, &desc);
            self.packet(&body);
        }
        uuid
    }

    fn event(&mut self, ts: u64, track: u64, kind: u64, s: Option<&SpanRecord>) {
        let mut ev = Vec::new();
        put_field_varint(&mut ev, 9, kind);
        put_field_varint(&mut ev, 11, track);
        if let Some(s) = s {
            put_field_bytes(&mut ev, 22, s.cat.as_bytes());
            put_field_bytes(&mut ev, 23, s.name.as_bytes());
        }
        let mut body = Vec::new();
        put_field_varint(&mut body, 8, ts);
        put_field_varint(&mut body, 10, 1);
        put_field_bytes(&mut body, 11, &ev);
        self.packet(&body);
    }

    /// Consumes one span, in log order.
    pub fn span(&mut self, s: &SpanRecord) {
        let component = self.ensure_component_track(s.who);
        if s.id.kind == "mon" {
            // Monitor instants live on the component track directly.
            self.event(s.start.as_nanos(), component, INSTANT, Some(s));
            return;
        }
        let track = span_track_uuid(s.id);
        let parent = s.parent.map(span_track_uuid).unwrap_or(component);
        let mut desc = Vec::new();
        put_field_varint(&mut desc, 1, track);
        put_field_bytes(&mut desc, 2, s.id.render().as_bytes());
        put_field_varint(&mut desc, 5, parent);
        let mut body = Vec::new();
        put_field_varint(&mut body, 10, 1);
        put_field_bytes(&mut body, 60, &desc);
        self.packet(&body);
        if s.start == s.end {
            self.event(s.start.as_nanos(), track, INSTANT, Some(s));
        } else {
            self.event(s.start.as_nanos(), track, SLICE_BEGIN, Some(s));
            self.event(s.end.as_nanos(), track, SLICE_END, None);
        }
    }

    /// Flushes and returns the writer (or the first write error).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Renders `log` as a complete Perfetto protobuf trace in memory.
/// Byte-deterministic per log; open the result at
/// <https://ui.perfetto.dev> (see `OBSERVABILITY.md`).
pub fn to_perfetto(log: &TraceLog) -> Vec<u8> {
    let mut sink = PerfettoSink::new(Vec::new());
    for s in log.spans() {
        sink.span(s);
    }
    sink.finish().expect("Vec<u8> writes are infallible")
}

/// Renders the causal forest without timestamps or component
/// identities: one line per span — `kind:n name cat class=<c> ok|fail`
/// — indented under its parent, roots sorted by (`kind`, `n`) and
/// children by (`start`, `kind`, `n`). Monitor instants are excluded.
///
/// Because worker *identity* is a scheduling decision (the lottery
/// draws from backend-local RNG streams) while the causal *shape* is
/// policy, this rendering is the sim-vs-rt parity surface used by
/// `tests/control_plane_parity.rs`: same scenario, byte-equal forests.
pub fn normalized(log: &TraceLog) -> String {
    let spans = log.spans();
    let mut roots: Vec<usize> = Vec::new();
    let mut children: BTreeMap<SpanId, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.id.kind == "mon" {
            continue;
        }
        match s.parent {
            Some(p) => children.entry(p).or_default().push(i),
            None => roots.push(i),
        }
    }
    let order = |&i: &usize| {
        let s = &spans[i];
        (s.start, s.id.kind, s.id.n)
    };
    roots.sort_by_key(|&i| (spans[i].id.kind, spans[i].id.n));
    for v in children.values_mut() {
        v.sort_by_key(order);
    }
    let mut out = String::new();
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let s = &spans[i];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = writeln!(
            out,
            "{}:{} {} {} class={} {}",
            s.id.kind,
            s.id.n,
            s.name,
            s.cat,
            if s.class.is_empty() { "-" } else { s.class },
            if s.ok { "ok" } else { "fail" }
        );
        if let Some(kids) = children.get(&s.id) {
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    out
}

/// Direct children of `parent` in `log`, in emission order.
pub fn children_of(log: &TraceLog, parent: SpanId) -> Vec<&SpanRecord> {
    log.spans()
        .iter()
        .filter(|s| s.parent == Some(parent))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> TraceLog {
        let t = Tracer::enabled();
        let fe = ComponentId(5);
        let w = ComponentId(9);
        let req = request_span_id(fe, 1);
        let job = job_span_id(fe, 1);
        t.record(span(
            job,
            Some(req),
            DISPATCH,
            CAT_STUB,
            w,
            "echo",
            SimTime::from_millis(2),
            SimTime::from_millis(9),
            640,
            true,
        ));
        t.record(span(
            queue_span_id(w, 1),
            Some(job),
            QUEUE,
            CAT_WORKER,
            w,
            "echo",
            SimTime::from_millis(3),
            SimTime::from_millis(4),
            0,
            true,
        ));
        t.record(span(
            req,
            None,
            REQUEST,
            CAT_FE,
            fe,
            "",
            SimTime::ZERO,
            SimTime::from_millis(9),
            640,
            true,
        ));
        t.instant("spawned", CAT_MONITOR, ComponentId(1), SimTime::ZERO);
        t.snapshot().unwrap()
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let out = to_jsonl(&log());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"id\":\"job:c5:1\",\"parent\":\"req:c5:1\""));
        assert!(lines[2].contains("\"parent\":null"));
        assert!(lines[2].contains("\"start_ns\":0,\"end_ns\":9000000"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(l.matches('"').count() % 2, 0, "balanced quotes: {l}");
        }
    }

    #[test]
    fn chrome_export_frames_complete_and_instant_events() {
        let out = to_chrome(&log());
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.ends_with("]}"));
        // 7 ms dispatch span → ts 2000 µs, dur 7000 µs.
        assert!(out.contains("\"ts\":2000.000,\"pid\":1,\"tid\":9,\"ph\":\"X\",\"dur\":7000.000"));
        assert!(out.contains("\"ph\":\"i\",\"s\":\"g\""));
        assert!(out.contains("\"class\":\"echo\""));
        let empty = to_chrome(&TraceLog::new());
        assert_eq!(empty, "{\"traceEvents\":[]}");
    }

    #[test]
    fn normalized_drops_identity_and_time_but_keeps_shape() {
        let n = normalized(&log());
        assert_eq!(
            n,
            "req:1 request fe class=- ok\n  job:1 dispatch stub class=echo ok\n    wq:1 queue worker class=echo ok\n"
        );
    }

    #[test]
    fn children_lookup_follows_parent_links() {
        let l = log();
        let kids = children_of(&l, request_span_id(ComponentId(5), 1));
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].name, DISPATCH);
    }

    #[test]
    fn varints_encode_the_protobuf_base128_scheme() {
        let enc = |v: u64| {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            out
        };
        assert_eq!(enc(0), [0x00]);
        assert_eq!(enc(1), [0x01]);
        assert_eq!(enc(127), [0x7f]);
        assert_eq!(enc(128), [0x80, 0x01]);
        assert_eq!(enc(300), [0xac, 0x02]);
        assert_eq!(enc(u64::MAX).len(), 10);
    }

    #[test]
    fn perfetto_track_uuids_partition_components_and_spans() {
        assert_eq!(component_track_uuid(ComponentId(0)), 1, "uuid 0 is unset");
        let a = span_track_uuid(request_span_id(ComponentId(5), 1));
        let b = span_track_uuid(request_span_id(ComponentId(5), 2));
        let c = span_track_uuid(job_span_id(ComponentId(5), 1));
        assert!(a != b && a != c && b != c, "distinct ids, distinct tracks");
        for u in [a, b, c] {
            assert!(u & (1 << 63) != 0, "span tracks carry the high bit");
        }
    }

    #[test]
    fn perfetto_export_is_framed_as_trace_packets() {
        let bytes = to_perfetto(&log());
        assert!(!bytes.is_empty());
        // Every top-level field is Trace.packet (tag 0x0A) and the
        // declared lengths tile the buffer exactly.
        let mut i = 0;
        let mut packets = 0;
        while i < bytes.len() {
            assert_eq!(bytes[i], 0x0A, "Trace.packet tag at {i}");
            i += 1;
            let mut len = 0u64;
            let mut shift = 0;
            loop {
                let b = bytes[i];
                i += 1;
                len |= ((b & 0x7f) as u64) << shift;
                shift += 7;
                if b & 0x80 == 0 {
                    break;
                }
            }
            i += len as usize;
            packets += 1;
        }
        assert_eq!(i, bytes.len(), "packet lengths tile the trace");
        // 3 spans (descriptor + begin + end each) + 1 instant + its
        // component track + 2 span-owning component tracks.
        assert!(packets >= 12, "got {packets} packets");
        assert_eq!(bytes, to_perfetto(&log()), "byte-deterministic");
    }
}
