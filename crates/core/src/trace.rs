//! End-to-end request tracing (see `OBSERVABILITY.md`): the span model
//! the SNS layer emits and the std-only exporters that turn a recorded
//! [`TraceLog`] into something a human (or a trace viewer) can read.
//!
//! The recording substrate — [`Tracer`], [`SpanId`], [`SpanRecord`],
//! [`TraceLog`] — lives in `sns_sim::trace` because the engine kernel
//! holds the tracer; this module re-exports it and adds everything
//! SNS-specific on top:
//!
//! * **the id scheme**: request spans are numbered by the front end
//!   that admitted them ([`request_span_id`]); job spans are derived
//!   from the dispatching component and the [`crate::msg::Job`] id
//!   ([`job_span_id`]), which is exactly the pair (`reply_to`, `id`)
//!   that travels inside the job message — so a worker can parent its
//!   queue/service spans under the dispatch span *without any extra
//!   protocol field*, in both backends;
//! * **exporters**: newline-delimited JSON ([`JsonlSink`]) and the
//!   Chrome `trace_event` format ([`ChromeSink`]), loadable directly in
//!   `chrome://tracing` / Perfetto;
//! * **the parity rendering** ([`normalized`]): a timestamp-free,
//!   identity-free rendering of the causal forest, byte-comparable
//!   between a simulator run (virtual time) and a threaded-runtime run
//!   (wall-clock time) of the same scenario.
//!
//! Span names, categories and class tags are interned `&'static str`s
//! (the `sns_sim::intern` pool that also backs `MetricKey`), so span
//! construction on the hot path never allocates.
//!
//! ## Example
//!
//! ```
//! use sns_core::trace::{self, Tracer};
//! use sns_sim::{ComponentId, SimTime};
//!
//! let tracer = Tracer::enabled();
//! tracer.record(trace::span(
//!     trace::request_span_id(ComponentId(7), 1),
//!     None,
//!     trace::REQUEST,
//!     trace::CAT_FE,
//!     ComponentId(7),
//!     "",
//!     SimTime::ZERO,
//!     SimTime::from_millis(12),
//!     1024,
//!     true,
//! ));
//! let log = tracer.snapshot().unwrap();
//! assert!(trace::to_jsonl(&log).starts_with("{\"id\":\"req:c7:1\""));
//! assert!(trace::to_chrome(&log).starts_with("{\"traceEvents\":["));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sns_sim::time::SimTime;
use sns_sim::ComponentId;

pub use sns_sim::trace::{SpanId, SpanRecord, TraceLog, Tracer};

/// Root span covering one client request inside a front end.
pub const REQUEST: &str = "request";
/// Per-request TCP/kernel overhead burned before service logic runs.
pub const OVERHEAD: &str = "overhead";
/// A local front-end compute burst (page assembly, collation).
pub const COMPUTE: &str = "compute";
/// A dispatched job, from lottery to response (includes queue wait,
/// retries and the network in both directions).
pub const DISPATCH: &str = "dispatch";
/// Time a job waited in a worker's queue before service began.
pub const QUEUE: &str = "queue";
/// Time a worker spent servicing a job.
pub const SERVICE: &str = "service";

/// Category for spans emitted by the front-end framework.
pub const CAT_FE: &str = "fe";
/// Category for spans emitted by the dispatch plane (manager stub).
pub const CAT_STUB: &str = "stub";
/// Category for spans emitted by worker stubs / worker threads.
pub const CAT_WORKER: &str = "worker";
/// Category for instantaneous monitor events mirrored into the trace.
pub const CAT_MONITOR: &str = "monitor";

/// Id of the root span for request `req_id` admitted by front end `fe`.
pub fn request_span_id(fe: ComponentId, req_id: u64) -> SpanId {
    SpanId {
        kind: "req",
        owner: fe,
        n: req_id,
    }
}

/// Id of the dispatch span for job `job_id` dispatched by `reply_to`.
/// Both values travel inside [`crate::msg::Job`], so the worker side
/// derives the same id without extra protocol state.
pub fn job_span_id(reply_to: ComponentId, job_id: u64) -> SpanId {
    SpanId {
        kind: "job",
        owner: reply_to,
        n: job_id,
    }
}

/// Id of the admission-overhead span for request `req_id` on front end
/// `fe` (the §4.4 TCP/kernel cost burned before service logic runs).
pub fn overhead_span_id(fe: ComponentId, req_id: u64) -> SpanId {
    SpanId {
        kind: "ovh",
        owner: fe,
        n: req_id,
    }
}

/// Id of a local front-end compute span (`compute_id` is the front
/// end's compute counter, unique across its requests).
pub fn compute_span_id(fe: ComponentId, compute_id: u64) -> SpanId {
    SpanId {
        kind: "cpu",
        owner: fe,
        n: compute_id,
    }
}

/// Id of the queue-wait span for job `job_id` inside worker `worker`.
pub fn queue_span_id(worker: ComponentId, job_id: u64) -> SpanId {
    SpanId {
        kind: "wq",
        owner: worker,
        n: job_id,
    }
}

/// Id of the service span for job `job_id` inside worker `worker`.
pub fn service_span_id(worker: ComponentId, job_id: u64) -> SpanId {
    SpanId {
        kind: "ws",
        owner: worker,
        n: job_id,
    }
}

/// Builds a [`SpanRecord`] (plain constructor, mirrors the field
/// order; keeps emission sites to one expression).
#[allow(clippy::too_many_arguments)]
pub fn span(
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    cat: &'static str,
    who: ComponentId,
    class: &'static str,
    start: SimTime,
    end: SimTime,
    bytes: u64,
    ok: bool,
) -> SpanRecord {
    SpanRecord {
        id,
        parent,
        name,
        cat,
        who,
        class,
        start,
        end,
        bytes,
        ok,
    }
}

/// A consumer of spans during export. Implementations accumulate into
/// an internal buffer; [`TraceSink::into_string`] closes any framing
/// and returns the finished document.
pub trait TraceSink {
    /// Consumes one span, in log order.
    fn span(&mut self, s: &SpanRecord);
    /// Finishes the export and returns the rendered document.
    fn into_string(self: Box<Self>) -> String;
}

/// Drives every span of `log` through `sink` and returns the document.
pub fn export(log: &TraceLog, mut sink: Box<dyn TraceSink>) -> String {
    for s in log.spans() {
        sink.span(s);
    }
    sink.into_string()
}

/// Renders `log` as newline-delimited JSON, one span per line, in
/// emission order. Same-seed runs produce byte-identical output (this
/// is the determinism surface checked in `tests/determinism.rs`).
pub fn to_jsonl(log: &TraceLog) -> String {
    export(log, Box::new(JsonlSink::new()))
}

/// Renders `log` in the Chrome `trace_event` format (a JSON object
/// with a `traceEvents` array), loadable in `chrome://tracing` and
/// Perfetto. Complete spans become `ph:"X"` events with microsecond
/// `ts`/`dur`; instants become `ph:"i"` events.
pub fn to_chrome(log: &TraceLog) -> String {
    export(log, Box::new(ChromeSink::new()))
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Newline-delimited JSON exporter: one object per span with the raw
/// model fields (`id`, `parent`, `name`, `cat`, `who`, `class`,
/// `start_ns`, `end_ns`, `bytes`, `ok`).
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }
}

impl TraceSink for JsonlSink {
    fn span(&mut self, s: &SpanRecord) {
        let out = &mut self.out;
        let _ = write!(out, "{{\"id\":\"{}\",", s.id.render());
        match s.parent {
            Some(p) => {
                let _ = write!(out, "\"parent\":\"{}\",", p.render());
            }
            None => out.push_str("\"parent\":null,"),
        }
        out.push_str("\"name\":\"");
        escape_into(out, s.name);
        out.push_str("\",\"cat\":\"");
        escape_into(out, s.cat);
        let _ = write!(out, "\",\"who\":{},\"class\":\"", s.who.0);
        escape_into(out, s.class);
        let _ = writeln!(
            out,
            "\",\"start_ns\":{},\"end_ns\":{},\"bytes\":{},\"ok\":{}}}",
            s.start.as_nanos(),
            s.end.as_nanos(),
            s.bytes,
            s.ok
        );
    }

    fn into_string(self: Box<Self>) -> String {
        self.out
    }
}

/// Chrome `trace_event` exporter. `pid` is always 1; `tid` is the
/// emitting component id, so each component gets its own track in the
/// viewer. Timestamps are microseconds with nanosecond precision kept
/// in three decimal places (rendered deterministically, no floats).
#[derive(Debug, Default)]
pub struct ChromeSink {
    out: String,
    any: bool,
}

impl ChromeSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        ChromeSink::default()
    }

    fn event_head(&mut self, s: &SpanRecord) {
        if self.any {
            self.out.push(',');
        } else {
            self.out.push_str("{\"traceEvents\":[");
            self.any = true;
        }
        self.out.push_str("{\"name\":\"");
        escape_into(&mut self.out, s.name);
        self.out.push_str("\",\"cat\":\"");
        escape_into(&mut self.out, s.cat);
        let ns = s.start.as_nanos();
        let _ = write!(
            self.out,
            "\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}",
            ns / 1_000,
            ns % 1_000,
            s.who.0
        );
    }

    fn event_tail(&mut self, s: &SpanRecord) {
        let _ = write!(self.out, ",\"args\":{{\"id\":\"{}\"", s.id.render());
        if let Some(p) = s.parent {
            let _ = write!(self.out, ",\"parent\":\"{}\"", p.render());
        }
        if !s.class.is_empty() {
            self.out.push_str(",\"class\":\"");
            escape_into(&mut self.out, s.class);
            self.out.push('"');
        }
        let _ = write!(self.out, ",\"bytes\":{},\"ok\":{}}}}}", s.bytes, s.ok);
    }
}

impl TraceSink for ChromeSink {
    fn span(&mut self, s: &SpanRecord) {
        self.event_head(s);
        if s.start == s.end {
            self.out.push_str(",\"ph\":\"i\",\"s\":\"g\"");
        } else {
            let dur = s.end.since(s.start).as_nanos() as u64;
            let _ = write!(
                self.out,
                ",\"ph\":\"X\",\"dur\":{}.{:03}",
                dur / 1_000,
                dur % 1_000
            );
        }
        self.event_tail(s);
    }

    fn into_string(self: Box<Self>) -> String {
        let mut out = self.out;
        if self.any {
            out.push_str("]}");
        } else {
            out.push_str("{\"traceEvents\":[]}");
        }
        out
    }
}

/// Renders the causal forest without timestamps or component
/// identities: one line per span — `kind:n name cat class=<c> ok|fail`
/// — indented under its parent, roots sorted by (`kind`, `n`) and
/// children by (`start`, `kind`, `n`). Monitor instants are excluded.
///
/// Because worker *identity* is a scheduling decision (the lottery
/// draws from backend-local RNG streams) while the causal *shape* is
/// policy, this rendering is the sim-vs-rt parity surface used by
/// `tests/control_plane_parity.rs`: same scenario, byte-equal forests.
pub fn normalized(log: &TraceLog) -> String {
    let spans = log.spans();
    let mut roots: Vec<usize> = Vec::new();
    let mut children: BTreeMap<SpanId, Vec<usize>> = BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        if s.id.kind == "mon" {
            continue;
        }
        match s.parent {
            Some(p) => children.entry(p).or_default().push(i),
            None => roots.push(i),
        }
    }
    let order = |&i: &usize| {
        let s = &spans[i];
        (s.start, s.id.kind, s.id.n)
    };
    roots.sort_by_key(|&i| (spans[i].id.kind, spans[i].id.n));
    for v in children.values_mut() {
        v.sort_by_key(order);
    }
    let mut out = String::new();
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let s = &spans[i];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = writeln!(
            out,
            "{}:{} {} {} class={} {}",
            s.id.kind,
            s.id.n,
            s.name,
            s.cat,
            if s.class.is_empty() { "-" } else { s.class },
            if s.ok { "ok" } else { "fail" }
        );
        if let Some(kids) = children.get(&s.id) {
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    out
}

/// Direct children of `parent` in `log`, in emission order.
pub fn children_of(log: &TraceLog, parent: SpanId) -> Vec<&SpanRecord> {
    log.spans()
        .iter()
        .filter(|s| s.parent == Some(parent))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> TraceLog {
        let t = Tracer::enabled();
        let fe = ComponentId(5);
        let w = ComponentId(9);
        let req = request_span_id(fe, 1);
        let job = job_span_id(fe, 1);
        t.record(span(
            job,
            Some(req),
            DISPATCH,
            CAT_STUB,
            w,
            "echo",
            SimTime::from_millis(2),
            SimTime::from_millis(9),
            640,
            true,
        ));
        t.record(span(
            queue_span_id(w, 1),
            Some(job),
            QUEUE,
            CAT_WORKER,
            w,
            "echo",
            SimTime::from_millis(3),
            SimTime::from_millis(4),
            0,
            true,
        ));
        t.record(span(
            req,
            None,
            REQUEST,
            CAT_FE,
            fe,
            "",
            SimTime::ZERO,
            SimTime::from_millis(9),
            640,
            true,
        ));
        t.instant("spawned", CAT_MONITOR, ComponentId(1), SimTime::ZERO);
        t.snapshot().unwrap()
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let out = to_jsonl(&log());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"id\":\"job:c5:1\",\"parent\":\"req:c5:1\""));
        assert!(lines[2].contains("\"parent\":null"));
        assert!(lines[2].contains("\"start_ns\":0,\"end_ns\":9000000"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(l.matches('"').count() % 2, 0, "balanced quotes: {l}");
        }
    }

    #[test]
    fn chrome_export_frames_complete_and_instant_events() {
        let out = to_chrome(&log());
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.ends_with("]}"));
        // 7 ms dispatch span → ts 2000 µs, dur 7000 µs.
        assert!(out.contains("\"ts\":2000.000,\"pid\":1,\"tid\":9,\"ph\":\"X\",\"dur\":7000.000"));
        assert!(out.contains("\"ph\":\"i\",\"s\":\"g\""));
        assert!(out.contains("\"class\":\"echo\""));
        let empty = to_chrome(&TraceLog::new());
        assert_eq!(empty, "{\"traceEvents\":[]}");
    }

    #[test]
    fn normalized_drops_identity_and_time_but_keeps_shape() {
        let n = normalized(&log());
        assert_eq!(
            n,
            "req:1 request fe class=- ok\n  job:1 dispatch stub class=echo ok\n    wq:1 queue worker class=echo ok\n"
        );
    }

    #[test]
    fn children_lookup_follows_parent_links() {
        let l = log();
        let kids = children_of(&l, request_span_id(ComponentId(5), 1));
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].name, DISPATCH);
    }
}
