//! # sns-core — the Scalable Network Service (SNS) layer
//!
//! This crate is the paper's primary contribution (§2): a reusable layer
//! that encapsulates scalability, load balancing, fault tolerance and
//! high availability so that service authors write only stateless workers
//! and front-end dispatch logic.
//!
//! Components (Figure 1 of the paper):
//!
//! * [`manager::Manager`] — the centralised, fault-tolerant load
//!   manager: collects load reports from worker stubs, maintains weighted
//!   moving averages, multicasts beacons with load-balancing hints,
//!   spawns workers on demand (threshold *H*, cooldown *D*, §4.5),
//!   recruits the overflow pool during bursts (§2.2.3), restarts crashed
//!   workers and front ends (process-peer fault tolerance, §3.1.3). All
//!   of its state is **soft**: a restarted manager rebuilds everything
//!   from re-registrations and load reports.
//! * [`worker::WorkerStub`] — wraps service-specific [`worker::WorkerLogic`]
//!   (a TACC worker, a cache partition, an origin server model): queues
//!   requests, reports queue length to the manager, registers on start,
//!   re-registers when a new manager incarnation appears, and isolates
//!   worker crashes from the system.
//! * [`stub::ManagerStub`] — the front-end side of the narrow API
//!   (§2.2.5): caches beacon hints (usable even while the manager is
//!   down, §3.1.8), picks workers by lottery scheduling weighted by
//!   estimated queue length with the §4.5 *queue-delta correction*, and
//!   recovers from stale choices with timeouts and retries.
//! * [`frontend::FrontEnd`] — the request-shepherding framework: a
//!   bounded thread pool, per-request state machines driven by
//!   service-specific [`frontend::ServiceLogic`], and process-peer
//!   supervision of the manager.
//! * [`monitor::Monitor`] — the (non-graphical) system monitor: receives
//!   multicast reports, keeps an event log and counters, and raises
//!   operator alerts when components go quiet.
//!
//! The layer speaks one message type, [`msg::SnsMsg`], over the engine's
//! network abstraction; application payloads are type-erased
//! [`Payload`]s that carry their wire size for SAN bandwidth accounting.

#![warn(missing_docs)]

pub mod cluster;
pub mod control;
pub mod exec;
pub mod frontend;
pub mod invariant;
pub mod manager;
pub mod monitor;
pub mod msg;
pub mod shard;
pub mod slo;
pub mod stub;
pub mod topology;
pub mod trace;
pub mod worker;

use std::any::Any;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

pub use cluster::{Cluster, SettleStats};
pub use control::{
    Admission, Ballot, ClusterView, ControlConfig, ControlEffect, ControlPlane, DispatchEffect,
    DispatchPlane, NodeLoad, OverloadPolicy, Quorum, QuorumDecision, SpawnPolicy, TenantPolicy,
};
pub use frontend::{Action, FeEvent, FrontEnd, ReqState, ServiceLogic};
pub use invariant::{Invariant, MonitorLog, MonitorTap, TapHandle};
pub use manager::{Manager, ManagerConfig, WorkerFactory, WorkerSpec};
pub use monitor::{Monitor, MonitorEvent};
pub use msg::{BeaconData, ClientRequest, ClientResponse, Job, JobResult, SnsMsg, WorkerHint};
pub use shard::{DispatchShard, ShardedDispatch};
pub use slo::SloAggregator;
pub use stub::ManagerStub;
pub use topology::ClusterTopology;
pub use worker::{WorkerError, WorkerLogic, WorkerStub, WorkerStubConfig};

/// A worker class: the unit of replication, load balancing and spawning
/// (e.g. `"distiller/jpeg"`, `"cache"`, `"search/p3"`, `"origin"`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerClass(pub Arc<str>);

impl WorkerClass {
    /// Creates a class from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        WorkerClass(Arc::from(name.as_ref()))
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for WorkerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for WorkerClass {
    fn from(s: &str) -> Self {
        WorkerClass::new(s)
    }
}

/// Application-level data carried through the SNS layer: type-erased, but
/// sized for SAN bandwidth accounting.
pub trait AppData: Any + Send + Sync + fmt::Debug {
    /// Bytes this payload occupies on the wire.
    fn wire_size(&self) -> u64;
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
}

/// Shared handle to application data.
pub type Payload = Arc<dyn AppData>;

/// Convenience: downcasts a payload to a concrete type.
pub fn payload_as<T: 'static>(p: &Payload) -> Option<&T> {
    p.as_any().downcast_ref::<T>()
}

/// Interns a worker-class name as a `&'static str` (the engine tags
/// spawned components with static kind strings so harnesses can query
/// components by class). Delegates to the engine-wide interner that
/// also backs [`sns_sim::MetricKey`].
pub fn intern_class(name: &str) -> &'static str {
    sns_sim::intern(name)
}

/// A simple byte-count payload for tests and synthetic content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blob {
    /// Logical length in bytes (contents are not materialised).
    pub len: u64,
    /// Free-form tag for assertions.
    pub tag: String,
}

impl AppData for Blob {
    fn wire_size(&self) -> u64 {
        self.len
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Blob {
    /// Creates a blob payload.
    pub fn payload(len: u64, tag: impl Into<String>) -> Payload {
        Arc::new(Blob {
            len,
            tag: tag.into(),
        })
    }
}

/// Layer-wide timing and policy configuration.
#[derive(Debug, Clone)]
pub struct SnsConfig {
    /// Worker stub load-report period (paper: every half second, §4.6).
    pub report_period: Duration,
    /// Manager beacon period ("a few seconds apart", §3.1.8; default 1 s).
    pub beacon_period: Duration,
    /// Weighted-moving-average factor for queue lengths (new sample
    /// weight).
    pub wma_alpha: f64,
    /// Spawn threshold *H*: spawn when a class's average queue estimate
    /// exceeds this (§4.5).
    pub spawn_threshold_h: f64,
    /// Spawn cooldown *D*: spawning disabled this long after a spawn
    /// (§4.5).
    pub spawn_cooldown_d: Duration,
    /// Reap when a class's average queue stays below this…
    pub reap_threshold: f64,
    /// …for this long, and more than the class minimum is running.
    pub reap_idle_for: Duration,
    /// Dispatch timeout before the stub retries elsewhere (§3.1.8).
    pub dispatch_timeout: Duration,
    /// Retries after timeout before reporting failure to the service
    /// layer.
    pub max_retries: u32,
    /// Front-end thread-pool size (production TranSend: ~400, §3.1.1).
    pub fe_threads: u32,
    /// Front-end per-request processing overhead (TCP/kernel time,
    /// §4.4/§4.6).
    pub fe_request_overhead: Duration,
    /// Manager-death detection timeout at front ends (missed beacons).
    pub beacon_loss_timeout: Duration,
    /// Manager-side worker failure inference: a worker whose load
    /// reports stop for this long is presumed lost (SAN partition,
    /// wedged process) and replaced "on still-visible nodes" (§2.2.4).
    pub worker_report_timeout: Duration,
}

impl Default for SnsConfig {
    fn default() -> Self {
        SnsConfig {
            report_period: Duration::from_millis(500),
            beacon_period: Duration::from_secs(1),
            wma_alpha: 0.3,
            spawn_threshold_h: 6.0,
            spawn_cooldown_d: Duration::from_secs(5),
            reap_threshold: 0.5,
            reap_idle_for: Duration::from_secs(30),
            dispatch_timeout: Duration::from_secs(5),
            max_retries: 2,
            fe_threads: 400,
            fe_request_overhead: Duration::from_millis(4),
            beacon_loss_timeout: Duration::from_secs(4),
            worker_report_timeout: Duration::from_secs(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_class_identity() {
        let a = WorkerClass::new("distiller/gif");
        let b: WorkerClass = "distiller/gif".into();
        assert_eq!(a, b);
        assert_eq!(a.name(), "distiller/gif");
        assert_eq!(format!("{a}"), "distiller/gif");
    }

    #[test]
    fn payload_downcast() {
        let p = Blob::payload(123, "x");
        assert_eq!(p.wire_size(), 123);
        let b = payload_as::<Blob>(&p).unwrap();
        assert_eq!(b.tag, "x");
        assert!(payload_as::<String>(&p).is_none());
    }
}
