//! The system monitor (§3.1.7), minus the Tcl/Tk pixels.
//!
//! Components multicast [`MonitorEvent`]s to the monitor group; the
//! monitor keeps a bounded event log, per-kind counters, tracks component
//! liveness from periodic reports, and "pages the operator" (raises an
//! alert counter and log entry) when a component goes quiet — the paper's
//! asynchronous error notification. Multiple monitors can join the same
//! group (remote management).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::time::Duration;

use sns_sim::engine::{Component, Ctx};
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, GroupId, NodeId};

use crate::msg::SnsMsg;
use crate::WorkerClass;

/// Events of interest to the operator.
#[derive(Debug, Clone)]
pub enum MonitorEvent {
    /// A component came up.
    Started {
        /// Reporting component.
        who: ComponentId,
        /// Component kind ("manager", "worker", "frontend", …).
        kind: &'static str,
        /// Node it runs on.
        node: NodeId,
    },
    /// The manager spawned a worker.
    SpawnedWorker {
        /// Class spawned.
        class: WorkerClass,
        /// Target node.
        node: NodeId,
        /// Whether the node is in the overflow pool (§2.2.3).
        overflow: bool,
    },
    /// The manager reaped a worker after sustained low load.
    ReapedWorker {
        /// The reaped worker.
        worker: ComponentId,
        /// Its class.
        class: WorkerClass,
    },
    /// A worker crashed on pathological input (§3.1.6).
    WorkerCrashed {
        /// The crashed worker.
        worker: ComponentId,
        /// Its class.
        class: WorkerClass,
    },
    /// A component detected a dead peer and restarted it (process-peer
    /// fault tolerance, §3.1.3).
    PeerRestarted {
        /// Who performed the restart.
        by: ComponentId,
        /// What kind of peer was restarted.
        kind: &'static str,
    },
    /// Periodic liveness heartbeat with a load figure.
    Heartbeat {
        /// Reporting component.
        who: ComponentId,
        /// Kind of the reporter.
        kind: &'static str,
        /// Load metric (queue length, active requests, …).
        load: f64,
    },
    /// A node was drained by the operator: no new placements land there
    /// and its workers shut down once their queues empty.
    NodeDrained {
        /// The drained node.
        node: NodeId,
    },
    /// A drained node rejoined the eligible set. `epoch > 0` means the
    /// rejoin completed a rolling-upgrade round (the node restarted at a
    /// new software incarnation); `epoch == 0` is a plain undrain.
    NodeRejoined {
        /// The rejoining node.
        node: NodeId,
        /// Upgrade epoch of the node after rejoin (0 = never upgraded).
        epoch: u64,
    },
    /// A manager replica won a majority vote and took over leadership.
    LeaderElected {
        /// Replica id of the new leader.
        replica: u32,
        /// Incarnation it leads at.
        incarnation: u64,
        /// Live replicas (votes) observed at election time.
        votes: u32,
    },
    /// A leading manager replica stopped leading (killed or stepped down).
    LeaderLost {
        /// Replica id that lost leadership.
        replica: u32,
        /// Incarnation it was leading at.
        incarnation: u64,
    },
    /// Free-form operator-visible warning.
    Warning(String),
}

impl MonitorEvent {
    /// Stable per-variant key, used for monitor counters and invariant
    /// checkers (`"started"`, `"spawned"`, `"reaped"`, `"crashed"`,
    /// `"peer_restarted"`, `"heartbeat"`, `"warning"`).
    pub fn kind_key(&self) -> &'static str {
        match self {
            MonitorEvent::Started { .. } => "started",
            MonitorEvent::SpawnedWorker { .. } => "spawned",
            MonitorEvent::ReapedWorker { .. } => "reaped",
            MonitorEvent::WorkerCrashed { .. } => "crashed",
            MonitorEvent::PeerRestarted { .. } => "peer_restarted",
            MonitorEvent::Heartbeat { .. } => "heartbeat",
            MonitorEvent::NodeDrained { .. } => "node_drained",
            MonitorEvent::NodeRejoined { .. } => "node_rejoined",
            MonitorEvent::LeaderElected { .. } => "leader_elected",
            MonitorEvent::LeaderLost { .. } => "leader_lost",
            MonitorEvent::Warning(_) => "warning",
        }
    }

    /// A stable single-line rendering for byte-exact log comparison in
    /// determinism tests. Floats are printed with fixed precision so the
    /// text is a pure function of the event value.
    pub fn canonical(&self) -> String {
        match self {
            MonitorEvent::Started { who, kind, node } => {
                format!("started who={who} kind={kind} node={node}")
            }
            MonitorEvent::SpawnedWorker {
                class,
                node,
                overflow,
            } => format!("spawned class={class} node={node} overflow={overflow}"),
            MonitorEvent::ReapedWorker { worker, class } => {
                format!("reaped worker={worker} class={class}")
            }
            MonitorEvent::WorkerCrashed { worker, class } => {
                format!("crashed worker={worker} class={class}")
            }
            MonitorEvent::PeerRestarted { by, kind } => {
                format!("peer_restarted by={by} kind={kind}")
            }
            MonitorEvent::Heartbeat { who, kind, load } => {
                format!("heartbeat who={who} kind={kind} load={load:.6}")
            }
            MonitorEvent::NodeDrained { node } => format!("node_drained node={node}"),
            MonitorEvent::NodeRejoined { node, epoch } => {
                format!("node_rejoined node={node} epoch={epoch}")
            }
            MonitorEvent::LeaderElected {
                replica,
                incarnation,
                votes,
            } => {
                format!("leader_elected replica={replica} incarnation={incarnation} votes={votes}")
            }
            MonitorEvent::LeaderLost {
                replica,
                incarnation,
            } => format!("leader_lost replica={replica} incarnation={incarnation}"),
            MonitorEvent::Warning(msg) => format!("warning {msg}"),
        }
    }
}

/// A timestamped log entry.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub event: MonitorEvent,
}

/// The monitor component.
pub struct Monitor {
    group: GroupId,
    /// Quiet-component alert threshold.
    silence_alert_after: Duration,
    log: VecDeque<LogEntry>,
    log_cap: usize,
    counters: BTreeMap<&'static str, u64>,
    last_seen: BTreeMap<ComponentId, (SimTime, &'static str)>,
    alerts: Vec<(SimTime, String)>,
    alerted: BTreeMap<ComponentId, bool>,
}

impl Monitor {
    /// Timer token for the periodic liveness sweep.
    const SWEEP: u64 = 1;

    /// Creates a monitor listening on `group`.
    pub fn new(group: GroupId, silence_alert_after: Duration) -> Self {
        Monitor {
            group,
            silence_alert_after,
            log: VecDeque::new(),
            log_cap: 10_000,
            counters: BTreeMap::new(),
            last_seen: BTreeMap::new(),
            alerts: Vec::new(),
            alerted: BTreeMap::new(),
        }
    }

    fn record(&mut self, at: SimTime, ev: MonitorEvent) {
        *self.counters.entry(ev.kind_key()).or_insert(0) += 1;
        match &ev {
            MonitorEvent::Started { who, kind, .. } => {
                self.last_seen.insert(*who, (at, kind));
                self.alerted.insert(*who, false);
            }
            MonitorEvent::Heartbeat { who, kind, .. } => {
                self.last_seen.insert(*who, (at, kind));
                self.alerted.insert(*who, false);
            }
            _ => {}
        }
        self.log.push_back(LogEntry { at, event: ev });
        if self.log.len() > self.log_cap {
            self.log.pop_front();
        }
    }

    /// Event counter by kind key (`"started"`, `"crashed"`, …).
    pub fn counter(&self, kind: &str) -> u64 {
        self.counters.get(kind).copied().unwrap_or(0)
    }

    /// The bounded event log.
    pub fn log(&self) -> impl Iterator<Item = &LogEntry> {
        self.log.iter()
    }

    /// Operator pages raised so far.
    pub fn alerts(&self) -> &[(SimTime, String)] {
        &self.alerts
    }

    /// Renders a one-screen cluster snapshot (the "visualization panel").
    pub fn snapshot(&self, now: SimTime) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== cluster monitor @ {now} ==");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "  events.{k}: {v}");
        }
        let _ = writeln!(out, "  components tracked: {}", self.last_seen.len());
        for (id, (seen, kind)) in &self.last_seen {
            let age = now.since(*seen);
            let _ = writeln!(
                out,
                "    {kind} {id}: last seen {:.1}s ago",
                age.as_secs_f64()
            );
        }
        let _ = writeln!(out, "  alerts: {}", self.alerts.len());
        out
    }
}

impl Component<SnsMsg> for Monitor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        ctx.join(self.group);
        ctx.timer(self.silence_alert_after, Self::SWEEP);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, from: ComponentId, msg: SnsMsg) {
        if let SnsMsg::Monitor(ev) = msg {
            let now = ctx.now();
            // Mirror operator-visible events (not periodic heartbeats)
            // into the trace as instants, so failures and restarts line
            // up with the request spans they perturb.
            if ctx.tracer().is_enabled() && !matches!(*ev, MonitorEvent::Heartbeat { .. }) {
                ctx.tracer()
                    .instant(ev.kind_key(), crate::trace::CAT_MONITOR, from, now);
            }
            self.record(now, (*ev).clone());
            ctx.stats().incr("monitor.events", 1);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        if token != Self::SWEEP {
            return;
        }
        let now = ctx.now();
        // Page the operator about components that went quiet (they may
        // have died together with their watcher).
        let mut pages = Vec::new();
        for (&id, &(seen, kind)) in &self.last_seen {
            let quiet = now.since(seen) > self.silence_alert_after;
            let already = self.alerted.get(&id).copied().unwrap_or(false);
            if quiet && !already {
                pages.push((id, kind));
            }
        }
        for (id, kind) in pages {
            self.alerts
                .push((now, format!("{kind} {id} stopped reporting")));
            self.alerted.insert(id, true);
            ctx.stats().incr("monitor.pages", 1);
        }
        ctx.timer(self.silence_alert_after / 2, Self::SWEEP);
    }

    fn kind(&self) -> &'static str {
        "monitor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_sim::engine::{NodeSpec, Sim, SimConfig};
    use sns_sim::network::IdealNetwork;
    use std::sync::Arc;

    struct Reporter {
        group: GroupId,
        beats: u32,
    }

    impl Component<SnsMsg> for Reporter {
        fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
            let me = ctx.me();
            let node = ctx.my_node();
            ctx.multicast(
                self.group,
                SnsMsg::Monitor(Arc::new(MonitorEvent::Started {
                    who: me,
                    kind: "reporter",
                    node,
                })),
            );
            ctx.timer(Duration::from_millis(500), 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, SnsMsg>, _: ComponentId, _: SnsMsg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _: u64) {
            if self.beats == 0 {
                return; // go quiet
            }
            self.beats -= 1;
            let me = ctx.me();
            ctx.multicast(
                self.group,
                SnsMsg::Monitor(Arc::new(MonitorEvent::Heartbeat {
                    who: me,
                    kind: "reporter",
                    load: 1.0,
                })),
            );
            ctx.timer(Duration::from_millis(500), 0);
        }
    }

    #[test]
    fn snapshot_renders_cluster_state() {
        let mut m = Monitor::new(GroupId(0), Duration::from_secs(2));
        m.record(
            SimTime::from_secs(1),
            MonitorEvent::Started {
                who: ComponentId(5),
                kind: "worker",
                node: NodeId(0),
            },
        );
        m.record(
            SimTime::from_secs(2),
            MonitorEvent::Warning("something odd".into()),
        );
        let snap = m.snapshot(SimTime::from_secs(3));
        assert!(snap.contains("cluster monitor @ 3"));
        assert!(snap.contains("events.started: 1"));
        assert!(snap.contains("events.warning: 1"));
        assert!(snap.contains("worker c5: last seen 2.0s ago"));
        assert_eq!(m.counter("started"), 1);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn monitor_pages_on_silence() {
        let mut sim: Sim<SnsMsg, IdealNetwork> =
            Sim::new(SimConfig::default(), IdealNetwork::default());
        let n = sim.add_node(NodeSpec::new(1, "dedicated"));
        let g = sim.create_group();
        let mon = sim.spawn(
            n,
            Box::new(Monitor::new(g, Duration::from_secs(2))),
            "monitor",
        );
        sim.spawn(n, Box::new(Reporter { group: g, beats: 4 }), "reporter");
        sim.run_until(SimTime::from_secs(10));
        assert!(sim.stats().counter("monitor.events") >= 5);
        assert_eq!(sim.stats().counter("monitor.pages"), 1);
        let _ = mon;
    }
}
