//! The sans-IO control plane: backend-agnostic state machines for the
//! manager and the manager stub.
//!
//! The paper's central claim (§3) is that one layered architecture —
//! manager, front ends, worker stubs, monitor — carries every service.
//! This module makes the *decision* half of that architecture a pure
//! library: [`ControlPlane`] holds the manager's soft state (worker
//! registry, load averages, spawn policies, drain set) and
//! [`DispatchPlane`] holds the stub's (hint cache, outstanding
//! dispatches, the §4.5 queue-delta correction). Neither owns a clock, a
//! thread or a channel: every handler consumes explicit inputs (`now`, a
//! [`ClusterView`], a registration, a death) and appends an ordered list
//! of [`ControlEffect`]s / [`DispatchEffect`]s for the caller to apply.
//!
//! Two drivers interpret the effects today:
//!
//! * the simulator's [`crate::Manager`] / [`crate::ManagerStub`]
//!   components, which map effects onto engine calls (`ctx.spawn`,
//!   `ctx.send`, `ctx.multicast`, stats counters) — effect order is
//!   exactly the old in-line call order, so simulation runs are
//!   bit-for-bit unchanged;
//! * the threaded runtime's `sns_rt::RtCluster`, which maps the same
//!   effects onto OS threads, channel inboxes and a tapped
//!   [`crate::MonitorLog`].
//!
//! The driver contract: build a [`ClusterView`] of the *currently alive*
//! nodes, call one handler, then apply the returned effects **in
//! order**, confirming each [`ControlEffect::Spawn`] with
//! [`ControlPlane::confirm_spawn`] before invoking any further handler.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, MetricKey, NodeId};

use crate::monitor::MonitorEvent;
use crate::msg::{BeaconData, Job, ProfileData, WorkerHint};
use crate::trace::{self, Sampling, SpanCtx, SpanId, SpanRecord};
use crate::{intern_class, Payload, SnsConfig, WorkerClass};

/// Per-class scaling policy (pure data; the worker factory lives with
/// the driver, see `WorkerSpec` in [`crate::manager`]).
#[derive(Debug, Clone)]
pub struct SpawnPolicy {
    /// Never fewer than this many workers (bootstrap + crash restarts).
    pub min_workers: u32,
    /// Hard cap on concurrently live workers of this class (0 = no cap).
    pub max_workers: u32,
    /// At most this many workers of this class per node.
    pub max_per_node: u32,
    /// Whether the threshold-H autoscaler manages this class (HotBot's
    /// pinned partition workers set this false, §3.2).
    pub auto_scale: bool,
    /// Restart crashed workers of this class.
    pub restart_on_crash: bool,
    /// Bind this class to one node (HotBot partition workers, §3.2:
    /// "All workers bound to their nodes"). While the node is down the
    /// class simply cannot run — coverage degrades instead.
    pub pinned_node: Option<NodeId>,
    /// Tenant this class bills its workers to when several services
    /// share one cluster (TranSend + HotBot mixes). Spawn caps set via
    /// [`ControlPlane::set_tenant_cap`] apply across all classes of the
    /// same tenant; `"shared"` (the default) means uncapped co-tenancy.
    pub tenant: &'static str,
}

impl SpawnPolicy {
    /// Typical policy for an auto-scaled, restartable worker class.
    pub fn scaled(min_workers: u32) -> Self {
        SpawnPolicy {
            min_workers,
            max_workers: 0,
            max_per_node: 4,
            auto_scale: true,
            restart_on_crash: true,
            pinned_node: None,
            tenant: "shared",
        }
    }

    /// Policy for pinned, non-scaled workers (cache partitions, search
    /// partitions): exactly `n`, restarted on crash.
    pub fn pinned(n: u32) -> Self {
        SpawnPolicy {
            min_workers: n,
            max_workers: n,
            max_per_node: 1,
            auto_scale: false,
            restart_on_crash: true,
            pinned_node: None,
            tenant: "shared",
        }
    }

    /// Bills this class's workers to `tenant` (builder style).
    pub fn for_tenant(mut self, tenant: &'static str) -> Self {
        self.tenant = tenant;
        self
    }
}

/// One placement candidate in a [`ClusterView`].
#[derive(Debug, Clone, Copy)]
pub struct NodeLoad {
    /// The node.
    pub node: NodeId,
    /// Components currently running on it (all kinds).
    pub components: u32,
}

/// The driver's snapshot of the cluster, taken at handler entry. Only
/// *alive* nodes appear; a dead node is simply absent.
#[derive(Debug, Clone, Default)]
pub struct ClusterView {
    /// Alive dedicated-pool nodes, in id order.
    pub dedicated: Vec<NodeLoad>,
    /// Alive overflow-pool nodes, in id order (§2.2.3).
    pub overflow: Vec<NodeLoad>,
    /// Liveness of every pinned node referenced by a policy.
    pub pinned_alive: BTreeMap<NodeId, bool>,
    /// How long a spawn takes to come up (pending-expiry accounting).
    pub spawn_latency: Duration,
}

/// Construction parameters for a [`ControlPlane`].
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Layer timing/policy knobs.
    pub sns: SnsConfig,
    /// This incarnation (strictly greater than any predecessor's).
    pub incarnation: u64,
    /// Whether the driver can build replacement front ends (process-peer
    /// restart of front ends, §3.1.3).
    pub restart_front_ends: bool,
}

/// An instruction from the [`ControlPlane`] to its driver. Apply in
/// order; the variants carry everything the driver needs.
#[derive(Debug)]
pub enum ControlEffect {
    /// Start a worker of `class` on `node`. The driver builds the
    /// component (its factory), places it, watches it, and reports the
    /// assigned id via [`ControlPlane::confirm_spawn`] before the next
    /// handler call.
    Spawn {
        /// Confirmation token for [`ControlPlane::confirm_spawn`].
        token: u64,
        /// Class to build.
        class: WorkerClass,
        /// Placement decision.
        node: NodeId,
        /// Whether `node` is in the overflow pool.
        overflow: bool,
    },
    /// Start a replacement front end on `node` (driver's `fe_factory`).
    SpawnFrontEnd {
        /// Placement decision.
        node: NodeId,
    },
    /// Ask a worker to drain and exit (reaping, hot upgrades).
    Shutdown {
        /// The worker.
        worker: ComponentId,
    },
    /// Publish a beacon on the beacon group.
    Beacon(Arc<BeaconData>),
    /// Subscribe to death notification for a component.
    Watch(ComponentId),
    /// Unsubscribe.
    Unwatch(ComponentId),
    /// Publish a monitor event on the monitor group.
    Emit(MonitorEvent),
    /// Bump a stats counter.
    Incr {
        /// Counter name.
        key: &'static str,
        /// Amount.
        n: u64,
    },
    /// Record a time series sample.
    Sample {
        /// Interned series name.
        key: MetricKey,
        /// Sample time.
        at: SimTime,
        /// Sample value.
        value: f64,
    },
    /// A rival manager won (duplicate-restart resolution): this
    /// incarnation must exit.
    StepDown,
}

#[derive(Debug, Clone)]
struct WorkerInfo {
    class: WorkerClass,
    node: NodeId,
    overflow: bool,
    /// Weighted moving average of reported queue length.
    wma: f64,
    last_report: SimTime,
}

#[derive(Debug, Default, Clone)]
struct ClassRuntime {
    last_spawn: Option<SimTime>,
    low_since: Option<SimTime>,
    /// Cached interned name of the class's average-queue series, so the
    /// periodic rebalance pass never allocates.
    avg_qlen_key: Option<MetricKey>,
}

/// A spawn issued whose worker has not yet registered.
#[derive(Debug, Clone)]
struct PendingSpawn {
    class: WorkerClass,
    node: NodeId,
    at: SimTime,
}

/// Per-handler scratch: spawns issued during the current handler call,
/// counted into placement totals so consecutive placements within one
/// call see each other (exactly as the old in-engine code saw its own
/// `ctx.spawn`s reflected in `components_on`).
type ExtraSpawns = BTreeMap<NodeId, u32>;

/// Placeholder registry key for a spawn the driver has not confirmed
/// yet. Tokens count up from 0, so these sit far above any real id.
fn placeholder(token: u64) -> ComponentId {
    ComponentId(u64::MAX - token)
}

/// The manager's decision core: all soft state (§3.1.3), no I/O.
pub struct ControlPlane {
    cfg: ControlConfig,
    policies: BTreeMap<WorkerClass, SpawnPolicy>,
    me: ComponentId,
    node: NodeId,
    workers: BTreeMap<ComponentId, WorkerInfo>,
    fes: BTreeMap<ComponentId, NodeId>,
    runtime: BTreeMap<WorkerClass, ClassRuntime>,
    pending: BTreeMap<ComponentId, PendingSpawn>,
    /// Nodes taken out of service for hot upgrades (§2.2).
    drained: BTreeSet<NodeId>,
    /// Software epoch per node, bumped by in-place upgrades
    /// ([`ControlPlane::on_upgrade_node`]); absent means epoch 0.
    node_epoch: BTreeMap<NodeId, u64>,
    /// Max live+pending workers per tenant (absent = uncapped).
    tenant_caps: BTreeMap<&'static str, u32>,
    /// Manager replica-group size for the regroup rule (1 = the paper's
    /// single-manager deployment).
    manager_replicas: u32,
    /// Membership machine behind rival-beacon resolution; built at
    /// [`ControlPlane::on_start`] once `me` is known.
    quorum: Option<Quorum>,
    load_reports_handled: u64,
    started_at: Option<SimTime>,
    next_token: u64,
}

impl ControlPlane {
    /// Creates a plane with no classes registered.
    pub fn new(cfg: ControlConfig) -> Self {
        ControlPlane {
            cfg,
            policies: BTreeMap::new(),
            me: ComponentId::EXTERNAL,
            node: NodeId(0),
            workers: BTreeMap::new(),
            fes: BTreeMap::new(),
            runtime: BTreeMap::new(),
            pending: BTreeMap::new(),
            drained: BTreeSet::new(),
            node_epoch: BTreeMap::new(),
            tenant_caps: BTreeMap::new(),
            manager_replicas: 1,
            quorum: None,
            load_reports_handled: 0,
            started_at: None,
            next_token: 0,
        }
    }

    /// Registers (or replaces) a class policy.
    pub fn add_class(&mut self, class: WorkerClass, policy: SpawnPolicy) {
        self.policies.insert(class, policy);
    }

    /// Caps live + pending workers billed to `tenant` across all of its
    /// classes; spawns beyond the cap are refused (and counted under
    /// `manager.tenant_capped`), so one tenant's autoscaler cannot eat
    /// the other tenant's node budget.
    pub fn set_tenant_cap(&mut self, tenant: &'static str, cap: u32) {
        self.tenant_caps.insert(tenant, cap);
    }

    /// Sets the manager replica-group size consulted by the regroup
    /// rule. Must be called before [`ControlPlane::on_start`]; the
    /// default of 1 reproduces the paper's single-manager rival-beacon
    /// behavior exactly.
    pub fn set_manager_replicas(&mut self, replicas: u32) {
        self.manager_replicas = replicas.max(1);
    }

    /// Live + pending workers billed to `tenant`.
    fn tenant_strength(&self, tenant: &str) -> u32 {
        self.policies
            .iter()
            .filter(|(_, p)| p.tenant == tenant)
            .map(|(class, _)| self.class_strength(class))
            .sum()
    }

    /// The policy for a class, if registered.
    pub fn policy(&self, class: &WorkerClass) -> Option<&SpawnPolicy> {
        self.policies.get(class)
    }

    /// Nodes any policy pins a class to (the driver reports their
    /// liveness in [`ClusterView::pinned_alive`]).
    pub fn pinned_nodes(&self) -> Vec<NodeId> {
        self.policies
            .values()
            .filter_map(|p| p.pinned_node)
            .collect()
    }

    /// This incarnation.
    pub fn incarnation(&self) -> u64 {
        self.cfg.incarnation
    }

    /// The layer configuration.
    pub fn sns(&self) -> &SnsConfig {
        &self.cfg.sns
    }

    /// Load reports processed (the §4.6 manager-capacity experiment reads
    /// this).
    pub fn load_reports_handled(&self) -> u64 {
        self.load_reports_handled
    }

    /// Registered live workers + unconfirmed/unregistered spawns of a
    /// class (rt drivers use this to compute ensure targets).
    pub fn class_strength(&self, class: &WorkerClass) -> u32 {
        self.live_of_class(class).len() as u32 + self.pending_of_class(class)
    }

    /// Registered live workers of a class, in id order.
    pub fn workers_of_class(&self, class: &WorkerClass) -> Vec<ComponentId> {
        self.live_of_class(class)
            .iter()
            .map(|&(id, _)| id)
            .collect()
    }

    /// Binds a [`ControlEffect::Spawn`] to the component id the driver
    /// assigned. Must be called while applying the effect list, before
    /// the next handler call.
    pub fn confirm_spawn(&mut self, token: u64, id: ComponentId) {
        if let Some(p) = self.pending.remove(&placeholder(token)) {
            self.pending.insert(id, p);
        }
    }

    fn pending_of_class(&self, class: &WorkerClass) -> u32 {
        self.pending.values().filter(|p| &p.class == class).count() as u32
    }

    fn live_of_class(&self, class: &WorkerClass) -> Vec<(ComponentId, &WorkerInfo)> {
        self.workers
            .iter()
            .filter(|(_, w)| &w.class == class)
            .map(|(&id, w)| (id, w))
            .collect()
    }

    /// Chooses a node for a new worker of `class`: dedicated nodes first
    /// (fewest workers of this class, then fewest total), then the
    /// overflow pool (§2.2.3). Returns the node and whether it is
    /// overflow.
    fn choose_node(
        &self,
        view: &ClusterView,
        extra: &ExtraSpawns,
        class: &WorkerClass,
        max_per_node: u32,
    ) -> Option<(NodeId, bool)> {
        for (pool, is_overflow) in [(&view.dedicated, false), (&view.overflow, true)] {
            let mut best: Option<(u32, u32, NodeId)> = None;
            for nl in pool {
                let node = nl.node;
                if self.drained.contains(&node) {
                    continue;
                }
                let pending_here = self
                    .pending
                    .values()
                    .filter(|p| p.node == node && &p.class == class)
                    .count() as u32;
                let mine = self
                    .workers
                    .values()
                    .filter(|w| w.node == node && &w.class == class)
                    .count() as u32
                    + pending_here;
                if max_per_node > 0 && mine >= max_per_node {
                    continue;
                }
                let total = nl.components + extra.get(&node).copied().unwrap_or(0);
                let cand = (mine, total, node);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
            if let Some((_, _, node)) = best {
                return Some((node, is_overflow));
            }
        }
        None
    }

    fn spawn_worker(
        &mut self,
        now: SimTime,
        view: &ClusterView,
        extra: &mut ExtraSpawns,
        class: &WorkerClass,
        out: &mut Vec<ControlEffect>,
    ) -> bool {
        let Some(policy) = self.policies.get(class) else {
            return false;
        };
        let live = self.live_of_class(class).len() as u32;
        let pending = self.pending_of_class(class);
        if policy.max_workers > 0 && live + pending >= policy.max_workers {
            return false;
        }
        let tenant = policy.tenant;
        if let Some(&cap) = self.tenant_caps.get(tenant) {
            if self.tenant_strength(tenant) >= cap {
                out.push(ControlEffect::Incr {
                    key: "manager.tenant_capped",
                    n: 1,
                });
                return false;
            }
        }
        let max_per_node = policy.max_per_node;
        let placement = match policy.pinned_node {
            Some(n) if self.drained.contains(&n) => None,
            Some(n) if view.pinned_alive.get(&n).copied().unwrap_or(false) => Some((n, false)),
            Some(_) => None, // pinned node is down: the class waits
            None => self.choose_node(view, extra, class, max_per_node),
        };
        let Some((node, overflow)) = placement else {
            out.push(ControlEffect::Emit(MonitorEvent::Warning(format!(
                "no node available to spawn {class}"
            ))));
            out.push(ControlEffect::Incr {
                key: "manager.spawn_no_node",
                n: 1,
            });
            return false;
        };
        let token = self.next_token;
        self.next_token += 1;
        out.push(ControlEffect::Spawn {
            token,
            class: class.clone(),
            node,
            overflow,
        });
        *extra.entry(node).or_insert(0) += 1;
        self.pending.insert(
            placeholder(token),
            PendingSpawn {
                class: class.clone(),
                node,
                at: now,
            },
        );
        let rt = self.runtime.entry(class.clone()).or_default();
        rt.last_spawn = Some(now);
        out.push(ControlEffect::Incr {
            key: "manager.spawns",
            n: 1,
        });
        if overflow {
            out.push(ControlEffect::Incr {
                key: "manager.overflow_spawns",
                n: 1,
            });
        }
        out.push(ControlEffect::Emit(MonitorEvent::SpawnedWorker {
            class: class.clone(),
            node,
            overflow,
        }));
        true
    }

    /// The beacon this plane would publish at `now` (pure; drivers that
    /// refresh hints out-of-band call this directly).
    pub fn make_beacon(&self, now: SimTime) -> BeaconData {
        let mut hints: BTreeMap<WorkerClass, Vec<WorkerHint>> = BTreeMap::new();
        for (&id, w) in &self.workers {
            hints.entry(w.class.clone()).or_default().push(WorkerHint {
                worker: id,
                node: w.node,
                est_qlen: w.wma,
                overflow: w.overflow,
            });
        }
        BeaconData {
            manager: self.me,
            incarnation: self.cfg.incarnation,
            hints,
            at: now,
        }
    }

    fn beacon(&mut self, now: SimTime, out: &mut Vec<ControlEffect>) {
        out.push(ControlEffect::Beacon(Arc::new(self.make_beacon(now))));
        out.push(ControlEffect::Incr {
            key: "manager.beacons",
            n: 1,
        });
    }

    fn policy_tick(
        &mut self,
        now: SimTime,
        view: &ClusterView,
        extra: &mut ExtraSpawns,
        out: &mut Vec<ControlEffect>,
    ) {
        // Soft-state rebuild grace: a (re)started manager waits two
        // beacon rounds for surviving workers to re-register before
        // enforcing class minimums, otherwise it would double-spawn
        // workers that are alive and about to announce themselves
        // (§3.1.3).
        let grace = self.cfg.sns.beacon_period * 2;
        let in_grace = self.started_at.is_some_and(|t| now.since(t) < grace);
        // Expire pending spawns that never registered (their component is
        // watched, so deaths are handled; this is a backstop against lost
        // registrations).
        let expiry = view.spawn_latency + self.cfg.sns.beacon_period * 2;
        self.pending.retain(|_, p| now.since(p.at) < expiry);
        // Timeout-based failure inference (§2.2.4): a worker whose load
        // reports have stopped is presumed unreachable (SAN partition,
        // wedged process). Drop it from the soft state — hints stop
        // advertising it next beacon — and replace it on a still-visible
        // node. If it was merely partitioned, it re-adopts itself with
        // its next report and any surplus is reaped.
        if !in_grace {
            let report_timeout = self.cfg.sns.worker_report_timeout;
            let silent: Vec<ComponentId> = self
                .workers
                .iter()
                .filter(|(_, w)| now.since(w.last_report) > report_timeout)
                .map(|(&id, _)| id)
                .collect();
            for id in silent {
                let Some(info) = self.workers.remove(&id) else {
                    continue;
                };
                out.push(ControlEffect::Unwatch(id));
                out.push(ControlEffect::Incr {
                    key: "manager.report_timeouts",
                    n: 1,
                });
                out.push(ControlEffect::Emit(MonitorEvent::Warning(format!(
                    "worker {id} ({}) stopped reporting; replacing it",
                    info.class
                ))));
                let restart = self
                    .policies
                    .get(&info.class)
                    .map(|p| p.restart_on_crash)
                    .unwrap_or(false);
                if restart {
                    self.spawn_worker(now, view, extra, &info.class, out);
                }
            }
        }
        let classes: Vec<WorkerClass> = self.policies.keys().cloned().collect();
        for class in classes {
            let (min_workers, auto_scale, h, d) = {
                let p = &self.policies[&class];
                (
                    p.min_workers,
                    p.auto_scale,
                    self.cfg.sns.spawn_threshold_h,
                    self.cfg.sns.spawn_cooldown_d,
                )
            };
            let live: Vec<(ComponentId, f64, bool)> = self
                .workers
                .iter()
                .filter(|(_, w)| w.class == class)
                .map(|(&id, w)| (id, w.wma, w.overflow))
                .collect();
            let live_n = live.len() as u32;
            let pending = self.pending_of_class(&class);

            // Bootstrap / crash replacement up to the class minimum.
            if in_grace {
                continue;
            }
            if live_n + pending < min_workers {
                let need = min_workers - live_n - pending;
                for _ in 0..need {
                    if !self.spawn_worker(now, view, extra, &class, out) {
                        break;
                    }
                }
                continue;
            }
            if !auto_scale || live_n == 0 {
                // Pinned classes can exceed strength when a partitioned
                // worker re-adopts itself after its replacement spawned:
                // reap the surplus gracefully.
                let max = self.policies[&class].max_workers;
                if max > 0 && live_n > max {
                    let mut ids: Vec<ComponentId> = live.iter().map(|&(id, _, _)| id).collect();
                    ids.sort();
                    for &victim in ids.iter().rev().take((live_n - max) as usize) {
                        out.push(ControlEffect::Shutdown { worker: victim });
                        out.push(ControlEffect::Incr {
                            key: "manager.reaps",
                            n: 1,
                        });
                        out.push(ControlEffect::Emit(MonitorEvent::ReapedWorker {
                            worker: victim,
                            class: class.clone(),
                        }));
                    }
                }
                continue;
            }

            let avg: f64 = live.iter().map(|&(_, wma, _)| wma).sum::<f64>() / live_n as f64;
            if !self.runtime.contains_key(&class) {
                self.runtime.insert(class.clone(), ClassRuntime::default());
            }
            let rt = self.runtime.get_mut(&class).expect("just ensured");
            let key = *rt
                .avg_qlen_key
                .get_or_insert_with(|| MetricKey::new(&format!("manager.avg_qlen.{class}")));
            out.push(ControlEffect::Sample {
                key,
                at: now,
                value: avg,
            });

            // Threshold-H spawning with cooldown D (§4.5).
            let in_cooldown = self
                .runtime
                .get(&class)
                .and_then(|r| r.last_spawn)
                .is_some_and(|t| now.since(t) < d);
            if avg > h && !in_cooldown {
                self.spawn_worker(now, view, extra, &class, out);
                continue;
            }

            // Reaping after sustained low load (overflow nodes first).
            if avg < self.cfg.sns.reap_threshold && live_n > min_workers {
                let rt = self.runtime.entry(class.clone()).or_default();
                let since = *rt.low_since.get_or_insert(now);
                if now.since(since) >= self.cfg.sns.reap_idle_for {
                    rt.low_since = None;
                    let victim = live
                        .iter()
                        .max_by_key(|&&(id, _, overflow)| (overflow, id))
                        .map(|&(id, _, _)| id);
                    if let Some(victim) = victim {
                        out.push(ControlEffect::Shutdown { worker: victim });
                        out.push(ControlEffect::Incr {
                            key: "manager.reaps",
                            n: 1,
                        });
                        out.push(ControlEffect::Emit(MonitorEvent::ReapedWorker {
                            worker: victim,
                            class: class.clone(),
                        }));
                    }
                }
            } else if let Some(rt) = self.runtime.get_mut(&class) {
                rt.low_since = None;
            }
        }
    }

    /// The manager came up: announce, beacon, run one policy pass. The
    /// driver joins the beacon group before applying the effects and
    /// arms the periodic tick after.
    pub fn on_start(
        &mut self,
        now: SimTime,
        me: ComponentId,
        node: NodeId,
        view: &ClusterView,
        out: &mut Vec<ControlEffect>,
    ) {
        self.started_at = Some(now);
        self.me = me;
        self.node = node;
        self.quorum = Some(Quorum::leader(
            self.manager_replicas,
            me.0,
            self.cfg.incarnation,
            self.cfg.sns.beacon_loss_timeout,
        ));
        out.push(ControlEffect::Emit(MonitorEvent::Started {
            who: me,
            kind: "manager",
            node,
        }));
        self.beacon(now, out);
        let mut extra = ExtraSpawns::new();
        self.policy_tick(now, view, &mut extra, out);
    }

    /// The periodic beacon/policy tick. The driver re-arms the timer.
    pub fn on_tick(&mut self, now: SimTime, view: &ClusterView, out: &mut Vec<ControlEffect>) {
        self.beacon(now, out);
        let mut extra = ExtraSpawns::new();
        self.policy_tick(now, view, &mut extra, out);
        out.push(ControlEffect::Emit(MonitorEvent::Heartbeat {
            who: self.me,
            kind: "manager",
            load: self.workers.len() as f64,
        }));
    }

    /// Spawns workers of `class` until live + pending reaches `target`,
    /// bypassing the rebuild grace (rt bootstrap and failover top-up;
    /// the simulator path always goes through [`ControlPlane::on_tick`]).
    pub fn ensure_workers(
        &mut self,
        class: &WorkerClass,
        target: u32,
        now: SimTime,
        view: &ClusterView,
        out: &mut Vec<ControlEffect>,
    ) {
        let mut extra = ExtraSpawns::new();
        while self.class_strength(class) < target {
            if !self.spawn_worker(now, view, &mut extra, class, out) {
                break;
            }
        }
    }

    /// A worker announced itself (on start or on a new incarnation).
    pub fn on_register_worker(
        &mut self,
        worker: ComponentId,
        class: WorkerClass,
        node: NodeId,
        overflow: bool,
        now: SimTime,
        out: &mut Vec<ControlEffect>,
    ) {
        if !self.workers.contains_key(&worker) {
            out.push(ControlEffect::Watch(worker));
            self.pending.remove(&worker);
        }
        self.workers.insert(
            worker,
            WorkerInfo {
                class,
                node,
                overflow,
                wma: 0.0,
                last_report: now,
            },
        );
    }

    /// A worker signed off cleanly.
    pub fn on_deregister_worker(&mut self, worker: ComponentId, out: &mut Vec<ControlEffect>) {
        out.push(ControlEffect::Unwatch(worker));
        self.workers.remove(&worker);
    }

    /// A periodic queue-length report (§3.1.2). `origin` resolves the
    /// reporting worker's placement and is only consulted for workers
    /// this plane has lost track of (soft-state adoption after a manager
    /// restart).
    pub fn on_load_report(
        &mut self,
        worker: ComponentId,
        class: WorkerClass,
        qlen: u32,
        now: SimTime,
        origin: impl FnOnce() -> (NodeId, bool),
        out: &mut Vec<ControlEffect>,
    ) {
        self.load_reports_handled += 1;
        out.push(ControlEffect::Incr {
            key: "manager.load_reports",
            n: 1,
        });
        let alpha = self.cfg.sns.wma_alpha;
        match self.workers.get_mut(&worker) {
            Some(info) => {
                info.wma = alpha * f64::from(qlen) + (1.0 - alpha) * info.wma;
                info.last_report = now;
            }
            None => {
                // Report from a worker we lost track of (e.g. a
                // restarted manager hearing loads before the
                // worker re-registers): adopt it — soft state.
                out.push(ControlEffect::Watch(worker));
                let (node, overflow) = origin();
                self.workers.insert(
                    worker,
                    WorkerInfo {
                        class,
                        node,
                        overflow,
                        wma: f64::from(qlen),
                        last_report: now,
                    },
                );
            }
        }
    }

    /// A front end found no worker of `class` (§3.1.2): locate or spawn
    /// one, unless some are live or already on the way.
    pub fn on_need_worker(
        &mut self,
        class: &WorkerClass,
        now: SimTime,
        view: &ClusterView,
        out: &mut Vec<ControlEffect>,
    ) {
        if self.live_of_class(class).is_empty() && self.pending_of_class(class) == 0 {
            let mut extra = ExtraSpawns::new();
            self.spawn_worker(now, view, &mut extra, class, out);
        }
    }

    /// A front end registered for supervision (process peers).
    pub fn on_register_front_end(
        &mut self,
        fe: ComponentId,
        node: NodeId,
        out: &mut Vec<ControlEffect>,
    ) {
        if !self.fes.contains_key(&fe) {
            out.push(ControlEffect::Watch(fe));
        }
        self.fes.insert(fe, node);
    }

    /// Operator request: drain a node for a hot upgrade (§2.2).
    pub fn on_drain_node(&mut self, node: NodeId, out: &mut Vec<ControlEffect>) {
        if self.drained.contains(&node) {
            return;
        }
        self.drained.insert(node);
        out.push(ControlEffect::Incr {
            key: "manager.drains",
            n: 1,
        });
        // Gracefully shut down every worker we run there; the
        // graceful path deregisters, and the class minimums
        // respawn replacements on other nodes.
        let victims: Vec<ComponentId> = self
            .workers
            .iter()
            .filter(|(_, w)| w.node == node)
            .map(|(&id, _)| id)
            .collect();
        for v in victims {
            out.push(ControlEffect::Shutdown { worker: v });
        }
        out.push(ControlEffect::Emit(MonitorEvent::NodeDrained { node }));
    }

    /// Operator request: return a node to service unchanged.
    pub fn on_undrain_node(&mut self, node: NodeId, out: &mut Vec<ControlEffect>) {
        if !self.drained.contains(&node) {
            return;
        }
        self.drained.remove(&node);
        out.push(ControlEffect::Incr {
            key: "manager.undrains",
            n: 1,
        });
        out.push(ControlEffect::Emit(MonitorEvent::NodeRejoined {
            node,
            epoch: self.node_epoch.get(&node).copied().unwrap_or(0),
        }));
    }

    /// Operator request: return a drained node to service at the next
    /// software epoch — the "restart at new incarnation" step of a
    /// rolling upgrade (§2.2 "upgrade them in place"). Idempotent in
    /// the same way as [`ControlPlane::on_undrain_node`]: a node that
    /// is not drained is left alone (no epoch bump).
    pub fn on_upgrade_node(&mut self, node: NodeId, out: &mut Vec<ControlEffect>) {
        if !self.drained.contains(&node) {
            return;
        }
        self.drained.remove(&node);
        let epoch = self.node_epoch.entry(node).or_insert(0);
        *epoch += 1;
        let epoch = *epoch;
        out.push(ControlEffect::Incr {
            key: "manager.undrains",
            n: 1,
        });
        out.push(ControlEffect::Incr {
            key: "manager.upgrades",
            n: 1,
        });
        out.push(ControlEffect::Emit(MonitorEvent::NodeRejoined {
            node,
            epoch,
        }));
    }

    /// A beacon arrived on the manager's own group (a rival incarnation
    /// is announcing itself). Resolution is delegated to the [`Quorum`]
    /// membership machine; with `manager_replicas == 1` (the default)
    /// its ballot rule degenerates to the paper's original comparison —
    /// the (incarnation, id)-greater rival wins and the loser steps
    /// down (duplicate restart resolution).
    pub fn on_rival_beacon(&mut self, b: &BeaconData, out: &mut Vec<ControlEffect>) {
        let ballot = Ballot {
            id: b.manager.0,
            incarnation: b.incarnation,
            leading: true,
            at: b.at,
        };
        let decision = match self.quorum.as_mut() {
            Some(q) => q.on_ballot(&ballot),
            // Before on_start there is nothing to step down; ignore.
            None => QuorumDecision::Hold,
        };
        if matches!(decision, QuorumDecision::StepDown) {
            out.push(ControlEffect::Incr {
                key: "manager.stepdowns",
                n: 1,
            });
            out.push(ControlEffect::StepDown);
        }
    }

    /// A watched peer died (process-peer fault tolerance, §3.1.3).
    pub fn on_peer_death(
        &mut self,
        peer: ComponentId,
        now: SimTime,
        view: &ClusterView,
        out: &mut Vec<ControlEffect>,
    ) {
        let mut extra = ExtraSpawns::new();
        // A spawn that died before registering counts as a worker death.
        if let Some(p) = self.pending.remove(&peer) {
            out.push(ControlEffect::Incr {
                key: "manager.worker_deaths",
                n: 1,
            });
            let restart = self
                .policies
                .get(&p.class)
                .map(|pol| pol.restart_on_crash)
                .unwrap_or(false);
            if restart {
                self.spawn_worker(now, view, &mut extra, &p.class, out);
            }
            return;
        }
        if let Some(info) = self.workers.remove(&peer) {
            out.push(ControlEffect::Incr {
                key: "manager.worker_deaths",
                n: 1,
            });
            let restart = self
                .policies
                .get(&info.class)
                .map(|p| p.restart_on_crash)
                .unwrap_or(false);
            if restart {
                // Process-peer restart (§3.1.3): possibly on a different
                // node (choose_node re-evaluates).
                self.spawn_worker(now, view, &mut extra, &info.class, out);
                out.push(ControlEffect::Emit(MonitorEvent::PeerRestarted {
                    by: self.me,
                    kind: "worker",
                }));
            }
            return;
        }
        if self.fes.remove(&peer).is_some() {
            out.push(ControlEffect::Incr {
                key: "manager.fe_deaths",
                n: 1,
            });
            // "The manager detects and restarts a crashed front end."
            let spawned = if self.cfg.restart_front_ends {
                match self.choose_node(view, &extra, &WorkerClass::new("frontend"), 0) {
                    Some((n, _)) => {
                        out.push(ControlEffect::SpawnFrontEnd { node: n });
                        *extra.entry(n).or_insert(0) += 1;
                        true
                    }
                    None => false,
                }
            } else {
                false
            };
            if spawned {
                out.push(ControlEffect::Emit(MonitorEvent::PeerRestarted {
                    by: self.me,
                    kind: "frontend",
                }));
            }
        }
    }
}

/// One manager replica's periodic membership announcement — the vote
/// currency of the [`Quorum`] machine. In the degenerate single-manager
/// deployment the only ballots are rival-manager beacons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ballot {
    /// Stable identity of the sender (replica index, or `ComponentId.0`
    /// when the ballot is a manager beacon).
    pub id: u64,
    /// The sender's incarnation number.
    pub incarnation: u64,
    /// Whether the sender currently acts as the manager.
    pub leading: bool,
    /// When the ballot was cast (liveness bookkeeping).
    pub at: SimTime,
}

/// What a [`Quorum`] handler decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumDecision {
    /// Nothing to do.
    Hold,
    /// A better-qualified leader exists: stop acting as the manager.
    StepDown,
    /// This replica won the election and must start acting as the
    /// manager at the given (fresh) incarnation.
    TakeOver {
        /// The new leader incarnation (strictly above anything seen).
        incarnation: u64,
    },
    /// Fewer than a majority of replicas are reachable: the group must
    /// not elect (split-brain risk) — surface to the operator instead.
    Unrecoverable {
        /// Replicas currently reachable (including self).
        live: u32,
        /// The majority threshold that was missed.
        need: u32,
    },
}

/// MSCS-style quorum membership for the manager group (Vogels et al.,
/// PAPERS.md): N replicas exchange [`Ballot`]s; a majority of live
/// replicas is required before any takeover, and a rejoining replica
/// re-enters as a standby until elected. With `replicas == 1` the
/// machine degenerates exactly to the paper's single rival-beacon rule:
/// the (incarnation, id)-greater claimant wins and the loser steps down.
///
/// Sans-IO like the planes: callers deliver ballots and drive
/// [`Quorum::tick`] on their own clock, then act on the returned
/// [`QuorumDecision`].
#[derive(Debug, Clone)]
pub struct Quorum {
    replicas: u32,
    me: u64,
    incarnation: u64,
    leading: bool,
    vote_timeout: Duration,
    /// Last ballot time per peer replica.
    last_heard: BTreeMap<u64, SimTime>,
    /// The (incarnation, id) ballot currently believed to lead.
    leader: Option<(u64, u64)>,
    /// Highest incarnation observed anywhere (takeover fencing).
    seen_incarnation: u64,
}

impl Quorum {
    /// A replica that starts out acting as the manager (the bootstrap
    /// leader, or the single manager of an N=1 deployment).
    pub fn leader(replicas: u32, me: u64, incarnation: u64, vote_timeout: Duration) -> Self {
        Quorum {
            replicas: replicas.max(1),
            me,
            incarnation,
            leading: true,
            vote_timeout,
            last_heard: BTreeMap::new(),
            leader: Some((incarnation, me)),
            seen_incarnation: incarnation,
        }
    }

    /// A replica that starts out (or rejoins) as a standby: it acts
    /// only if elected by [`Quorum::tick`] — the MSCS regroup
    /// discipline that prevents a revived old leader from resuming
    /// leadership it no longer holds.
    pub fn standby(replicas: u32, me: u64, vote_timeout: Duration) -> Self {
        Quorum {
            replicas: replicas.max(1),
            me,
            incarnation: 0,
            leading: false,
            vote_timeout,
            last_heard: BTreeMap::new(),
            leader: None,
            seen_incarnation: 0,
        }
    }

    /// Whether this replica currently acts as the manager.
    pub fn is_leading(&self) -> bool {
        self.leading
    }

    /// This replica's incarnation (0 for a never-elected standby).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Votes needed for any takeover: a strict majority of the group.
    pub fn majority(&self) -> u32 {
        self.replicas / 2 + 1
    }

    /// The ballot this replica broadcasts.
    pub fn ballot(&self, at: SimTime) -> Ballot {
        Ballot {
            id: self.me,
            incarnation: self.incarnation,
            leading: self.leading,
            at,
        }
    }

    /// Ingests a peer's ballot. A leading replica steps down when a
    /// rival leader's (incarnation, id) is ≥ its own — byte-identical
    /// to the old rival-beacon comparison when `replicas == 1`.
    pub fn on_ballot(&mut self, b: &Ballot) -> QuorumDecision {
        if b.id == self.me {
            return QuorumDecision::Hold;
        }
        self.last_heard.insert(b.id, b.at);
        self.seen_incarnation = self.seen_incarnation.max(b.incarnation);
        if !b.leading {
            return QuorumDecision::Hold;
        }
        if self.leading {
            if (b.incarnation, b.id) >= (self.incarnation, self.me) {
                self.leading = false;
                self.leader = Some((b.incarnation, b.id));
                return QuorumDecision::StepDown;
            }
            return QuorumDecision::Hold;
        }
        // Standby: adopt the highest-qualified claimant as leader.
        if self
            .leader
            .is_none_or(|(inc, id)| (b.incarnation, b.id) >= (inc, id))
        {
            self.leader = Some((b.incarnation, b.id));
        }
        QuorumDecision::Hold
    }

    /// Live replicas (self plus peers heard within the vote timeout).
    pub fn live(&self, now: SimTime) -> u32 {
        1 + self
            .last_heard
            .values()
            .filter(|&&t| now.since(t) <= self.vote_timeout)
            .count() as u32
    }

    /// Periodic membership pass: checks quorum, detects leader silence,
    /// and elects the lowest-id live replica with majority backing.
    /// A leader that can no longer hear a majority relinquishes
    /// leadership as it reports [`QuorumDecision::Unrecoverable`] — a
    /// minority island must stop acting as the manager.
    pub fn tick(&mut self, now: SimTime) -> QuorumDecision {
        let live = self.live(now);
        let need = self.majority();
        if live < need {
            self.leading = false;
            return QuorumDecision::Unrecoverable { live, need };
        }
        if self.leading {
            return QuorumDecision::Hold;
        }
        let leader_live = match self.leader {
            Some((_, id)) => self
                .last_heard
                .get(&id)
                .is_some_and(|&t| now.since(t) <= self.vote_timeout),
            None => false,
        };
        if leader_live {
            return QuorumDecision::Hold;
        }
        // Election among live replicas: the lowest id wins (every live
        // replica computes the same winner from the same ballots).
        let min_live = self
            .last_heard
            .iter()
            .filter(|(_, &t)| now.since(t) <= self.vote_timeout)
            .map(|(&id, _)| id)
            .chain(std::iter::once(self.me))
            .min()
            .expect("self is always a candidate");
        if min_live == self.me {
            let incarnation = self.seen_incarnation + 1;
            self.incarnation = incarnation;
            self.seen_incarnation = incarnation;
            self.leading = true;
            self.leader = Some((incarnation, self.me));
            return QuorumDecision::TakeOver { incarnation };
        }
        QuorumDecision::Hold
    }
}

/// An instruction from the [`DispatchPlane`] to its driver.
#[derive(Debug)]
pub enum DispatchEffect {
    /// Deliver a work request to a worker.
    SendJob {
        /// Chosen worker.
        worker: ComponentId,
        /// The job (shared; retries resend the same `Arc`).
        job: Arc<Job>,
    },
    /// Ask the manager for a worker of `class`
    /// ([`crate::msg::SnsMsg::NeedWorker`]).
    NeedWorker {
        /// The manager to ask.
        manager: ComponentId,
        /// Class needed.
        class: WorkerClass,
    },
    /// Bump a stats counter.
    Incr {
        /// Counter name.
        key: &'static str,
        /// Amount.
        n: u64,
    },
    /// Record a completed dispatch span (only emitted while
    /// [`DispatchPlane::set_tracing`] is on; see [`crate::trace`]). The
    /// driver forwards it to its tracer.
    Span(SpanRecord),
}

#[derive(Debug, Clone)]
struct HintEntry {
    worker: ComponentId,
    est_qlen: f64,
}

/// A dispatch awaiting a response.
#[derive(Debug, Clone)]
pub struct Outstanding {
    /// Class the job targets.
    pub class: WorkerClass,
    /// Worker currently assigned (None while waiting for one to exist).
    pub worker: Option<ComponentId>,
    /// Attempts so far (1 = first try).
    pub attempts: u32,
    /// Whether the caller pinned the worker (no lottery, no retry).
    pub explicit: bool,
    /// When the dispatch was first requested (the dispatch span's
    /// start; covers pending waits and retries).
    pub requested_at: SimTime,
    op: String,
    input: Payload,
    profile: Option<ProfileData>,
    reply_to: ComponentId,
    workers_tried: Vec<ComponentId>,
    /// Causal parent for the dispatch span (the front end's request
    /// span), when tracing.
    parent: Option<SpanId>,
    /// Head-sampling decision carried with the job (the front end's
    /// per-request decision, or the plane's own per-job decision for
    /// root dispatches). Gates every span this dispatch emits.
    sampled: bool,
}

/// Verdict of a dispatch timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeoutVerdict {
    /// The job was re-sent to another worker; re-arm the timeout.
    Retried,
    /// Retries are exhausted (or the dispatch was pinned); the service
    /// layer decides the fallback (§2.2.4).
    GaveUp(WorkerClass),
    /// The job id was unknown (already answered).
    Unknown,
}

/// What a tenant's dispatches do once the tenant is over its
/// outstanding-job quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Refuse new dispatches outright (TranSend's policy: a timed-out
    /// or refused request is re-fetched by the client, §2.2.4).
    Drop,
    /// Keep admitting — flagged degraded so the service layer can shed
    /// quality instead of requests (HotBot's policy) — up to twice the
    /// quota, beyond which even degraded dispatches are dropped.
    Degrade,
}

/// Per-tenant overload protection for a [`DispatchPlane`]: a quota on
/// outstanding jobs plus what to do beyond it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Outstanding-dispatch quota for the tenant.
    pub max_outstanding: usize,
    /// Behavior beyond the quota.
    pub overload: OverloadPolicy,
}

/// Verdict of [`DispatchPlane::admit`] for one prospective dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Within quota — dispatch normally.
    Accept,
    /// Over quota under [`OverloadPolicy::Degrade`]: dispatch, but the
    /// service layer should degrade the answer (smaller distillation,
    /// cached-only results, …).
    Degrade,
    /// Over quota (or over the degrade ceiling): do not dispatch.
    Drop,
}

/// The stub's decision core: hint cache, lottery scheduling with the
/// §4.5 queue-delta correction, timeout/retry verdicts (§3.1.8). No I/O:
/// the caller supplies the RNG and applies the returned effects.
pub struct DispatchPlane {
    cfg: SnsConfig,
    manager: Option<ComponentId>,
    incarnation: u64,
    last_beacon: Option<SimTime>,
    hints: BTreeMap<WorkerClass, Vec<HintEntry>>,
    /// Net dispatches (sent − answered) per worker since the last beacon.
    inflight: BTreeMap<ComponentId, i64>,
    outstanding: BTreeMap<u64, Outstanding>,
    /// Tenant each class bills to (absent = `"shared"`).
    class_tenant: BTreeMap<WorkerClass, &'static str>,
    /// Overload policy per tenant (absent = always admit).
    tenant_policy: BTreeMap<&'static str, TenantPolicy>,
    /// Outstanding dispatches per tenant (only tenants seen dispatching).
    tenant_out: BTreeMap<&'static str, usize>,
    next_job: u64,
    /// Increment between consecutive job ids (1 unless this plane is one
    /// shard of a [`crate::shard::ShardedDispatch`], in which case each
    /// shard strides by the shard count over a disjoint residue class).
    id_stride: u64,
    delta_correction: bool,
    tracing: bool,
    /// Head-sampling policy for root dispatches (and the default the
    /// driver mirrors from its tracer); see [`crate::trace::Sampling`].
    sampling: Sampling,
}

impl DispatchPlane {
    /// Creates a plane.
    pub fn new(cfg: SnsConfig) -> Self {
        DispatchPlane {
            cfg,
            manager: None,
            incarnation: 0,
            last_beacon: None,
            hints: BTreeMap::new(),
            inflight: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            class_tenant: BTreeMap::new(),
            tenant_policy: BTreeMap::new(),
            tenant_out: BTreeMap::new(),
            next_job: 1,
            id_stride: 1,
            delta_correction: true,
            tracing: false,
            sampling: Sampling::ALL,
        }
    }

    /// Bills dispatches of `class` to `tenant` (default `"shared"`).
    pub fn set_tenant(&mut self, class: WorkerClass, tenant: &'static str) {
        self.class_tenant.insert(class, tenant);
    }

    /// Installs (or replaces) a tenant's overload policy. Tenants
    /// without a policy are always admitted.
    pub fn set_tenant_policy(&mut self, tenant: &'static str, policy: TenantPolicy) {
        self.tenant_policy.insert(tenant, policy);
    }

    /// The tenant `class` bills to.
    pub fn tenant_of(&self, class: &WorkerClass) -> &'static str {
        self.class_tenant.get(class).copied().unwrap_or("shared")
    }

    /// Outstanding dispatches currently billed to `tenant`.
    pub fn tenant_outstanding(&self, tenant: &str) -> usize {
        self.tenant_out.get(tenant).copied().unwrap_or(0)
    }

    /// Admission control for one prospective dispatch of `class` — call
    /// before [`DispatchPlane::dispatch`] when tenant isolation is on.
    /// Within quota ⇒ [`Admission::Accept`]; over quota the tenant's
    /// [`OverloadPolicy`] picks degrade vs. drop (counted under
    /// `stub.tenant_degraded` / `stub.tenant_dropped`). Tenants without
    /// a policy are always accepted, so the default path is untouched.
    pub fn admit(&mut self, class: &WorkerClass, out: &mut Vec<DispatchEffect>) -> Admission {
        let tenant = self.tenant_of(class);
        let Some(policy) = self.tenant_policy.get(tenant) else {
            return Admission::Accept;
        };
        let in_flight = self.tenant_out.get(tenant).copied().unwrap_or(0);
        if in_flight < policy.max_outstanding {
            return Admission::Accept;
        }
        match policy.overload {
            OverloadPolicy::Degrade if in_flight < policy.max_outstanding * 2 => {
                out.push(DispatchEffect::Incr {
                    key: "stub.tenant_degraded",
                    n: 1,
                });
                Admission::Degrade
            }
            _ => {
                out.push(DispatchEffect::Incr {
                    key: "stub.tenant_dropped",
                    n: 1,
                });
                Admission::Drop
            }
        }
    }

    fn tenant_charge(&mut self, class: &WorkerClass) {
        let tenant = self.tenant_of(class);
        *self.tenant_out.entry(tenant).or_insert(0) += 1;
    }

    fn tenant_release(&mut self, class: &WorkerClass) {
        let tenant = self.tenant_of(class);
        if let Some(n) = self.tenant_out.get_mut(tenant) {
            *n = n.saturating_sub(1);
        }
    }

    /// Carves this plane's job-id space into a residue class: ids start
    /// at `first` and step by `stride`. Shard *i* of *n* uses
    /// `(i + 1, n)` so that concurrent shards never collide and
    /// `(id - 1) % n` recovers the owning shard. Must be called before
    /// the first dispatch; `stride` of 0 is treated as 1.
    pub fn set_job_id_space(&mut self, first: u64, stride: u64) {
        debug_assert!(
            self.outstanding.is_empty(),
            "job-id space must be set before dispatching"
        );
        self.next_job = first.max(1);
        self.id_stride = stride.max(1);
    }

    /// Enables/disables the §4.5 queue-delta correction (ablation knob).
    pub fn set_delta_correction(&mut self, on: bool) {
        self.delta_correction = on;
    }

    /// Enables/disables span emission ([`DispatchEffect::Span`]). Off by
    /// default; the disabled path is a single branch per response.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Installs the head-sampling policy this plane applies to *root*
    /// dispatches (jobs submitted without an enclosing request; the
    /// decision keys on the job id, which both backends assign
    /// identically). Dispatches that arrive with a
    /// [`SpanCtx::under`] decision carry it unchanged.
    pub fn set_sampling(&mut self, sampling: Sampling) {
        self.sampling = sampling;
    }

    /// This plane's head-sampling policy.
    pub fn sampling(&self) -> Sampling {
        self.sampling
    }

    /// The manager, if one has been heard from.
    pub fn manager(&self) -> Option<ComponentId> {
        self.manager
    }

    /// Incarnation of the last manager heard from.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// When the last beacon arrived.
    pub fn last_beacon(&self) -> Option<SimTime> {
        self.last_beacon
    }

    /// Live workers of a class per the hint cache (the virtual-cache ring
    /// is built from this, §3.1.5).
    pub fn workers_of(&self, class: &WorkerClass) -> Vec<ComponentId> {
        self.hints
            .get(class)
            .map(|v| v.iter().map(|h| h.worker).collect())
            .unwrap_or_default()
    }

    /// Estimated queue length for a worker (report + local delta).
    pub fn estimate(&self, class: &WorkerClass, worker: ComponentId) -> Option<f64> {
        let base = self
            .hints
            .get(class)?
            .iter()
            .find(|h| h.worker == worker)?
            .est_qlen;
        let delta = if self.delta_correction {
            self.inflight.get(&worker).copied().unwrap_or(0) as f64
        } else {
            0.0
        };
        Some((base + delta).max(0.0))
    }

    /// Ingests a beacon. Returns `true` when it announces a manager (or
    /// incarnation) this stub has not registered with yet.
    pub fn on_beacon(&mut self, b: &BeaconData) -> bool {
        let new = self.manager != Some(b.manager) || self.incarnation != b.incarnation;
        self.manager = Some(b.manager);
        self.incarnation = b.incarnation;
        self.last_beacon = Some(b.at);
        self.hints = b
            .hints
            .iter()
            .map(|(class, v)| {
                (
                    class.clone(),
                    v.iter()
                        .map(|h| HintEntry {
                            worker: h.worker,
                            est_qlen: h.est_qlen,
                        })
                        .collect(),
                )
            })
            .collect();
        // Fresh reports fold in everything we had dispatched before the
        // report was made; restart the local delta.
        self.inflight.clear();
        for o in self.outstanding.values() {
            if let Some(w) = o.worker {
                *self.inflight.entry(w).or_insert(0) += 1;
            }
        }
        new
    }

    /// Lottery-picks a worker of `class` (excluding `exclude`), tickets
    /// inversely proportional to estimated queue length (§3.1.2).
    fn pick(
        &self,
        rng: &mut Pcg32,
        class: &WorkerClass,
        exclude: &[ComponentId],
    ) -> Option<ComponentId> {
        let candidates: Vec<&HintEntry> = self
            .hints
            .get(class)?
            .iter()
            .filter(|h| !exclude.contains(&h.worker))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let tickets: Vec<f64> = candidates
            .iter()
            .map(|h| {
                let delta = if self.delta_correction {
                    self.inflight.get(&h.worker).copied().unwrap_or(0) as f64
                } else {
                    0.0
                };
                1.0 / (1.0 + (h.est_qlen + delta).max(0.0))
            })
            .collect();
        let i = rng.weighted(&tickets);
        Some(candidates[i].worker)
    }

    fn send_job(&mut self, job_id: u64, worker: ComponentId, out: &mut Vec<DispatchEffect>) {
        let o = self.outstanding.get_mut(&job_id).expect("job exists");
        o.worker = Some(worker);
        o.workers_tried.push(worker);
        *self.inflight.entry(worker).or_insert(0) += 1;
        let job = Arc::new(Job {
            id: job_id,
            class: o.class.clone(),
            op: o.op.clone(),
            input: o.input.clone(),
            profile: o.profile.clone(),
            reply_to: o.reply_to,
            sampled: o.sampled,
        });
        out.push(DispatchEffect::SendJob { worker, job });
        out.push(DispatchEffect::Incr {
            key: "stub.dispatches",
            n: 1,
        });
    }

    fn request_worker(&self, class: &WorkerClass, out: &mut Vec<DispatchEffect>) {
        if let Some(mgr) = self.manager {
            out.push(DispatchEffect::NeedWorker {
                manager: mgr,
                class: class.clone(),
            });
        }
    }

    /// The head-sampling decision for a new job: the caller's
    /// per-request decision when it made one, else this plane's policy
    /// keyed on the job id (root dispatches — job ids are assigned
    /// identically by both backends, so they sample the same set).
    fn head_decision(&self, job_id: u64, span: &SpanCtx) -> bool {
        match span.sampled {
            Some(decided) => decided,
            None => self.sampling.decide(job_id),
        }
    }

    /// Dispatches a job to the least-loaded worker of `class` (lottery).
    /// If no worker is known the dispatch stays pending — the caller's
    /// timeout drives a retry once the manager has spawned one — and the
    /// manager is asked via [`crate::msg::SnsMsg::NeedWorker`]. Returns
    /// the job id. `now` stamps the dispatch span's start; `span`
    /// carries the caller's request-span parent and head-sampling
    /// decision (both ignored unless [`DispatchPlane::set_tracing`] is
    /// on).
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch(
        &mut self,
        rng: &mut Pcg32,
        now: SimTime,
        reply_to: ComponentId,
        class: WorkerClass,
        op: impl Into<String>,
        input: Payload,
        profile: Option<ProfileData>,
        span: SpanCtx,
        out: &mut Vec<DispatchEffect>,
    ) -> u64 {
        let job_id = self.next_job;
        self.next_job += self.id_stride;
        self.tenant_charge(&class);
        let sampled = self.head_decision(job_id, &span);
        self.outstanding.insert(
            job_id,
            Outstanding {
                class: class.clone(),
                worker: None,
                attempts: 1,
                explicit: false,
                requested_at: now,
                op: op.into(),
                input,
                profile,
                reply_to,
                workers_tried: Vec::new(),
                parent: span.parent,
                sampled,
            },
        );
        match self.pick(rng, &class, &[]) {
            Some(w) => self.send_job(job_id, w, out),
            None => self.request_worker(&class, out),
        }
        job_id
    }

    /// Dispatches to a pinned worker (cache-ring routing, search
    /// partition fan-out). No lottery, no retry.
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch_to(
        &mut self,
        now: SimTime,
        reply_to: ComponentId,
        worker: ComponentId,
        class: WorkerClass,
        op: impl Into<String>,
        input: Payload,
        profile: Option<ProfileData>,
        span: SpanCtx,
        out: &mut Vec<DispatchEffect>,
    ) -> u64 {
        let job_id = self.next_job;
        self.next_job += self.id_stride;
        self.tenant_charge(&class);
        let sampled = self.head_decision(job_id, &span);
        self.outstanding.insert(
            job_id,
            Outstanding {
                class,
                worker: None,
                attempts: 1,
                explicit: true,
                requested_at: now,
                op: op.into(),
                input,
                profile,
                reply_to,
                workers_tried: Vec::new(),
                parent: span.parent,
                sampled,
            },
        );
        self.send_job(job_id, worker, out);
        job_id
    }

    /// Builds the dispatch span for a settled job (span start is the
    /// original request time, so pending waits and retries are counted).
    fn dispatch_span(&self, job_id: u64, o: &Outstanding, end: SimTime, ok: bool) -> SpanRecord {
        trace::span(
            trace::job_span_id(o.reply_to, job_id),
            o.parent,
            trace::DISPATCH,
            trace::CAT_STUB,
            o.worker.unwrap_or(o.reply_to),
            intern_class(o.class.name()),
            o.requested_at,
            end,
            o.input.wire_size(),
            ok,
        )
    }

    /// Records a response; returns the dispatch if it was outstanding.
    /// `now` closes the dispatch span appended to `out` when tracing.
    pub fn on_response(
        &mut self,
        job_id: u64,
        now: SimTime,
        out: &mut Vec<DispatchEffect>,
    ) -> Option<Outstanding> {
        let o = self.outstanding.remove(&job_id)?;
        self.tenant_release(&o.class);
        if let Some(w) = o.worker {
            *self.inflight.entry(w).or_insert(0) -= 1;
        }
        if self.tracing && o.sampled {
            out.push(DispatchEffect::Span(
                self.dispatch_span(job_id, &o, now, true),
            ));
        }
        Some(o)
    }

    /// Handles a dispatch timeout: evict the suspected-dead worker from
    /// the hint cache and retry elsewhere, or give up (§3.1.8). `now`
    /// closes the failed dispatch span on give-up when tracing.
    pub fn on_timeout(
        &mut self,
        rng: &mut Pcg32,
        now: SimTime,
        job_id: u64,
        out: &mut Vec<DispatchEffect>,
    ) -> TimeoutVerdict {
        let Some(o) = self.outstanding.get(&job_id) else {
            return TimeoutVerdict::Unknown;
        };
        let class = o.class.clone();
        let explicit = o.explicit;
        let attempts = o.attempts;
        let suspected = o.worker;
        // A timed-out worker is suspect: drop it so other requests stop
        // choosing it until the manager re-advertises it.
        if let Some(w) = suspected {
            if let Some(v) = self.hints.get_mut(&class) {
                v.retain(|h| h.worker != w);
            }
            *self.inflight.entry(w).or_insert(0) -= 1;
            out.push(DispatchEffect::Incr {
                key: "stub.timeouts",
                n: 1,
            });
        }
        if explicit || attempts > self.cfg.max_retries {
            let o = self.outstanding.remove(&job_id).expect("still present");
            self.tenant_release(&o.class);
            out.push(DispatchEffect::Incr {
                key: "stub.gave_up",
                n: 1,
            });
            if self.tracing && o.sampled {
                out.push(DispatchEffect::Span(
                    self.dispatch_span(job_id, &o, now, false),
                ));
            }
            return TimeoutVerdict::GaveUp(class);
        }
        let tried = self
            .outstanding
            .get(&job_id)
            .map(|o| o.workers_tried.clone())
            .unwrap_or_default();
        match self.pick(rng, &class, &tried) {
            Some(w) => {
                let o = self.outstanding.get_mut(&job_id).expect("still present");
                o.attempts += 1;
                self.send_job(job_id, w, out);
                out.push(DispatchEffect::Incr {
                    key: "stub.retries",
                    n: 1,
                });
                TimeoutVerdict::Retried
            }
            None => {
                // Nobody (left) to try: ask the manager and keep waiting;
                // the re-armed timeout will try again.
                let o = self.outstanding.get_mut(&job_id).expect("still present");
                o.attempts += 1;
                o.worker = None;
                self.request_worker(&class, out);
                TimeoutVerdict::Retried
            }
        }
    }

    /// Jobs currently outstanding (waiting on workers).
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// Pending dispatches of `class` that have no worker yet get sent as
    /// soon as hints advertise one (called after each beacon).
    pub fn flush_pending(&mut self, rng: &mut Pcg32, out: &mut Vec<DispatchEffect>) {
        let waiting: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| o.worker.is_none() && !o.explicit)
            .map(|(&id, _)| id)
            .collect();
        for job_id in waiting {
            let (class, tried) = {
                let o = &self.outstanding[&job_id];
                (o.class.clone(), o.workers_tried.clone())
            };
            if let Some(w) = self.pick(rng, &class, &tried) {
                self.send_job(job_id, w, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Blob;

    fn beacon(workers: &[(u64, f64)]) -> BeaconData {
        let mut hints = BTreeMap::new();
        hints.insert(
            WorkerClass::new("w"),
            workers
                .iter()
                .map(|&(id, q)| WorkerHint {
                    worker: ComponentId(id),
                    node: NodeId(0),
                    est_qlen: q,
                    overflow: false,
                })
                .collect(),
        );
        BeaconData {
            manager: ComponentId(99),
            incarnation: 1,
            hints,
            at: SimTime::from_secs(1),
        }
    }

    fn view(nodes: &[(u32, u32)]) -> ClusterView {
        ClusterView {
            dedicated: nodes
                .iter()
                .map(|&(n, c)| NodeLoad {
                    node: NodeId(n),
                    components: c,
                })
                .collect(),
            overflow: Vec::new(),
            pinned_alive: BTreeMap::new(),
            spawn_latency: Duration::from_millis(300),
        }
    }

    fn plane(min: u32) -> ControlPlane {
        let mut p = ControlPlane::new(ControlConfig {
            sns: SnsConfig::default(),
            incarnation: 1,
            restart_front_ends: false,
        });
        p.add_class(WorkerClass::new("w"), SpawnPolicy::scaled(min));
        p
    }

    fn spawns(out: &[ControlEffect]) -> Vec<(NodeId, u64)> {
        out.iter()
            .filter_map(|e| match e {
                ControlEffect::Spawn { token, node, .. } => Some((*node, *token)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn estimate_includes_delta() {
        let mut plane = DispatchPlane::new(SnsConfig::default());
        plane.on_beacon(&beacon(&[(1, 2.0)]));
        assert_eq!(plane.estimate(&"w".into(), ComponentId(1)), Some(2.0));
        plane.inflight.insert(ComponentId(1), 3);
        assert_eq!(plane.estimate(&"w".into(), ComponentId(1)), Some(5.0));
        plane.set_delta_correction(false);
        assert_eq!(plane.estimate(&"w".into(), ComponentId(1)), Some(2.0));
    }

    #[test]
    fn dispatch_routes_through_effects_and_responses_balance_inflight() {
        let mut plane = DispatchPlane::new(SnsConfig::default());
        plane.on_beacon(&beacon(&[(1, 0.0)]));
        let mut rng = Pcg32::new(7);
        let mut out = Vec::new();
        let id = plane.dispatch(
            &mut rng,
            SimTime::ZERO,
            ComponentId(50),
            "w".into(),
            "op",
            Blob::payload(10, "x"),
            None,
            SpanCtx::root(),
            &mut out,
        );
        assert!(matches!(
            out[0],
            DispatchEffect::SendJob { worker, ref job }
                if worker == ComponentId(1) && job.id == id && job.reply_to == ComponentId(50)
        ));
        assert_eq!(plane.inflight.get(&ComponentId(1)), Some(&1));
        let o = plane
            .on_response(id, SimTime::from_secs(1), &mut out)
            .expect("outstanding");
        assert_eq!(o.worker, Some(ComponentId(1)));
        assert_eq!(plane.inflight.get(&ComponentId(1)), Some(&0));
        assert!(plane
            .on_response(id, SimTime::from_secs(1), &mut out)
            .is_none());
    }

    #[test]
    fn tracing_emits_dispatch_spans_through_effects() {
        let mut plane = DispatchPlane::new(SnsConfig::default());
        plane.set_tracing(true);
        plane.on_beacon(&beacon(&[(1, 0.0)]));
        let mut rng = Pcg32::new(7);
        let mut out = Vec::new();
        let parent = trace::request_span_id(ComponentId(50), 9);
        let id = plane.dispatch(
            &mut rng,
            SimTime::from_secs(2),
            ComponentId(50),
            "w".into(),
            "op",
            Blob::payload(10, "x"),
            None,
            SpanCtx::under(parent, true),
            &mut out,
        );
        out.clear();
        plane
            .on_response(id, SimTime::from_secs(3), &mut out)
            .expect("outstanding");
        let span = out
            .iter()
            .find_map(|e| match e {
                DispatchEffect::Span(s) => Some(*s),
                _ => None,
            })
            .expect("span effect");
        assert_eq!(span.id, trace::job_span_id(ComponentId(50), id));
        assert_eq!(span.parent, Some(parent));
        assert_eq!(span.start, SimTime::from_secs(2));
        assert_eq!(span.end, SimTime::from_secs(3));
        assert_eq!(span.who, ComponentId(1));
        assert!(span.ok);
    }

    #[test]
    fn timeout_evicts_suspect_and_retries_elsewhere() {
        let mut plane = DispatchPlane::new(SnsConfig::default());
        plane.on_beacon(&beacon(&[(1, 0.0), (2, 0.0)]));
        let mut rng = Pcg32::new(7);
        let mut out = Vec::new();
        let id = plane.dispatch(
            &mut rng,
            SimTime::ZERO,
            ComponentId(50),
            "w".into(),
            "op",
            Blob::payload(10, "x"),
            None,
            SpanCtx::root(),
            &mut out,
        );
        let first = plane.outstanding[&id].worker.unwrap();
        out.clear();
        let verdict = plane.on_timeout(&mut rng, SimTime::from_secs(5), id, &mut out);
        assert_eq!(verdict, TimeoutVerdict::Retried);
        let second = plane.outstanding[&id].worker.unwrap();
        assert_ne!(first, second, "retry excludes the suspect");
        assert!(!plane.workers_of(&"w".into()).contains(&first));
        // Exhaust retries: each timeout evicts the current worker.
        out.clear();
        let verdict = plane.on_timeout(&mut rng, SimTime::from_secs(10), id, &mut out);
        // attempts is now 2 (== default max_retries), one more allowed…
        assert_eq!(verdict, TimeoutVerdict::Retried);
        out.clear();
        let verdict = plane.on_timeout(&mut rng, SimTime::from_secs(15), id, &mut out);
        assert_eq!(verdict, TimeoutVerdict::GaveUp("w".into()));
        assert_eq!(plane.outstanding_count(), 0);
    }

    #[test]
    fn control_plane_bootstraps_to_minimum_with_effect_confirmation() {
        let mut p = plane(2);
        let v = view(&[(0, 1), (1, 0)]);
        let mut out = Vec::new();
        p.on_start(SimTime::ZERO, ComponentId(1), NodeId(0), &v, &mut out);
        // Grace: no spawns in the first two beacon periods.
        assert!(spawns(&out).is_empty());
        let mut out = Vec::new();
        p.on_tick(SimTime::from_secs(3), &v, &mut out);
        let sp = spawns(&out);
        assert_eq!(sp.len(), 2, "bootstrap to min_workers");
        // Least-loaded node first; the second spawn sees the first via
        // the in-call placement accounting.
        assert_eq!(sp[0].0, NodeId(1));
        assert_eq!(sp[1].0, NodeId(0));
        for (i, &(_, token)) in sp.iter().enumerate() {
            p.confirm_spawn(token, ComponentId(10 + i as u64));
        }
        // Registration clears pending; strength holds at 2.
        let mut out = Vec::new();
        p.on_register_worker(
            ComponentId(10),
            "w".into(),
            NodeId(1),
            false,
            SimTime::from_secs(3),
            &mut out,
        );
        assert!(matches!(out[0], ControlEffect::Watch(w) if w == ComponentId(10)));
        assert_eq!(p.class_strength(&"w".into()), 2);
        let mut out = Vec::new();
        p.on_tick(SimTime::from_secs(4), &v, &mut out);
        assert!(spawns(&out).is_empty(), "no over-spawn");
    }

    #[test]
    fn death_triggers_respawn_and_peer_restarted() {
        let mut p = plane(1);
        let v = view(&[(0, 1)]);
        let mut out = Vec::new();
        p.on_start(SimTime::ZERO, ComponentId(1), NodeId(0), &v, &mut out);
        p.on_register_worker(
            ComponentId(7),
            "w".into(),
            NodeId(0),
            false,
            SimTime::ZERO,
            &mut Vec::new(),
        );
        let mut out = Vec::new();
        p.on_peer_death(ComponentId(7), SimTime::from_secs(5), &v, &mut out);
        assert_eq!(spawns(&out).len(), 1, "process-peer restart");
        assert!(out.iter().any(|e| matches!(
            e,
            ControlEffect::Emit(MonitorEvent::PeerRestarted { kind: "worker", .. })
        )));
    }

    #[test]
    fn ensure_workers_bypasses_grace_and_respects_target() {
        let mut p = plane(0);
        let v = view(&[(0, 0)]);
        let mut out = Vec::new();
        p.on_start(SimTime::ZERO, ComponentId(1), NodeId(0), &v, &mut out);
        let mut out = Vec::new();
        p.ensure_workers(&"w".into(), 3, SimTime::ZERO, &v, &mut out);
        let sp = spawns(&out);
        assert_eq!(sp.len(), 3);
        for (i, &(_, token)) in sp.iter().enumerate() {
            p.confirm_spawn(token, ComponentId(20 + i as u64));
        }
        assert_eq!(p.class_strength(&"w".into()), 3);
        let mut out = Vec::new();
        p.ensure_workers(&"w".into(), 3, SimTime::ZERO, &v, &mut out);
        assert!(spawns(&out).is_empty(), "target already met");
    }

    #[test]
    fn rival_beacon_steps_down_lower_incarnation() {
        let mut p = plane(0);
        let mut out = Vec::new();
        p.on_start(
            SimTime::ZERO,
            ComponentId(1),
            NodeId(0),
            &view(&[]),
            &mut out,
        );
        let mut rival = BeaconData {
            manager: ComponentId(9),
            incarnation: 2,
            hints: BTreeMap::new(),
            at: SimTime::ZERO,
        };
        let mut out = Vec::new();
        p.on_rival_beacon(&rival, &mut out);
        assert!(out.iter().any(|e| matches!(e, ControlEffect::StepDown)));
        // Our own beacon is never a rival.
        rival.manager = ComponentId(1);
        let mut out = Vec::new();
        p.on_rival_beacon(&rival, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn rival_beacon_n1_rule_survives_lower_rival() {
        // The quorum delegation must keep the exact degenerate rule: a
        // rival with a *lower* (incarnation, id) loses and we stay up.
        let mut p = plane(0);
        let mut out = Vec::new();
        p.on_start(
            SimTime::ZERO,
            ComponentId(5),
            NodeId(0),
            &view(&[]),
            &mut out,
        );
        let rival = BeaconData {
            manager: ComponentId(3),
            incarnation: 1,
            hints: BTreeMap::new(),
            at: SimTime::from_secs(1),
        };
        let mut out = Vec::new();
        p.on_rival_beacon(&rival, &mut out);
        assert!(out.is_empty(), "lower rival must not unseat us");
    }

    #[test]
    fn quorum_majority_elects_lowest_standby() {
        let vt = Duration::from_secs(4);
        let mut q = Quorum::standby(3, 1, vt);
        let now = SimTime::from_secs(10);
        // Hear replica 2 (standby); leader 0 stays silent.
        assert_eq!(
            q.on_ballot(&Ballot {
                id: 2,
                incarnation: 0,
                leading: false,
                at: now
            }),
            QuorumDecision::Hold
        );
        assert_eq!(q.live(now), 2);
        assert_eq!(q.majority(), 2);
        let d = q.tick(now);
        assert_eq!(d, QuorumDecision::TakeOver { incarnation: 1 });
        assert!(q.is_leading());
        // Replica 2 sees our leader ballot and holds.
        let mut peer = Quorum::standby(3, 2, vt);
        peer.on_ballot(&q.ballot(now));
        assert_eq!(peer.tick(now), QuorumDecision::Hold);
    }

    #[test]
    fn quorum_minority_is_unrecoverable_not_electing() {
        let vt = Duration::from_secs(4);
        let mut q = Quorum::standby(3, 1, vt);
        // Nobody else heard from: 1 of 3 live, need 2.
        assert_eq!(
            q.tick(SimTime::from_secs(10)),
            QuorumDecision::Unrecoverable { live: 1, need: 2 }
        );
        assert!(!q.is_leading(), "no election without a majority");
    }

    #[test]
    fn quorum_leader_steps_down_in_minority_island() {
        let vt = Duration::from_secs(4);
        let mut q = Quorum::leader(3, 0, 1, vt);
        let peer = Quorum::standby(3, 1, vt);
        assert_eq!(
            q.on_ballot(&peer.ballot(SimTime::from_secs(1))),
            QuorumDecision::Hold
        );
        assert_eq!(q.tick(SimTime::from_secs(2)), QuorumDecision::Hold);
        // The peers go silent past the vote timeout: the leader loses
        // its majority and must stop acting as the manager.
        assert_eq!(
            q.tick(SimTime::from_secs(10)),
            QuorumDecision::Unrecoverable { live: 1, need: 2 }
        );
        assert!(!q.is_leading(), "a minority island relinquishes leadership");
    }

    #[test]
    fn quorum_rejoined_old_leader_defers_to_new_one() {
        let vt = Duration::from_secs(4);
        let now = SimTime::from_secs(20);
        // Replica 1 took over at incarnation 2; old leader 0 rejoins as
        // a standby, hears the new leader, and never re-elects itself.
        let mut rejoined = Quorum::standby(3, 0, vt);
        assert_eq!(
            rejoined.on_ballot(&Ballot {
                id: 1,
                incarnation: 2,
                leading: true,
                at: now
            }),
            QuorumDecision::Hold
        );
        assert_eq!(rejoined.tick(now), QuorumDecision::Hold);
        assert!(!rejoined.is_leading());
    }

    #[test]
    fn tenant_cap_refuses_spawns_over_budget() {
        let mut p = ControlPlane::new(ControlConfig {
            sns: SnsConfig::default(),
            incarnation: 1,
            restart_front_ends: false,
        });
        p.add_class(
            WorkerClass::new("a"),
            SpawnPolicy::scaled(0).for_tenant("transend"),
        );
        p.add_class(
            WorkerClass::new("b"),
            SpawnPolicy::scaled(0).for_tenant("transend"),
        );
        p.set_tenant_cap("transend", 2);
        let v = view(&[(0, 0), (1, 0)]);
        let mut out = Vec::new();
        p.on_start(SimTime::ZERO, ComponentId(1), NodeId(0), &v, &mut out);
        let mut out = Vec::new();
        p.ensure_workers(&"a".into(), 2, SimTime::ZERO, &v, &mut out);
        assert_eq!(spawns(&out).len(), 2);
        for (i, &(_, token)) in spawns(&out).iter().enumerate() {
            p.confirm_spawn(token, ComponentId(30 + i as u64));
        }
        // Class "b" shares the tenant: cap already consumed.
        let mut out = Vec::new();
        p.ensure_workers(&"b".into(), 1, SimTime::ZERO, &v, &mut out);
        assert!(spawns(&out).is_empty(), "tenant cap must refuse");
        assert!(out.iter().any(|e| matches!(
            e,
            ControlEffect::Incr {
                key: "manager.tenant_capped",
                ..
            }
        )));
    }

    #[test]
    fn upgrade_bumps_node_epoch_and_rejoins() {
        let mut p = plane(0);
        let v = view(&[(0, 0), (1, 0)]);
        let mut out = Vec::new();
        p.on_start(SimTime::ZERO, ComponentId(1), NodeId(0), &v, &mut out);
        let mut out = Vec::new();
        p.on_drain_node(NodeId(1), &mut out);
        assert!(out
            .iter()
            .any(|e| matches!(e, ControlEffect::Emit(MonitorEvent::NodeDrained { node }) if *node == NodeId(1))));
        let mut out = Vec::new();
        p.on_upgrade_node(NodeId(1), &mut out);
        assert!(out.iter().any(|e| matches!(
            e,
            ControlEffect::Emit(MonitorEvent::NodeRejoined { node, epoch })
                if *node == NodeId(1) && *epoch == 1
        )));
        // Upgrading a node that is not drained is a no-op.
        let mut out = Vec::new();
        p.on_upgrade_node(NodeId(1), &mut out);
        assert!(out.is_empty());
        // A second round lands at epoch 2.
        p.on_drain_node(NodeId(1), &mut Vec::new());
        let mut out = Vec::new();
        p.on_upgrade_node(NodeId(1), &mut out);
        assert!(out.iter().any(|e| matches!(
            e,
            ControlEffect::Emit(MonitorEvent::NodeRejoined { epoch: 2, .. })
        )));
    }

    #[test]
    fn tenant_admission_drops_and_degrades_over_quota() {
        let mut plane = DispatchPlane::new(SnsConfig::default());
        plane.on_beacon(&beacon(&[(1, 0.0)]));
        plane.set_tenant("w".into(), "hotbot");
        plane.set_tenant_policy(
            "hotbot",
            TenantPolicy {
                max_outstanding: 1,
                overload: OverloadPolicy::Drop,
            },
        );
        let mut rng = Pcg32::new(7);
        let mut out = Vec::new();
        assert_eq!(plane.admit(&"w".into(), &mut out), Admission::Accept);
        let id = plane.dispatch(
            &mut rng,
            SimTime::ZERO,
            ComponentId(50),
            "w".into(),
            "op",
            Blob::payload(10, "x"),
            None,
            SpanCtx::root(),
            &mut out,
        );
        assert_eq!(plane.tenant_outstanding("hotbot"), 1);
        assert_eq!(plane.admit(&"w".into(), &mut out), Admission::Drop);
        // Degrade policy admits up to 2× the quota.
        plane.set_tenant_policy(
            "hotbot",
            TenantPolicy {
                max_outstanding: 1,
                overload: OverloadPolicy::Degrade,
            },
        );
        assert_eq!(plane.admit(&"w".into(), &mut out), Admission::Degrade);
        // Settle the job: quota frees up.
        plane.on_response(id, SimTime::from_secs(1), &mut out);
        assert_eq!(plane.tenant_outstanding("hotbot"), 0);
        assert_eq!(plane.admit(&"w".into(), &mut out), Admission::Accept);
        // Untracked tenants are always accepted.
        assert_eq!(plane.admit(&"other".into(), &mut out), Admission::Accept);
    }
}
