//! The worker stub (§2.2.5): the narrow interface between
//! service-specific worker code and the SNS layer.
//!
//! "The worker stub hides fault tolerance, load balancing, and
//! multithreading considerations from the worker code, which … need not
//! be thread-safe, and can, in fact, crash without taking the system
//! down." The stub queues incoming work, runs the wrapped
//! [`WorkerLogic`] one job at a time (or with bounded concurrency for
//! I/O-bound workers like caches and the origin model), reports its queue
//! length to the manager every `report_period` (§3.1.2), registers itself
//! with every new manager incarnation it observes (§3.1.3 soft-state
//! recovery), and turns logic panics ([`WorkerError::Crash`]) into a
//! clean process death that the manager's process-peer machinery
//! handles.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use sns_sim::engine::{Component, Ctx};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, GroupId};

use crate::monitor::MonitorEvent;
use crate::msg::{Job, JobResult, SnsMsg};
use crate::trace;
use crate::{intern_class, Payload, WorkerClass};

/// How a worker job can fail.
#[derive(Debug, Clone)]
pub enum WorkerError {
    /// The worker process crashes (pathological input, §3.1.6). The stub
    /// exits without replying; the SNS layer detects and recovers.
    Crash,
    /// The job fails but the worker survives; the front end's service
    /// logic picks a fallback (§2.2.4).
    Failed(String),
}

/// Service-specific worker code. Implementations are intentionally
/// ignorant of queueing, registration, load reporting and fault handling.
pub trait WorkerLogic: Send {
    /// This worker's class (unit of replication and load balancing).
    fn class(&self) -> WorkerClass;

    /// Predicted service time for a job (drives the simulation's CPU/IO
    /// occupancy; real workers would simply take this long).
    fn service_time(&mut self, job: &Job, now: SimTime, rng: &mut Pcg32) -> Duration;

    /// Performs the job once its service time has elapsed.
    fn process(&mut self, job: &Job, now: SimTime, rng: &mut Pcg32)
        -> Result<Payload, WorkerError>;

    /// Whether service time occupies a CPU core (distillers) or just
    /// elapses (network/disk-bound caches, origin fetches).
    fn cpu_bound(&self) -> bool {
        true
    }

    /// Maximum jobs in service simultaneously.
    fn concurrency(&self) -> u32 {
        1
    }
}

/// Stub wiring configuration.
#[derive(Debug, Clone)]
pub struct WorkerStubConfig {
    /// Beacon multicast group (manager discovery).
    pub beacon_group: GroupId,
    /// Monitor multicast group.
    pub monitor_group: GroupId,
    /// Load-report period (paper: 500 ms).
    pub report_period: Duration,
    /// Report queue length "optionally weighted by the expected cost of
    /// distilling each item" (§3.1.2 footnote 2): when set, the reported
    /// load is the queue's estimated total service time in units of this
    /// duration, instead of a plain item count.
    pub cost_weight_unit: Option<Duration>,
}

/// The stub component wrapping a [`WorkerLogic`].
pub struct WorkerStub {
    logic: Box<dyn WorkerLogic>,
    cfg: WorkerStubConfig,
    /// Queued jobs: (job, estimated cost, when enqueued).
    queue: VecDeque<(Arc<Job>, Duration, SimTime)>,
    /// Jobs in service: token → (job, estimated cost, service start).
    in_service: BTreeMap<u64, (Arc<Job>, Duration, SimTime)>,
    next_token: u64,
    manager: Option<(ComponentId, u64)>,
    draining: bool,
    jobs_done: u64,
    /// Cached interned name of this stub's qlen series, built on the
    /// first load report so the periodic path never allocates.
    qlen_key: Option<sns_sim::MetricKey>,
}

impl WorkerStub {
    /// Timer token reserved for the periodic load report.
    const REPORT: u64 = 0;

    /// Wraps worker logic in a stub.
    pub fn new(logic: Box<dyn WorkerLogic>, cfg: WorkerStubConfig) -> Self {
        WorkerStub {
            logic,
            cfg,
            queue: VecDeque::new(),
            in_service: BTreeMap::new(),
            next_token: 1,
            manager: None,
            draining: false,
            jobs_done: 0,
            qlen_key: None,
        }
    }

    /// Current queue length (queued + in service), the paper's load
    /// metric; cost-weighted when configured (footnote 2).
    pub fn qlen(&self) -> u32 {
        match self.cfg.cost_weight_unit {
            None => (self.queue.len() + self.in_service.len()) as u32,
            Some(unit) => {
                let total: Duration = self
                    .queue
                    .iter()
                    .map(|(_, c, _)| *c)
                    .chain(self.in_service.values().map(|(_, c, _)| *c))
                    .sum();
                (total.as_secs_f64() / unit.as_secs_f64().max(1e-9)).ceil() as u32
            }
        }
    }

    fn on_overflow_node(&self, ctx: &Ctx<'_, SnsMsg>) -> bool {
        ctx.node_tag(ctx.my_node()).as_deref() == Some("overflow")
    }

    fn register(&mut self, ctx: &mut Ctx<'_, SnsMsg>, manager: ComponentId) {
        let me = ctx.me();
        let node = ctx.my_node();
        let overflow = self.on_overflow_node(ctx);
        ctx.send(
            manager,
            SnsMsg::RegisterWorker {
                worker: me,
                class: self.logic.class(),
                node,
                overflow,
            },
        );
    }

    fn try_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        while (self.in_service.len() as u32) < self.logic.concurrency() {
            let Some((job, est, enqueued)) = self.queue.pop_front() else {
                break;
            };
            let token = self.next_token;
            self.next_token += 1;
            let now = ctx.now();
            if job.sampled && ctx.tracer().is_enabled() {
                let me = ctx.me();
                ctx.tracer().record(trace::span(
                    trace::queue_span_id(me, job.id),
                    Some(trace::job_span_id(job.reply_to, job.id)),
                    trace::QUEUE,
                    trace::CAT_WORKER,
                    me,
                    intern_class(self.logic.class().name()),
                    enqueued,
                    now,
                    0,
                    true,
                ));
            }
            let d = {
                // Fork the stream: service_time needs &mut logic + rng.
                let mut fork = ctx.rng().fork();
                self.logic.service_time(&job, now, &mut fork)
            };
            if self.logic.cpu_bound() {
                ctx.exec_cpu(d, token);
            } else {
                ctx.timer(d, token);
            }
            self.in_service.insert(token, (job, est, now));
        }
    }

    /// Records the service span for a finished (or crashed) job.
    fn service_span(
        &mut self,
        ctx: &mut Ctx<'_, SnsMsg>,
        job: &Job,
        started: SimTime,
        bytes: u64,
        ok: bool,
    ) {
        if job.sampled && ctx.tracer().is_enabled() {
            let me = ctx.me();
            let now = ctx.now();
            ctx.tracer().record(trace::span(
                trace::service_span_id(me, job.id),
                Some(trace::job_span_id(job.reply_to, job.id)),
                trace::SERVICE,
                trace::CAT_WORKER,
                me,
                intern_class(self.logic.class().name()),
                started,
                now,
                bytes,
                ok,
            ));
        }
    }

    fn complete(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        let Some((job, _, started)) = self.in_service.remove(&token) else {
            return;
        };
        let now = ctx.now();
        let mut fork = ctx.rng().fork();
        let outcome = self.logic.process(&job, now, &mut fork);
        let me = ctx.me();
        match outcome {
            Ok(payload) => {
                self.jobs_done += 1;
                ctx.stats().incr("worker.jobs_done", 1);
                self.service_span(ctx, &job, started, payload.wire_size(), true);
                ctx.send(
                    job.reply_to,
                    SnsMsg::WorkResponse {
                        job_id: job.id,
                        worker: me,
                        result: JobResult::Ok(payload),
                    },
                );
            }
            Err(WorkerError::Failed(reason)) => {
                ctx.stats().incr("worker.jobs_failed", 1);
                self.service_span(ctx, &job, started, 0, false);
                ctx.send(
                    job.reply_to,
                    SnsMsg::WorkResponse {
                        job_id: job.id,
                        worker: me,
                        result: JobResult::Failed(reason),
                    },
                );
            }
            Err(WorkerError::Crash) => {
                // The worker process dies mid-job: no reply, no cleanup.
                // Front-end timeouts and the manager's broken-connection
                // detection recover (§3.1.3).
                ctx.stats().incr("worker.crashes", 1);
                self.service_span(ctx, &job, started, 0, false);
                ctx.multicast(
                    self.cfg.monitor_group,
                    SnsMsg::Monitor(Arc::new(MonitorEvent::WorkerCrashed {
                        worker: me,
                        class: self.logic.class(),
                    })),
                );
                ctx.exit();
                return;
            }
        }
        self.try_start(ctx);
        self.maybe_finish_drain(ctx);
    }

    fn maybe_finish_drain(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        if self.draining && self.queue.is_empty() && self.in_service.is_empty() {
            if let Some((mgr, _)) = self.manager {
                let me = ctx.me();
                ctx.send(mgr, SnsMsg::DeregisterWorker { worker: me });
            }
            ctx.exit();
        }
    }
}

impl Component<SnsMsg> for WorkerStub {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        ctx.join(self.cfg.beacon_group);
        // Stagger the first report by a random fraction of the period so
        // co-started workers do not synchronise their announcements into
        // bursts that overflow the manager's ingress link.
        let jitter = self.cfg.report_period.mul_f64(ctx.rng().f64());
        ctx.timer(self.cfg.report_period + jitter, Self::REPORT);
        let me = ctx.me();
        let node = ctx.my_node();
        ctx.multicast(
            self.cfg.monitor_group,
            SnsMsg::Monitor(Arc::new(MonitorEvent::Started {
                who: me,
                kind: "worker",
                node,
            })),
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _from: ComponentId, msg: SnsMsg) {
        match msg {
            SnsMsg::Beacon(b) => {
                let fresh = match self.manager {
                    None => true,
                    Some((id, inc)) => id != b.manager || inc != b.incarnation,
                };
                if fresh {
                    // New manager (first sight or restarted): re-register
                    // so the manager can rebuild its soft state (§3.1.3).
                    self.manager = Some((b.manager, b.incarnation));
                    self.register(ctx, b.manager);
                }
            }
            SnsMsg::WorkRequest(job) => {
                if self.draining {
                    let me = ctx.me();
                    ctx.send(
                        job.reply_to,
                        SnsMsg::WorkResponse {
                            job_id: job.id,
                            worker: me,
                            result: JobResult::Failed("worker draining".into()),
                        },
                    );
                    return;
                }
                // Estimate the job's cost for weighted load reporting
                // (a deterministic mean-cost estimate, not the draw the
                // job will actually take).
                let est = {
                    let now = ctx.now();
                    let mut fork = ctx.rng().fork();
                    self.logic.service_time(&job, now, &mut fork)
                };
                self.queue.push_back((job, est, ctx.now()));
                self.try_start(ctx);
            }
            SnsMsg::Shutdown => {
                self.draining = true;
                self.maybe_finish_drain(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        if token == Self::REPORT {
            if let Some((mgr, _)) = self.manager {
                let me = ctx.me();
                let qlen = self.qlen();
                let now = ctx.now();
                let class = self.logic.class();
                let key = *self.qlen_key.get_or_insert_with(|| {
                    sns_sim::MetricKey::new(&format!("worker.qlen.{class}.{me}"))
                });
                ctx.stats().sample(key, now, f64::from(qlen));
                // Datagram: load reports are soft state and may be lost
                // under SAN saturation (§4.6).
                ctx.send_datagram(
                    mgr,
                    SnsMsg::LoadReport {
                        worker: me,
                        class: self.logic.class(),
                        qlen,
                    },
                );
            }
            ctx.timer(self.cfg.report_period, Self::REPORT);
            return;
        }
        // Non-CPU-bound job completion.
        self.complete(ctx, token);
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        self.complete(ctx, token);
    }

    fn kind(&self) -> &'static str {
        "worker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Blob, SnsConfig};
    use sns_sim::engine::{NodeSpec, Sim, SimConfig};
    use sns_sim::network::IdealNetwork;

    /// A trivial CPU-bound worker: 10 ms/job, echoes a half-size blob;
    /// crashes on inputs tagged "poison"; fails on inputs tagged "bad".
    struct Echo;

    impl WorkerLogic for Echo {
        fn class(&self) -> WorkerClass {
            "echo".into()
        }
        fn service_time(&mut self, _job: &Job, _now: SimTime, _rng: &mut Pcg32) -> Duration {
            Duration::from_millis(10)
        }
        fn process(
            &mut self,
            job: &Job,
            _now: SimTime,
            _rng: &mut Pcg32,
        ) -> Result<Payload, WorkerError> {
            let blob = crate::payload_as::<Blob>(&job.input).expect("blob input");
            match blob.tag.as_str() {
                "poison" => Err(WorkerError::Crash),
                "bad" => Err(WorkerError::Failed("bad input".into())),
                _ => Ok(Blob::payload(blob.len / 2, "out")),
            }
        }
    }

    struct Collector {
        stub_target: ComponentId,
        to_send: Vec<&'static str>,
    }

    impl Component<SnsMsg> for Collector {
        fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
            let me = ctx.me();
            for (i, tag) in self.to_send.iter().enumerate() {
                let job = Arc::new(Job {
                    id: i as u64,
                    class: "echo".into(),
                    op: "echo".into(),
                    input: Blob::payload(1000, *tag),
                    profile: None,
                    reply_to: me,
                    sampled: true,
                });
                ctx.send(self.stub_target, SnsMsg::WorkRequest(job));
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _: ComponentId, msg: SnsMsg) {
            if let SnsMsg::WorkResponse { result, .. } = msg {
                match result {
                    JobResult::Ok(p) => {
                        ctx.stats().incr("ok", 1);
                        assert_eq!(p.wire_size(), 500);
                    }
                    JobResult::Failed(_) => {
                        ctx.stats().incr("failed", 1);
                    }
                }
            }
        }
    }

    fn harness(tags: Vec<&'static str>) -> Sim<SnsMsg, IdealNetwork> {
        let mut sim: Sim<SnsMsg, IdealNetwork> =
            Sim::new(SimConfig::default(), IdealNetwork::default());
        let n = sim.add_node(NodeSpec::new(2, "dedicated"));
        let g = sim.create_group();
        let mg = sim.create_group();
        let cfg = WorkerStubConfig {
            beacon_group: g,
            monitor_group: mg,
            report_period: SnsConfig::default().report_period,
            cost_weight_unit: None,
        };
        let stub = sim.spawn(n, Box::new(WorkerStub::new(Box::new(Echo), cfg)), "worker");
        sim.spawn(
            n,
            Box::new(Collector {
                stub_target: stub,
                to_send: tags,
            }),
            "collector",
        );
        sim
    }

    #[test]
    fn processes_jobs_serially_and_replies() {
        let mut sim = harness(vec!["a", "b", "c"]);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().counter("ok"), 3);
        assert_eq!(sim.stats().counter("worker.jobs_done"), 3);
        // Serial 10 ms jobs: the last response lands no earlier than 30 ms.
        assert!(sim.now() >= SimTime::from_millis(30));
    }

    #[test]
    fn failed_jobs_get_failure_replies() {
        let mut sim = harness(vec!["a", "bad", "c"]);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().counter("ok"), 2);
        assert_eq!(sim.stats().counter("failed"), 1);
    }

    #[test]
    fn cost_weighted_reports_reflect_service_time_not_count() {
        // Footnote 2: load "optionally weighted by the expected cost of
        // distilling each item". Two stubs with identical queues, one
        // counting items and one weighting by cost, report differently.
        let mk = |unit: Option<Duration>| {
            let mut sim: Sim<SnsMsg, IdealNetwork> =
                Sim::new(SimConfig::default(), IdealNetwork::default());
            let n = sim.add_node(NodeSpec::new(1, "dedicated"));
            let g = sim.create_group();
            let mg = sim.create_group();
            let cfg = WorkerStubConfig {
                beacon_group: g,
                monitor_group: mg,
                report_period: SnsConfig::default().report_period,
                cost_weight_unit: unit,
            };
            let stub = sim.spawn(n, Box::new(WorkerStub::new(Box::new(Echo), cfg)), "w");
            // Enqueue 4 jobs (each 10 ms of service) without running.
            for i in 0..4 {
                let job = Arc::new(Job {
                    id: i,
                    class: "echo".into(),
                    op: "echo".into(),
                    input: Blob::payload(1000, "x"),
                    profile: None,
                    reply_to: ComponentId::EXTERNAL,
                    sampled: true,
                });
                sim.inject(stub, SnsMsg::WorkRequest(job));
            }
            sim.run_until(SimTime::from_millis(1));
            sim
        };
        // Counting: 4 items. Weighted by 5 ms units: 4 jobs x 10 ms
        // service = 30 ms waiting + 10 in service => 8 units.
        // (We can't reach the stub directly; the behaviour is covered by
        // qlen() above — construct stubs directly for the arithmetic.)
        let _ = mk(None);
        let mut counting = WorkerStub::new(
            Box::new(Echo),
            WorkerStubConfig {
                beacon_group: GroupId(0),
                monitor_group: GroupId(1),
                report_period: Duration::from_millis(500),
                cost_weight_unit: None,
            },
        );
        let mut weighted = WorkerStub::new(
            Box::new(Echo),
            WorkerStubConfig {
                beacon_group: GroupId(0),
                monitor_group: GroupId(1),
                report_period: Duration::from_millis(500),
                cost_weight_unit: Some(Duration::from_millis(5)),
            },
        );
        for i in 0..4 {
            let job = Arc::new(Job {
                id: i,
                class: "echo".into(),
                op: "echo".into(),
                input: Blob::payload(1000, "x"),
                profile: None,
                reply_to: ComponentId::EXTERNAL,
                sampled: true,
            });
            counting
                .queue
                .push_back((job.clone(), Duration::from_millis(10), SimTime::ZERO));
            weighted
                .queue
                .push_back((job, Duration::from_millis(10), SimTime::ZERO));
        }
        assert_eq!(counting.qlen(), 4, "item count");
        assert_eq!(weighted.qlen(), 8, "40 ms of work in 5 ms units");
    }

    #[test]
    fn poison_input_crashes_worker_without_reply() {
        let mut sim = harness(vec!["a", "poison", "c"]);
        sim.run_until(SimTime::from_secs(1));
        // First job succeeded, poison killed the worker, third never ran.
        assert_eq!(sim.stats().counter("ok"), 1);
        assert_eq!(sim.stats().counter("worker.crashes"), 1);
        assert!(sim.components_of_kind("worker").is_empty());
    }
}
