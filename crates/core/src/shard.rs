//! Sharded dispatch: N independent [`DispatchPlane`]s behind per-shard
//! locks, so a hot submit path scales with submitters instead of
//! serializing on one global mutex.
//!
//! The paper's incremental-scalability claim (§2) is about the *data
//! path*: adding nodes must add throughput. MSCS-style designs keep
//! membership and policy centralized while partitioning data-path
//! state; this type is that split for the SNS dispatch side. Policy
//! (spawning, membership, beacon contents) stays in the single
//! [`crate::control::ControlPlane`] behind its own lock; the dispatch
//! state — hint cache, lottery, outstanding-job tracking — is
//! replicated into `N` shards, each with its own lock and RNG. A
//! submitter round-robins across shards, so concurrent submits contend
//! only 1/N of the time, and beacons are *broadcast*: every shard
//! ingests the same hint snapshot, which is exactly the paper's
//! tolerate-staleness discipline (§3.1.8) — shards are just additional
//! front-end stubs that happen to live in one process.
//!
//! Job-id spaces are strided ([`DispatchPlane::set_job_id_space`]):
//! shard *i* of *n* issues ids `i+1, i+1+n, i+1+2n, …`, so ids remain
//! globally unique and `(id - 1) % n` ([`ShardedDispatch::shard_of`])
//! routes a response back to its owning shard without any shared map.
//! With `n = 1` the id sequence `1, 2, 3, …` is identical to an
//! unsharded plane — the simulator keeps its byte-stable streams.
//!
//! Both backends can drive this type: the threaded runtime wraps it in
//! `Arc` and locks shards from submitter and worker threads; a
//! single-threaded (simulator) driver uses it the same way, just
//! without contention. The `X` type parameter lets a driver hang its
//! own per-shard state (reply channels, deadlines, counters) off the
//! same lock so one acquisition covers both.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use sns_sim::rng::Pcg32;

use crate::control::{DispatchEffect, DispatchPlane};
use crate::msg::BeaconData;
use crate::trace::Sampling;
use crate::SnsConfig;

/// One shard: a [`DispatchPlane`] with its own RNG and driver-specific
/// extension state, all guarded by a single per-shard lock.
pub struct DispatchShard<X> {
    /// The shard's dispatch decision machine.
    pub plane: DispatchPlane,
    /// The shard's lottery RNG (seeded per shard; decisions stay
    /// deterministic per shard, not across interleavings).
    pub rng: Pcg32,
    /// Driver-owned state living under the same lock (e.g. reply
    /// channels and deadlines in the threaded runtime).
    pub ext: X,
}

/// `N` [`DispatchShard`]s with round-robin placement of new dispatches
/// and id-based routing of responses. See the module docs for the
/// topology and the lock-order contract.
pub struct ShardedDispatch<X> {
    shards: Vec<Mutex<DispatchShard<X>>>,
    cursor: AtomicUsize,
    poisoned: AtomicU64,
}

impl<X> ShardedDispatch<X> {
    /// Builds `count` shards (at least 1). Shard RNGs derive from
    /// `seed` with a per-shard offset; `ext` builds each shard's
    /// driver extension. `tracing` arms span emission on every shard;
    /// `sampling` installs the same head-sampling policy on each (the
    /// decision keys on globally-unique job ids, so the sampled set is
    /// independent of which shard issued an id).
    pub fn new(
        cfg: &SnsConfig,
        count: usize,
        seed: u64,
        tracing: bool,
        sampling: Sampling,
        mut ext: impl FnMut(usize) -> X,
    ) -> Self {
        let count = count.max(1);
        let shards = (0..count)
            .map(|i| {
                let mut plane = DispatchPlane::new(cfg.clone());
                plane.set_job_id_space(i as u64 + 1, count as u64);
                plane.set_tracing(tracing);
                plane.set_sampling(sampling);
                Mutex::new(DispatchShard {
                    plane,
                    rng: Pcg32::new(
                        seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64)),
                    ),
                    ext: ext(i),
                })
            })
            .collect();
        ShardedDispatch {
            shards,
            cursor: AtomicUsize::new(0),
            poisoned: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that issued `job_id` (inverse of the id striding).
    pub fn shard_of(&self, job_id: u64) -> usize {
        ((job_id.max(1) - 1) % self.shards.len() as u64) as usize
    }

    /// Round-robin placement for a new dispatch: returns the next shard
    /// index. Lock-free (one relaxed atomic increment).
    pub fn pick(&self) -> usize {
        self.cursor.fetch_add(1, Ordering::Relaxed) % self.shards.len()
    }

    /// Locks shard `index`, recovering (and counting) poisoned locks —
    /// shard state is monotonic maps and counters that tolerate a
    /// panicked writer's partial update.
    pub fn lock(&self, index: usize) -> MutexGuard<'_, DispatchShard<X>> {
        match self.shards[index].lock() {
            Ok(g) => g,
            Err(e) => {
                self.poisoned.fetch_add(1, Ordering::Relaxed);
                e.into_inner()
            }
        }
    }

    /// Locks the shard owning `job_id` (response / settlement path).
    pub fn lock_for(&self, job_id: u64) -> (usize, MutexGuard<'_, DispatchShard<X>>) {
        let i = self.shard_of(job_id);
        (i, self.lock(i))
    }

    /// Broadcasts a beacon: every shard ingests the hint snapshot and
    /// flushes its pending (worker-less) dispatches. `apply` receives
    /// each shard — still locked — together with the flush effects, so
    /// a driver can deliver jobs and update its extension state under
    /// the same acquisition. Locks are taken one shard at a time (never
    /// two shards at once).
    pub fn broadcast_beacon(
        &self,
        b: &BeaconData,
        mut apply: impl FnMut(usize, &mut DispatchShard<X>, Vec<DispatchEffect>),
    ) {
        for i in 0..self.shards.len() {
            let mut shard = self.lock(i);
            let mut out = Vec::new();
            {
                let DispatchShard { plane, rng, .. } = &mut *shard;
                plane.on_beacon(b);
                plane.flush_pending(rng, &mut out);
            }
            apply(i, &mut shard, out);
        }
    }

    /// Visits every shard in index order (locking one at a time) —
    /// counter rollups, deadline sweeps, shutdown clears.
    pub fn for_each(&self, mut f: impl FnMut(usize, &mut DispatchShard<X>)) {
        for i in 0..self.shards.len() {
            let mut shard = self.lock(i);
            f(i, &mut shard);
        }
    }

    /// Total outstanding dispatches across all shards.
    pub fn outstanding(&self) -> usize {
        let mut n = 0;
        self.for_each(|_, s| n += s.plane.outstanding_count());
        n
    }

    /// Times a poisoned shard lock was recovered.
    pub fn poison_recoveries(&self) -> u64 {
        self.poisoned.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::WorkerHint;
    use crate::{Blob, WorkerClass};
    use sns_sim::time::SimTime;
    use sns_sim::{ComponentId, NodeId};
    use std::collections::BTreeMap;

    fn beacon(workers: &[(u64, f64)]) -> BeaconData {
        let mut hints = BTreeMap::new();
        hints.insert(
            WorkerClass::new("w"),
            workers
                .iter()
                .map(|&(id, q)| WorkerHint {
                    worker: ComponentId(id),
                    node: NodeId(0),
                    est_qlen: q,
                    overflow: false,
                })
                .collect(),
        );
        BeaconData {
            manager: ComponentId(99),
            incarnation: 1,
            hints,
            at: SimTime::from_secs(1),
        }
    }

    fn dispatch_one(sd: &ShardedDispatch<()>, idx: usize) -> u64 {
        let mut shard = sd.lock(idx);
        let DispatchShard { plane, rng, .. } = &mut *shard;
        plane.dispatch(
            rng,
            SimTime::from_secs(2),
            ComponentId::EXTERNAL,
            WorkerClass::new("w"),
            "op",
            Blob::payload(10, "x"),
            None,
            crate::trace::SpanCtx::root(),
            &mut Vec::new(),
        )
    }

    #[test]
    fn strided_ids_are_disjoint_and_route_back() {
        let sd = ShardedDispatch::new(&SnsConfig::default(), 4, 7, false, Sampling::ALL, |_| ());
        sd.broadcast_beacon(&beacon(&[(5, 0.0)]), |_, _, _| {});
        let mut seen = Vec::new();
        for round in 0..3 {
            for _ in 0..sd.count() {
                let idx = sd.pick();
                let id = dispatch_one(&sd, idx);
                assert_eq!(sd.shard_of(id), idx, "id {id} routes to its shard");
                seen.push(id);
                let _ = round;
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 12, "strided ids never collide");
    }

    #[test]
    fn single_shard_matches_unsharded_id_sequence() {
        let sd = ShardedDispatch::new(&SnsConfig::default(), 1, 7, false, Sampling::ALL, |_| ());
        sd.broadcast_beacon(&beacon(&[(5, 0.0)]), |_, _, _| {});
        let ids: Vec<u64> = (0..3).map(|_| dispatch_one(&sd, sd.pick())).collect();
        assert_eq!(ids, vec![1, 2, 3], "n = 1 degenerates to the old space");
    }

    #[test]
    fn broadcast_reaches_every_shard_and_flushes_pending() {
        let sd = ShardedDispatch::new(&SnsConfig::default(), 3, 7, false, Sampling::ALL, |_| ());
        // Dispatch with no hints: stays pending in each shard.
        for i in 0..3 {
            dispatch_one(&sd, i);
        }
        assert_eq!(sd.outstanding(), 3);
        let mut sends = 0;
        sd.broadcast_beacon(&beacon(&[(5, 0.0)]), |_, _, out| {
            sends += out
                .iter()
                .filter(|e| matches!(e, DispatchEffect::SendJob { .. }))
                .count();
        });
        assert_eq!(sends, 3, "every shard flushed its pending dispatch");
        assert_eq!(sd.poison_recoveries(), 0);
    }
}
