//! # sns-san — system-area network model
//!
//! A [`Network`] implementation modelling the paper's cluster interconnect
//! (§2.1, §4.6): switched Ethernet (or Myrinet-class) links with per-NIC
//! bandwidth, per-message processing overhead (the TCP setup/kernel cost
//! that limits a front end to ~70 requests/s on 100 Mb/s Ethernet, §4.6
//! footnote 5), a shared switch fabric, propagation latency, and the two
//! traffic classes the paper distinguishes:
//!
//! * **Reliable** (TCP-like) traffic is flow-controlled: it queues behind
//!   busy links but is never dropped.
//! * **Datagram** (IP-multicast-like) traffic is dropped when a link's
//!   queue exceeds its tolerance — reproducing the §4.6 observation that
//!   a saturated 10 Mb/s SAN drops the manager's beacons and cripples
//!   load balancing.
//!
//! Links are modelled as virtual-finish-time servers: a message occupies
//! its sender's egress NIC, the switch fabric, and the receiver's ingress
//! NIC in sequence, each for `overhead + size/bandwidth`.
//!
//! The model also supports network partitions (for the fault-tolerance
//! experiments) and per-node NIC overrides (e.g. a 10 Mb/s edge segment in
//! front of a 100 Mb/s interior, as in the TranSend deployment).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::time::Duration;

use sns_sim::network::{Delivery, Endpoint, Network, TrafficClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::NodeId;

/// Parameters of a single transmission resource (a NIC direction or the
/// switch fabric).
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Fixed per-message processing cost (kernel/TCP overhead).
    pub per_msg_overhead: Duration,
    /// Datagrams are dropped if the queue ahead of them exceeds this.
    pub max_queue_delay: Duration,
}

impl LinkParams {
    /// Convenience constructor from megabits per second.
    pub fn mbps(mbps: f64) -> Self {
        LinkParams {
            bandwidth_bps: mbps * 1e6,
            per_msg_overhead: Duration::from_micros(50),
            max_queue_delay: Duration::from_millis(50),
        }
    }

    /// Sets the fixed per-message overhead.
    pub fn with_overhead(mut self, d: Duration) -> Self {
        self.per_msg_overhead = d;
        self
    }

    /// Sets the datagram drop threshold.
    pub fn with_max_queue_delay(mut self, d: Duration) -> Self {
        self.max_queue_delay = d;
        self
    }

    /// Transmission time for `size` bytes (overhead + serialisation).
    pub fn tx_time(&self, size: u64) -> Duration {
        let secs = (size as f64 * 8.0) / self.bandwidth_bps;
        self.per_msg_overhead + Duration::from_secs_f64(secs)
    }
}

/// Fidelity mode of the SAN model (Narses-style hybrid).
///
/// `Datagram` is the default exact model: every message walks the
/// egress → fabric → ingress busy pointers, so queueing, serialisation
/// order and tail drops are all per-message exact. `Flow` aggregates
/// steady traffic into per-link epoch utilisations and prices each message
/// with a closed-form delay instead of advancing the busy pointers — the
/// fidelity the paper's steady-state experiments need at a fraction of the
/// cost. Links whose utilisation crosses the saturation threshold fall
/// back to the exact path (preserving the §4.6 datagram tail-drop
/// behaviour), and blackout/partition windows are always exact in both
/// modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanMode {
    /// Per-message exact queueing (the default).
    #[default]
    Datagram,
    /// Rate-based flow aggregation with exact fallback at saturation.
    Flow,
}

/// Whole-SAN configuration.
#[derive(Debug, Clone)]
pub struct SanConfig {
    /// Default NIC parameters applied to every registered node.
    pub default_nic: LinkParams,
    /// Shared switch fabric (aggregate capacity). Use a very large
    /// bandwidth to model an ideal non-blocking switch.
    pub fabric: LinkParams,
    /// One-way propagation latency added to every off-node message.
    pub latency: Duration,
    /// Latency for messages between components on the same node.
    pub loopback_latency: Duration,
    /// Fidelity mode; see [`SanMode`].
    pub mode: SanMode,
    /// Averaging window for flow-mode per-link utilisation accumulators.
    pub flow_epoch: Duration,
    /// Utilisation at which a flow-mode link switches back to the exact
    /// per-message path (and datagram tail drops can resume).
    pub flow_saturation: f64,
}

impl SanConfig {
    /// A switched 100 Mb/s Ethernet SAN, the paper's scalability testbed
    /// (§4). Per-link capacity is 100 Mb/s; the switch is non-blocking for
    /// clusters of the sizes studied.
    pub fn switched_100mbps() -> Self {
        SanConfig {
            default_nic: LinkParams::mbps(100.0),
            fabric: LinkParams::mbps(100.0 * 64.0),
            latency: Duration::from_micros(150),
            loopback_latency: Duration::from_micros(30),
            mode: SanMode::Datagram,
            flow_epoch: Duration::from_millis(100),
            flow_saturation: 0.9,
        }
    }

    /// The original 10 Mb/s shared segment (§3.1.1, §4.6 saturation
    /// experiment). Modelled as a *shared* fabric of 10 Mb/s: every
    /// off-node byte crosses it.
    pub fn shared_10mbps() -> Self {
        SanConfig {
            default_nic: LinkParams::mbps(10.0),
            fabric: LinkParams::mbps(10.0),
            latency: Duration::from_micros(300),
            loopback_latency: Duration::from_micros(30),
            mode: SanMode::Datagram,
            flow_epoch: Duration::from_millis(100),
            flow_saturation: 0.9,
        }
    }

    /// A Myrinet-class SAN (§4.6: 32 MB/s all-pairs over 40 nodes).
    pub fn myrinet() -> Self {
        SanConfig {
            default_nic: LinkParams {
                bandwidth_bps: 640e6,
                per_msg_overhead: Duration::from_micros(10),
                max_queue_delay: Duration::from_millis(50),
            },
            fabric: LinkParams::mbps(640.0 * 64.0),
            latency: Duration::from_micros(20),
            loopback_latency: Duration::from_micros(10),
            mode: SanMode::Datagram,
            flow_epoch: Duration::from_millis(100),
            flow_saturation: 0.9,
        }
    }

    /// Selects the fidelity mode; chains like the `RtConfig` builder:
    ///
    /// ```
    /// use sns_san::{SanConfig, SanMode};
    ///
    /// let cfg = SanConfig::switched_100mbps().with_mode(SanMode::Flow);
    /// assert_eq!(cfg.mode, SanMode::Flow);
    /// ```
    pub fn with_mode(mut self, v: SanMode) -> Self {
        self.mode = v;
        self
    }

    /// Sets the flow-mode utilisation averaging window.
    pub fn with_flow_epoch(mut self, v: Duration) -> Self {
        self.flow_epoch = v;
        self
    }

    /// Sets the flow→exact switch-over utilisation threshold.
    pub fn with_flow_saturation(mut self, v: f64) -> Self {
        assert!(
            v > 0.0 && v <= 1.0,
            "saturation threshold must be in (0, 1]"
        );
        self.flow_saturation = v;
        self
    }
}

/// Per-link-direction epoch utilisation accumulator (flow mode).
#[derive(Debug, Clone, Default)]
struct FlowAcc {
    epoch_start: SimTime,
    /// Seconds of link occupancy accumulated this epoch.
    busy: f64,
}

impl FlowAcc {
    /// Rolls the epoch if `now` left it, adds `busy_secs` of occupancy and
    /// returns the running utilisation of the current epoch.
    fn add(&mut self, now: SimTime, epoch: Duration, busy_secs: f64) -> f64 {
        let ep_ns = sns_sim::time::dur_nanos(epoch).max(1);
        let aligned = SimTime::from_nanos((now.as_nanos() / ep_ns) * ep_ns);
        if aligned > self.epoch_start {
            self.epoch_start = aligned;
            self.busy = 0.0;
        }
        self.busy += busy_secs;
        self.busy / epoch.as_secs_f64()
    }
}

/// Queueing inflation for a flow at utilisation `rho`: an M/M/1-shaped
/// `rho/(1-rho)` wait in units of the transmission time, clamped so the
/// closed form stays finite at the switch-over boundary.
fn qfactor(rho: f64) -> f64 {
    let r = rho.clamp(0.0, 0.95);
    r / (1.0 - r)
}

#[derive(Debug, Clone)]
struct Nic {
    params: LinkParams,
    egress_busy: SimTime,
    ingress_busy: SimTime,
    egress_flow: FlowAcc,
    ingress_flow: FlowAcc,
}

impl Nic {
    fn new(params: LinkParams) -> Self {
        Nic {
            params,
            egress_busy: SimTime::ZERO,
            ingress_busy: SimTime::ZERO,
            egress_flow: FlowAcc::default(),
            ingress_flow: FlowAcc::default(),
        }
    }
}

/// Counters the SAN keeps about itself (read by experiments).
#[derive(Debug, Clone, Default)]
pub struct SanStats {
    /// Datagrams dropped at saturated links.
    pub datagrams_dropped: u64,
    /// Messages dropped because of an active partition.
    pub partition_drops: u64,
    /// Datagrams dropped by a forced blackout (burst-loss injection).
    pub blackout_drops: u64,
    /// Total messages carried (delivered).
    pub delivered: u64,
    /// Total payload bytes carried off-node.
    pub bytes_carried: u64,
    /// Flow-mode messages priced by the closed-form fast path.
    pub flow_fast_path: u64,
    /// Flow-mode messages routed through the exact path because a link
    /// crossed the saturation threshold.
    pub flow_fallbacks: u64,
}

/// The system-area network model. Implements [`Network`] for the engine.
#[derive(Debug)]
pub struct San {
    cfg: SanConfig,
    nics: BTreeMap<NodeId, Nic>,
    fabric_busy: SimTime,
    fabric_flow: FlowAcc,
    /// Partition group per node; `None` means no partition is active.
    partition_of: Option<BTreeMap<NodeId, u32>>,
    /// While set, every off-node datagram is dropped (models the §4.6
    /// saturation bursts that eat the manager's beacons). Loopback and
    /// reliable traffic are unaffected.
    datagram_blackout: bool,
    stats: SanStats,
}

impl San {
    /// Creates a SAN with the given configuration.
    pub fn new(cfg: SanConfig) -> Self {
        San {
            cfg,
            nics: BTreeMap::new(),
            fabric_busy: SimTime::ZERO,
            fabric_flow: FlowAcc::default(),
            partition_of: None,
            datagram_blackout: false,
            stats: SanStats::default(),
        }
    }

    /// Overrides one node's NIC parameters (e.g. a slower edge segment).
    pub fn set_nic(&mut self, node: NodeId, params: LinkParams) {
        let default = self.cfg.default_nic.clone();
        let nic = self.nics.entry(node).or_insert_with(|| Nic::new(default));
        nic.params = params;
    }

    /// Current NIC parameters for a node (the configured default if the
    /// node was never overridden). Lets injectors degrade and later
    /// restore a link.
    pub fn nic_params(&self, node: NodeId) -> LinkParams {
        self.nics
            .get(&node)
            .map(|n| n.params.clone())
            .unwrap_or_else(|| self.cfg.default_nic.clone())
    }

    /// Forces (or lifts) a total off-node datagram blackout: while on,
    /// every beacon/report datagram crossing the wire is dropped,
    /// reproducing the §4.6 multicast loss bursts under SAN saturation.
    pub fn set_datagram_blackout(&mut self, on: bool) {
        self.datagram_blackout = on;
    }

    /// Whether a datagram blackout is currently forced.
    pub fn datagram_blackout(&self) -> bool {
        self.datagram_blackout
    }

    /// Splits the cluster into isolated groups; traffic between groups is
    /// dropped until [`San::heal`].
    pub fn partition(&mut self, groups: &[Vec<NodeId>]) {
        let mut map = BTreeMap::new();
        for (gi, group) in groups.iter().enumerate() {
            for &n in group {
                map.insert(n, gi as u32);
            }
        }
        self.partition_of = Some(map);
    }

    /// Removes any active partition.
    pub fn heal(&mut self) {
        self.partition_of = None;
    }

    /// SAN-internal counters.
    pub fn stats(&self) -> &SanStats {
        &self.stats
    }

    /// Backlog (queueing delay ahead of a new message) on a node's egress
    /// link at `now`; a saturation indicator.
    pub fn egress_backlog(&self, node: NodeId, now: SimTime) -> Duration {
        self.nics
            .get(&node)
            .map(|n| n.egress_busy.since(now))
            .unwrap_or(Duration::ZERO)
    }

    fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        match &self.partition_of {
            None => false,
            Some(map) => {
                // Nodes absent from the map are unreachable from everyone.
                match (map.get(&a), map.get(&b)) {
                    (Some(x), Some(y)) => x != y,
                    _ => true,
                }
            }
        }
    }

    fn nic_mut(&mut self, node: NodeId) -> &mut Nic {
        let default = self.cfg.default_nic.clone();
        self.nics.entry(node).or_insert_with(|| Nic::new(default))
    }

    /// Serialises a message through the sender's egress NIC. Returns the
    /// egress completion time, or `None` for a dropped datagram.
    fn egress(
        &mut self,
        now: SimTime,
        node: NodeId,
        size: u64,
        class: TrafficClass,
    ) -> Option<SimTime> {
        let nic = self.nic_mut(node);
        let start = nic.egress_busy.max(now);
        if class == TrafficClass::Datagram && start.since(now) > nic.params.max_queue_delay {
            self.stats.datagrams_dropped += 1;
            return None;
        }
        let fin = start + nic.params.tx_time(size);
        nic.egress_busy = fin;
        Some(fin)
    }

    /// Crosses the shared switch fabric. Returns completion, or `None` for
    /// a dropped datagram.
    fn fabric(&mut self, at: SimTime, size: u64, class: TrafficClass) -> Option<SimTime> {
        let start = self.fabric_busy.max(at);
        if class == TrafficClass::Datagram && start.since(at) > self.cfg.fabric.max_queue_delay {
            self.stats.datagrams_dropped += 1;
            return None;
        }
        let fin = start + self.cfg.fabric.tx_time(size);
        self.fabric_busy = fin;
        Some(fin)
    }

    /// Receives through a node's ingress NIC. Returns delivery time, or
    /// `None` for a dropped datagram.
    fn ingress(
        &mut self,
        at: SimTime,
        node: NodeId,
        size: u64,
        class: TrafficClass,
    ) -> Option<SimTime> {
        let nic = self.nic_mut(node);
        let start = nic.ingress_busy.max(at);
        if class == TrafficClass::Datagram && start.since(at) > nic.params.max_queue_delay {
            self.stats.datagrams_dropped += 1;
            return None;
        }
        let fin = start + nic.params.tx_time(size);
        nic.ingress_busy = fin;
        Some(fin)
    }

    /// Prices one off-node message with the flow model. Returns `None`
    /// when any involved link crossed the saturation threshold — the
    /// caller must then fall back to the exact per-message path (which
    /// restores tail-drop fidelity). The utilisation accumulators are
    /// charged either way: they measure *offered* load.
    fn flow_unicast(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        size: u64,
    ) -> Option<Duration> {
        let epoch = self.cfg.flow_epoch;
        let sat = self.cfg.flow_saturation;
        let (e_tx, rho_e) = {
            let nic = self.nic_mut(from);
            let tx = nic.params.tx_time(size);
            let rho = nic.egress_flow.add(now, epoch, tx.as_secs_f64());
            (tx, rho)
        };
        let f_tx = self.cfg.fabric.tx_time(size);
        let rho_f = self.fabric_flow.add(now, epoch, f_tx.as_secs_f64());
        let (i_tx, rho_i) = {
            let nic = self.nic_mut(to);
            let tx = nic.params.tx_time(size);
            let rho = nic.ingress_flow.add(now, epoch, tx.as_secs_f64());
            (tx, rho)
        };
        if rho_e >= sat || rho_f >= sat || rho_i >= sat {
            return None;
        }
        Some(
            e_tx.mul_f64(1.0 + qfactor(rho_e))
                + f_tx.mul_f64(1.0 + qfactor(rho_f))
                + i_tx.mul_f64(1.0 + qfactor(rho_i))
                + self.cfg.latency,
        )
    }

    /// Aggregate flow accounting: registers `msgs` messages totalling
    /// `bytes` between two nodes as one offer against the current epoch's
    /// per-link utilisations, and prices the whole batch with the closed
    /// form. This is the flow-level *replay* entry point: one call per
    /// (epoch, node pair) stands in for thousands of per-request
    /// `unicast` events, which is where the ≥10× replay speedup comes
    /// from. Works in either [`SanMode`]; partitions and datagram
    /// blackouts keep their exact semantics (everything drops).
    pub fn offer_flow(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        msgs: u64,
        class: TrafficClass,
    ) -> FlowReport {
        if msgs == 0 {
            return FlowReport {
                delay: Duration::ZERO,
                delivered: 0,
                dropped: 0,
            };
        }
        if from == to {
            self.stats.delivered += msgs;
            return FlowReport {
                delay: self.cfg.loopback_latency,
                delivered: msgs,
                dropped: 0,
            };
        }
        if self.partitioned(from, to) {
            self.stats.partition_drops += msgs;
            return FlowReport {
                delay: Duration::ZERO,
                delivered: 0,
                dropped: msgs,
            };
        }
        if self.datagram_blackout && class == TrafficClass::Datagram {
            self.stats.blackout_drops += msgs;
            return FlowReport {
                delay: Duration::ZERO,
                delivered: 0,
                dropped: msgs,
            };
        }
        let epoch = self.cfg.flow_epoch;
        let occupancy = |p: &LinkParams| {
            msgs as f64 * p.per_msg_overhead.as_secs_f64() + (bytes as f64 * 8.0) / p.bandwidth_bps
        };
        let (e_busy, rho_e) = {
            let nic = self.nic_mut(from);
            let busy = occupancy(&nic.params);
            (busy, nic.egress_flow.add(now, epoch, busy))
        };
        let f_busy = occupancy(&self.cfg.fabric.clone());
        let rho_f = self.fabric_flow.add(now, epoch, f_busy);
        let (i_busy, rho_i) = {
            let nic = self.nic_mut(to);
            let busy = occupancy(&nic.params);
            (busy, nic.ingress_flow.add(now, epoch, busy))
        };
        let rho_max = rho_e.max(rho_f).max(rho_i);
        let mean_tx = |busy: f64, rho: f64| {
            Duration::from_secs_f64(busy / msgs as f64).mul_f64(1.0 + qfactor(rho))
        };
        let delay = mean_tx(e_busy, rho_e)
            + mean_tx(f_busy, rho_f)
            + mean_tx(i_busy, rho_i)
            + self.cfg.latency;
        // Offered load beyond link capacity cannot be carried: datagrams
        // in the excess fraction are dropped (the §4.6 tail-drop shape);
        // reliable traffic is flow-controlled and all arrives, just late.
        let dropped = if class == TrafficClass::Datagram && rho_max > 1.0 {
            ((1.0 - 1.0 / rho_max) * msgs as f64).round() as u64
        } else {
            0
        };
        let delivered = msgs - dropped;
        self.stats.datagrams_dropped += dropped;
        self.stats.delivered += delivered;
        self.stats.flow_fast_path += delivered;
        self.stats.bytes_carried += (bytes as f64 * delivered as f64 / msgs as f64) as u64;
        FlowReport {
            delay,
            delivered,
            dropped,
        }
    }
}

/// What became of one aggregated [`San::offer_flow`] batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowReport {
    /// Representative per-message delivery delay (propagation + epoch-
    /// utilisation-inflated transmission on every stage).
    pub delay: Duration,
    /// Messages carried.
    pub delivered: u64,
    /// Messages dropped (saturation excess, partition, or blackout).
    pub dropped: u64,
}

impl Network for San {
    fn unicast(
        &mut self,
        now: SimTime,
        _rng: &mut Pcg32,
        from: Endpoint,
        to: Endpoint,
        size: u64,
        class: TrafficClass,
    ) -> Delivery {
        if from.node == to.node {
            self.stats.delivered += 1;
            return Delivery::At(now + self.cfg.loopback_latency);
        }
        if self.partitioned(from.node, to.node) {
            self.stats.partition_drops += 1;
            return Delivery::Dropped;
        }
        if self.datagram_blackout && class == TrafficClass::Datagram {
            self.stats.blackout_drops += 1;
            return Delivery::Dropped;
        }
        if self.cfg.mode == SanMode::Flow {
            if let Some(delay) = self.flow_unicast(now, from.node, to.node, size) {
                self.stats.flow_fast_path += 1;
                self.stats.delivered += 1;
                self.stats.bytes_carried += size;
                return Delivery::At(now + delay);
            }
            // A link crossed the saturation threshold: fall through to
            // the exact busy-pointer path so queueing and tail drops are
            // per-message faithful where they matter.
            self.stats.flow_fallbacks += 1;
        }
        let Some(t1) = self.egress(now, from.node, size, class) else {
            return Delivery::Dropped;
        };
        let Some(t2) = self.fabric(t1, size, class) else {
            return Delivery::Dropped;
        };
        let Some(t3) = self.ingress(t2, to.node, size, class) else {
            return Delivery::Dropped;
        };
        self.stats.delivered += 1;
        self.stats.bytes_carried += size;
        Delivery::At(t3 + self.cfg.latency)
    }

    fn multicast(
        &mut self,
        now: SimTime,
        _rng: &mut Pcg32,
        from: Endpoint,
        members: &[Endpoint],
        size: u64,
        class: TrafficClass,
    ) -> Vec<Delivery> {
        if self.cfg.mode == SanMode::Flow {
            return self.multicast_flow(now, from, members, size, class);
        }
        self.multicast_exact(now, from, members, size, class)
    }

    fn register_node(&mut self, node: NodeId) {
        let default = self.cfg.default_nic.clone();
        self.nics.entry(node).or_insert_with(|| Nic::new(default));
    }
}

impl San {
    /// The exact per-message multicast path: the sender transmits once;
    /// the switch replicates to receivers; each receiving *node* takes
    /// exactly one copy off the wire, no matter how many member components
    /// it hosts. Same-node members receive via loopback even if egress
    /// drops.
    fn multicast_exact(
        &mut self,
        now: SimTime,
        from: Endpoint,
        members: &[Endpoint],
        size: u64,
        class: TrafficClass,
    ) -> Vec<Delivery> {
        let egress_fin = self.egress(now, from.node, size, class);
        let fabric_fin = egress_fin.and_then(|t| self.fabric(t, size, class));
        self.stats.bytes_carried += size;
        // Per-node delivery decision, computed once.
        let mut per_node: BTreeMap<NodeId, Delivery> = BTreeMap::new();
        for m in members {
            if per_node.contains_key(&m.node) {
                continue;
            }
            let decision = if m.node == from.node {
                Delivery::At(now + self.cfg.loopback_latency)
            } else if self.partitioned(from.node, m.node) {
                self.stats.partition_drops += 1;
                Delivery::Dropped
            } else if self.datagram_blackout && class == TrafficClass::Datagram {
                self.stats.blackout_drops += 1;
                Delivery::Dropped
            } else if let Some(at_fabric) = fabric_fin {
                match self.ingress(at_fabric, m.node, size, class) {
                    Some(t) => Delivery::At(t + self.cfg.latency),
                    None => Delivery::Dropped,
                }
            } else {
                Delivery::Dropped
            };
            per_node.insert(m.node, decision);
        }
        members
            .iter()
            .map(|m| {
                let d = per_node[&m.node];
                if matches!(d, Delivery::At(_)) {
                    self.stats.delivered += 1;
                }
                d
            })
            .collect()
    }

    /// Flow-priced multicast: the sender's egress and the fabric are
    /// charged once for the single wire copy; each receiving node's
    /// ingress is charged once. Any stage at or past the saturation
    /// threshold routes the whole multicast (sender side) or that member
    /// (receiver side) through the exact path so tail-drop bursts keep
    /// their per-message shape. Loopback, partition and blackout
    /// decisions are identical to [`San::multicast_exact`].
    fn multicast_flow(
        &mut self,
        now: SimTime,
        from: Endpoint,
        members: &[Endpoint],
        size: u64,
        class: TrafficClass,
    ) -> Vec<Delivery> {
        let epoch = self.cfg.flow_epoch;
        let sat = self.cfg.flow_saturation;
        let (e_tx, rho_e) = {
            let nic = self.nic_mut(from.node);
            let tx = nic.params.tx_time(size);
            let rho = nic.egress_flow.add(now, epoch, tx.as_secs_f64());
            (tx, rho)
        };
        let f_tx = self.cfg.fabric.tx_time(size);
        let rho_f = self.fabric_flow.add(now, epoch, f_tx.as_secs_f64());
        if rho_e >= sat || rho_f >= sat {
            self.stats.flow_fallbacks += 1;
            return self.multicast_exact(now, from, members, size, class);
        }
        let base = e_tx.mul_f64(1.0 + qfactor(rho_e)) + f_tx.mul_f64(1.0 + qfactor(rho_f));
        self.stats.bytes_carried += size;
        let mut per_node: BTreeMap<NodeId, Delivery> = BTreeMap::new();
        for m in members {
            if per_node.contains_key(&m.node) {
                continue;
            }
            let decision = if m.node == from.node {
                Delivery::At(now + self.cfg.loopback_latency)
            } else if self.partitioned(from.node, m.node) {
                self.stats.partition_drops += 1;
                Delivery::Dropped
            } else if self.datagram_blackout && class == TrafficClass::Datagram {
                self.stats.blackout_drops += 1;
                Delivery::Dropped
            } else {
                let (i_tx, rho_i) = {
                    let nic = self.nic_mut(m.node);
                    let tx = nic.params.tx_time(size);
                    let rho = nic.ingress_flow.add(now, epoch, tx.as_secs_f64());
                    (tx, rho)
                };
                if rho_i >= sat {
                    // Saturated receiver: run its ingress exactly so the
                    // datagram tail-drop decision stays per-message.
                    self.stats.flow_fallbacks += 1;
                    match self.ingress(now + base, m.node, size, class) {
                        Some(t) => Delivery::At(t + self.cfg.latency),
                        None => Delivery::Dropped,
                    }
                } else {
                    self.stats.flow_fast_path += 1;
                    Delivery::At(now + base + i_tx.mul_f64(1.0 + qfactor(rho_i)) + self.cfg.latency)
                }
            };
            per_node.insert(m.node, decision);
        }
        members
            .iter()
            .map(|m| {
                let d = per_node[&m.node];
                if matches!(d, Delivery::At(_)) {
                    self.stats.delivered += 1;
                }
                d
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(node: u32, comp: u64) -> Endpoint {
        Endpoint {
            node: NodeId(node),
            comp: sns_sim::ComponentId(comp),
        }
    }

    fn san100() -> (San, Pcg32) {
        let mut s = San::new(SanConfig::switched_100mbps());
        for n in 0..4 {
            s.register_node(NodeId(n));
        }
        (s, Pcg32::new(1))
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let p = LinkParams::mbps(100.0).with_overhead(Duration::ZERO);
        // 12_500_000 bytes = 100 Mbit => 1 s.
        assert_eq!(p.tx_time(12_500_000), Duration::from_secs(1));
    }

    #[test]
    fn unicast_latency_includes_all_stages() {
        let (mut s, mut rng) = san100();
        let d = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            10_000,
            TrafficClass::Reliable,
        );
        let Delivery::At(t) = d else {
            panic!("reliable traffic must not drop")
        };
        // 10 KB at 100 Mb/s = 0.8 ms serialisation per stage (egress +
        // ingress) + fabric (64x faster) + overheads + latency: ~2 ms.
        let ms = t.as_secs_f64() * 1e3;
        assert!(ms > 1.0 && ms < 3.0, "delivery at {ms} ms");
    }

    #[test]
    fn loopback_is_fast_and_unmetered() {
        let (mut s, mut rng) = san100();
        let d = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(0, 2),
            1_000_000_000,
            TrafficClass::Reliable,
        );
        assert_eq!(d, Delivery::At(SimTime::ZERO + Duration::from_micros(30)));
    }

    #[test]
    fn reliable_traffic_queues_but_never_drops() {
        let (mut s, mut rng) = san100();
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            match s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                125_000, // 10 ms serialisation each
                TrafficClass::Reliable,
            ) {
                Delivery::At(t) => {
                    assert!(t > last, "deliveries serialize");
                    last = t;
                }
                Delivery::Dropped => panic!("reliable dropped"),
            }
        }
        assert_eq!(s.stats().datagrams_dropped, 0);
        // 100 x 10 ms ≈ 1 s of backlog built up.
        assert!(last.as_secs_f64() > 0.9);
    }

    #[test]
    fn datagrams_drop_under_saturation() {
        let (mut s, mut rng) = san100();
        // Saturate the egress link with reliable bulk traffic…
        for _ in 0..100 {
            s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                125_000,
                TrafficClass::Reliable,
            );
        }
        // …then a beacon datagram from the same node cannot get out.
        let d = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(2, 3),
            200,
            TrafficClass::Datagram,
        );
        assert_eq!(d, Delivery::Dropped);
        assert!(s.stats().datagrams_dropped >= 1);
    }

    #[test]
    fn idle_datagrams_pass() {
        let (mut s, mut rng) = san100();
        let d = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            200,
            TrafficClass::Datagram,
        );
        assert!(matches!(d, Delivery::At(_)));
    }

    #[test]
    fn multicast_single_egress_transmission() {
        let (mut s, mut rng) = san100();
        let members = [ep(1, 2), ep(2, 3), ep(3, 4)];
        let ds = s.multicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            &members,
            125_000,
            TrafficClass::Datagram,
        );
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| matches!(d, Delivery::At(_))));
        // Sender egress advanced by exactly one transmission (~10 ms), not
        // three.
        let egress = s.nics[&NodeId(0)].egress_busy;
        let ms = egress.as_secs_f64() * 1e3;
        assert!(ms > 9.0 && ms < 12.0, "egress busy until {ms} ms");
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let (mut s, mut rng) = san100();
        s.partition(&[vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]]);
        let blocked = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(2, 2),
            100,
            TrafficClass::Reliable,
        );
        assert_eq!(blocked, Delivery::Dropped);
        let ok = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            100,
            TrafficClass::Reliable,
        );
        assert!(matches!(ok, Delivery::At(_)));
        s.heal();
        let healed = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(2, 2),
            100,
            TrafficClass::Reliable,
        );
        assert!(matches!(healed, Delivery::At(_)));
        assert_eq!(s.stats().partition_drops, 1);
    }

    #[test]
    fn shared_10mbps_saturates_sooner_than_switched_100() {
        let drops = |cfg: SanConfig| {
            let mut s = San::new(cfg);
            let mut rng = Pcg32::new(2);
            for n in 0..4 {
                s.register_node(NodeId(n));
            }
            // Offer ~13 Mb/s of bulk data traffic (beyond a shared 10 Mb/s
            // segment, well within switched 100 Mb/s links), with periodic
            // beacon datagrams interleaved on other nodes.
            let mut dropped = 0u64;
            for i in 0..200 {
                let now = SimTime::from_millis(i * 6);
                s.unicast(
                    now,
                    &mut rng,
                    ep(0, 1),
                    ep(1, 2),
                    10_000,
                    TrafficClass::Reliable,
                );
                if let Delivery::Dropped = s.unicast(
                    now,
                    &mut rng,
                    ep(2, 3),
                    ep(3, 4),
                    200,
                    TrafficClass::Datagram,
                ) {
                    dropped += 1;
                }
            }
            dropped
        };
        let d10 = drops(SanConfig::shared_10mbps());
        let d100 = drops(SanConfig::switched_100mbps());
        assert!(d10 > 0, "10 Mb/s SAN must drop beacons under load");
        assert_eq!(d100, 0, "100 Mb/s SAN must not drop at this load");
    }

    #[test]
    fn blackout_drops_off_node_datagrams_only() {
        let (mut s, mut rng) = san100();
        s.set_datagram_blackout(true);
        assert!(s.datagram_blackout());
        // Off-node datagram: dropped.
        let d = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            200,
            TrafficClass::Datagram,
        );
        assert_eq!(d, Delivery::Dropped);
        // Same-node datagram survives via loopback; reliable traffic is
        // flow-controlled, not lossy, so it still goes through.
        assert!(matches!(
            s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(0, 2),
                200,
                TrafficClass::Datagram
            ),
            Delivery::At(_)
        ));
        assert!(matches!(
            s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                200,
                TrafficClass::Reliable
            ),
            Delivery::At(_)
        ));
        // Multicast members on other nodes are dropped during the burst.
        let ds = s.multicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            &[ep(0, 5), ep(1, 2), ep(2, 3)],
            200,
            TrafficClass::Datagram,
        );
        assert!(matches!(ds[0], Delivery::At(_)), "loopback member passes");
        assert_eq!(ds[1], Delivery::Dropped);
        assert_eq!(ds[2], Delivery::Dropped);
        assert_eq!(s.stats().blackout_drops, 3);
        s.set_datagram_blackout(false);
        assert!(matches!(
            s.unicast(
                SimTime::from_secs(10),
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                200,
                TrafficClass::Datagram
            ),
            Delivery::At(_)
        ));
    }

    #[test]
    fn nic_params_round_trip() {
        let (mut s, _) = san100();
        let before = s.nic_params(NodeId(1));
        assert_eq!(before.bandwidth_bps, 100.0 * 1e6);
        s.set_nic(NodeId(1), LinkParams::mbps(10.0));
        assert_eq!(s.nic_params(NodeId(1)).bandwidth_bps, 10.0 * 1e6);
        s.set_nic(NodeId(1), before);
        assert_eq!(s.nic_params(NodeId(1)).bandwidth_bps, 100.0 * 1e6);
    }

    #[test]
    fn egress_backlog_reports_queue() {
        let (mut s, mut rng) = san100();
        for _ in 0..10 {
            s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                125_000,
                TrafficClass::Reliable,
            );
        }
        let backlog = s.egress_backlog(NodeId(0), SimTime::ZERO);
        assert!(backlog > Duration::from_millis(90));
        assert_eq!(s.egress_backlog(NodeId(3), SimTime::ZERO), Duration::ZERO);
    }

    fn san_flow() -> (San, Pcg32) {
        let mut s = San::new(SanConfig::switched_100mbps().with_mode(SanMode::Flow));
        for n in 0..4 {
            s.register_node(NodeId(n));
        }
        (s, Pcg32::new(1))
    }

    #[test]
    fn flow_unicast_matches_exact_when_unloaded() {
        let (mut exact, mut r1) = san100();
        let (mut flow, mut r2) = san_flow();
        let de = exact.unicast(
            SimTime::ZERO,
            &mut r1,
            ep(0, 1),
            ep(1, 2),
            10_000,
            TrafficClass::Reliable,
        );
        let df = flow.unicast(
            SimTime::ZERO,
            &mut r2,
            ep(0, 1),
            ep(1, 2),
            10_000,
            TrafficClass::Reliable,
        );
        let (Delivery::At(te), Delivery::At(tf)) = (de, df) else {
            panic!("reliable traffic must not drop");
        };
        // On an idle SAN, flow pricing collapses to serialisation +
        // latency: within 20% of the busy-pointer answer.
        let (te, tf) = (te.as_secs_f64(), tf.as_secs_f64());
        assert!((tf - te).abs() / te < 0.2, "exact {te}s vs flow {tf}s");
        assert_eq!(flow.stats().flow_fast_path, 1);
        assert_eq!(flow.stats().flow_fallbacks, 0);
    }

    #[test]
    fn flow_falls_back_when_link_saturates() {
        let (mut s, mut rng) = san_flow();
        // 100 Mb/s egress, 100 ms epoch => ~1.25 MB fills an epoch. Offer
        // far more: the accumulator crosses the 0.9 threshold and every
        // later message must take the exact path (and tail-drop).
        let mut dropped = 0;
        for _ in 0..60 {
            let d = s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                125_000,
                TrafficClass::Datagram,
            );
            if d == Delivery::Dropped {
                dropped += 1;
            }
        }
        assert!(s.stats().flow_fallbacks > 0, "saturation must fall back");
        assert!(dropped > 0, "exact path must tail-drop under saturation");
        assert!(
            s.stats().flow_fast_path > 0,
            "early messages ride the flow path"
        );
    }

    #[test]
    fn flow_epoch_rollover_resets_utilisation() {
        let (mut s, mut rng) = san_flow();
        for _ in 0..60 {
            s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                125_000,
                TrafficClass::Datagram,
            );
        }
        assert!(s.stats().flow_fallbacks > 0);
        let before = s.stats().flow_fast_path;
        // A new epoch starts with fresh utilisation: flow pricing resumes.
        let later = SimTime::from_secs(5);
        let d = s.unicast(
            SimTime::ZERO + later.since(SimTime::ZERO),
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            10_000,
            TrafficClass::Datagram,
        );
        assert!(matches!(d, Delivery::At(_)));
        assert_eq!(s.stats().flow_fast_path, before + 1);
    }

    #[test]
    fn offer_flow_prices_a_batch_and_drops_the_excess() {
        let (mut s, _) = san_flow();
        // Under capacity (~13% of a 100 ms epoch): everything arrives,
        // delay ≈ per-message tx + latency.
        let r = s.offer_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            100_000,
            100,
            TrafficClass::Reliable,
        );
        assert_eq!(r.dropped, 0);
        assert_eq!(r.delivered, 100);
        assert!(r.delay > Duration::ZERO && r.delay < Duration::from_millis(5));
        // 10x a 100 ms epoch's worth of bytes offered as datagrams in one
        // epoch: about 9/10 of the excess fraction is tail-dropped.
        let r = s.offer_flow(
            SimTime::from_secs(10),
            NodeId(2),
            NodeId(3),
            12_500_000,
            10_000,
            TrafficClass::Datagram,
        );
        assert!(
            r.dropped > 8_000 && r.dropped < 9_500,
            "dropped {}",
            r.dropped
        );
        assert_eq!(r.delivered + r.dropped, 10_000);
    }

    #[test]
    fn offer_flow_respects_partitions_and_blackouts() {
        let (mut s, _) = san_flow();
        s.partition(&[vec![NodeId(0)], vec![NodeId(1), NodeId(2), NodeId(3)]]);
        let r = s.offer_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            1_000,
            10,
            TrafficClass::Reliable,
        );
        assert_eq!((r.delivered, r.dropped), (0, 10));
        s.heal();
        s.set_datagram_blackout(true);
        let r = s.offer_flow(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            1_000,
            10,
            TrafficClass::Datagram,
        );
        assert_eq!((r.delivered, r.dropped), (0, 10));
        assert_eq!(s.stats().blackout_drops, 10);
    }

    #[test]
    fn flow_multicast_charges_one_wire_copy() {
        let (mut s, mut rng) = san_flow();
        let members = [ep(0, 9), ep(1, 2), ep(2, 3), ep(3, 4)];
        let ds = s.multicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 9),
            &members,
            10_000,
            TrafficClass::Datagram,
        );
        assert!(ds.iter().all(|d| matches!(d, Delivery::At(_))));
        // Sender egress charged once, not once per member.
        let (mut exact, mut r2) = san100();
        exact.multicast(
            SimTime::ZERO,
            &mut r2,
            ep(0, 9),
            &members,
            10_000,
            TrafficClass::Datagram,
        );
        let eb = exact.egress_backlog(NodeId(0), SimTime::ZERO);
        assert!(eb > Duration::ZERO, "exact path advances busy pointers");
        assert_eq!(
            s.egress_backlog(NodeId(0), SimTime::ZERO),
            Duration::ZERO,
            "flow path leaves busy pointers untouched"
        );
    }
}
