//! # sns-san — system-area network model
//!
//! A [`Network`] implementation modelling the paper's cluster interconnect
//! (§2.1, §4.6): switched Ethernet (or Myrinet-class) links with per-NIC
//! bandwidth, per-message processing overhead (the TCP setup/kernel cost
//! that limits a front end to ~70 requests/s on 100 Mb/s Ethernet, §4.6
//! footnote 5), a shared switch fabric, propagation latency, and the two
//! traffic classes the paper distinguishes:
//!
//! * **Reliable** (TCP-like) traffic is flow-controlled: it queues behind
//!   busy links but is never dropped.
//! * **Datagram** (IP-multicast-like) traffic is dropped when a link's
//!   queue exceeds its tolerance — reproducing the §4.6 observation that
//!   a saturated 10 Mb/s SAN drops the manager's beacons and cripples
//!   load balancing.
//!
//! Links are modelled as virtual-finish-time servers: a message occupies
//! its sender's egress NIC, the switch fabric, and the receiver's ingress
//! NIC in sequence, each for `overhead + size/bandwidth`.
//!
//! The model also supports network partitions (for the fault-tolerance
//! experiments) and per-node NIC overrides (e.g. a 10 Mb/s edge segment in
//! front of a 100 Mb/s interior, as in the TranSend deployment).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::time::Duration;

use sns_sim::network::{Delivery, Endpoint, Network, TrafficClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::NodeId;

/// Parameters of a single transmission resource (a NIC direction or the
/// switch fabric).
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Fixed per-message processing cost (kernel/TCP overhead).
    pub per_msg_overhead: Duration,
    /// Datagrams are dropped if the queue ahead of them exceeds this.
    pub max_queue_delay: Duration,
}

impl LinkParams {
    /// Convenience constructor from megabits per second.
    pub fn mbps(mbps: f64) -> Self {
        LinkParams {
            bandwidth_bps: mbps * 1e6,
            per_msg_overhead: Duration::from_micros(50),
            max_queue_delay: Duration::from_millis(50),
        }
    }

    /// Sets the fixed per-message overhead.
    pub fn with_overhead(mut self, d: Duration) -> Self {
        self.per_msg_overhead = d;
        self
    }

    /// Sets the datagram drop threshold.
    pub fn with_max_queue_delay(mut self, d: Duration) -> Self {
        self.max_queue_delay = d;
        self
    }

    /// Transmission time for `size` bytes (overhead + serialisation).
    pub fn tx_time(&self, size: u64) -> Duration {
        let secs = (size as f64 * 8.0) / self.bandwidth_bps;
        self.per_msg_overhead + Duration::from_secs_f64(secs)
    }
}

/// Whole-SAN configuration.
#[derive(Debug, Clone)]
pub struct SanConfig {
    /// Default NIC parameters applied to every registered node.
    pub default_nic: LinkParams,
    /// Shared switch fabric (aggregate capacity). Use a very large
    /// bandwidth to model an ideal non-blocking switch.
    pub fabric: LinkParams,
    /// One-way propagation latency added to every off-node message.
    pub latency: Duration,
    /// Latency for messages between components on the same node.
    pub loopback_latency: Duration,
}

impl SanConfig {
    /// A switched 100 Mb/s Ethernet SAN, the paper's scalability testbed
    /// (§4). Per-link capacity is 100 Mb/s; the switch is non-blocking for
    /// clusters of the sizes studied.
    pub fn switched_100mbps() -> Self {
        SanConfig {
            default_nic: LinkParams::mbps(100.0),
            fabric: LinkParams::mbps(100.0 * 64.0),
            latency: Duration::from_micros(150),
            loopback_latency: Duration::from_micros(30),
        }
    }

    /// The original 10 Mb/s shared segment (§3.1.1, §4.6 saturation
    /// experiment). Modelled as a *shared* fabric of 10 Mb/s: every
    /// off-node byte crosses it.
    pub fn shared_10mbps() -> Self {
        SanConfig {
            default_nic: LinkParams::mbps(10.0),
            fabric: LinkParams::mbps(10.0),
            latency: Duration::from_micros(300),
            loopback_latency: Duration::from_micros(30),
        }
    }

    /// A Myrinet-class SAN (§4.6: 32 MB/s all-pairs over 40 nodes).
    pub fn myrinet() -> Self {
        SanConfig {
            default_nic: LinkParams {
                bandwidth_bps: 640e6,
                per_msg_overhead: Duration::from_micros(10),
                max_queue_delay: Duration::from_millis(50),
            },
            fabric: LinkParams::mbps(640.0 * 64.0),
            latency: Duration::from_micros(20),
            loopback_latency: Duration::from_micros(10),
        }
    }
}

#[derive(Debug, Clone)]
struct Nic {
    params: LinkParams,
    egress_busy: SimTime,
    ingress_busy: SimTime,
}

/// Counters the SAN keeps about itself (read by experiments).
#[derive(Debug, Clone, Default)]
pub struct SanStats {
    /// Datagrams dropped at saturated links.
    pub datagrams_dropped: u64,
    /// Messages dropped because of an active partition.
    pub partition_drops: u64,
    /// Datagrams dropped by a forced blackout (burst-loss injection).
    pub blackout_drops: u64,
    /// Total messages carried (delivered).
    pub delivered: u64,
    /// Total payload bytes carried off-node.
    pub bytes_carried: u64,
}

/// The system-area network model. Implements [`Network`] for the engine.
#[derive(Debug)]
pub struct San {
    cfg: SanConfig,
    nics: BTreeMap<NodeId, Nic>,
    fabric_busy: SimTime,
    /// Partition group per node; `None` means no partition is active.
    partition_of: Option<BTreeMap<NodeId, u32>>,
    /// While set, every off-node datagram is dropped (models the §4.6
    /// saturation bursts that eat the manager's beacons). Loopback and
    /// reliable traffic are unaffected.
    datagram_blackout: bool,
    stats: SanStats,
}

impl San {
    /// Creates a SAN with the given configuration.
    pub fn new(cfg: SanConfig) -> Self {
        San {
            cfg,
            nics: BTreeMap::new(),
            fabric_busy: SimTime::ZERO,
            partition_of: None,
            datagram_blackout: false,
            stats: SanStats::default(),
        }
    }

    /// Overrides one node's NIC parameters (e.g. a slower edge segment).
    pub fn set_nic(&mut self, node: NodeId, params: LinkParams) {
        let default = self.cfg.default_nic.clone();
        let nic = self.nics.entry(node).or_insert_with(|| Nic {
            params: default,
            egress_busy: SimTime::ZERO,
            ingress_busy: SimTime::ZERO,
        });
        nic.params = params;
    }

    /// Current NIC parameters for a node (the configured default if the
    /// node was never overridden). Lets injectors degrade and later
    /// restore a link.
    pub fn nic_params(&self, node: NodeId) -> LinkParams {
        self.nics
            .get(&node)
            .map(|n| n.params.clone())
            .unwrap_or_else(|| self.cfg.default_nic.clone())
    }

    /// Forces (or lifts) a total off-node datagram blackout: while on,
    /// every beacon/report datagram crossing the wire is dropped,
    /// reproducing the §4.6 multicast loss bursts under SAN saturation.
    pub fn set_datagram_blackout(&mut self, on: bool) {
        self.datagram_blackout = on;
    }

    /// Whether a datagram blackout is currently forced.
    pub fn datagram_blackout(&self) -> bool {
        self.datagram_blackout
    }

    /// Splits the cluster into isolated groups; traffic between groups is
    /// dropped until [`San::heal`].
    pub fn partition(&mut self, groups: &[Vec<NodeId>]) {
        let mut map = BTreeMap::new();
        for (gi, group) in groups.iter().enumerate() {
            for &n in group {
                map.insert(n, gi as u32);
            }
        }
        self.partition_of = Some(map);
    }

    /// Removes any active partition.
    pub fn heal(&mut self) {
        self.partition_of = None;
    }

    /// SAN-internal counters.
    pub fn stats(&self) -> &SanStats {
        &self.stats
    }

    /// Backlog (queueing delay ahead of a new message) on a node's egress
    /// link at `now`; a saturation indicator.
    pub fn egress_backlog(&self, node: NodeId, now: SimTime) -> Duration {
        self.nics
            .get(&node)
            .map(|n| n.egress_busy.since(now))
            .unwrap_or(Duration::ZERO)
    }

    fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        match &self.partition_of {
            None => false,
            Some(map) => {
                // Nodes absent from the map are unreachable from everyone.
                match (map.get(&a), map.get(&b)) {
                    (Some(x), Some(y)) => x != y,
                    _ => true,
                }
            }
        }
    }

    fn nic_mut(&mut self, node: NodeId) -> &mut Nic {
        let default = self.cfg.default_nic.clone();
        self.nics.entry(node).or_insert_with(|| Nic {
            params: default,
            egress_busy: SimTime::ZERO,
            ingress_busy: SimTime::ZERO,
        })
    }

    /// Serialises a message through the sender's egress NIC. Returns the
    /// egress completion time, or `None` for a dropped datagram.
    fn egress(
        &mut self,
        now: SimTime,
        node: NodeId,
        size: u64,
        class: TrafficClass,
    ) -> Option<SimTime> {
        let nic = self.nic_mut(node);
        let start = nic.egress_busy.max(now);
        if class == TrafficClass::Datagram && start.since(now) > nic.params.max_queue_delay {
            self.stats.datagrams_dropped += 1;
            return None;
        }
        let fin = start + nic.params.tx_time(size);
        nic.egress_busy = fin;
        Some(fin)
    }

    /// Crosses the shared switch fabric. Returns completion, or `None` for
    /// a dropped datagram.
    fn fabric(&mut self, at: SimTime, size: u64, class: TrafficClass) -> Option<SimTime> {
        let start = self.fabric_busy.max(at);
        if class == TrafficClass::Datagram && start.since(at) > self.cfg.fabric.max_queue_delay {
            self.stats.datagrams_dropped += 1;
            return None;
        }
        let fin = start + self.cfg.fabric.tx_time(size);
        self.fabric_busy = fin;
        Some(fin)
    }

    /// Receives through a node's ingress NIC. Returns delivery time, or
    /// `None` for a dropped datagram.
    fn ingress(
        &mut self,
        at: SimTime,
        node: NodeId,
        size: u64,
        class: TrafficClass,
    ) -> Option<SimTime> {
        let nic = self.nic_mut(node);
        let start = nic.ingress_busy.max(at);
        if class == TrafficClass::Datagram && start.since(at) > nic.params.max_queue_delay {
            self.stats.datagrams_dropped += 1;
            return None;
        }
        let fin = start + nic.params.tx_time(size);
        nic.ingress_busy = fin;
        Some(fin)
    }
}

impl Network for San {
    fn unicast(
        &mut self,
        now: SimTime,
        _rng: &mut Pcg32,
        from: Endpoint,
        to: Endpoint,
        size: u64,
        class: TrafficClass,
    ) -> Delivery {
        if from.node == to.node {
            self.stats.delivered += 1;
            return Delivery::At(now + self.cfg.loopback_latency);
        }
        if self.partitioned(from.node, to.node) {
            self.stats.partition_drops += 1;
            return Delivery::Dropped;
        }
        if self.datagram_blackout && class == TrafficClass::Datagram {
            self.stats.blackout_drops += 1;
            return Delivery::Dropped;
        }
        let Some(t1) = self.egress(now, from.node, size, class) else {
            return Delivery::Dropped;
        };
        let Some(t2) = self.fabric(t1, size, class) else {
            return Delivery::Dropped;
        };
        let Some(t3) = self.ingress(t2, to.node, size, class) else {
            return Delivery::Dropped;
        };
        self.stats.delivered += 1;
        self.stats.bytes_carried += size;
        Delivery::At(t3 + self.cfg.latency)
    }

    fn multicast(
        &mut self,
        now: SimTime,
        _rng: &mut Pcg32,
        from: Endpoint,
        members: &[Endpoint],
        size: u64,
        class: TrafficClass,
    ) -> Vec<Delivery> {
        // The sender transmits once; the switch replicates to receivers;
        // each receiving *node* takes exactly one copy off the wire, no
        // matter how many member components it hosts. Same-node members
        // receive via loopback even if egress drops.
        let egress_fin = self.egress(now, from.node, size, class);
        let fabric_fin = egress_fin.and_then(|t| self.fabric(t, size, class));
        self.stats.bytes_carried += size;
        // Per-node delivery decision, computed once.
        let mut per_node: BTreeMap<NodeId, Delivery> = BTreeMap::new();
        for m in members {
            if per_node.contains_key(&m.node) {
                continue;
            }
            let decision = if m.node == from.node {
                Delivery::At(now + self.cfg.loopback_latency)
            } else if self.partitioned(from.node, m.node) {
                self.stats.partition_drops += 1;
                Delivery::Dropped
            } else if self.datagram_blackout && class == TrafficClass::Datagram {
                self.stats.blackout_drops += 1;
                Delivery::Dropped
            } else if let Some(at_fabric) = fabric_fin {
                match self.ingress(at_fabric, m.node, size, class) {
                    Some(t) => Delivery::At(t + self.cfg.latency),
                    None => Delivery::Dropped,
                }
            } else {
                Delivery::Dropped
            };
            per_node.insert(m.node, decision);
        }
        members
            .iter()
            .map(|m| {
                let d = per_node[&m.node];
                if matches!(d, Delivery::At(_)) {
                    self.stats.delivered += 1;
                }
                d
            })
            .collect()
    }

    fn register_node(&mut self, node: NodeId) {
        let default = self.cfg.default_nic.clone();
        self.nics.entry(node).or_insert(Nic {
            params: default,
            egress_busy: SimTime::ZERO,
            ingress_busy: SimTime::ZERO,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(node: u32, comp: u64) -> Endpoint {
        Endpoint {
            node: NodeId(node),
            comp: sns_sim::ComponentId(comp),
        }
    }

    fn san100() -> (San, Pcg32) {
        let mut s = San::new(SanConfig::switched_100mbps());
        for n in 0..4 {
            s.register_node(NodeId(n));
        }
        (s, Pcg32::new(1))
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let p = LinkParams::mbps(100.0).with_overhead(Duration::ZERO);
        // 12_500_000 bytes = 100 Mbit => 1 s.
        assert_eq!(p.tx_time(12_500_000), Duration::from_secs(1));
    }

    #[test]
    fn unicast_latency_includes_all_stages() {
        let (mut s, mut rng) = san100();
        let d = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            10_000,
            TrafficClass::Reliable,
        );
        let Delivery::At(t) = d else {
            panic!("reliable traffic must not drop")
        };
        // 10 KB at 100 Mb/s = 0.8 ms serialisation per stage (egress +
        // ingress) + fabric (64x faster) + overheads + latency: ~2 ms.
        let ms = t.as_secs_f64() * 1e3;
        assert!(ms > 1.0 && ms < 3.0, "delivery at {ms} ms");
    }

    #[test]
    fn loopback_is_fast_and_unmetered() {
        let (mut s, mut rng) = san100();
        let d = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(0, 2),
            1_000_000_000,
            TrafficClass::Reliable,
        );
        assert_eq!(d, Delivery::At(SimTime::ZERO + Duration::from_micros(30)));
    }

    #[test]
    fn reliable_traffic_queues_but_never_drops() {
        let (mut s, mut rng) = san100();
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            match s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                125_000, // 10 ms serialisation each
                TrafficClass::Reliable,
            ) {
                Delivery::At(t) => {
                    assert!(t > last, "deliveries serialize");
                    last = t;
                }
                Delivery::Dropped => panic!("reliable dropped"),
            }
        }
        assert_eq!(s.stats().datagrams_dropped, 0);
        // 100 x 10 ms ≈ 1 s of backlog built up.
        assert!(last.as_secs_f64() > 0.9);
    }

    #[test]
    fn datagrams_drop_under_saturation() {
        let (mut s, mut rng) = san100();
        // Saturate the egress link with reliable bulk traffic…
        for _ in 0..100 {
            s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                125_000,
                TrafficClass::Reliable,
            );
        }
        // …then a beacon datagram from the same node cannot get out.
        let d = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(2, 3),
            200,
            TrafficClass::Datagram,
        );
        assert_eq!(d, Delivery::Dropped);
        assert!(s.stats().datagrams_dropped >= 1);
    }

    #[test]
    fn idle_datagrams_pass() {
        let (mut s, mut rng) = san100();
        let d = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            200,
            TrafficClass::Datagram,
        );
        assert!(matches!(d, Delivery::At(_)));
    }

    #[test]
    fn multicast_single_egress_transmission() {
        let (mut s, mut rng) = san100();
        let members = [ep(1, 2), ep(2, 3), ep(3, 4)];
        let ds = s.multicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            &members,
            125_000,
            TrafficClass::Datagram,
        );
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| matches!(d, Delivery::At(_))));
        // Sender egress advanced by exactly one transmission (~10 ms), not
        // three.
        let egress = s.nics[&NodeId(0)].egress_busy;
        let ms = egress.as_secs_f64() * 1e3;
        assert!(ms > 9.0 && ms < 12.0, "egress busy until {ms} ms");
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let (mut s, mut rng) = san100();
        s.partition(&[vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]]);
        let blocked = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(2, 2),
            100,
            TrafficClass::Reliable,
        );
        assert_eq!(blocked, Delivery::Dropped);
        let ok = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            100,
            TrafficClass::Reliable,
        );
        assert!(matches!(ok, Delivery::At(_)));
        s.heal();
        let healed = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(2, 2),
            100,
            TrafficClass::Reliable,
        );
        assert!(matches!(healed, Delivery::At(_)));
        assert_eq!(s.stats().partition_drops, 1);
    }

    #[test]
    fn shared_10mbps_saturates_sooner_than_switched_100() {
        let drops = |cfg: SanConfig| {
            let mut s = San::new(cfg);
            let mut rng = Pcg32::new(2);
            for n in 0..4 {
                s.register_node(NodeId(n));
            }
            // Offer ~13 Mb/s of bulk data traffic (beyond a shared 10 Mb/s
            // segment, well within switched 100 Mb/s links), with periodic
            // beacon datagrams interleaved on other nodes.
            let mut dropped = 0u64;
            for i in 0..200 {
                let now = SimTime::from_millis(i * 6);
                s.unicast(
                    now,
                    &mut rng,
                    ep(0, 1),
                    ep(1, 2),
                    10_000,
                    TrafficClass::Reliable,
                );
                if let Delivery::Dropped = s.unicast(
                    now,
                    &mut rng,
                    ep(2, 3),
                    ep(3, 4),
                    200,
                    TrafficClass::Datagram,
                ) {
                    dropped += 1;
                }
            }
            dropped
        };
        let d10 = drops(SanConfig::shared_10mbps());
        let d100 = drops(SanConfig::switched_100mbps());
        assert!(d10 > 0, "10 Mb/s SAN must drop beacons under load");
        assert_eq!(d100, 0, "100 Mb/s SAN must not drop at this load");
    }

    #[test]
    fn blackout_drops_off_node_datagrams_only() {
        let (mut s, mut rng) = san100();
        s.set_datagram_blackout(true);
        assert!(s.datagram_blackout());
        // Off-node datagram: dropped.
        let d = s.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            200,
            TrafficClass::Datagram,
        );
        assert_eq!(d, Delivery::Dropped);
        // Same-node datagram survives via loopback; reliable traffic is
        // flow-controlled, not lossy, so it still goes through.
        assert!(matches!(
            s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(0, 2),
                200,
                TrafficClass::Datagram
            ),
            Delivery::At(_)
        ));
        assert!(matches!(
            s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                200,
                TrafficClass::Reliable
            ),
            Delivery::At(_)
        ));
        // Multicast members on other nodes are dropped during the burst.
        let ds = s.multicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            &[ep(0, 5), ep(1, 2), ep(2, 3)],
            200,
            TrafficClass::Datagram,
        );
        assert!(matches!(ds[0], Delivery::At(_)), "loopback member passes");
        assert_eq!(ds[1], Delivery::Dropped);
        assert_eq!(ds[2], Delivery::Dropped);
        assert_eq!(s.stats().blackout_drops, 3);
        s.set_datagram_blackout(false);
        assert!(matches!(
            s.unicast(
                SimTime::from_secs(10),
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                200,
                TrafficClass::Datagram
            ),
            Delivery::At(_)
        ));
    }

    #[test]
    fn nic_params_round_trip() {
        let (mut s, _) = san100();
        let before = s.nic_params(NodeId(1));
        assert_eq!(before.bandwidth_bps, 100.0 * 1e6);
        s.set_nic(NodeId(1), LinkParams::mbps(10.0));
        assert_eq!(s.nic_params(NodeId(1)).bandwidth_bps, 10.0 * 1e6);
        s.set_nic(NodeId(1), before);
        assert_eq!(s.nic_params(NodeId(1)).bandwidth_bps, 100.0 * 1e6);
    }

    #[test]
    fn egress_backlog_reports_queue() {
        let (mut s, mut rng) = san100();
        for _ in 0..10 {
            s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                125_000,
                TrafficClass::Reliable,
            );
        }
        let backlog = s.egress_backlog(NodeId(0), SimTime::ZERO);
        assert!(backlog > Duration::from_millis(90));
        assert_eq!(s.egress_backlog(NodeId(3), SimTime::ZERO), Duration::ZERO);
    }
}
