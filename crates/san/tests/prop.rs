//! Property tests for the SAN model: conservation and monotonicity
//! invariants that must hold for any traffic pattern.

use std::time::Duration;

use sns_testkit::{gens, props, tk_assert, tk_assert_eq, Gen};

use sns_san::{LinkParams, San, SanConfig};
use sns_sim::network::{Delivery, Endpoint, Network, TrafficClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, NodeId};

fn ep(node: u32, comp: u64) -> Endpoint {
    Endpoint {
        node: NodeId(node),
        comp: ComponentId(comp),
    }
}

#[derive(Debug, Clone)]
struct Msg {
    at_us: u64,
    from: u32,
    to: u32,
    size: u64,
    datagram: bool,
}

fn msg_gen() -> Gen<Msg> {
    let at_us = gens::u64_in(0..2_000_000);
    let from = gens::u32_in(0..6);
    let to = gens::u32_in(0..6);
    let size = gens::u64_in(1..200_000);
    let datagram = gens::any_bool();
    Gen::new(move |src| Msg {
        at_us: at_us.run(src),
        from: from.run(src),
        to: to.run(src),
        size: size.run(src),
        datagram: datagram.run(src),
    })
}

props! {
    fn deliveries_never_precede_sends_and_reliable_never_drops(
        msgs in gens::vec(msg_gen(), 1..80),
    ) {
        let mut msgs = msgs;
        msgs.sort_by_key(|m| m.at_us);
        let mut san = San::new(SanConfig::switched_100mbps());
        for n in 0..6 {
            san.register_node(NodeId(n));
        }
        let mut rng = Pcg32::new(1);
        for m in &msgs {
            let now = SimTime::from_nanos(m.at_us * 1000);
            let class = if m.datagram {
                TrafficClass::Datagram
            } else {
                TrafficClass::Reliable
            };
            match san.unicast(now, &mut rng, ep(m.from, 1), ep(m.to, 2), m.size, class) {
                Delivery::At(t) => tk_assert!(t > now, "delivery {t} not after send {now}"),
                Delivery::Dropped => {
                    tk_assert!(m.datagram, "reliable traffic must never drop");
                }
            }
        }
    }

    fn per_link_deliveries_are_fifo(
        sizes in gens::vec(gens::u64_in(1..100_000), 2..40),
    ) {
        let mut san = San::new(SanConfig::switched_100mbps());
        san.register_node(NodeId(0));
        san.register_node(NodeId(1));
        let mut rng = Pcg32::new(2);
        let mut last = SimTime::ZERO;
        for &size in &sizes {
            match san.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                size,
                TrafficClass::Reliable,
            ) {
                Delivery::At(t) => {
                    tk_assert!(t > last, "same-link messages must deliver in order");
                    last = t;
                }
                Delivery::Dropped => unreachable!("reliable"),
            }
        }
    }

    fn faster_links_never_deliver_later(
        size in gens::u64_in(1..500_000),
        at_ms in gens::u64_in(0..100),
    ) {
        let deliver = |mbps: f64| {
            let mut san = San::new(SanConfig {
                default_nic: LinkParams::mbps(mbps).with_overhead(Duration::from_micros(50)),
                fabric: LinkParams::mbps(mbps * 64.0),
                latency: Duration::from_micros(150),
                loopback_latency: Duration::from_micros(30),
                ..SanConfig::switched_100mbps()
            });
            san.register_node(NodeId(0));
            san.register_node(NodeId(1));
            let mut rng = Pcg32::new(3);
            match san.unicast(
                SimTime::from_millis(at_ms),
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                size,
                TrafficClass::Reliable,
            ) {
                Delivery::At(t) => t,
                Delivery::Dropped => unreachable!(),
            }
        };
        tk_assert!(deliver(100.0) <= deliver(10.0));
    }

    fn multicast_decisions_agree_per_node(
        size in gens::u64_in(1..50_000),
        members in gens::vec(
            gens::u32_in(0..4).flat_map(|n| gens::u64_in(1..40).map(move |c| (n, c))),
            1..20,
        ),
    ) {
        let mut san = San::new(SanConfig::switched_100mbps());
        for n in 0..4 {
            san.register_node(NodeId(n));
        }
        let mut rng = Pcg32::new(4);
        let eps: Vec<Endpoint> = members.iter().map(|&(n, c)| ep(n, c)).collect();
        let out = san.multicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 999),
            &eps,
            size,
            TrafficClass::Datagram,
        );
        tk_assert_eq!(out.len(), eps.len());
        // All members on the same node share one wire copy, hence one
        // decision and one delivery time.
        for (i, a) in eps.iter().enumerate() {
            for (j, b) in eps.iter().enumerate() {
                if a.node == b.node {
                    tk_assert_eq!(out[i], out[j]);
                }
            }
        }
    }
}
