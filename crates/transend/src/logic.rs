//! TranSend's front-end dispatch logic (§3.1.1): the per-request state
//! machine the FE framework drives.
//!
//! Request processing: pair the request with the user's customisation
//! preferences (write-through-cached, §3.1.4) → look up the distilled
//! variant in the virtual cache (consistent hashing across live cache
//! workers, §3.1.5) → on miss, look up / fetch the original → send it
//! through the per-MIME distillation pipeline → inject results back into
//! the cache → reply. Every failure has a BASE fallback (§3.1.8): a
//! missing profile means default preferences, a cache timeout is just a
//! miss, a failed distiller means the user gets the original content,
//! degraded but fast.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use sns_cache::CacheKey;
use sns_cache::VirtualCache;
use sns_core::frontend::{Action, FeEvent, ReqState, SvcView};
use sns_core::msg::{JobResult, ProfileData};
use sns_core::{payload_as, AppData, ServiceLogic, WorkerClass};
use sns_tacc::cache_worker::{CacheGet, CacheGetResult, CacheInject, CacheWorker};
use sns_tacc::content::ContentObject;
use sns_tacc::origin::{FetchRequest, OriginServer};
use sns_tacc::pipeline::PipelineSpec;
use sns_tacc::profile_worker::{ProfileGet, ProfilePut, ProfileReply, ProfileWorker};
use sns_tacc::worker::TaccArgs;
use sns_workload::MimeType;

/// A user-preference update request (the §3.1.4 service interface for
/// registering customisation settings).
#[derive(Debug, Clone)]
pub struct PrefUpdate {
    /// Settings to upsert for the requesting user.
    pub settings: Vec<(String, String)>,
}

impl AppData for PrefUpdate {
    fn wire_size(&self) -> u64 {
        self.settings
            .iter()
            .map(|(k, v)| (k.len() + v.len() + 8) as u64)
            .sum::<u64>()
            + 16
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Service-level configuration.
#[derive(Debug, Clone)]
pub struct TranSendConfig {
    /// Objects below this size pass through undistilled (§4.1: "data
    /// under 1 KB is transferred to the client unmodified").
    pub distill_threshold: u64,
    /// Default distillation arguments (overridden per user by profiles).
    pub defaults: BTreeMap<String, String>,
    /// Profile-cache capacity (entries).
    pub profile_cache_cap: usize,
    /// Whether post-transformation content is cached (§4.6 turns this
    /// off to force re-distillation on every request).
    pub cache_distilled: bool,
}

impl Default for TranSendConfig {
    fn default() -> Self {
        let mut defaults = BTreeMap::new();
        defaults.insert("scale".to_string(), "2".to_string());
        defaults.insert("quality".to_string(), "25".to_string());
        TranSendConfig {
            distill_threshold: 1024,
            defaults,
            profile_cache_cap: 4096,
            cache_distilled: true,
        }
    }
}

/// A request for an aggregation service (§5.1: the Bay Area Culture
/// Page, metasearch): fetch the named sources from the wide area, then
/// collate them with the named aggregator worker.
#[derive(Debug, Clone)]
pub struct AggregateServiceRequest {
    /// Aggregator worker name (class becomes `aggregator/<name>`).
    pub aggregator: String,
    /// Pages to fetch and feed to the aggregator.
    pub sources: Vec<FetchRequest>,
    /// Service arguments delivered to the aggregator (query, month, …).
    pub args: BTreeMap<String, String>,
}

impl AppData for AggregateServiceRequest {
    fn wire_size(&self) -> u64 {
        self.aggregator.len() as u64 + self.sources.iter().map(|s| s.wire_size()).sum::<u64>() + 32
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// Dispatch tags.
const TAG_PROFILE: u64 = 1;
const TAG_CACHE_FINAL: u64 = 2;
const TAG_CACHE_ORIG: u64 = 3;
const TAG_ORIGIN: u64 = 4;
const TAG_INJECT: u64 = 5;
const TAG_PREF: u64 = 6;
const TAG_DISTILL0: u64 = 16;
const TAG_AGGREGATE: u64 = 8;
const TAG_AGG_FETCH0: u64 = 1024;

/// Aggregation-request state stored in [`ReqState::data`].
struct TsAgg {
    request: AggregateServiceRequest,
    fetched: Vec<Option<ContentObject>>,
    remaining: usize,
}

/// Per-request state stored in [`ReqState::data`].
struct TsState {
    fetch: FetchRequest,
    profile: Option<ProfileData>,
    pipeline: PipelineSpec,
    args: TaccArgs,
    stage: usize,
    original: Option<ContentObject>,
}

/// The TranSend service logic.
pub struct TranSendLogic {
    cfg: TranSendConfig,
    vcache: VirtualCache<sns_sim::ComponentId>,
    profile_cache: BTreeMap<String, Option<ProfileData>>,
    profile_order: VecDeque<String>,
}

impl TranSendLogic {
    /// Creates the logic.
    pub fn new(cfg: TranSendConfig) -> Self {
        TranSendLogic {
            cfg,
            vcache: VirtualCache::new(),
            profile_cache: BTreeMap::new(),
            profile_order: VecDeque::new(),
        }
    }

    /// Syncs the consistent-hash ring with the live cache-worker set from
    /// the latest beacon ("automatically re-hashing when cache nodes are
    /// added or removed", §3.1.5).
    fn refresh_ring(&mut self, view: &SvcView<'_, '_>) {
        let mut live = view.stub.workers_of(&WorkerClass::new(CacheWorker::CLASS));
        live.sort();
        let current: Vec<_> = self.vcache.partitions().to_vec();
        for gone in current.iter().filter(|p| !live.contains(p)) {
            self.vcache.remove_partition(gone);
        }
        for fresh in live.iter().filter(|p| !current.contains(p)) {
            self.vcache.add_partition(*fresh);
        }
    }

    fn cache_profile(&mut self, user: &str, profile: Option<ProfileData>) {
        if !self.profile_cache.contains_key(user) {
            self.profile_order.push_back(user.to_string());
            if self.profile_order.len() > self.cfg.profile_cache_cap {
                if let Some(victim) = self.profile_order.pop_front() {
                    self.profile_cache.remove(&victim);
                }
            }
        }
        self.profile_cache.insert(user.to_string(), profile);
    }

    fn plan(&self, st: &mut TsState) {
        let args = TaccArgs::merged(&self.cfg.defaults, st.profile.as_ref());
        let mut pipeline = match st.fetch.mime {
            MimeType::Gif => PipelineSpec::single("gif"),
            MimeType::Jpeg => PipelineSpec::single("jpeg"),
            MimeType::Html => PipelineSpec::single("html"),
            MimeType::Other => PipelineSpec::identity(),
        };
        // Per-user composition: a keyword filter chains after the HTML
        // munger when the profile asks for it (§5.1).
        if st.fetch.mime == MimeType::Html && args.get("keywords").is_some() {
            pipeline = pipeline.then("keyword");
        }
        // Thin clients get the spoon-feeding simplifier as a final stage
        // (§5.1 "Real Web Access for PDAs and Smart Phones").
        if st.fetch.mime == MimeType::Html && args.get("device") == Some("palm") {
            pipeline = pipeline.then("pda");
        }
        if st.fetch.size < self.cfg.distill_threshold || args.get_bool("originals", false) {
            pipeline = PipelineSpec::identity();
        }
        st.args = args;
        st.pipeline = pipeline;
    }

    fn final_key(st: &TsState) -> CacheKey {
        let v = st.pipeline.final_variant(&st.args);
        if st.pipeline.is_empty() {
            CacheKey::original(&st.fetch.url)
        } else {
            CacheKey::variant(&st.fetch.url, v)
        }
    }

    fn cache_get(&self, key: CacheKey, tag: u64, out: &mut Vec<Action>) -> bool {
        let Some(&worker) = self.vcache.route(&key) else {
            return false;
        };
        out.push(Action::DispatchTo {
            tag,
            worker,
            class: CacheWorker::CLASS.into(),
            op: "get".into(),
            input: Arc::new(CacheGet { key }),
            profile: None,
        });
        true
    }

    fn cache_inject(&self, key: CacheKey, object: ContentObject, out: &mut Vec<Action>) {
        if let Some(&worker) = self.vcache.route(&key) {
            out.push(Action::DispatchTo {
                tag: TAG_INJECT,
                worker,
                class: CacheWorker::CLASS.into(),
                op: "inject".into(),
                input: Arc::new(CacheInject { key, object }),
                profile: None,
            });
        }
    }

    fn fetch_origin(st: &TsState, out: &mut Vec<Action>) {
        out.push(Action::Dispatch {
            tag: TAG_ORIGIN,
            class: OriginServer::CLASS.into(),
            op: "fetch".into(),
            input: Arc::new(st.fetch.clone()),
            profile: None,
        });
    }

    fn dispatch_stage(st: &TsState, input: ContentObject, out: &mut Vec<Action>) {
        let stage_name = &st.pipeline.stages()[st.stage];
        out.push(Action::Dispatch {
            tag: TAG_DISTILL0 + st.stage as u64,
            class: WorkerClass::new(format!("distiller/{stage_name}")),
            op: "transform".into(),
            input: input.into_payload(),
            profile: Some(Arc::new(st.args.as_map().clone())),
        });
    }

    /// Entry point once the profile is resolved: plan and start lookups.
    fn start_processing(
        &mut self,
        st: &mut TsState,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        self.plan(st);
        self.refresh_ring(view);
        if !self.cfg.cache_distilled && !st.pipeline.is_empty() {
            // Distilled variants are not cached: look up the original and
            // re-distill per request (the §4.6 measurement mode).
            let key = CacheKey::original(&st.fetch.url);
            if self.cache_get(key, TAG_CACHE_ORIG, out) {
                return;
            }
        } else {
            let key = Self::final_key(st);
            if self.cache_get(key, TAG_CACHE_FINAL, out) {
                return;
            }
        }
        // No cache workers known (bootstrap or total cache loss): the
        // cache is only an optimisation — go straight to the origin.
        view.stats().incr("ts.no_cache_available", 1);
        Self::fetch_origin(st, out);
    }

    /// The original object is in hand: distill or reply.
    fn have_original(
        &mut self,
        st: &mut TsState,
        obj: ContentObject,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        st.original = Some(obj.clone());
        if st.pipeline.is_empty() {
            view.stats().incr("ts.passthrough", 1);
            view.stats().observe("ts.response_bytes", obj.len() as f64);
            out.push(Action::Reply(Ok(obj.into_payload())));
            return;
        }
        st.stage = 0;
        Self::dispatch_stage(st, obj, out);
    }

    /// Drives an aggregation request: collect fetches, run the
    /// aggregator, reply. Missing sources are tolerated (BASE
    /// approximate answers — the culture page is useful even when a
    /// source site is down).
    #[allow(clippy::too_many_arguments)]
    fn on_agg_event(
        &mut self,
        req: &mut ReqState,
        mut st: TsAgg,
        tag: u64,
        reply: Option<&JobResult>,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        if tag >= TAG_AGG_FETCH0 {
            let i = (tag - TAG_AGG_FETCH0) as usize;
            if i < st.fetched.len() && st.fetched[i].is_none() {
                st.remaining -= 1;
                if let Some(JobResult::Ok(p)) = reply {
                    st.fetched[i] = ContentObject::from_payload(p).cloned();
                } else {
                    view.stats().incr("ts.agg_source_missing", 1);
                    out.push(Action::MarkDegraded);
                }
            }
            if st.remaining == 0 {
                let inputs: Vec<ContentObject> = st.fetched.iter().flatten().cloned().collect();
                if inputs.is_empty() {
                    view.stats().incr("ts.errors", 1);
                    out.push(Action::Reply(Err("no sources reachable".into())));
                } else {
                    out.push(Action::Dispatch {
                        tag: TAG_AGGREGATE,
                        class: WorkerClass::new(format!("aggregator/{}", st.request.aggregator)),
                        op: "aggregate".into(),
                        input: Arc::new(sns_tacc::worker::AggregateRequest { inputs }),
                        profile: Some(Arc::new(st.request.args.clone())),
                    });
                }
            }
            req.data = Some(Box::new(st));
            return;
        }
        if tag == TAG_AGGREGATE {
            match reply {
                Some(JobResult::Ok(p)) => {
                    view.stats().incr("ts.agg_answers", 1);
                    out.push(Action::Reply(Ok(p.clone())));
                }
                _ => {
                    view.stats().incr("ts.errors", 1);
                    out.push(Action::Reply(Err("aggregator unavailable".into())));
                }
            }
        }
        req.data = Some(Box::new(st));
    }

    fn reply_original_degraded(
        st: &TsState,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
        why: &str,
    ) {
        if let Some(orig) = &st.original {
            view.stats().incr("ts.fallback_original", 1);
            view.stats().observe("ts.response_bytes", orig.len() as f64);
            out.push(Action::MarkDegraded);
            out.push(Action::Reply(Ok(orig.clone().into_payload())));
        } else {
            view.stats().incr("ts.errors", 1);
            out.push(Action::Reply(Err(format!("service degraded: {why}"))));
        }
    }
}

impl ServiceLogic for TranSendLogic {
    fn on_request(
        &mut self,
        req: &mut ReqState,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        view.stats().incr("ts.requests", 1);
        // Preference updates go to the ACID database (§3.1.4).
        if let Some(body) = &req.request.body {
            if let Some(update) = payload_as::<PrefUpdate>(body) {
                self.profile_cache.remove(&req.request.user);
                out.push(Action::Dispatch {
                    tag: TAG_PREF,
                    class: ProfileWorker::CLASS.into(),
                    op: "put".into(),
                    input: Arc::new(ProfilePut {
                        user: req.request.user.clone(),
                        settings: update.settings.clone(),
                    }),
                    profile: None,
                });
                return;
            }
        }
        if let Some(body) = &req.request.body {
            if let Some(agg) = payload_as::<AggregateServiceRequest>(body).cloned() {
                // Aggregation service (§5.1): fan out the source fetches.
                view.stats().incr("ts.agg_requests", 1);
                let n = agg.sources.len();
                for (i, src) in agg.sources.iter().enumerate() {
                    out.push(Action::Dispatch {
                        tag: TAG_AGG_FETCH0 + i as u64,
                        class: OriginServer::CLASS.into(),
                        op: "fetch".into(),
                        input: Arc::new(src.clone()),
                        profile: None,
                    });
                }
                req.data = Some(Box::new(TsAgg {
                    request: agg,
                    fetched: vec![None; n],
                    remaining: n,
                }));
                return;
            }
        }
        let fetch = req
            .request
            .body
            .as_ref()
            .and_then(|b| payload_as::<FetchRequest>(b).cloned())
            .unwrap_or(FetchRequest {
                url: req.request.url.clone(),
                mime: MimeType::Other,
                size: 8 * 1024,
            });
        let mut st = TsState {
            fetch,
            profile: None,
            pipeline: PipelineSpec::identity(),
            args: TaccArgs::default(),
            stage: 0,
            original: None,
        };
        // Profile: write-through cache absorbs reads (§3.1.4).
        if let Some(cached) = self.profile_cache.get(&req.request.user) {
            view.stats().incr("ts.profile_cache_hits", 1);
            st.profile = cached.clone();
            self.start_processing(&mut st, view, out);
        } else if !view
            .stub
            .workers_of(&WorkerClass::new(ProfileWorker::CLASS))
            .is_empty()
        {
            out.push(Action::Dispatch {
                tag: TAG_PROFILE,
                class: ProfileWorker::CLASS.into(),
                op: "get".into(),
                input: Arc::new(ProfileGet {
                    user: req.request.user.clone(),
                }),
                profile: None,
            });
        } else {
            // No profile DB reachable: default preferences (BASE — the
            // ACID island being down degrades, not fails, the service).
            view.stats().incr("ts.profile_unavailable", 1);
            self.start_processing(&mut st, view, out);
        }
        req.data = Some(Box::new(st));
    }

    fn on_event(
        &mut self,
        req: &mut ReqState,
        ev: FeEvent<'_>,
        view: &mut SvcView<'_, '_>,
        out: &mut Vec<Action>,
    ) {
        // Preference-update acks carry no TsState.
        let (tag, reply): (u64, Option<&JobResult>) = match &ev {
            FeEvent::WorkerReply { tag, result } => (*tag, Some(result)),
            FeEvent::DispatchFailed { tag, .. } => (*tag, None),
            FeEvent::ComputeDone { tag } => (*tag, None),
            FeEvent::NapDone { tag } => (*tag, None),
        };
        if tag == TAG_PREF {
            let ok = matches!(reply, Some(JobResult::Ok(_)));
            out.push(if ok {
                view.stats().incr("ts.pref_updates", 1);
                Action::Reply(Ok(ContentObject::text(
                    "transend://prefs",
                    MimeType::Html,
                    "<html><body>preferences saved</body></html>",
                )
                .into_payload()))
            } else {
                Action::Reply(Err("preference update failed".into()))
            });
            return;
        }
        if tag == TAG_INJECT {
            return; // fire-and-forget
        }
        let Some(data) = req.data.take() else {
            return;
        };
        let mut st = match data.downcast::<TsState>() {
            Ok(st) => st,
            Err(other) => {
                if let Ok(agg) = other.downcast::<TsAgg>() {
                    self.on_agg_event(req, *agg, tag, reply, view, out);
                }
                return;
            }
        };
        match (tag, reply) {
            (TAG_PROFILE, Some(JobResult::Ok(p))) => {
                let profile = payload_as::<ProfileReply>(p).and_then(|r| r.profile.clone());
                self.cache_profile(&req.request.user, profile.clone());
                st.profile = profile;
                self.start_processing(&mut st, view, out);
            }
            (TAG_PROFILE, _) => {
                // Failed or timed out: default preferences, degraded.
                view.stats().incr("ts.profile_unavailable", 1);
                self.start_processing(&mut st, view, out);
            }
            (TAG_CACHE_FINAL, Some(JobResult::Ok(p))) => {
                let hit = payload_as::<CacheGetResult>(p).and_then(|r| r.object.clone());
                match hit {
                    Some(obj) => {
                        view.stats().incr("ts.cache_hit_final", 1);
                        view.stats().observe("ts.response_bytes", obj.len() as f64);
                        out.push(Action::Reply(Ok(obj.into_payload())));
                    }
                    None if st.pipeline.is_empty() => {
                        view.stats().incr("ts.cache_miss", 1);
                        Self::fetch_origin(&st, out);
                    }
                    None => {
                        view.stats().incr("ts.cache_miss", 1);
                        let key = CacheKey::original(&st.fetch.url);
                        if !self.cache_get(key, TAG_CACHE_ORIG, out) {
                            Self::fetch_origin(&st, out);
                        }
                    }
                }
            }
            (TAG_CACHE_FINAL, _) => {
                // Cache timeout/failure = miss (caching is an
                // optimisation, §3.1.5).
                view.stats().incr("ts.cache_unavailable", 1);
                Self::fetch_origin(&st, out);
            }
            (TAG_CACHE_ORIG, Some(JobResult::Ok(p))) => {
                let hit = payload_as::<CacheGetResult>(p).and_then(|r| r.object.clone());
                match hit {
                    Some(obj) => {
                        view.stats().incr("ts.cache_hit_orig", 1);
                        self.have_original(&mut st, obj, view, out);
                    }
                    None => Self::fetch_origin(&st, out),
                }
            }
            (TAG_CACHE_ORIG, _) => {
                view.stats().incr("ts.cache_unavailable", 1);
                Self::fetch_origin(&st, out);
            }
            (TAG_ORIGIN, Some(JobResult::Ok(p))) => {
                let Some(obj) = ContentObject::from_payload(p).cloned() else {
                    out.push(Action::Reply(Err("origin returned garbage".into())));
                    req.data = Some(st);
                    return;
                };
                view.stats().incr("ts.origin_fetches", 1);
                self.refresh_ring(view);
                self.cache_inject(CacheKey::original(&st.fetch.url), obj.clone(), out);
                self.have_original(&mut st, obj, view, out);
            }
            (TAG_ORIGIN, _) => {
                Self::reply_original_degraded(&st, view, out, "origin unreachable");
            }
            (t, Some(JobResult::Ok(p))) if t >= TAG_DISTILL0 => {
                let Some(obj) = ContentObject::from_payload(p).cloned() else {
                    Self::reply_original_degraded(&st, view, out, "distiller garbage");
                    req.data = Some(st);
                    return;
                };
                st.stage += 1;
                if st.stage < st.pipeline.len() {
                    Self::dispatch_stage(&st, obj, out);
                } else {
                    view.stats().incr("ts.distilled", 1);
                    if let Some(orig) = &st.original {
                        let saved = orig.len().saturating_sub(obj.len());
                        view.stats().observe("ts.bytes_saved", saved as f64);
                    }
                    view.stats().observe("ts.response_bytes", obj.len() as f64);
                    if self.cfg.cache_distilled {
                        self.refresh_ring(view);
                        self.cache_inject(Self::final_key(&st), obj.clone(), out);
                    }
                    out.push(Action::Reply(Ok(obj.into_payload())));
                }
            }
            (t, Some(JobResult::Failed(_)) | None) if t >= TAG_DISTILL0 => {
                // Distiller failed or timed out after retries: the user
                // gets the original — an approximate answer delivered
                // quickly beats an exact answer delivered slowly
                // (§3.1.8).
                Self::reply_original_degraded(&st, view, out, "distiller unavailable");
            }
            _ => {}
        }
        req.data = Some(st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_selects_pipeline_by_mime_and_threshold() {
        let logic = TranSendLogic::new(TranSendConfig::default());
        let mk = |mime, size| TsState {
            fetch: FetchRequest {
                url: "u".into(),
                mime,
                size,
            },
            profile: None,
            pipeline: PipelineSpec::identity(),
            args: TaccArgs::default(),
            stage: 0,
            original: None,
        };
        let mut st = mk(MimeType::Gif, 10_000);
        logic.plan(&mut st);
        assert_eq!(st.pipeline.stages(), &["gif"]);
        let mut st = mk(MimeType::Jpeg, 10_000);
        logic.plan(&mut st);
        assert_eq!(st.pipeline.stages(), &["jpeg"]);
        let mut st = mk(MimeType::Other, 10_000);
        logic.plan(&mut st);
        assert!(st.pipeline.is_empty());
        // Below the 1 KB threshold: pass through unmodified (§4.1).
        let mut st = mk(MimeType::Gif, 600);
        logic.plan(&mut st);
        assert!(st.pipeline.is_empty());
    }

    #[test]
    fn keyword_filter_chains_for_users_with_keywords() {
        let logic = TranSendLogic::new(TranSendConfig::default());
        let mut profile = BTreeMap::new();
        profile.insert("keywords".to_string(), "rust".to_string());
        let mut st = TsState {
            fetch: FetchRequest {
                url: "u".into(),
                mime: MimeType::Html,
                size: 8_000,
            },
            profile: Some(Arc::new(profile)),
            pipeline: PipelineSpec::identity(),
            args: TaccArgs::default(),
            stage: 0,
            original: None,
        };
        logic.plan(&mut st);
        assert_eq!(st.pipeline.stages(), &["html", "keyword"]);
    }

    #[test]
    fn final_key_is_original_for_identity_pipeline() {
        let logic = TranSendLogic::new(TranSendConfig::default());
        let mut st = TsState {
            fetch: FetchRequest {
                url: "http://x/tiny.gif".into(),
                mime: MimeType::Gif,
                size: 100,
            },
            profile: None,
            pipeline: PipelineSpec::identity(),
            args: TaccArgs::default(),
            stage: 0,
            original: None,
        };
        logic.plan(&mut st);
        let key = TranSendLogic::final_key(&st);
        assert_eq!(key, CacheKey::original("http://x/tiny.gif"));
        // And distinct variants for distilled content.
        let mut st2 = TsState {
            fetch: FetchRequest {
                url: "http://x/big.gif".into(),
                mime: MimeType::Gif,
                size: 10_000,
            },
            profile: None,
            pipeline: PipelineSpec::identity(),
            args: TaccArgs::default(),
            stage: 0,
            original: None,
        };
        logic.plan(&mut st2);
        let key2 = TranSendLogic::final_key(&st2);
        assert_ne!(key2.variant, 0);
    }
}
