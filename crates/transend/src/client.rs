//! The traced-client model: the paper's playback engine (§4.1) attached
//! to the cluster, plus client-side load balancing across front ends
//! (§3.1.2: "Client-side JavaScript support balances load across multiple
//! front ends and masks transient front end failures").

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use sns_core::msg::{ClientRequest, SnsMsg};
use sns_core::payload_as;
use sns_sim::engine::{Component, Ctx};
use sns_sim::stats::Summary;
use sns_sim::time::SimTime;
use sns_sim::ComponentId;
use sns_tacc::content::ContentObject;
use sns_tacc::origin::FetchRequest;
use sns_workload::trace::TraceRecord;

/// What one client measured.
#[derive(Debug, Default)]
pub struct ClientReport {
    /// Requests sent.
    pub sent: u64,
    /// Responses received.
    pub responses: u64,
    /// Successful responses.
    pub ok: u64,
    /// Error responses.
    pub errors: u64,
    /// Degraded (approximate-answer) responses.
    pub degraded: u64,
    /// Response payload bytes received.
    pub bytes_received: u64,
    /// Requested original bytes (for savings accounting).
    pub bytes_requested: u64,
    /// End-to-end latency summary (seconds).
    pub latency: Summary,
}

impl ClientReport {
    fn new() -> Self {
        ClientReport {
            latency: Summary::with_capacity(16_384),
            ..Default::default()
        }
    }

    /// Fraction of requested bytes saved by distillation.
    pub fn savings(&self) -> f64 {
        if self.bytes_requested == 0 {
            0.0
        } else {
            1.0 - self.bytes_received as f64 / self.bytes_requested as f64
        }
    }
}

/// Shared handle to a client's report (readable after the run).
pub type ClientReportHandle = Rc<RefCell<ClientReport>>;

/// One scheduled request.
struct Item {
    at: Duration,
    record: TraceRecord,
}

/// The playback-engine client component.
pub struct TranSendClient {
    fes: Vec<ComponentId>,
    items: Vec<Item>,
    next_item: usize,
    next_fe: usize,
    start_delay: Duration,
    outstanding: std::collections::BTreeMap<u64, (SimTime, u64)>,
    report: ClientReportHandle,
}

impl TranSendClient {
    const SEND: u64 = 1;

    /// Creates a client playing the given retimed requests against the
    /// listed front ends after `start_delay` of cluster warm-up.
    pub fn new(
        fes: Vec<ComponentId>,
        retimed: Vec<(Duration, TraceRecord)>,
        start_delay: Duration,
    ) -> (Self, ClientReportHandle) {
        assert!(!fes.is_empty(), "need at least one front end");
        let report: ClientReportHandle = Rc::new(RefCell::new(ClientReport::new()));
        let items = retimed
            .into_iter()
            .map(|(at, record)| Item { at, record })
            .collect();
        (
            TranSendClient {
                fes,
                items,
                next_item: 0,
                next_fe: 0,
                start_delay,
                outstanding: std::collections::BTreeMap::new(),
                report: Rc::clone(&report),
            },
            report,
        )
    }

    /// Adds a front end mid-run (Table 2 incremental scaling).
    pub fn add_frontend(&mut self, fe: ComponentId) {
        self.fes.push(fe);
    }

    fn schedule_next(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        let Some(item) = self.items.get(self.next_item) else {
            return;
        };
        let due = SimTime::ZERO + self.start_delay + item.at;
        let now = ctx.now();
        let delay = due.since(now);
        ctx.timer(delay, Self::SEND);
    }

    /// Round-robin over *live* front ends (masking FE failures).
    fn pick_fe(&mut self, ctx: &Ctx<'_, SnsMsg>) -> Option<ComponentId> {
        for _ in 0..self.fes.len() {
            let fe = self.fes[self.next_fe % self.fes.len()];
            self.next_fe += 1;
            if ctx.is_alive(fe) {
                return Some(fe);
            }
        }
        None
    }
}

impl Component<SnsMsg> for TranSendClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        self.schedule_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _from: ComponentId, msg: SnsMsg) {
        let SnsMsg::Response(resp) = msg else {
            return;
        };
        let Some((sent_at, size_requested)) = self.outstanding.remove(&resp.id) else {
            return;
        };
        let latency = ctx.now().since(sent_at).as_secs_f64();
        ctx.stats().observe("client.latency_s", latency);
        ctx.stats().incr("client.responses", 1);
        let mut r = self.report.borrow_mut();
        r.responses += 1;
        r.latency.record(latency);
        r.bytes_requested += size_requested;
        if resp.degraded {
            r.degraded += 1;
        }
        match &resp.result {
            Ok(payload) => {
                r.ok += 1;
                let len = payload_as::<ContentObject>(payload)
                    .map(|o| o.len())
                    .unwrap_or_else(|| payload.wire_size());
                r.bytes_received += len;
            }
            Err(_) => {
                r.errors += 1;
                ctx.stats().incr("client.errors", 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        if token != Self::SEND {
            return;
        }
        // Send every item that is due (batches can share a timestamp).
        while self.next_item < self.items.len() {
            let due = SimTime::ZERO + self.start_delay + self.items[self.next_item].at;
            if due > ctx.now() {
                break;
            }
            let record = self.items[self.next_item].record.clone();
            let record = &record;
            let id = self.next_item as u64 + 1;
            self.next_item += 1;
            let Some(fe) = self.pick_fe(ctx) else {
                ctx.stats().incr("client.no_frontend", 1);
                continue;
            };
            self.outstanding.insert(id, (ctx.now(), record.size));
            self.report.borrow_mut().sent += 1;
            ctx.stats().incr("client.sent", 1);
            ctx.send(
                fe,
                SnsMsg::Request(Arc::new(ClientRequest {
                    id,
                    user: format!("u{}", record.user),
                    url: record.url.clone(),
                    body: Some(Arc::new(FetchRequest {
                        url: record.url.clone(),
                        mime: record.mime,
                        size: record.size,
                    })),
                })),
            );
        }
        self.schedule_next(ctx);
    }

    fn kind(&self) -> &'static str {
        "client"
    }
}
