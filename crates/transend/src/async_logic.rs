//! TranSend's request path as one `async fn` (`DESIGN.md` §6i).
//!
//! [`TranSendAsync`] is the async re-expression of
//! [`crate::logic::TranSendLogic`]: the same profile → cache → origin →
//! distill → inject flow, written top-to-bottom in one body instead of
//! smeared across `on_event` match arms. It runs behind the unchanged
//! front-end framework via [`sns_core::exec::service::AsyncSvcLogic`]
//! (select it with [`crate::TranSendBuilder::with_async_logic`]) and
//! the same body type runs against a live cluster under `sns-rt`'s
//! wall-clock driver.
//!
//! Fidelity: every stat increment, BASE fallback and dispatch the
//! legacy state machine emits appears here at the same point in the
//! same order, so an async front end is action-for-action equivalent
//! to a legacy one (asserted by `tests/async_path.rs`). Only the
//! dispatch *tags* differ — the adapter allocates await tokens
//! sequentially where the legacy logic used fixed tag constants — and
//! tags never leave the front end.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use sns_cache::{CacheKey, VirtualCache};
use sns_core::exec::service::{AsyncService, EventOutcome, SvcHandle};
use sns_core::exec::{select_some, BoxFut};
use sns_core::msg::{ClientRequest, JobResult, ProfileData};
use sns_core::{payload_as, WorkerClass};
use sns_sim::ComponentId;
use sns_tacc::cache_worker::{CacheGet, CacheGetResult, CacheInject, CacheWorker};
use sns_tacc::content::ContentObject;
use sns_tacc::origin::{FetchRequest, OriginServer};
use sns_tacc::pipeline::PipelineSpec;
use sns_tacc::profile_worker::{ProfileGet, ProfilePut, ProfileReply, ProfileWorker};
use sns_tacc::worker::TaccArgs;
use sns_workload::MimeType;

use crate::logic::{AggregateServiceRequest, PrefUpdate, TranSendConfig};

/// State shared across requests (the legacy logic's `&mut self`): the
/// consistent-hash ring and the write-through profile cache.
struct TsShared {
    cfg: TranSendConfig,
    vcache: VirtualCache<ComponentId>,
    profile_cache: BTreeMap<String, Option<ProfileData>>,
    profile_order: VecDeque<String>,
}

/// The async TranSend service: one body per request.
pub struct TranSendAsync {
    shared: Arc<Mutex<TsShared>>,
}

impl TranSendAsync {
    /// Creates the service.
    pub fn new(cfg: TranSendConfig) -> Self {
        TranSendAsync {
            shared: Arc::new(Mutex::new(TsShared {
                cfg,
                vcache: VirtualCache::new(),
                profile_cache: BTreeMap::new(),
                profile_order: VecDeque::new(),
            })),
        }
    }
}

impl AsyncService for TranSendAsync {
    fn hint_classes(&self) -> Vec<WorkerClass> {
        vec![
            WorkerClass::new(CacheWorker::CLASS),
            WorkerClass::new(ProfileWorker::CLASS),
        ]
    }

    fn handle(&mut self, request: Arc<ClientRequest>, svc: SvcHandle) -> BoxFut {
        let shared = Arc::clone(&self.shared);
        Box::pin(run(shared, request, svc))
    }
}

fn lock(shared: &Arc<Mutex<TsShared>>) -> std::sync::MutexGuard<'_, TsShared> {
    shared.lock().expect("transend shared state poisoned")
}

/// Syncs the ring with the live cache-worker set from the latest beacon
/// snapshot (§3.1.5) — the same membership a legacy callback reads
/// mid-event from the stub.
fn refresh_ring(shared: &Arc<Mutex<TsShared>>, svc: &SvcHandle) {
    let live = svc.workers_of(&WorkerClass::new(CacheWorker::CLASS));
    let mut sh = lock(shared);
    let current: Vec<_> = sh.vcache.partitions().to_vec();
    for gone in current.iter().filter(|p| !live.contains(p)) {
        sh.vcache.remove_partition(gone);
    }
    for fresh in live.iter().filter(|p| !current.contains(p)) {
        sh.vcache.add_partition(*fresh);
    }
}

fn route(shared: &Arc<Mutex<TsShared>>, key: &CacheKey) -> Option<ComponentId> {
    lock(shared).vcache.route(key).copied()
}

fn cache_profile(shared: &Arc<Mutex<TsShared>>, user: &str, profile: Option<ProfileData>) {
    let mut sh = lock(shared);
    if !sh.profile_cache.contains_key(user) {
        sh.profile_order.push_back(user.to_string());
        if sh.profile_order.len() > sh.cfg.profile_cache_cap {
            if let Some(victim) = sh.profile_order.pop_front() {
                sh.profile_cache.remove(&victim);
            }
        }
    }
    sh.profile_cache.insert(user.to_string(), profile);
}

fn plan(
    cfg: &TranSendConfig,
    fetch: &FetchRequest,
    profile: Option<&ProfileData>,
) -> (TaccArgs, PipelineSpec) {
    let args = TaccArgs::merged(&cfg.defaults, profile);
    let mut pipeline = match fetch.mime {
        MimeType::Gif => PipelineSpec::single("gif"),
        MimeType::Jpeg => PipelineSpec::single("jpeg"),
        MimeType::Html => PipelineSpec::single("html"),
        MimeType::Other => PipelineSpec::identity(),
    };
    if fetch.mime == MimeType::Html && args.get("keywords").is_some() {
        pipeline = pipeline.then("keyword");
    }
    if fetch.mime == MimeType::Html && args.get("device") == Some("palm") {
        pipeline = pipeline.then("pda");
    }
    if fetch.size < cfg.distill_threshold || args.get_bool("originals", false) {
        pipeline = PipelineSpec::identity();
    }
    (args, pipeline)
}

fn final_key(fetch: &FetchRequest, pipeline: &PipelineSpec, args: &TaccArgs) -> CacheKey {
    let v = pipeline.final_variant(args);
    if pipeline.is_empty() {
        CacheKey::original(&fetch.url)
    } else {
        CacheKey::variant(&fetch.url, v)
    }
}

/// Fire-and-forget cache injection: the `Pending` is dropped on the
/// spot, so the dispatch still runs but nobody awaits the ack (the
/// legacy `TAG_INJECT` early-return).
fn cache_inject(
    shared: &Arc<Mutex<TsShared>>,
    svc: &SvcHandle,
    key: CacheKey,
    object: ContentObject,
) {
    if let Some(worker) = route(shared, &key) {
        drop(svc.dispatch_to(
            worker,
            CacheWorker::CLASS.into(),
            "inject",
            Arc::new(CacheInject { key, object }),
            None,
        ));
    }
}

fn reply_original_degraded(svc: &SvcHandle, original: &Option<ContentObject>, why: &str) {
    if let Some(orig) = original {
        svc.incr("ts.fallback_original", 1);
        svc.observe("ts.response_bytes", orig.len() as f64);
        svc.mark_degraded();
        svc.reply(Ok(orig.clone().into_payload()));
    } else {
        svc.incr("ts.errors", 1);
        svc.reply(Err(format!("service degraded: {why}")));
    }
}

/// One TranSend request, top to bottom.
async fn run(shared: Arc<Mutex<TsShared>>, req: Arc<ClientRequest>, svc: SvcHandle) {
    svc.incr("ts.requests", 1);
    // Preference updates go to the ACID database (§3.1.4).
    if let Some(body) = &req.body {
        if let Some(update) = payload_as::<PrefUpdate>(body) {
            lock(&shared).profile_cache.remove(&req.user);
            let ack = svc
                .dispatch(
                    ProfileWorker::CLASS.into(),
                    "put",
                    Arc::new(ProfilePut {
                        user: req.user.clone(),
                        settings: update.settings.clone(),
                    }),
                    None,
                )
                .await;
            if matches!(ack, EventOutcome::Reply(JobResult::Ok(_))) {
                svc.incr("ts.pref_updates", 1);
                svc.reply(Ok(ContentObject::text(
                    "transend://prefs",
                    MimeType::Html,
                    "<html><body>preferences saved</body></html>",
                )
                .into_payload()));
            } else {
                svc.reply(Err("preference update failed".into()));
            }
            return;
        }
        if let Some(agg) = payload_as::<AggregateServiceRequest>(body).cloned() {
            run_aggregate(agg, &svc).await;
            return;
        }
    }
    let fetch = req
        .body
        .as_ref()
        .and_then(|b| payload_as::<FetchRequest>(b).cloned())
        .unwrap_or(FetchRequest {
            url: req.url.clone(),
            mime: MimeType::Other,
            size: 8 * 1024,
        });

    // Profile: write-through cache absorbs reads (§3.1.4); a missing
    // profile database means default preferences (BASE).
    let cached = lock(&shared).profile_cache.get(&req.user).cloned();
    let profile = if let Some(hit) = cached {
        svc.incr("ts.profile_cache_hits", 1);
        hit
    } else if !svc
        .workers_of(&WorkerClass::new(ProfileWorker::CLASS))
        .is_empty()
    {
        match svc
            .dispatch(
                ProfileWorker::CLASS.into(),
                "get",
                Arc::new(ProfileGet {
                    user: req.user.clone(),
                }),
                None,
            )
            .await
        {
            EventOutcome::Reply(JobResult::Ok(p)) => {
                let profile = payload_as::<ProfileReply>(&p).and_then(|r| r.profile.clone());
                cache_profile(&shared, &req.user, profile.clone());
                profile
            }
            _ => {
                svc.incr("ts.profile_unavailable", 1);
                None
            }
        }
    } else {
        svc.incr("ts.profile_unavailable", 1);
        None
    };

    let (args, pipeline) = {
        let sh = lock(&shared);
        plan(&sh.cfg, &fetch, profile.as_ref())
    };
    refresh_ring(&shared, &svc);
    let cache_distilled = lock(&shared).cfg.cache_distilled;

    // Cache lookups, falling through to the origin — the legacy
    // `start_processing`/`TAG_CACHE_*` arms, flattened. The block
    // produces the original object to distill; hits on the *final*
    // variant reply inside and return.
    let mut original: Option<ContentObject> = None;
    let obj: ContentObject = 'have: {
        if !cache_distilled && !pipeline.is_empty() {
            // Distilled variants are not cached: look up the original
            // and re-distill per request (the §4.6 measurement mode).
            let key = CacheKey::original(&fetch.url);
            if let Some(worker) = route(&shared, &key) {
                match svc
                    .dispatch_to(
                        worker,
                        CacheWorker::CLASS.into(),
                        "get",
                        Arc::new(CacheGet { key }),
                        None,
                    )
                    .await
                {
                    EventOutcome::Reply(JobResult::Ok(p)) => {
                        let hit = payload_as::<CacheGetResult>(&p).and_then(|r| r.object.clone());
                        if let Some(obj) = hit {
                            svc.incr("ts.cache_hit_orig", 1);
                            break 'have obj;
                        }
                    }
                    _ => svc.incr("ts.cache_unavailable", 1),
                }
            } else {
                // No cache workers known (bootstrap or total cache
                // loss): the cache is only an optimisation.
                svc.incr("ts.no_cache_available", 1);
            }
        } else {
            let key = final_key(&fetch, &pipeline, &args);
            if let Some(worker) = route(&shared, &key) {
                match svc
                    .dispatch_to(
                        worker,
                        CacheWorker::CLASS.into(),
                        "get",
                        Arc::new(CacheGet { key }),
                        None,
                    )
                    .await
                {
                    EventOutcome::Reply(JobResult::Ok(p)) => {
                        let hit = payload_as::<CacheGetResult>(&p).and_then(|r| r.object.clone());
                        match hit {
                            Some(obj) => {
                                svc.incr("ts.cache_hit_final", 1);
                                svc.observe("ts.response_bytes", obj.len() as f64);
                                svc.reply(Ok(obj.into_payload()));
                                return;
                            }
                            None if pipeline.is_empty() => svc.incr("ts.cache_miss", 1),
                            None => {
                                svc.incr("ts.cache_miss", 1);
                                let key = CacheKey::original(&fetch.url);
                                if let Some(worker) = route(&shared, &key) {
                                    match svc
                                        .dispatch_to(
                                            worker,
                                            CacheWorker::CLASS.into(),
                                            "get",
                                            Arc::new(CacheGet { key }),
                                            None,
                                        )
                                        .await
                                    {
                                        EventOutcome::Reply(JobResult::Ok(p)) => {
                                            let hit = payload_as::<CacheGetResult>(&p)
                                                .and_then(|r| r.object.clone());
                                            if let Some(obj) = hit {
                                                svc.incr("ts.cache_hit_orig", 1);
                                                break 'have obj;
                                            }
                                        }
                                        _ => svc.incr("ts.cache_unavailable", 1),
                                    }
                                }
                            }
                        }
                    }
                    _ => {
                        // Cache timeout/failure = miss (§3.1.5).
                        svc.incr("ts.cache_unavailable", 1);
                    }
                }
            } else {
                svc.incr("ts.no_cache_available", 1);
            }
        }
        // Origin fetch.
        match svc
            .dispatch(
                OriginServer::CLASS.into(),
                "fetch",
                Arc::new(fetch.clone()),
                None,
            )
            .await
        {
            EventOutcome::Reply(JobResult::Ok(p)) => {
                let Some(obj) = ContentObject::from_payload(&p).cloned() else {
                    svc.reply(Err("origin returned garbage".into()));
                    return;
                };
                svc.incr("ts.origin_fetches", 1);
                refresh_ring(&shared, &svc);
                cache_inject(&shared, &svc, CacheKey::original(&fetch.url), obj.clone());
                break 'have obj;
            }
            _ => {
                reply_original_degraded(&svc, &original, "origin unreachable");
                return;
            }
        }
    };

    // The original is in hand: pass through or distill (legacy
    // `have_original` + the `TAG_DISTILL0` ladder as a plain loop).
    original = Some(obj.clone());
    if pipeline.is_empty() {
        svc.incr("ts.passthrough", 1);
        svc.observe("ts.response_bytes", obj.len() as f64);
        svc.reply(Ok(obj.into_payload()));
        return;
    }
    let mut cur = obj;
    for stage_name in pipeline.stages() {
        match svc
            .dispatch(
                WorkerClass::new(format!("distiller/{stage_name}")),
                "transform",
                cur.clone().into_payload(),
                Some(Arc::new(args.as_map().clone())),
            )
            .await
        {
            EventOutcome::Reply(JobResult::Ok(p)) => {
                let Some(next) = ContentObject::from_payload(&p).cloned() else {
                    reply_original_degraded(&svc, &original, "distiller garbage");
                    return;
                };
                cur = next;
            }
            _ => {
                // Distiller failed or timed out after retries: the user
                // gets the original — approximate but fast (§3.1.8).
                reply_original_degraded(&svc, &original, "distiller unavailable");
                return;
            }
        }
    }
    svc.incr("ts.distilled", 1);
    if let Some(orig) = &original {
        let saved = orig.len().saturating_sub(cur.len());
        svc.observe("ts.bytes_saved", saved as f64);
    }
    svc.observe("ts.response_bytes", cur.len() as f64);
    if cache_distilled {
        refresh_ring(&shared, &svc);
        cache_inject(
            &shared,
            &svc,
            final_key(&fetch, &pipeline, &args),
            cur.clone(),
        );
    }
    svc.reply(Ok(cur.into_payload()));
}

/// Aggregation (§5.1): fan out the source fetches, collect them in
/// arrival order ([`select_some`] replaces the `TAG_AGG_FETCH0`
/// counter), tolerate missing sources, run the aggregator.
async fn run_aggregate(agg: AggregateServiceRequest, svc: &SvcHandle) {
    svc.incr("ts.agg_requests", 1);
    let mut fetches: Vec<Option<_>> = agg
        .sources
        .iter()
        .map(|src| {
            Some(svc.dispatch(
                OriginServer::CLASS.into(),
                "fetch",
                Arc::new(src.clone()),
                None,
            ))
        })
        .collect();
    let mut fetched: Vec<Option<ContentObject>> = vec![None; agg.sources.len()];
    let mut remaining = agg.sources.len();
    while remaining > 0 {
        let (i, outcome) = select_some(&mut fetches).await;
        remaining -= 1;
        if let EventOutcome::Reply(JobResult::Ok(p)) = outcome {
            fetched[i] = ContentObject::from_payload(&p).cloned();
        } else {
            svc.incr("ts.agg_source_missing", 1);
            svc.mark_degraded();
        }
    }
    let inputs: Vec<ContentObject> = fetched.iter().flatten().cloned().collect();
    if inputs.is_empty() {
        svc.incr("ts.errors", 1);
        svc.reply(Err("no sources reachable".into()));
        return;
    }
    match svc
        .dispatch(
            WorkerClass::new(format!("aggregator/{}", agg.aggregator)),
            "aggregate",
            Arc::new(sns_tacc::worker::AggregateRequest { inputs }),
            Some(Arc::new(agg.args.clone())),
        )
        .await
    {
        EventOutcome::Reply(JobResult::Ok(p)) => {
            svc.incr("ts.agg_answers", 1);
            svc.reply(Ok(p));
        }
        _ => {
            svc.incr("ts.errors", 1);
            svc.reply(Err("aggregator unavailable".into()));
        }
    }
}
