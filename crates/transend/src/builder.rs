//! One-call construction of a TranSend cluster (§3.1): nodes, SAN,
//! manager with per-class spawn policies, front ends, monitor, cache
//! partitions, the ACID profile database and the origin model.

use std::collections::BTreeMap;
use std::time::Duration;

use sns_core::frontend::{FeConfig, ManagerFactory};
use sns_core::manager::{Manager, ManagerConfig, WorkerFactory, WorkerSpec};
use sns_core::monitor::Monitor;
use sns_core::msg::SnsMsg;
use sns_core::worker::{WorkerStub, WorkerStubConfig};
use sns_core::{ClusterTopology, FrontEnd, SnsConfig, WorkerClass};
use sns_distillers::{
    CultureAggregator, GifDistiller, HtmlMunger, JpegDistiller, KeywordFilter,
    MetasearchAggregator, PdaSimplifier, RewebberDecrypt, RewebberEncrypt,
};
use sns_san::{LinkParams, San, SanConfig, SanMode};
use sns_sim::engine::{NodeSpec, Sim, SimConfig};
use sns_sim::sched::SchedulerKind;
use sns_sim::{ComponentId, GroupId, NodeId};
use sns_tacc::cache_worker::CacheWorker;
use sns_tacc::origin::OriginServer;
use sns_tacc::profile_worker::ProfileWorker;
use sns_tacc::worker::TaccWorkerHost;
use sns_workload::trace::TraceRecord;

use crate::async_logic::TranSendAsync;
use crate::client::{ClientReportHandle, TranSendClient};
use crate::logic::{TranSendConfig, TranSendLogic};

/// Builds the service logic — legacy state machine or its async
/// re-expression (`DESIGN.md` §6i); both are action-for-action
/// equivalent.
fn make_logic(ts: &TranSendConfig, async_logic: bool) -> Box<dyn sns_core::ServiceLogic> {
    if async_logic {
        Box::new(sns_core::exec::service::AsyncSvcLogic::new(
            TranSendAsync::new(ts.clone()),
        ))
    } else {
        Box::new(TranSendLogic::new(ts.clone()))
    }
}

/// Fluent TranSend cluster builder.
///
/// The physical shape lives in a shared [`ClusterTopology`]; everything
/// else is a service knob with a `with_*` setter. The `Default` preset
/// is the paper's §3.1 deployment (8 dedicated + 2 overflow nodes, one
/// front end, 4 cache partitions, GIF/JPEG/HTML distillers):
///
/// ```no_run
/// use sns_transend::TranSendBuilder;
///
/// let cluster = TranSendBuilder::new()
///     .with_seed(7)
///     .with_worker_nodes(4)
///     .with_distillers(["gif"])
///     .build();
/// # let _ = cluster;
/// ```
pub struct TranSendBuilder {
    topology: ClusterTopology,
    sns: SnsConfig,
    ts: TranSendConfig,
    overflow_nodes: usize,
    cache_partitions: u32,
    cache_capacity: u64,
    min_distillers: u32,
    distillers: Vec<String>,
    aggregators: Vec<String>,
    origin_penalty_scale: f64,
    profiles: Vec<(String, Vec<(String, String)>)>,
    fe_nic: Option<LinkParams>,
    distiller_crash_prob: f64,
    delta_correction: bool,
    scheduler: SchedulerKind,
    tracing: bool,
    trace_sample_rate: u32,
    async_logic: bool,
}

impl Default for TranSendBuilder {
    fn default() -> Self {
        TranSendBuilder {
            topology: ClusterTopology {
                seed: 0x7345,
                san: SanConfig::switched_100mbps(),
                worker_nodes: 8,
                frontends: 1,
                cores_per_node: 2,
            },
            sns: SnsConfig::default(),
            ts: TranSendConfig::default(),
            overflow_nodes: 2,
            cache_partitions: 4,
            cache_capacity: 512 * 1024 * 1024,
            min_distillers: 0,
            distillers: vec!["gif".into(), "jpeg".into(), "html".into()],
            aggregators: Vec::new(),
            origin_penalty_scale: 1.0,
            profiles: Vec::new(),
            fe_nic: None,
            distiller_crash_prob: 0.0,
            delta_correction: true,
            scheduler: SchedulerKind::default(),
            tracing: false,
            trace_sample_rate: 1,
            async_logic: false,
        }
    }
}

impl TranSendBuilder {
    /// The §3.1 preset; same as `Default`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the whole physical shape at once.
    pub fn with_topology(mut self, topology: ClusterTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the engine seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.topology.seed = seed;
        self
    }

    /// Selects the engine's pending-event scheduler (both kinds dispatch
    /// in bit-identical order; see [`SchedulerKind`]).
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the interconnect model.
    pub fn with_san(mut self, san: SanConfig) -> Self {
        self.topology.san = san;
        self
    }

    /// Selects the SAN fidelity mode without replacing the rest of the
    /// interconnect configuration; see [`SanMode`]. Chains like the
    /// other `with_*` setters:
    ///
    /// ```no_run
    /// use sns_san::SanMode;
    /// use sns_transend::TranSendBuilder;
    ///
    /// let cluster = TranSendBuilder::new()
    ///     .with_seed(7)
    ///     .with_san_mode(SanMode::Flow)
    ///     .build();
    /// # let _ = cluster;
    /// ```
    pub fn with_san_mode(mut self, mode: SanMode) -> Self {
        self.topology.san.mode = mode;
        self
    }

    /// Sets the SNS-layer knobs.
    pub fn with_sns(mut self, sns: SnsConfig) -> Self {
        self.sns = sns;
        self
    }

    /// Sets the service knobs.
    pub fn with_ts(mut self, ts: TranSendConfig) -> Self {
        self.ts = ts;
        self
    }

    /// Sets the number of dedicated worker-pool nodes.
    pub fn with_worker_nodes(mut self, n: usize) -> Self {
        self.topology.worker_nodes = n;
        self
    }

    /// Sets the number of overflow-pool nodes (§2.2.3).
    pub fn with_overflow_nodes(mut self, n: usize) -> Self {
        self.overflow_nodes = n;
        self
    }

    /// Sets the cores per node.
    pub fn with_cores_per_node(mut self, cores: u32) -> Self {
        self.topology.cores_per_node = cores;
        self
    }

    /// Sets the number of front ends (each on its own node).
    pub fn with_frontends(mut self, n: usize) -> Self {
        self.topology.frontends = n;
        self
    }

    /// Sets the number of cache partitions (TranSend ran 4, §3.1.5).
    pub fn with_cache_partitions(mut self, n: u32) -> Self {
        self.cache_partitions = n;
        self
    }

    /// Sets the bytes per cache partition.
    pub fn with_cache_capacity(mut self, bytes: u64) -> Self {
        self.cache_capacity = bytes;
        self
    }

    /// Sets the minimum distillers per class (0 = on-demand, §4.5).
    pub fn with_min_distillers(mut self, n: u32) -> Self {
        self.min_distillers = n;
        self
    }

    /// Sets the distiller classes to register.
    pub fn with_distillers<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.distillers = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the aggregator classes to register.
    pub fn with_aggregators<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.aggregators = names.into_iter().map(Into::into).collect();
        self
    }

    /// Scales the origin miss penalty (1.0 = the §4.4 distribution).
    pub fn with_origin_penalty_scale(mut self, scale: f64) -> Self {
        self.origin_penalty_scale = scale;
        self
    }

    /// Pre-registers user profiles.
    pub fn with_profiles(mut self, profiles: Vec<(String, Vec<(String, String)>)>) -> Self {
        self.profiles = profiles;
        self
    }

    /// Overrides the front-end NIC (the Table 2 bottleneck).
    pub fn with_fe_nic(mut self, nic: LinkParams) -> Self {
        self.fe_nic = Some(nic);
        self
    }

    /// Sets the random crash probability for image distillers.
    pub fn with_distiller_crash_prob(mut self, p: f64) -> Self {
        self.distiller_crash_prob = p;
        self
    }

    /// Enables/disables the §4.5 queue-delta correction (disable to
    /// reproduce the load-balancing oscillations).
    pub fn with_delta_correction(mut self, on: bool) -> Self {
        self.delta_correction = on;
        self
    }

    /// Enables end-to-end request tracing: every request, dispatch,
    /// queue wait and service stage is recorded as a span (virtual-time
    /// stamps), exportable via [`TranSendCluster::trace`] — see
    /// `OBSERVABILITY.md`.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Sets the head-sampling rate used when tracing: keep roughly one
    /// request in `rate` (`<= 1` keeps all). The decision stream is
    /// seeded from the topology seed, so the sampled set is a pure
    /// function of `(seed, rate)` — identical across schedulers and
    /// backends (see `OBSERVABILITY.md`).
    pub fn with_trace_sampling(mut self, rate: u32) -> Self {
        self.trace_sample_rate = rate;
        self
    }

    /// Runs the front ends on [`TranSendAsync`] — the request path as
    /// one `async fn` polled deterministically behind the unchanged
    /// framework — instead of the legacy state machine. Off by default;
    /// both emit identical actions (see `tests/async_path.rs`).
    pub fn with_async_logic(mut self, on: bool) -> Self {
        self.async_logic = on;
        self
    }
}

/// A built cluster plus the handles experiments need.
pub struct TranSendCluster {
    /// The simulation.
    pub sim: Sim<SnsMsg, San>,
    /// Live front ends (construction order).
    pub fes: Vec<ComponentId>,
    /// Nodes hosting the front ends.
    pub fe_nodes: Vec<NodeId>,
    /// The initial manager.
    pub manager: ComponentId,
    /// The monitor.
    pub monitor: ComponentId,
    /// Beacon multicast group.
    pub beacon: GroupId,
    /// Monitor multicast group.
    pub monitor_group: GroupId,
    /// Node hosting client components.
    pub client_node: NodeId,
    /// Node modelling the Internet (origin).
    pub origin_node: NodeId,
    sns: SnsConfig,
    ts: TranSendConfig,
    fe_nic: Option<LinkParams>,
    mgr_factory: ManagerFactory,
    async_logic: bool,
}

struct Wiring {
    beacon: GroupId,
    monitor_group: GroupId,
    report_period: Duration,
}

fn stub_cfg(w: &Wiring) -> WorkerStubConfig {
    WorkerStubConfig {
        beacon_group: w.beacon,
        monitor_group: w.monitor_group,
        report_period: w.report_period,
        cost_weight_unit: None,
    }
}

/// Builds a factory producing fresh distiller worker stubs for a class
/// name understood by `sns-distillers`.
fn distiller_factory(name: &str, w: &Wiring, crash_prob: f64) -> WorkerFactory {
    let name = name.to_string();
    let cfg = stub_cfg(w);
    Box::new(move || {
        let worker: Box<dyn sns_tacc::worker::TaccWorker> = match name.as_str() {
            "gif" => Box::new(GifDistiller::new().with_crash_prob(crash_prob)),
            "jpeg" => Box::new(JpegDistiller::new().with_crash_prob(crash_prob)),
            "html" => Box::new(HtmlMunger::new()),
            "keyword" => Box::new(KeywordFilter::new()),
            "pda" => Box::new(PdaSimplifier::new()),
            "rewebber-enc" => Box::new(RewebberEncrypt::new()),
            "rewebber-dec" => Box::new(RewebberDecrypt::new()),
            other => panic!("unknown distiller class {other}"),
        };
        Box::new(WorkerStub::new(
            Box::new(TaccWorkerHost::transformer(worker, BTreeMap::new())),
            cfg.clone(),
        ))
    })
}

/// Builds a factory for aggregator worker stubs.
fn aggregator_factory(name: &str, w: &Wiring) -> WorkerFactory {
    let name = name.to_string();
    let cfg = stub_cfg(w);
    Box::new(move || {
        let agg: Box<dyn sns_tacc::worker::Aggregator> = match name.as_str() {
            "culture" => Box::new(CultureAggregator::new()),
            "metasearch" => Box::new(MetasearchAggregator::new()),
            other => panic!("unknown aggregator class {other}"),
        };
        Box::new(WorkerStub::new(
            Box::new(TaccWorkerHost::aggregator(agg, BTreeMap::new())),
            cfg.clone(),
        ))
    })
}

#[allow(clippy::too_many_arguments)]
fn make_manager_factory(
    sns: SnsConfig,
    w: Wiring,
    distillers: Vec<String>,
    aggregators: Vec<String>,
    min_distillers: u32,
    cache_partitions: u32,
    cache_capacity: u64,
    profiles: Vec<(String, Vec<(String, String)>)>,
    crash_prob: f64,
) -> ManagerFactory {
    Box::new(move |incarnation| {
        let mut classes: BTreeMap<WorkerClass, WorkerSpec> = BTreeMap::new();
        for d in &distillers {
            classes.insert(
                WorkerClass::new(format!("distiller/{d}")),
                WorkerSpec::scaled(min_distillers, distiller_factory(d, &w, crash_prob)),
            );
        }
        for a in &aggregators {
            classes.insert(
                WorkerClass::new(format!("aggregator/{a}")),
                WorkerSpec::scaled(min_distillers.max(1), aggregator_factory(a, &w)),
            );
        }
        if cache_partitions > 0 {
            let cfg = stub_cfg(&w);
            classes.insert(
                WorkerClass::new(CacheWorker::CLASS),
                WorkerSpec::pinned(
                    cache_partitions,
                    Box::new(move || {
                        Box::new(WorkerStub::new(
                            Box::new(CacheWorker::new(cache_capacity, None)),
                            cfg.clone(),
                        ))
                    }),
                ),
            );
        }
        {
            let cfg = stub_cfg(&w);
            let profiles = profiles.clone();
            classes.insert(
                WorkerClass::new(ProfileWorker::CLASS),
                WorkerSpec::pinned(
                    1,
                    Box::new(move || {
                        Box::new(WorkerStub::new(
                            Box::new(ProfileWorker::seeded(&profiles)),
                            cfg.clone(),
                        ))
                    }),
                ),
            );
        }
        Box::new(Manager::new(ManagerConfig {
            sns: sns.clone(),
            beacon_group: w.beacon,
            monitor_group: w.monitor_group,
            incarnation,
            classes,
            fe_factory: None,
        }))
    })
}

impl TranSendBuilder {
    /// Builds the cluster. The caller then attaches clients and runs the
    /// simulation.
    pub fn build(self) -> TranSendCluster {
        let topo = &self.topology;
        let san = San::new(topo.san.clone());
        let mut sim: Sim<SnsMsg, San> = Sim::new(
            SimConfig {
                seed: topo.seed,
                scheduler: self.scheduler,
                ..Default::default()
            },
            san,
        );
        if self.tracing {
            sim.set_tracer(sns_core::trace::Tracer::sampled(
                sns_core::trace::Sampling::per(self.trace_sample_rate, topo.seed),
            ));
        }

        // Nodes. Worker pool is "dedicated"/"overflow" (the manager's
        // placement tags); everything else is out of the autoscaler's
        // reach.
        for _ in 0..topo.worker_nodes {
            sim.add_node(NodeSpec::new(topo.cores_per_node, "dedicated"));
        }
        for _ in 0..self.overflow_nodes {
            sim.add_node(NodeSpec::new(topo.cores_per_node, "overflow"));
        }
        let infra_node = sim.add_node(NodeSpec::new(topo.cores_per_node, "infra"));
        let fe_nodes: Vec<NodeId> = (0..topo.frontends)
            .map(|_| sim.add_node(NodeSpec::new(topo.cores_per_node, "frontend")))
            .collect();
        let client_node = sim.add_node(NodeSpec::new(4, "client"));
        let origin_node = sim.add_node(NodeSpec::new(8, "internet"));

        if let Some(nic) = &self.fe_nic {
            for &n in &fe_nodes {
                sim.net_mut().set_nic(n, nic.clone());
            }
        }

        let beacon = sim.create_group();
        let monitor_group = sim.create_group();
        let wiring = || Wiring {
            beacon,
            monitor_group,
            report_period: self.sns.report_period,
        };

        let mut mgr_factory = make_manager_factory(
            self.sns.clone(),
            wiring(),
            self.distillers.clone(),
            self.aggregators.clone(),
            self.min_distillers,
            self.cache_partitions,
            self.cache_capacity,
            self.profiles.clone(),
            self.distiller_crash_prob,
        );
        let manager = sim.spawn(infra_node, mgr_factory(1), "manager");

        let monitor = sim.spawn(
            infra_node,
            Box::new(Monitor::new(monitor_group, Duration::from_secs(10))),
            "monitor",
        );

        // The origin ("the Internet") is spawned directly — it is not a
        // managed cluster resource, but it registers itself with the
        // manager like any worker so front ends can dispatch to it.
        sim.spawn(
            origin_node,
            Box::new(WorkerStub::new(
                Box::new(OriginServer::new().with_penalty_scale(self.origin_penalty_scale)),
                stub_cfg(&wiring()),
            )),
            "origin",
        );

        let mut fes = Vec::new();
        for &node in &fe_nodes {
            let mut frontend = FrontEnd::new(
                make_logic(&self.ts, self.async_logic),
                FeConfig {
                    sns: self.sns.clone(),
                    beacon_group: beacon,
                    monitor_group,
                    manager_factory: Some(make_manager_factory(
                        self.sns.clone(),
                        wiring(),
                        self.distillers.clone(),
                        self.aggregators.clone(),
                        self.min_distillers,
                        self.cache_partitions,
                        self.cache_capacity,
                        self.profiles.clone(),
                        self.distiller_crash_prob,
                    )),
                },
            );
            frontend.set_delta_correction(self.delta_correction);
            let fe = sim.spawn(node, Box::new(frontend), "frontend");
            fes.push(fe);
        }

        TranSendCluster {
            sim,
            fes,
            fe_nodes,
            manager,
            monitor,
            beacon,
            monitor_group,
            client_node,
            origin_node,
            sns: self.sns,
            ts: self.ts,
            fe_nic: self.fe_nic,
            mgr_factory,
            async_logic: self.async_logic,
        }
    }
}

impl TranSendCluster {
    /// Attaches a playback client driving all current front ends;
    /// `retimed` pairs (send offset, trace record) come from
    /// `sns_workload::Playback`. Returns the client's report handle.
    pub fn attach_client(
        &mut self,
        retimed: Vec<(Duration, TraceRecord)>,
        start_delay: Duration,
    ) -> ClientReportHandle {
        let (client, report) = TranSendClient::new(self.fes.clone(), retimed, start_delay);
        self.sim.spawn(self.client_node, Box::new(client), "client");
        report
    }

    /// Adds a front end on a fresh node (Table 2 incremental scaling).
    /// Note: already-attached clients keep their FE list; attach clients
    /// after all front ends exist, or use one client per configuration.
    pub fn add_frontend(&mut self) -> ComponentId {
        self.add_frontend_with_logic(make_logic(&self.ts, self.async_logic))
    }

    /// Adds a front end running an arbitrary [`sns_core::ServiceLogic`]
    /// on a fresh node — the hook for hosting a different service (e.g.
    /// an async TACC pipeline) inside an already-built cluster.
    pub fn add_frontend_with_logic(
        &mut self,
        logic: Box<dyn sns_core::ServiceLogic>,
    ) -> ComponentId {
        let node = self.sim.add_node(NodeSpec::new(2, "frontend"));
        if let Some(nic) = &self.fe_nic {
            self.sim.net_mut().set_nic(node, nic.clone());
        }
        let fe = self.sim.spawn(
            node,
            Box::new(FrontEnd::new(
                logic,
                FeConfig {
                    sns: self.sns.clone(),
                    beacon_group: self.beacon,
                    monitor_group: self.monitor_group,
                    manager_factory: None,
                },
            )),
            "frontend",
        );
        self.fes.push(fe);
        self.fe_nodes.push(node);
        fe
    }

    /// Spawns a replacement manager by hand (used by experiments that
    /// killed the manager and want to measure recovery separately from
    /// the automatic path).
    pub fn spawn_manager(&mut self, incarnation: u64) -> ComponentId {
        let node = self.sim.nodes_with_tag("infra")[0];
        let mgr = (self.mgr_factory)(incarnation);
        self.sim.spawn(node, mgr, "manager")
    }

    /// All live distiller workers of a class (e.g. `"distiller/jpeg"`).
    pub fn distillers_of(&self, class: &str) -> Vec<ComponentId> {
        self.sim.components_of_kind(sns_core::intern_class(class))
    }

    /// Snapshot of the recorded request trace, or `None` unless the
    /// cluster was built with [`TranSendBuilder::with_tracing`]. Export
    /// with [`sns_core::trace::to_jsonl`] or
    /// [`sns_core::trace::to_chrome`].
    pub fn trace(&self) -> Option<sns_core::trace::TraceLog> {
        self.sim.tracer().snapshot()
    }
}
