//! Structural service descriptions for the Table 1 comparison.
//!
//! Table 1 of the paper contrasts TranSend and HotBot along six axes;
//! [`ServiceDescription`] captures those axes so the `table1_comparison`
//! harness can print them from the *actual* service configurations
//! rather than from prose.

/// One row set of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    /// Service name.
    pub name: &'static str,
    /// Load balancing strategy.
    pub load_balancing: &'static str,
    /// Application layer.
    pub application_layer: &'static str,
    /// Service layer.
    pub service_layer: &'static str,
    /// Failure management.
    pub failure_management: &'static str,
    /// Worker placement.
    pub worker_placement: &'static str,
    /// User profile (ACID) database.
    pub profile_database: &'static str,
    /// Caching strategy.
    pub caching: &'static str,
}

/// TranSend as built by this crate.
pub fn transend_description() -> ServiceDescription {
    ServiceDescription {
        name: "TranSend",
        load_balancing: "Dynamic, by queue lengths at worker nodes (lottery over beacon hints)",
        application_layer: "Composable TACC workers (distillers, filters, aggregators)",
        service_layer: "Worker dispatch logic in the front end; HTML/JS user interface",
        failure_management: "Centralized but fault-tolerant using process-peers",
        worker_placement: "Workers interchangeable; FEs and caches bound to their nodes",
        profile_database: "Embedded WAL store with front-end write-through read caches",
        caching: "Harvest-style partitions store pre- and post-transformation data",
    }
}

/// HotBot as built by the `sns-hotbot` crate.
pub fn hotbot_description() -> ServiceDescription {
    ServiceDescription {
        name: "HotBot",
        load_balancing: "Static partitioning of read-only data; every query fans out to all",
        application_layer: "Fixed search service application",
        service_layer: "Dynamic HTML result generation; HTML UI",
        failure_management: "Distributed to each node (partition loss degrades coverage)",
        worker_placement: "All workers bound to their nodes (local index partitions)",
        profile_database: "Primary/backup replicated store with synchronous log shipping",
        caching: "Integrated cache of recent searches, for incremental delivery",
    }
}

/// Renders the two descriptions side by side (Table 1).
pub fn render_table1() -> String {
    let t = transend_description();
    let h = hotbot_description();
    let rows: [(&str, &str, &str); 7] = [
        ("Load balancing", t.load_balancing, h.load_balancing),
        (
            "Application layer",
            t.application_layer,
            h.application_layer,
        ),
        ("Service layer", t.service_layer, h.service_layer),
        (
            "Failure management",
            t.failure_management,
            h.failure_management,
        ),
        ("Worker placement", t.worker_placement, h.worker_placement),
        (
            "User profile (ACID) DB",
            t.profile_database,
            h.profile_database,
        ),
        ("Caching", t.caching, h.caching),
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} | {:<68} | {}\n",
        "Component", t.name, h.name
    ));
    out.push_str(&format!("{}\n", "-".repeat(170)));
    for (axis, a, b) in rows {
        out.push_str(&format!("{axis:<24} | {a:<68} | {b}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptions_differ_on_every_axis() {
        let t = transend_description();
        let h = hotbot_description();
        assert_ne!(t.load_balancing, h.load_balancing);
        assert_ne!(t.application_layer, h.application_layer);
        assert_ne!(t.failure_management, h.failure_management);
        assert_ne!(t.worker_placement, h.worker_placement);
        assert_ne!(t.caching, h.caching);
    }

    #[test]
    fn table_renders_all_rows() {
        let table = render_table1();
        assert_eq!(table.lines().count(), 9);
        assert!(table.contains("TranSend"));
        assert!(table.contains("HotBot"));
        assert!(table.contains("Static partitioning"));
    }
}
