//! # sns-transend — the TranSend distillation proxy (§3, §4)
//!
//! TranSend is the paper's flagship service: a scalable Web proxy that
//! caches and *distills* (lossily compresses) content for the UC
//! Berkeley dialup-IP population. This crate assembles it from the
//! layers below:
//!
//! * [`logic::TranSendLogic`] — the front-end dispatch logic (§3.1.1):
//!   profile lookup (with a write-through cache, §3.1.4), virtual-cache
//!   lookup via consistent hashing over live cache workers (§3.1.5),
//!   origin fetch on miss, a per-MIME-type distillation pipeline, cache
//!   injection of post-transformation content, and the §3.1.8 BASE
//!   fallbacks (serve the original, serve a different cached variant,
//!   degrade gracefully).
//! * [`client::TranSendClient`] — the traced-client model: plays a
//!   workload trace (constant-rate or timestamped, §4.1) against the
//!   front ends with client-side balancing across them (§3.1.2), and
//!   records end-to-end latency and byte savings.
//! * [`builder::TranSendBuilder`] — one-call cluster construction: SAN,
//!   nodes, manager (with per-class spawn policies), front ends,
//!   monitor, cache partitions, profile database and origin model.
//! * [`config`] — the Table 1 structural description used by the
//!   comparison harness.

#![warn(missing_docs)]

pub mod async_logic;
pub mod builder;
pub mod client;
pub mod config;
pub mod logic;

pub use async_logic::TranSendAsync;
pub use builder::{TranSendBuilder, TranSendCluster};
pub use client::{ClientReport, TranSendClient};
pub use logic::{PrefUpdate, TranSendConfig, TranSendLogic};
