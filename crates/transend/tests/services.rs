//! The §5.1 extension services running through the full cluster: the
//! Bay Area Culture Page aggregator (fetch sources → collate → reply)
//! and the thin-client (PDA) pipeline, both inheriting scalability and
//! fault tolerance from the SNS layer without any new infrastructure.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use sns_core::msg::{ClientRequest, SnsMsg};
use sns_core::payload_as;
use sns_sim::engine::{Component, Ctx};
use sns_sim::time::SimTime;
use sns_sim::ComponentId;
use sns_tacc::content::{Body, ContentObject};
use sns_tacc::origin::FetchRequest;
use sns_transend::logic::AggregateServiceRequest;
use sns_transend::TranSendBuilder;
use sns_workload::MimeType;

/// Minimal test client sending arbitrary prepared requests.
struct RawClient {
    fe: ComponentId,
    to_send: Vec<ClientRequest>,
    delay: Duration,
}

impl Component<SnsMsg> for RawClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        ctx.timer(self.delay, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _t: u64) {
        for r in self.to_send.drain(..) {
            ctx.send(self.fe, SnsMsg::Request(Arc::new(r)));
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _from: ComponentId, msg: SnsMsg) {
        let SnsMsg::Response(resp) = msg else { return };
        ctx.stats().incr("raw.responses", 1);
        match &resp.result {
            Ok(p) => {
                if let Some(obj) = payload_as::<ContentObject>(p) {
                    if let Body::Text(t) = &obj.body {
                        if t.contains("Culture This Week") {
                            ctx.stats().incr("raw.culture_pages", 1);
                            let events: u64 = obj
                                .meta
                                .get("events")
                                .and_then(|e| e.parse().ok())
                                .unwrap_or(0);
                            ctx.stats().incr("raw.events_total", events);
                        }
                        if !t.contains('<') {
                            ctx.stats().incr("raw.pda_pages", 1);
                        }
                    }
                }
            }
            Err(_) => ctx.stats().incr("raw.errors", 1),
        }
    }
}

#[test]
fn culture_page_service_collates_origin_pages_through_the_cluster() {
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_aggregators(["culture"])
        .with_origin_penalty_scale(0.1)
        .build();
    let sources: Vec<FetchRequest> = (0..4)
        .map(|i| FetchRequest {
            url: format!("http://arts{i}.example/calendar.html"),
            mime: MimeType::Html,
            size: 6_000,
        })
        .collect();
    let request = ClientRequest {
        id: 1,
        user: "u1".into(),
        url: "transend://culture-this-week".into(),
        body: Some(Arc::new(AggregateServiceRequest {
            aggregator: "culture".into(),
            sources,
            args: BTreeMap::new(),
        })),
    };
    let fe = cluster.fes[0];
    let client_node = cluster.client_node;
    cluster.sim.spawn(
        client_node,
        Box::new(RawClient {
            fe,
            to_send: vec![request],
            delay: Duration::from_secs(4),
        }),
        "rawclient",
    );
    cluster.sim.run_until(SimTime::from_secs(120));

    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("raw.responses"), 1);
    assert_eq!(stats.counter("raw.errors"), 0);
    assert_eq!(
        stats.counter("raw.culture_pages"),
        1,
        "collated page returned"
    );
    assert!(
        stats.counter("raw.events_total") > 0,
        "the heuristics extracted events from the fetched pages"
    );
    assert_eq!(stats.counter("ts.agg_answers"), 1);
}

#[test]
fn culture_page_tolerates_unreachable_sources() {
    // One source is a huge object the origin will take ages to serve;
    // with the dispatch timeout it is treated as missing and the page is
    // produced from the remaining sources, degraded (BASE approximate
    // answers at the application layer, §5.1).
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_aggregators(["culture"])
        .with_origin_penalty_scale(3.0) // some fetches exceed the 5 s timeout
        .build();
    let sources: Vec<FetchRequest> = (0..6)
        .map(|i| FetchRequest {
            url: format!("http://slow{i}.example/cal.html"),
            mime: MimeType::Html,
            size: 5_000,
        })
        .collect();
    let request = ClientRequest {
        id: 9,
        user: "u1".into(),
        url: "transend://culture-this-week".into(),
        body: Some(Arc::new(AggregateServiceRequest {
            aggregator: "culture".into(),
            sources,
            args: BTreeMap::new(),
        })),
    };
    let fe = cluster.fes[0];
    let client_node = cluster.client_node;
    cluster.sim.spawn(
        client_node,
        Box::new(RawClient {
            fe,
            to_send: vec![request],
            delay: Duration::from_secs(4),
        }),
        "rawclient",
    );
    cluster.sim.run_until(SimTime::from_secs(400));
    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("raw.responses"), 1, "an answer always comes");
    assert_eq!(stats.counter("raw.errors"), 0);
}

#[test]
fn pda_device_profile_gets_spoon_fed_markup() {
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_distillers(["gif", "jpeg", "html", "pda"])
        .with_origin_penalty_scale(0.1)
        .with_profiles(vec![(
            "palm-user".to_string(),
            vec![("device".to_string(), "palm".to_string())],
        )])
        .build();
    let request = ClientRequest {
        id: 2,
        user: "palm-user".into(),
        url: "http://origin/page.html".into(),
        body: Some(Arc::new(FetchRequest {
            url: "http://origin/page.html".into(),
            mime: MimeType::Html,
            size: 8_000,
        })),
    };
    let fe = cluster.fes[0];
    let client_node = cluster.client_node;
    cluster.sim.spawn(
        client_node,
        Box::new(RawClient {
            fe,
            to_send: vec![request],
            delay: Duration::from_secs(4),
        }),
        "rawclient",
    );
    cluster.sim.run_until(SimTime::from_secs(200));
    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("raw.responses"), 1);
    assert_eq!(stats.counter("raw.errors"), 0);
    assert_eq!(
        stats.counter("raw.pda_pages"),
        1,
        "the palm user received tag-free spoon-fed markup"
    );
}
