//! End-to-end TranSend tests: trace-driven runs through the full stack
//! (client → FE → profile DB → virtual cache → origin → distillers →
//! cache injection → response), plus fault-injection runs.

use std::time::Duration;

use sns_sim::time::SimTime;
use sns_transend::{TranSendBuilder, TranSendCluster};
use sns_workload::playback::{Playback, Schedule};
use sns_workload::trace::{TraceGenerator, WorkloadConfig};

fn small_trace(seed: u64, rate: f64, secs: u64) -> Vec<(Duration, sns_workload::TraceRecord)> {
    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed,
        users: 50,
        shared_objects: 200,
        private_per_user: 10,
        ..Default::default()
    });
    let trace = gen.constant_rate(rate, Duration::from_secs(secs));
    Playback::new(&trace, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect()
}

fn build_small() -> TranSendCluster {
    TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(3)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.2) // keep test wall-clock tight
        .build()
}

#[test]
fn trace_run_distills_and_caches() {
    let mut cluster = build_small();
    let items = small_trace(42, 5.0, 30);
    let n = items.len() as u64;
    let report = cluster.attach_client(items, Duration::from_secs(4));
    cluster.sim.run_until(SimTime::from_secs(150));

    let r = report.borrow();
    assert_eq!(r.sent, n);
    assert_eq!(r.responses, n, "every request answered");
    assert_eq!(r.errors, 0, "no errors in a healthy cluster");
    // Distillation saves bytes overall (the whole point of TranSend).
    assert!(
        r.savings() > 0.3,
        "expected >30% byte savings, got {:.3}",
        r.savings()
    );
    drop(r);

    let stats = cluster.sim.stats();
    assert!(stats.counter("ts.distilled") > 0, "images were distilled");
    assert!(
        stats.counter("ts.cache_hit_final") > 0,
        "repeated objects hit the distilled-variant cache"
    );
    assert!(stats.counter("ts.origin_fetches") > 0);
    // Profile cache absorbed most reads.
    assert!(stats.counter("ts.profile_cache_hits") > 0);
}

#[test]
fn per_user_customization_reaches_workers() {
    // One registered user insists on high quality: their images shrink
    // less than default users'.
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.2)
        .with_profiles(vec![(
            "u1".to_string(),
            vec![
                ("quality".to_string(), "90".to_string()),
                ("scale".to_string(), "1".to_string()),
            ],
        )])
        .build();
    let items = small_trace(43, 4.0, 25);
    let n = items.len() as u64;
    let report = cluster.attach_client(items, Duration::from_secs(4));
    cluster.sim.run_until(SimTime::from_secs(120));
    let r = report.borrow();
    assert_eq!(r.responses, n);
    assert_eq!(r.errors, 0);
}

#[test]
fn distiller_crashes_degrade_but_never_fail() {
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(2)
        .with_origin_penalty_scale(0.2)
        .with_distiller_crash_prob(0.2) // pathological inputs (§3.1.6)
        .build();
    let items = small_trace(44, 4.0, 40);
    let n = items.len() as u64;
    let report = cluster.attach_client(items, Duration::from_secs(4));
    cluster.sim.run_until(SimTime::from_secs(400));

    let r = report.borrow();
    assert_eq!(r.responses, n, "every request answered despite crashes");
    assert_eq!(r.errors, 0, "crashes degrade answers, never fail them");
    drop(r);
    let stats = cluster.sim.stats();
    assert!(stats.counter("worker.crashes") > 0, "crashes did occur");
    // Process peers restarted the crashed distillers.
    assert!(stats.counter("manager.spawns") > stats.counter("worker.crashes"));
}

#[test]
fn total_cache_loss_is_only_a_performance_hit() {
    let mut cluster = build_small();
    let items = small_trace(45, 4.0, 30);
    let n = items.len() as u64;
    let report = cluster.attach_client(items, Duration::from_secs(4));
    // Kill every cache partition mid-run: BASE data, losable.
    cluster.sim.at(SimTime::from_secs(15), |sim| {
        for c in sim.components_of_kind(sns_core::intern_class("cache")) {
            sim.kill_component(c);
        }
    });
    cluster.sim.run_until(SimTime::from_secs(200));
    let r = report.borrow();
    assert_eq!(r.responses, n, "cache loss must not lose requests");
    assert_eq!(r.errors, 0);
}
