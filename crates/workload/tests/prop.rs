//! Property tests for the workload model: trace serialisation
//! round-trips, playback re-timing respects each schedule's contract,
//! object identity is stable, and samplers stay within bounds.

use std::time::Duration;

use sns_testkit::{gens, props, tk_assert, tk_assert_eq, Gen};

use sns_sim::rng::Pcg32;
use sns_workload::playback::{Playback, Schedule};
use sns_workload::trace::{Trace, TraceGenerator, TraceRecord, WorkloadConfig};
use sns_workload::zipf::Zipf;
use sns_workload::MimeType;

fn record_gen() -> Gen<TraceRecord> {
    let ns = gens::u64_in(0..1_000_000_000);
    let user = gens::any_u32();
    let url = gens::string("[a-zA-Z0-9/:._-]{1,40}");
    let mime = gens::usize_in(0..4);
    let size = gens::u64_in(1..1_000_000);
    Gen::new(move |src| TraceRecord {
        at: Duration::from_nanos(ns.run(src)),
        user: user.run(src),
        url: url.run(src),
        mime: [
            MimeType::Gif,
            MimeType::Html,
            MimeType::Jpeg,
            MimeType::Other,
        ][mime.run(src)],
        size: size.run(src),
    })
}

props! {
    fn tsv_roundtrip_arbitrary_records(records in gens::vec(record_gen(), 0..40)) {
        let mut records = records;
        records.sort_by_key(|r| r.at);
        let trace = Trace { records };
        let parsed = Trace::from_tsv(&trace.to_tsv()).unwrap();
        tk_assert_eq!(parsed.records, trace.records);
    }

    fn playback_constant_rate_is_evenly_spaced(
        n in gens::usize_in(1..50),
        rate in gens::f64_in(0.5..100.0),
    ) {
        let records: Vec<TraceRecord> = (0..n)
            .map(|i| TraceRecord {
                at: Duration::from_millis(i as u64 * 37),
                user: 0,
                url: format!("u{i}"),
                mime: MimeType::Gif,
                size: 100,
            })
            .collect();
        let trace = Trace { records };
        let times: Vec<Duration> = Playback::new(&trace, Schedule::ConstantRate(rate))
            .map(|(at, _)| at)
            .collect();
        for (i, at) in times.iter().enumerate() {
            let expect = i as f64 / rate;
            tk_assert!((at.as_secs_f64() - expect).abs() < 1e-9);
        }
    }

    fn playback_acceleration_preserves_order_and_scales(
        k in gens::f64_in(0.1..16.0),
        offsets in gens::vec(gens::u64_in(0..10_000), 1..30),
    ) {
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        let records: Vec<TraceRecord> = sorted
            .iter()
            .map(|&ms| TraceRecord {
                at: Duration::from_millis(ms),
                user: 0,
                url: "u".into(),
                mime: MimeType::Gif,
                size: 1,
            })
            .collect();
        let trace = Trace { records };
        let times: Vec<f64> = Playback::new(&trace, Schedule::Accelerated(k))
            .map(|(at, r)| {
                let expect = r.at.as_secs_f64() / k;
                assert!((at.as_secs_f64() - expect).abs() < 1e-9);
                at.as_secs_f64()
            })
            .collect();
        tk_assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    fn object_identity_is_stable_across_generators(seed in gens::any_u64()) {
        let cfg = WorkloadConfig {
            seed,
            users: 20,
            shared_objects: 50,
            private_per_user: 5,
            ..Default::default()
        };
        let mut g1 = TraceGenerator::new(cfg.clone());
        let mut g2 = TraceGenerator::new(cfg);
        let t1 = g1.constant_rate(20.0, Duration::from_secs(10));
        let t2 = g2.constant_rate(20.0, Duration::from_secs(10));
        tk_assert_eq!(t1.records, t2.records);
    }

    fn zipf_samples_in_range(
        n in gens::usize_in(1..5000),
        alpha in gens::f64_in(0.1..2.5),
        seed in gens::any_u64(),
    ) {
        let z = Zipf::new(n, alpha);
        let mut rng = Pcg32::new(seed);
        for _ in 0..200 {
            tk_assert!(z.sample(&mut rng) < n);
        }
    }
}
