//! Property tests for the workload model: trace serialisation
//! round-trips, playback re-timing respects each schedule's contract,
//! object identity is stable, and samplers stay within bounds.

use std::time::Duration;

use proptest::prelude::*;

use sns_sim::rng::Pcg32;
use sns_workload::playback::{Playback, Schedule};
use sns_workload::trace::{Trace, TraceGenerator, TraceRecord, WorkloadConfig};
use sns_workload::zipf::Zipf;
use sns_workload::MimeType;

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..1_000_000_000,
        any::<u32>(),
        "[a-zA-Z0-9/:._-]{1,40}",
        0usize..4,
        1u64..1_000_000,
    )
        .prop_map(|(ns, user, url, mime, size)| TraceRecord {
            at: Duration::from_nanos(ns),
            user,
            url,
            mime: [
                MimeType::Gif,
                MimeType::Html,
                MimeType::Jpeg,
                MimeType::Other,
            ][mime],
            size,
        })
}

proptest! {
    #[test]
    fn tsv_roundtrip_arbitrary_records(mut records in proptest::collection::vec(record_strategy(), 0..40)) {
        records.sort_by_key(|r| r.at);
        let trace = Trace { records };
        let parsed = Trace::from_tsv(&trace.to_tsv()).unwrap();
        prop_assert_eq!(parsed.records, trace.records);
    }

    #[test]
    fn playback_constant_rate_is_evenly_spaced(
        n in 1usize..50,
        rate in 0.5f64..100.0,
    ) {
        let records: Vec<TraceRecord> = (0..n)
            .map(|i| TraceRecord {
                at: Duration::from_millis(i as u64 * 37),
                user: 0,
                url: format!("u{i}"),
                mime: MimeType::Gif,
                size: 100,
            })
            .collect();
        let trace = Trace { records };
        let times: Vec<Duration> = Playback::new(&trace, Schedule::ConstantRate(rate))
            .map(|(at, _)| at)
            .collect();
        for (i, at) in times.iter().enumerate() {
            let expect = i as f64 / rate;
            prop_assert!((at.as_secs_f64() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn playback_acceleration_preserves_order_and_scales(
        k in 0.1f64..16.0,
        offsets in proptest::collection::vec(0u64..10_000, 1..30),
    ) {
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        let records: Vec<TraceRecord> = sorted
            .iter()
            .map(|&ms| TraceRecord {
                at: Duration::from_millis(ms),
                user: 0,
                url: "u".into(),
                mime: MimeType::Gif,
                size: 1,
            })
            .collect();
        let trace = Trace { records };
        let times: Vec<f64> = Playback::new(&trace, Schedule::Accelerated(k))
            .map(|(at, r)| {
                let expect = r.at.as_secs_f64() / k;
                assert!((at.as_secs_f64() - expect).abs() < 1e-9);
                at.as_secs_f64()
            })
            .collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn object_identity_is_stable_across_generators(seed in any::<u64>()) {
        let cfg = WorkloadConfig {
            seed,
            users: 20,
            shared_objects: 50,
            private_per_user: 5,
            ..Default::default()
        };
        let mut g1 = TraceGenerator::new(cfg.clone());
        let mut g2 = TraceGenerator::new(cfg);
        let t1 = g1.constant_rate(20.0, Duration::from_secs(10));
        let t2 = g2.constant_rate(20.0, Duration::from_secs(10));
        prop_assert_eq!(t1.records, t2.records);
    }

    #[test]
    fn zipf_samples_in_range(n in 1usize..5000, alpha in 0.1f64..2.5, seed in any::<u64>()) {
        let z = Zipf::new(n, alpha);
        let mut rng = Pcg32::new(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
