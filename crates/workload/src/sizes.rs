//! Per-MIME content-length distributions calibrated to Figure 5.
//!
//! Published statistics reproduced here:
//!
//! * mean content lengths — HTML 5131 B, GIF 3428 B, JPEG 12070 B;
//! * the GIF distribution has **two plateaus**: icons/bullets below the
//!   1 KB distillation threshold and photos/cartoons above it;
//! * the JPEG distribution "falls off rapidly under the 1 KB mark";
//! * most objects are small but "the average byte transferred is part of
//!   large content (3–12 KB)".
//!
//! Each type is a (mixture of) log-normal(s), clamped to a realistic
//! range.

use sns_sim::rng::Pcg32;

use crate::MimeType;

/// Minimum generated object size in bytes.
pub const MIN_SIZE: u64 = 48;
/// Maximum generated object size in bytes.
pub const MAX_SIZE: u64 = 2 * 1024 * 1024;

/// One log-normal component: `exp(N(mu, sigma))` in bytes.
#[derive(Debug, Clone, Copy)]
struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Component with a target arithmetic mean in bytes.
    fn from_mean(mean: f64, sigma: f64) -> Self {
        // mean = exp(mu + sigma^2 / 2)  =>  mu = ln(mean) - sigma^2 / 2.
        LogNormal {
            mu: mean.ln() - sigma * sigma / 2.0,
            sigma,
        }
    }

    fn sample(&self, rng: &mut Pcg32) -> f64 {
        rng.lognormal(self.mu, self.sigma)
    }
}

/// The Figure 5 size model.
#[derive(Debug, Clone)]
pub struct SizeModel {
    gif_icon: LogNormal,
    gif_photo: LogNormal,
    /// Probability a GIF is an icon (the sub-1 KB plateau).
    gif_icon_frac: f64,
    html: LogNormal,
    jpeg: LogNormal,
    other: LogNormal,
}

impl Default for SizeModel {
    fn default() -> Self {
        // GIF mixture calibrated so the aggregate mean is 3428 B with
        // ~45% icons: 0.45 * 400 + 0.55 * mean_photo = 3428
        // => mean_photo ≈ 5906.
        SizeModel {
            gif_icon: LogNormal::from_mean(400.0, 0.7),
            gif_photo: LogNormal::from_mean(5906.0, 0.9),
            gif_icon_frac: 0.45,
            html: LogNormal::from_mean(5131.0, 1.15),
            jpeg: LogNormal::from_mean(12070.0, 0.85),
            other: LogNormal::from_mean(4000.0, 1.2),
        }
    }
}

impl SizeModel {
    /// Draws a content length in bytes for the given type.
    pub fn sample(&self, mime: MimeType, rng: &mut Pcg32) -> u64 {
        let raw = match mime {
            MimeType::Gif => {
                if rng.chance(self.gif_icon_frac) {
                    self.gif_icon.sample(rng)
                } else {
                    self.gif_photo.sample(rng)
                }
            }
            MimeType::Html => self.html.sample(rng),
            MimeType::Jpeg => self.jpeg.sample(rng),
            MimeType::Other => self.other.sample(rng),
        };
        (raw as u64).clamp(MIN_SIZE, MAX_SIZE)
    }

    /// Paper-reported mean for a type (calibration target).
    pub fn paper_mean(mime: MimeType) -> f64 {
        match mime {
            MimeType::Gif => 3428.0,
            MimeType::Html => 5131.0,
            MimeType::Jpeg => 12070.0,
            MimeType::Other => 4000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(mime: MimeType, n: usize) -> f64 {
        let model = SizeModel::default();
        let mut rng = Pcg32::new(55);
        (0..n)
            .map(|_| model.sample(mime, &mut rng) as f64)
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn means_match_figure_5() {
        for mime in [MimeType::Gif, MimeType::Html, MimeType::Jpeg] {
            let m = mean_of(mime, 400_000);
            let target = SizeModel::paper_mean(mime);
            let err = (m - target).abs() / target;
            assert!(
                err < 0.06,
                "{mime}: mean {m:.0} vs paper {target} ({err:.3})"
            );
        }
    }

    #[test]
    fn gif_is_bimodal_around_1kb() {
        let model = SizeModel::default();
        let mut rng = Pcg32::new(56);
        let mut under_1k = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if model.sample(MimeType::Gif, &mut rng) < 1024 {
                under_1k += 1;
            }
        }
        let frac = under_1k as f64 / n as f64;
        // The icon plateau: a substantial sub-1 KB population…
        assert!(frac > 0.30 && frac < 0.60, "sub-1KB GIF fraction {frac}");
    }

    #[test]
    fn jpeg_rarely_under_1kb() {
        let model = SizeModel::default();
        let mut rng = Pcg32::new(57);
        let n = 100_000;
        let under: u32 = (0..n)
            .map(|_| u32::from(model.sample(MimeType::Jpeg, &mut rng) < 1024))
            .sum();
        let frac = under as f64 / n as f64;
        assert!(frac < 0.05, "sub-1KB JPEG fraction {frac}");
    }

    #[test]
    fn sizes_clamped() {
        let model = SizeModel::default();
        let mut rng = Pcg32::new(58);
        for _ in 0..100_000 {
            let s = model.sample(MimeType::Html, &mut rng);
            assert!((MIN_SIZE..=MAX_SIZE).contains(&s));
        }
    }
}
