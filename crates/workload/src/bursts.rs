//! The Figure 6 arrival process: a diurnal cycle overlaid with
//! self-similar bursts.
//!
//! §4.2: "Burstiness is a fundamental property of a great variety of
//! computing systems, and can be observed across all time scales." The
//! traced load shows a strong 24-hour cycle (5.8 req/s average, 12.6
//! req/s peak over 2-minute buckets) with finer-grained bursts at the
//! 30-second and 1-second scales.
//!
//! The model is a deterministic multiplicative cascade (binomial
//! *b-model*, the standard construction for self-similar traffic) applied
//! on top of a sinusoid-plus-floor diurnal rate, sampled as an
//! inhomogeneous Poisson process by thinning.

use std::time::Duration;

use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;

/// The 24-hour deterministic rate component.
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    /// Mean request rate (req/s) over a full day.
    pub mean_rate: f64,
    /// Relative amplitude of the daily swing in `[0,1)`.
    pub amplitude: f64,
    /// Hour of day (0–24) at which load peaks.
    pub peak_hour: f64,
}

impl Default for DiurnalProfile {
    /// Calibrated to Figure 6(a): 5.8 req/s average with evening peak.
    fn default() -> Self {
        DiurnalProfile {
            mean_rate: 5.8,
            amplitude: 0.75,
            peak_hour: 22.0,
        }
    }
}

impl DiurnalProfile {
    /// Instantaneous diurnal rate (req/s) at an offset into the day.
    pub fn rate_at(&self, t: Duration) -> f64 {
        let hours = t.as_secs_f64() / 3600.0 % 24.0;
        let phase = (hours - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        self.mean_rate * (1.0 + self.amplitude * phase.cos())
    }
}

/// Multiplicative cascade burst modulation.
///
/// The day is recursively halved `levels` times; at each node one half is
/// weighted `2b` and the other `2(1-b)` (choice decided by a hash of the
/// node so the cascade is deterministic per seed). The product along the
/// path to a leaf is that leaf interval's burst multiplier; its mean over
/// leaves is 1, so the diurnal mean is preserved.
#[derive(Debug, Clone)]
pub struct BurstCascade {
    /// Cascade bias in `(0.5, 1)`; higher = burstier. 0.5 disables.
    pub bias: f64,
    /// Number of halving levels (leaf width = span / 2^levels).
    pub levels: u32,
    /// Total span the cascade covers.
    pub span: Duration,
    seed: u64,
}

impl BurstCascade {
    /// Creates a cascade over `span` with `levels` halvings.
    pub fn new(span: Duration, levels: u32, bias: f64, seed: u64) -> Self {
        assert!((0.5..1.0).contains(&bias), "bias in [0.5, 1)");
        assert!(levels <= 40);
        BurstCascade {
            bias,
            levels,
            span,
            seed,
        }
    }

    fn heavy_side(&self, level: u32, prefix: u64) -> bool {
        // Deterministic per (seed, level, prefix): a splitmix-style hash.
        let mut z = self
            .seed
            .wrapping_add((u64::from(level) << 48) ^ prefix)
            .wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) & 1 == 1
    }

    /// Burst multiplier at time offset `t` (mean ≈ 1 over the span).
    pub fn multiplier_at(&self, t: Duration) -> f64 {
        let span_ns = self.span.as_nanos().max(1) as u64;
        let pos = (t.as_nanos() as u64) % span_ns;
        // Walk down the cascade: at each level decide which half `pos`
        // falls in and multiply by that side's weight.
        let mut mult = 1.0;
        let mut lo = 0u64;
        let mut width = span_ns;
        let mut prefix = 1u64;
        for level in 0..self.levels {
            width /= 2;
            if width == 0 {
                break;
            }
            let right = pos >= lo + width;
            if right {
                lo += width;
            }
            prefix = (prefix << 1) | u64::from(right);
            let heavy_right = self.heavy_side(level, prefix >> 1);
            let is_heavy = right == heavy_right;
            mult *= if is_heavy {
                2.0 * self.bias
            } else {
                2.0 * (1.0 - self.bias)
            };
        }
        mult
    }
}

/// The full Figure 6 arrival process: diurnal × cascade, sampled by
/// Poisson thinning.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    /// Deterministic daily cycle.
    pub diurnal: DiurnalProfile,
    /// Burst modulation.
    pub cascade: BurstCascade,
    /// Extra cap applied to the instantaneous rate (safety).
    pub max_rate: f64,
}

impl ArrivalProcess {
    /// Creates the default paper-calibrated process for a given seed.
    pub fn paper_default(seed: u64) -> Self {
        ArrivalProcess {
            diurnal: DiurnalProfile::default(),
            // An ~34-minute cascade with 11 halvings (leaf width 1 s):
            // bursts exist at every bucket scale Figure 6 uses (1 s,
            // 30 s, 120 s) but the *daily* envelope stays diurnal, so
            // 2-minute-bucket peaks land near the paper's 12.6 req/s
            // over a 5.8 req/s mean while 1-second buckets still spike
            // to ~20 req/s.
            cascade: BurstCascade::new(Duration::from_secs(2048), 11, 0.55, seed),
            max_rate: 30.0,
        }
    }

    /// Instantaneous rate λ(t) in req/s.
    pub fn rate_at(&self, t: Duration) -> f64 {
        (self.diurnal.rate_at(t) * self.cascade.multiplier_at(t)).min(self.max_rate)
    }

    /// Generates arrival offsets over `[0, horizon)` by thinning.
    pub fn arrivals(&self, horizon: Duration, rng: &mut Pcg32) -> Vec<Duration> {
        let lambda_max = self.max_rate;
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let horizon_s = horizon.as_secs_f64();
        loop {
            t += rng.exp(1.0 / lambda_max);
            if t >= horizon_s {
                break;
            }
            let d = Duration::from_secs_f64(t);
            if rng.f64() < self.rate_at(d) / lambda_max {
                out.push(d);
            }
        }
        out
    }

    /// Buckets arrival counts for plotting (Figure 6 histograms).
    pub fn bucketize(arrivals: &[Duration], bucket: Duration, horizon: Duration) -> Vec<u64> {
        let nb = (horizon.as_nanos() / bucket.as_nanos().max(1)) as usize;
        let mut out = vec![0u64; nb.max(1)];
        for &a in arrivals {
            let i = (a.as_nanos() / bucket.as_nanos().max(1)) as usize;
            if i < out.len() {
                out[i] += 1;
            }
        }
        out
    }
}

/// Converts a day offset to a [`SimTime`] (convenience for harnesses).
pub fn day_offset(t: Duration) -> SimTime {
    SimTime::ZERO + t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_mean_and_swing() {
        let d = DiurnalProfile::default();
        let n = 24 * 60;
        let rates: Vec<f64> = (0..n)
            .map(|i| d.rate_at(Duration::from_secs(i as u64 * 60)))
            .collect();
        let mean = rates.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.8).abs() < 0.05, "mean {mean}");
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 9.0 && min < 2.5, "swing {min}..{max}");
    }

    #[test]
    fn cascade_preserves_mean_and_is_bursty() {
        let c = BurstCascade::new(Duration::from_secs(3600), 12, 0.65, 9);
        let n = 4096;
        let mults: Vec<f64> = (0..n)
            .map(|i| c.multiplier_at(Duration::from_secs_f64(i as f64 * 3600.0 / n as f64)))
            .collect();
        let mean = mults.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.15, "cascade mean {mean}");
        let max = mults.iter().cloned().fold(0.0, f64::max);
        assert!(max > 3.0, "cascade must produce bursts, max {max}");
    }

    #[test]
    fn cascade_is_deterministic() {
        let c1 = BurstCascade::new(Duration::from_secs(3600), 10, 0.62, 42);
        let c2 = BurstCascade::new(Duration::from_secs(3600), 10, 0.62, 42);
        for i in 0..100 {
            let t = Duration::from_secs(i * 36);
            assert_eq!(c1.multiplier_at(t), c2.multiplier_at(t));
        }
    }

    #[test]
    fn arrivals_roughly_match_mean_rate() {
        let p = ArrivalProcess::paper_default(3);
        let mut rng = Pcg32::new(3);
        let horizon = Duration::from_secs(2 * 3600);
        let arr = p.arrivals(horizon, &mut rng);
        let rate = arr.len() as f64 / horizon.as_secs_f64();
        // Two evening-ish hours; just require a sane band.
        assert!(rate > 1.0 && rate < 30.0, "rate {rate}");
        // Sorted, in-range.
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|&a| a < horizon));
    }

    #[test]
    fn figure6_band_statistics() {
        // Full-day run: 2-minute buckets must average ≈5.8 req/s with a
        // peak comfortably above the mean (paper: 12.6 max).
        let p = ArrivalProcess::paper_default(11);
        let mut rng = Pcg32::new(11);
        let day = Duration::from_secs(24 * 3600);
        let arr = p.arrivals(day, &mut rng);
        let buckets = ArrivalProcess::bucketize(&arr, Duration::from_secs(120), day);
        let mean_rate = buckets.iter().sum::<u64>() as f64 / buckets.len() as f64 / 120.0;
        let max_rate = *buckets.iter().max().unwrap() as f64 / 120.0;
        assert!((mean_rate - 5.8).abs() < 0.9, "day mean {mean_rate}");
        assert!(
            max_rate > 1.5 * mean_rate,
            "peak {max_rate} vs mean {mean_rate}"
        );
    }
}
