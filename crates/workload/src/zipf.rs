//! Finite Zipf sampling via an inverse-CDF table.
//!
//! Web object popularity is classically Zipf-like; the §4.4 cache
//! simulations need a popularity skew so that a modest cache captures a
//! large fraction of references.

use sns_sim::rng::Pcg32;

/// A Zipf(α) distribution over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `alpha` (> 0).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha <= 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        assert!(alpha > 0.0, "zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (never: `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let u = rng.f64();
        // First index whose cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of a rank (for analytical checks).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_in_range_and_skewed() {
        let z = Zipf::new(1000, 0.8);
        let mut rng = Pcg32::new(5);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            counts[r] += 1;
        }
        // Rank 0 must dominate rank 500 heavily.
        assert!(counts[0] > 20 * counts[500].max(1));
        // Empirical top-rank frequency tracks the pmf.
        let emp = counts[0] as f64 / 100_000.0;
        assert!((emp - z.pmf(0)).abs() < 0.01, "emp {emp} pmf {}", z.pmf(0));
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 1.1);
        let total: f64 = (0..500).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 0.8);
        let mut rng = Pcg32::new(6);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
