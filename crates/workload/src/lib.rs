//! # sns-workload — the traced HTTP workload model
//!
//! The paper's evaluation (§4.1–§4.2) is driven by a 1.5-month trace of
//! ~20 million HTTP requests from the UC Berkeley dialup-IP population
//! (~8000 active users behind 600 modems). The trace itself is not
//! available, so this crate implements a synthetic workload calibrated to
//! every statistic the paper publishes:
//!
//! * **MIME mix** (§4.1): GIF 50%, HTML 22%, JPEG 18%, other 10%;
//! * **content-length distributions** (Figure 5): mean sizes HTML 5131 B,
//!   GIF 3428 B, JPEG 12070 B; a *bimodal* GIF distribution (icon plateau
//!   below 1 KB, photo plateau above) and a JPEG distribution that falls
//!   off rapidly below 1 KB;
//! * **burstiness across time scales** (Figure 6): a strong 24-hour
//!   diurnal cycle overlaid with self-similar short-time-scale bursts
//!   (multiplicative b-model cascade), averaging ≈5.8 req/s with ≈12.6
//!   req/s peaks in 2-minute buckets;
//! * a **reference-locality model** for the §4.4 cache studies: a shared
//!   Zipf-popular core plus per-user private working sets, so hit rate
//!   grows with population until working sets exceed the cache.
//!
//! [`playback::Playback`] reproduces the paper's trace playback engine
//! (§4.1): constant-rate mode or faithful timestamped playback.

#![warn(missing_docs)]

pub mod bursts;
pub mod mix;
pub mod playback;
pub mod replay;
pub mod sizes;
pub mod trace;
pub mod zipf;

pub use bursts::{ArrivalProcess, DiurnalProfile};
pub use mix::MimeMix;
pub use playback::{Playback, Schedule};
pub use replay::{EpochLoad, FlashCrowd, ReplayLoad};
pub use sizes::SizeModel;
pub use trace::{Trace, TraceGenerator, TraceRecord, WorkloadConfig};
pub use zipf::Zipf;

/// Content types distinguished by the paper's trace analysis (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MimeType {
    /// `image/gif` — 50% of traced requests.
    Gif,
    /// `text/html` — 22% of traced requests.
    Html,
    /// `image/jpeg` — 18% of traced requests.
    Jpeg,
    /// Everything else — passed through undistilled.
    Other,
}

impl MimeType {
    /// Canonical MIME string.
    pub fn as_str(self) -> &'static str {
        match self {
            MimeType::Gif => "image/gif",
            MimeType::Html => "text/html",
            MimeType::Jpeg => "image/jpeg",
            MimeType::Other => "application/octet-stream",
        }
    }

    /// File extension used in generated URLs.
    pub fn extension(self) -> &'static str {
        match self {
            MimeType::Gif => "gif",
            MimeType::Html => "html",
            MimeType::Jpeg => "jpg",
            MimeType::Other => "bin",
        }
    }
}

impl std::fmt::Display for MimeType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mime_strings() {
        assert_eq!(MimeType::Gif.as_str(), "image/gif");
        assert_eq!(MimeType::Jpeg.extension(), "jpg");
        assert_eq!(format!("{}", MimeType::Html), "text/html");
    }
}
