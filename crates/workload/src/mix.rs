//! The traced MIME mix (§4.1): GIF 50%, HTML 22%, JPEG 18%, other 10%.

use sns_sim::rng::Pcg32;

use crate::MimeType;

/// Request mix over MIME types.
#[derive(Debug, Clone)]
pub struct MimeMix {
    /// (type, weight) pairs; weights need not sum to 1.
    entries: Vec<(MimeType, f64)>,
}

impl Default for MimeMix {
    /// The §4.1 trace mix.
    fn default() -> Self {
        MimeMix {
            entries: vec![
                (MimeType::Gif, 0.50),
                (MimeType::Html, 0.22),
                (MimeType::Jpeg, 0.18),
                (MimeType::Other, 0.10),
            ],
        }
    }
}

impl MimeMix {
    /// A custom mix; weights must be positive.
    pub fn new(entries: Vec<(MimeType, f64)>) -> Self {
        assert!(!entries.is_empty());
        assert!(entries.iter().all(|&(_, w)| w > 0.0));
        MimeMix { entries }
    }

    /// A degenerate mix of a single type (used by the Table 2 fixed-JPEG
    /// scalability workload).
    pub fn only(mime: MimeType) -> Self {
        MimeMix {
            entries: vec![(mime, 1.0)],
        }
    }

    /// Draws a MIME type.
    pub fn sample(&self, rng: &mut Pcg32) -> MimeType {
        let weights: Vec<f64> = self.entries.iter().map(|&(_, w)| w).collect();
        self.entries[rng.weighted(&weights)].0
    }

    /// The weight share of a type in `[0,1]`.
    pub fn share(&self, mime: MimeType) -> f64 {
        let total: f64 = self.entries.iter().map(|&(_, w)| w).sum();
        self.entries
            .iter()
            .filter(|&&(m, _)| m == mime)
            .map(|&(_, w)| w)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_trace_shares() {
        let mix = MimeMix::default();
        let mut rng = Pcg32::new(77);
        let n = 200_000;
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..n {
            *counts.entry(mix.sample(&mut rng)).or_insert(0u32) += 1;
        }
        let frac = |m| counts[&m] as f64 / n as f64;
        assert!((frac(MimeType::Gif) - 0.50).abs() < 0.01);
        assert!((frac(MimeType::Html) - 0.22).abs() < 0.01);
        assert!((frac(MimeType::Jpeg) - 0.18).abs() < 0.01);
        assert!((frac(MimeType::Other) - 0.10).abs() < 0.01);
    }

    #[test]
    fn only_mix_is_degenerate() {
        let mix = MimeMix::only(MimeType::Jpeg);
        let mut rng = Pcg32::new(78);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut rng), MimeType::Jpeg);
        }
        assert_eq!(mix.share(MimeType::Jpeg), 1.0);
        assert_eq!(mix.share(MimeType::Gif), 0.0);
    }
}
