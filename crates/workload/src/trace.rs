//! Synthetic trace generation with reference locality.
//!
//! Object population model (for the §4.4 cache studies): a *shared* pool
//! of Zipf-popular objects (cross-user locality — the reason larger
//! populations see higher hit rates) plus a *private* per-user working
//! set. Each object has a stable identity: its MIME type and size are
//! derived deterministically from the workload seed and object name, so
//! repeated references see the same bytes.

use std::fmt::Write as _;
use std::time::Duration;

use sns_sim::rng::Pcg32;

use crate::bursts::ArrivalProcess;
use crate::mix::MimeMix;
use crate::sizes::SizeModel;
use crate::zipf::Zipf;
use crate::MimeType;

/// Workload shape parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// RNG seed; everything derives from it.
    pub seed: u64,
    /// Active user population (paper: ~8000 over the trace).
    pub users: u32,
    /// Size of the shared Zipf-popular object pool.
    pub shared_objects: usize,
    /// Private working-set size per user.
    pub private_per_user: u32,
    /// Probability a reference goes to the shared pool.
    pub shared_prob: f64,
    /// Zipf exponent of shared-pool popularity.
    pub zipf_alpha: f64,
    /// Probability a request revisits one of the user's own recent
    /// objects (per-user temporal locality: back buttons, frames,
    /// repeat visits). This is what makes per-user working sets real —
    /// and what a too-small cache destroys (§4.4 falloff).
    pub revisit_prob: f64,
    /// MIME mix of generated objects.
    pub mix: MimeMix,
    /// Size model of generated objects.
    pub sizes: SizeModel,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x7ace,
            users: 8000,
            shared_objects: 40_000,
            private_per_user: 200,
            shared_prob: 0.65,
            zipf_alpha: 0.85,
            revisit_prob: 0.25,
            mix: MimeMix::default(),
            sizes: SizeModel::default(),
        }
    }
}

/// One traced request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Offset from trace start.
    pub at: Duration,
    /// Requesting user id.
    pub user: u32,
    /// Object URL.
    pub url: String,
    /// Object MIME type.
    pub mime: MimeType,
    /// Object content length in bytes.
    pub size: u64,
}

/// A sequence of trace records ordered by time.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The records, non-decreasing in `at`.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serialises to a TSV string
    /// (`at_ns \t user \t url \t mime_ext \t size`).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}",
                r.at.as_nanos(),
                r.user,
                r.url,
                r.mime.extension(),
                r.size
            );
        }
        out
    }

    /// Parses the TSV format produced by [`Trace::to_tsv`].
    pub fn from_tsv(s: &str) -> Result<Trace, String> {
        let mut records = Vec::new();
        for (ln, line) in s.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut f = line.split('\t');
            let mut next = |what: &str| {
                f.next()
                    .ok_or_else(|| format!("line {}: missing {what}", ln + 1))
            };
            let at_ns: u128 = next("time")?
                .parse()
                .map_err(|e| format!("line {}: bad time: {e}", ln + 1))?;
            let user: u32 = next("user")?
                .parse()
                .map_err(|e| format!("line {}: bad user: {e}", ln + 1))?;
            let url = next("url")?.to_string();
            let mime = match next("mime")? {
                "gif" => MimeType::Gif,
                "html" => MimeType::Html,
                "jpg" => MimeType::Jpeg,
                "bin" => MimeType::Other,
                other => return Err(format!("line {}: unknown mime {other}", ln + 1)),
            };
            let size: u64 = next("size")?
                .parse()
                .map_err(|e| format!("line {}: bad size: {e}", ln + 1))?;
            records.push(TraceRecord {
                at: Duration::from_nanos(at_ns as u64),
                user,
                url,
                mime,
                size,
            });
        }
        Ok(Trace { records })
    }
}

/// Generates traces (or single requests on the fly) from a
/// [`WorkloadConfig`].
pub struct TraceGenerator {
    cfg: WorkloadConfig,
    zipf: Zipf,
    rng: Pcg32,
    /// Per-user recently visited objects (bounded).
    recent: std::collections::HashMap<u32, std::collections::VecDeque<(String, MimeType, u64)>>,
}

impl TraceGenerator {
    /// Creates a generator; all randomness derives from `cfg.seed`.
    pub fn new(cfg: WorkloadConfig) -> Self {
        let zipf = Zipf::new(cfg.shared_objects.max(1), cfg.zipf_alpha);
        let rng = Pcg32::new(cfg.seed);
        TraceGenerator {
            cfg,
            zipf,
            rng,
            recent: std::collections::HashMap::new(),
        }
    }

    /// The config in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Stable per-object properties: every reference to an object name
    /// sees the same MIME type and size.
    fn object_props(&self, name: &str) -> (MimeType, u64) {
        let h = sns_fnv(name.as_bytes()) ^ self.cfg.seed;
        let mut orng = Pcg32::new(h);
        let mime = self.cfg.mix.sample(&mut orng);
        let size = self.cfg.sizes.sample(mime, &mut orng);
        (mime, size)
    }

    /// Draws the next request at the given time offset.
    pub fn request_at(&mut self, at: Duration) -> TraceRecord {
        let user = self.rng.below(u64::from(self.cfg.users.max(1))) as u32;
        // Temporal locality: revisit one of this user's recent objects.
        if self.rng.chance(self.cfg.revisit_prob) {
            if let Some(recent) = self.recent.get(&user) {
                if !recent.is_empty() {
                    let i = self.rng.below(recent.len() as u64) as usize;
                    let (url, mime, size) = recent[i].clone();
                    return TraceRecord {
                        at,
                        user,
                        url,
                        mime,
                        size,
                    };
                }
            }
        }
        let name = if self.rng.chance(self.cfg.shared_prob) {
            let rank = self.zipf.sample(&mut self.rng);
            format!("s{rank}")
        } else {
            let idx = self.rng.below(u64::from(self.cfg.private_per_user.max(1)));
            format!("p{user}-{idx}")
        };
        let (mime, size) = self.object_props(&name);
        let url = format!("http://origin/{name}.{}", mime.extension());
        let recent = self.recent.entry(user).or_default();
        recent.push_back((url.clone(), mime, size));
        if recent.len() > 8 {
            recent.pop_front();
        }
        TraceRecord {
            at,
            user,
            url,
            mime,
            size,
        }
    }

    /// Generates a constant-rate trace (exponential inter-arrivals), the
    /// playback engine's tunable-rate mode.
    pub fn constant_rate(&mut self, rate: f64, horizon: Duration) -> Trace {
        assert!(rate > 0.0);
        let mut records = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += self.rng.exp(1.0 / rate);
            if t >= horizon.as_secs_f64() {
                break;
            }
            records.push(self.request_at(Duration::from_secs_f64(t)));
        }
        Trace { records }
    }

    /// Generates a trace following the Figure 6 diurnal/bursty arrival
    /// process.
    pub fn bursty(&mut self, process: &ArrivalProcess, horizon: Duration) -> Trace {
        let arrivals = process.arrivals(horizon, &mut self.rng);
        let records = arrivals.into_iter().map(|at| self.request_at(at)).collect();
        Trace { records }
    }
}

/// Local FNV-1a (object identity hashing).
fn sns_fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            users: 100,
            shared_objects: 500,
            private_per_user: 20,
            ..Default::default()
        }
    }

    #[test]
    fn object_properties_are_stable() {
        let mut g = TraceGenerator::new(small_cfg());
        let mut seen: std::collections::HashMap<String, (MimeType, u64)> =
            std::collections::HashMap::new();
        let t = g.constant_rate(50.0, Duration::from_secs(60));
        assert!(t.len() > 1000);
        for r in &t.records {
            let e = seen.entry(r.url.clone()).or_insert((r.mime, r.size));
            assert_eq!(*e, (r.mime, r.size), "object identity must be stable");
        }
    }

    #[test]
    fn constant_rate_matches_target() {
        let mut g = TraceGenerator::new(small_cfg());
        let t = g.constant_rate(20.0, Duration::from_secs(600));
        let rate = t.len() as f64 / 600.0;
        assert!((rate - 20.0).abs() < 1.5, "rate {rate}");
        assert!(t.records.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn shared_pool_creates_cross_user_locality() {
        let mut g = TraceGenerator::new(small_cfg());
        let t = g.constant_rate(50.0, Duration::from_secs(200));
        // Count objects referenced by more than one distinct user.
        let mut by_url: std::collections::HashMap<&str, std::collections::BTreeSet<u32>> =
            std::collections::HashMap::new();
        for r in &t.records {
            by_url.entry(&r.url).or_default().insert(r.user);
        }
        let multi = by_url.values().filter(|s| s.len() > 1).count();
        assert!(multi > 50, "shared objects must be referenced across users");
    }

    #[test]
    fn tsv_roundtrip() {
        let mut g = TraceGenerator::new(small_cfg());
        let t = g.constant_rate(10.0, Duration::from_secs(30));
        let tsv = t.to_tsv();
        let t2 = Trace::from_tsv(&tsv).unwrap();
        assert_eq!(t.records, t2.records);
    }

    #[test]
    fn tsv_rejects_garbage() {
        assert!(Trace::from_tsv("not\ta\tvalid\tline").is_err());
        assert!(Trace::from_tsv("1\t2\tu\tgif\tx").is_err());
        assert!(Trace::from_tsv("").unwrap().is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut cfg = small_cfg();
            cfg.seed = seed;
            let mut g = TraceGenerator::new(cfg);
            g.constant_rate(10.0, Duration::from_secs(20)).to_tsv()
        };
        assert_eq!(gen(1), gen(1));
        assert_ne!(gen(1), gen(2));
    }
}
