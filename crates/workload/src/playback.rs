//! The trace playback engine (§4.1).
//!
//! "The engine can generate requests at a constant (and dynamically
//! tunable) rate, or it can faithfully play back a trace according to the
//! timestamps in the trace file." [`Playback`] re-times a [`Trace`] under
//! one of those schedules; the TranSend client component then feeds the
//! retimed requests into the cluster.

use std::time::Duration;

use crate::trace::{Trace, TraceRecord};

/// How a trace's timestamps are mapped onto playback time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// Ignore recorded timestamps; issue requests at a fixed rate
    /// (requests/second, evenly spaced).
    ConstantRate(f64),
    /// Replay faithfully at the recorded timestamps.
    Timestamps,
    /// Replay the recorded timestamps compressed by a factor (>1 is
    /// faster than recorded).
    Accelerated(f64),
}

/// An iterator re-timing a trace under a [`Schedule`].
pub struct Playback<'a> {
    trace: &'a Trace,
    schedule: Schedule,
    pos: usize,
}

impl<'a> Playback<'a> {
    /// Creates a playback over a trace.
    pub fn new(trace: &'a Trace, schedule: Schedule) -> Self {
        if let Schedule::ConstantRate(r) = schedule {
            assert!(r > 0.0, "rate must be positive");
        }
        if let Schedule::Accelerated(k) = schedule {
            assert!(k > 0.0, "acceleration must be positive");
        }
        Playback {
            trace,
            schedule,
            pos: 0,
        }
    }

    /// Remaining requests.
    pub fn remaining(&self) -> usize {
        self.trace.records.len() - self.pos
    }

    /// Changes the rate mid-run (the paper's "dynamically tunable" knob).
    /// Only meaningful for [`Schedule::ConstantRate`]; subsequent items
    /// keep their index-based spacing under the new rate.
    pub fn set_rate(&mut self, rate: f64) {
        assert!(rate > 0.0);
        self.schedule = Schedule::ConstantRate(rate);
    }
}

impl<'a> Iterator for Playback<'a> {
    type Item = (Duration, &'a TraceRecord);

    fn next(&mut self) -> Option<Self::Item> {
        let rec = self.trace.records.get(self.pos)?;
        let at = match self.schedule {
            Schedule::ConstantRate(r) => Duration::from_secs_f64(self.pos as f64 / r),
            Schedule::Timestamps => rec.at,
            Schedule::Accelerated(k) => Duration::from_secs_f64(rec.at.as_secs_f64() / k),
        };
        self.pos += 1;
        Some((at, rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceGenerator, WorkloadConfig};

    fn tiny_trace() -> Trace {
        let mut g = TraceGenerator::new(WorkloadConfig {
            users: 10,
            shared_objects: 50,
            private_per_user: 5,
            ..Default::default()
        });
        g.constant_rate(5.0, Duration::from_secs(20))
    }

    #[test]
    fn constant_rate_spacing() {
        let t = tiny_trace();
        let times: Vec<Duration> = Playback::new(&t, Schedule::ConstantRate(10.0))
            .map(|(at, _)| at)
            .collect();
        assert_eq!(times.len(), t.len());
        for (i, at) in times.iter().enumerate() {
            assert_eq!(*at, Duration::from_secs_f64(i as f64 / 10.0));
        }
    }

    #[test]
    fn timestamps_are_faithful() {
        let t = tiny_trace();
        for (at, rec) in Playback::new(&t, Schedule::Timestamps) {
            assert_eq!(at, rec.at);
        }
    }

    #[test]
    fn acceleration_compresses() {
        let t = tiny_trace();
        for (at, rec) in Playback::new(&t, Schedule::Accelerated(4.0)) {
            let expect = rec.at.as_secs_f64() / 4.0;
            assert!((at.as_secs_f64() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn remaining_counts_down() {
        let t = tiny_trace();
        let mut p = Playback::new(&t, Schedule::Timestamps);
        let n = p.remaining();
        p.next();
        assert_eq!(p.remaining(), n - 1);
    }
}
