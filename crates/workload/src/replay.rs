//! Million-user replay envelopes: the ROADMAP's Internet-scale target.
//!
//! §2 of the paper argues a SAN-coupled cluster should absorb the load of
//! a *population*, not a machine room — TranSend served ~8000 dialup
//! users at 5.8 req/s average, and the operations data the TerraServer
//! experience reports is the same shape at four orders of magnitude more
//! users. Replaying such a day per-request would mean hundreds of
//! millions of simulator events; the flow-level SAN mode
//! (`sns_san::SanMode::Flow`) instead consumes *epoch aggregates* — one
//! (requests, bytes) offer per epoch per traffic relation.
//!
//! [`ReplayLoad`] produces exactly that: a lazy iterator of
//! [`EpochLoad`] rows scaling the calibrated Figure 6 arrival process
//! ([`super::bursts::ArrivalProcess`]) to an arbitrary population, with
//! an optional [`FlashCrowd`] overlay for the §1 "flash crowd"
//! scenario. Nothing is ever materialised per request: a 24-hour
//! million-user day is ~864 000 epoch rows at the default 100 ms epoch,
//! generated on demand in O(1) memory.

use std::time::Duration;

use sns_sim::rng::Pcg32;

use crate::bursts::ArrivalProcess;

/// The traced TranSend population the calibrated rates correspond to
/// (§4.1: ~8000 active users behind 600 modems).
pub const TRACED_USERS: u64 = 8_000;

/// Mean response size implied by the paper's §4.1 MIME mix and Figure 5
/// per-type means (GIF 50% × 3428 B + HTML 22% × 5131 B + JPEG 18% ×
/// 12070 B + other 10% ≈ 10 KB), ≈ 6 KB.
pub const MEAN_RESPONSE_BYTES: f64 = 6_016.0;

/// A flash-crowd overlay: a multiplicative surge ramping linearly to
/// `magnitude`, holding, then decaying linearly back to 1.
///
/// This is the §1 motivating scenario ("the slashdot effect") layered on
/// top of the diurnal cycle; the default puts a 6× surge at 20:00,
/// slightly before the diurnal peak.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// Offset into the replay at which the surge starts ramping.
    pub start: Duration,
    /// Linear ramp-up time to full magnitude.
    pub ramp: Duration,
    /// Time held at full magnitude.
    pub hold: Duration,
    /// Linear decay time back to baseline.
    pub decay: Duration,
    /// Peak rate multiplier (≥ 1).
    pub magnitude: f64,
}

impl Default for FlashCrowd {
    fn default() -> Self {
        FlashCrowd {
            start: Duration::from_secs(20 * 3600),
            ramp: Duration::from_secs(5 * 60),
            hold: Duration::from_secs(20 * 60),
            decay: Duration::from_secs(30 * 60),
            magnitude: 6.0,
        }
    }
}

impl FlashCrowd {
    /// Rate multiplier at offset `t` (1.0 outside the surge window).
    pub fn multiplier_at(&self, t: Duration) -> f64 {
        if t < self.start {
            return 1.0;
        }
        let dt = (t - self.start).as_secs_f64();
        let (ramp, hold, decay) = (
            self.ramp.as_secs_f64(),
            self.hold.as_secs_f64(),
            self.decay.as_secs_f64(),
        );
        let m = self.magnitude;
        if dt < ramp {
            1.0 + (m - 1.0) * dt / ramp
        } else if dt < ramp + hold {
            m
        } else if dt < ramp + hold + decay {
            m - (m - 1.0) * (dt - ramp - hold) / decay
        } else {
            1.0
        }
    }
}

/// One epoch of aggregated offered load: what the flow-level replay
/// feeds to `sns_san::San::offer_flow` instead of per-request events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochLoad {
    /// Offset of the epoch's start into the replay.
    pub start: Duration,
    /// Requests arriving during the epoch.
    pub requests: u64,
    /// Total response bytes for those requests.
    pub bytes: u64,
}

/// A population-scaled, optionally flash-crowded replay envelope.
///
/// Chains like the other builders:
///
/// ```
/// use sns_workload::replay::{FlashCrowd, ReplayLoad};
/// use std::time::Duration;
///
/// let load = ReplayLoad::million_users(7)
///     .with_flash_crowd(FlashCrowd::default())
///     .with_epoch(Duration::from_secs(1));
/// let first: Vec<_> = load.epochs(Duration::from_secs(10)).collect();
/// assert_eq!(first.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayLoad {
    /// The unit-scale (traced-population) arrival process.
    pub arrivals: ArrivalProcess,
    /// Population multiplier over [`TRACED_USERS`].
    pub scale: f64,
    /// Optional flash-crowd overlay.
    pub flash: Option<FlashCrowd>,
    /// Aggregation epoch; also the granularity of flow-mode offers.
    pub epoch: Duration,
    /// Mean response size in bytes.
    pub mean_bytes: f64,
    seed: u64,
}

impl ReplayLoad {
    /// A replay for `users` simultaneous users, rates scaled linearly
    /// from the traced 8000-user calibration.
    pub fn new(users: u64, seed: u64) -> Self {
        assert!(users > 0, "population must be non-empty");
        ReplayLoad {
            arrivals: ArrivalProcess::paper_default(seed),
            scale: users as f64 / TRACED_USERS as f64,
            flash: None,
            epoch: Duration::from_millis(100),
            mean_bytes: MEAN_RESPONSE_BYTES,
            seed,
        }
    }

    /// The headline configuration: one million users (125× the traced
    /// population, ≈725 req/s mean, ≈1300 req/s diurnal peak).
    pub fn million_users(seed: u64) -> Self {
        Self::new(1_000_000, seed)
    }

    /// Adds a flash-crowd surge on top of the diurnal cycle.
    pub fn with_flash_crowd(mut self, f: FlashCrowd) -> Self {
        self.flash = Some(f);
        self
    }

    /// Sets the aggregation epoch.
    pub fn with_epoch(mut self, epoch: Duration) -> Self {
        assert!(epoch > Duration::ZERO, "epoch must be > 0");
        self.epoch = epoch;
        self
    }

    /// Sets the mean response size.
    pub fn with_mean_bytes(mut self, bytes: f64) -> Self {
        assert!(bytes > 0.0);
        self.mean_bytes = bytes;
        self
    }

    /// Population-scaled instantaneous rate (req/s) at offset `t`.
    pub fn rate_at(&self, t: Duration) -> f64 {
        let flash = self.flash.as_ref().map_or(1.0, |f| f.multiplier_at(t));
        self.arrivals.rate_at(t) * self.scale * flash
    }

    /// Lazily yields one [`EpochLoad`] per epoch over `[0, horizon)`.
    ///
    /// Request counts are Poisson samples of the epoch's expected load
    /// (normal approximation above λ=64, exact below), deterministic per
    /// (seed, epoch index) — the same epoch always generates the same
    /// row no matter how the iterator is consumed.
    pub fn epochs(&self, horizon: Duration) -> Epochs<'_> {
        Epochs {
            load: self,
            index: 0,
            end: (horizon.as_nanos() / self.epoch.as_nanos().max(1)) as u64,
        }
    }

    /// Expected request total over `[0, horizon)` (the deterministic
    /// envelope integral; actual sampled totals fluctuate ~√N around it).
    pub fn expected_requests(&self, horizon: Duration) -> f64 {
        let mut sum = 0.0;
        let step = self.epoch.as_secs_f64();
        let n = (horizon.as_nanos() / self.epoch.as_nanos().max(1)) as u64;
        for i in 0..n {
            let mid = Duration::from_secs_f64((i as f64 + 0.5) * step);
            sum += self.rate_at(mid) * step;
        }
        sum
    }

    fn sample_epoch(&self, index: u64) -> EpochLoad {
        let step = self.epoch.as_secs_f64();
        let start = Duration::from_secs_f64(index as f64 * step);
        let mid = Duration::from_secs_f64((index as f64 + 0.5) * step);
        let lambda = self.rate_at(mid) * step;
        // Per-epoch forked RNG: O(1) state, order-independent.
        let mut rng = Pcg32::new(self.seed ^ index.wrapping_mul(0x9E3779B97F4A7C15));
        let requests = if lambda > 64.0 {
            rng.normal(lambda, lambda.sqrt()).max(0.0).round() as u64
        } else {
            // Knuth's exact method is fine at small λ.
            let limit = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.f64_open();
                if p <= limit {
                    break k;
                }
                k += 1;
            }
        };
        // Size jitter: the per-epoch mean wobbles a few percent around
        // the mix mean (individual sizes are heavy-tailed, but epoch
        // sums of hundreds of requests concentrate).
        let mean = self.mean_bytes * rng.normal(1.0, 0.03).clamp(0.8, 1.2);
        EpochLoad {
            start,
            requests,
            bytes: (requests as f64 * mean) as u64,
        }
    }
}

/// Lazy epoch iterator returned by [`ReplayLoad::epochs`].
#[derive(Debug)]
pub struct Epochs<'a> {
    load: &'a ReplayLoad,
    index: u64,
    end: u64,
}

impl Iterator for Epochs<'_> {
    type Item = EpochLoad;

    fn next(&mut self) -> Option<EpochLoad> {
        if self.index >= self.end {
            return None;
        }
        let row = self.load.sample_epoch(self.index);
        self.index += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.index) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Epochs<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn million_user_day_matches_scaled_mean() {
        let load = ReplayLoad::million_users(5).with_epoch(Duration::from_secs(60));
        let day = Duration::from_secs(24 * 3600);
        let total: u64 = load.epochs(day).map(|e| e.requests).sum();
        // 5.8 req/s × 125 ≈ 725 req/s mean → ≈62.6M requests/day. The
        // cascade preserves the mean only approximately; allow ±20%.
        let mean_rate = total as f64 / day.as_secs_f64();
        assert!(
            (mean_rate - 725.0).abs() / 725.0 < 0.2,
            "mean rate {mean_rate} req/s"
        );
        let expected = load.expected_requests(day);
        assert!((total as f64 - expected).abs() / expected < 0.05);
    }

    #[test]
    fn epochs_are_deterministic_and_order_independent() {
        let load = ReplayLoad::new(50_000, 9);
        let horizon = Duration::from_secs(30);
        let all: Vec<_> = load.epochs(horizon).collect();
        let again: Vec<_> = load.epochs(horizon).collect();
        assert_eq!(all, again);
        // Skipping ahead yields the same rows as consuming in order.
        let tail: Vec<_> = load.epochs(horizon).skip(100).collect();
        assert_eq!(&all[100..], &tail[..]);
    }

    #[test]
    fn flash_crowd_lifts_the_surge_window_only() {
        let base = ReplayLoad::million_users(3);
        let fc = FlashCrowd {
            start: Duration::from_secs(1000),
            ramp: Duration::from_secs(10),
            hold: Duration::from_secs(100),
            decay: Duration::from_secs(10),
            magnitude: 8.0,
        };
        let surged = base.clone().with_flash_crowd(fc);
        let before = Duration::from_secs(500);
        let during = Duration::from_secs(1060);
        assert_eq!(base.rate_at(before), surged.rate_at(before));
        assert!((surged.rate_at(during) / base.rate_at(during) - 8.0).abs() < 1e-9);
        let after = Duration::from_secs(1300);
        assert_eq!(base.rate_at(after), surged.rate_at(after));
    }

    #[test]
    fn epoch_bytes_track_requests() {
        let load = ReplayLoad::million_users(1);
        for e in load.epochs(Duration::from_secs(5)) {
            if e.requests == 0 {
                assert_eq!(e.bytes, 0);
                continue;
            }
            let per = e.bytes as f64 / e.requests as f64;
            assert!(
                per > 0.5 * MEAN_RESPONSE_BYTES && per < 1.5 * MEAN_RESPONSE_BYTES,
                "per-request bytes {per}"
            );
        }
    }

    #[test]
    fn iterator_is_lazy_and_sized() {
        // A full million-user day at 100 ms epochs: 864k rows. Taking 3
        // must not sample the rest.
        let load = ReplayLoad::million_users(2);
        let day = Duration::from_secs(24 * 3600);
        let it = load.epochs(day);
        assert_eq!(it.len(), 864_000);
        assert_eq!(it.take(3).count(), 3);
    }
}
