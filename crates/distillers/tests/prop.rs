//! Property tests for the distillers: distillation never grows content,
//! respects quality monotonicity, text workers never corrupt markup
//! structure, and the rewebber round-trips arbitrary text.

use std::collections::BTreeMap;

use sns_testkit::{gens, props, tk_assert, tk_assert_eq};

use sns_distillers::{
    GifDistiller, HtmlMunger, JpegDistiller, KeywordFilter, RewebberDecrypt, RewebberEncrypt,
};
use sns_sim::rng::Pcg32;
use sns_tacc::content::{Body, ContentObject};
use sns_tacc::worker::{TaccArgs, TaccWorker};
use sns_workload::MimeType;

fn args(pairs: Vec<(String, String)>) -> TaccArgs {
    TaccArgs::from_map(pairs.into_iter().collect::<BTreeMap<_, _>>())
}

props! {
    fn image_distillation_never_grows(
        size in gens::u64_in(256..500_000),
        scale in gens::f64_in(1.0..8.0),
        quality in gens::f64_in(1.0..100.0),
        is_gif in gens::any_bool(),
        seed in gens::any_u64(),
    ) {
        let mut rng = Pcg32::new(seed);
        let a = args(vec![
            ("scale".into(), format!("{scale}")),
            ("quality".into(), format!("{quality}")),
        ]);
        let (mime, out) = if is_gif {
            let mut d = GifDistiller::new();
            let input = ContentObject::synthetic("u", MimeType::Gif, size);
            (MimeType::Gif, d.transform(&input, &a, &mut rng).unwrap())
        } else {
            let mut d = JpegDistiller::new();
            let input = ContentObject::synthetic("u", MimeType::Jpeg, size);
            (MimeType::Jpeg, d.transform(&input, &a, &mut rng).unwrap())
        };
        let _ = mime;
        tk_assert!(out.len() <= size, "output {} > input {}", out.len(), size);
        tk_assert!(!out.is_empty());
        tk_assert!(out.quality <= 1.0 && out.quality > 0.0);
    }

    fn quality_is_monotone_in_output_size(
        size in gens::u64_in(4096..200_000),
        q_lo in gens::f64_in(1.0..50.0),
        dq in gens::f64_in(1.0..50.0),
        seed in gens::any_u64(),
    ) {
        let q_hi = q_lo + dq;
        let mut rng = Pcg32::new(seed);
        let mut d = JpegDistiller::new();
        let input = ContentObject::synthetic("u", MimeType::Jpeg, size);
        let lo = d
            .transform(&input, &args(vec![("quality".into(), format!("{q_lo}"))]), &mut rng)
            .unwrap();
        let hi = d
            .transform(&input, &args(vec![("quality".into(), format!("{q_hi}"))]), &mut rng)
            .unwrap();
        tk_assert!(
            lo.len() <= hi.len(),
            "quality {q_lo} gave {} > quality {q_hi} gave {}",
            lo.len(),
            hi.len()
        );
    }

    fn munger_preserves_visible_text(body in gens::string("[a-z ]{0,200}")) {
        let mut rng = Pcg32::new(1);
        let mut m = HtmlMunger::new();
        let html = format!("<html><body><p>{body}</p></body></html>");
        let input = ContentObject::text("u", MimeType::Html, html);
        let out = m.transform(&input, &TaccArgs::default(), &mut rng).unwrap();
        let Body::Text(t) = &out.body else { panic!("text") };
        tk_assert!(t.contains(&body), "visible text must survive munging");
    }

    fn keyword_filter_preserves_text_modulo_markers(
        body in gens::string("[a-z ]{0,120}"),
        needle in gens::string("[a-z]{2,6}"),
    ) {
        let mut rng = Pcg32::new(2);
        let mut f = KeywordFilter::new();
        let input = ContentObject::text("u", MimeType::Html, format!("<p>{body}</p>"));
        let a = args(vec![("keywords".into(), needle.clone())]);
        let out = f.transform(&input, &a, &mut rng).unwrap();
        let Body::Text(t) = &out.body else { panic!("text") };
        // Stripping the markers recovers the original exactly.
        let stripped = t
            .replace(r#"<b style="color:red;font-size:large">"#, "")
            .replace("</b>", "");
        tk_assert_eq!(stripped, format!("<p>{}</p>", body));
    }

    fn rewebber_roundtrips_arbitrary_text(
        text in gens::string("[ -~]{0,300}"),
        key in gens::string("[a-z0-9]{1,16}"),
    ) {
        let mut rng = Pcg32::new(3);
        let mut enc = RewebberEncrypt::new();
        let mut dec = RewebberDecrypt::new();
        let a = args(vec![("key".into(), key)]);
        let plain = ContentObject::text("u", MimeType::Html, text.clone());
        let ct = enc.transform(&plain, &a, &mut rng).unwrap();
        let pt = dec.transform(&ct, &a, &mut rng).unwrap();
        let Body::Text(t) = &pt.body else { panic!("text") };
        tk_assert_eq!(t, &text);
    }
}
