//! The Figure 7 distillation cost model.
//!
//! "For the GIF distiller, there is an approximately linear relationship
//! between distillation time and input size, although a large variation
//! in distillation time is observed for any particular data size. The
//! slope of this relationship is approximately 8 milliseconds per
//! kilobyte of input." JPEG and HTML behave similarly with smaller
//! constants ("the HTML distiller is far more efficient").

use std::time::Duration;

use sns_sim::rng::Pcg32;

/// Linear-in-size cost with multiplicative log-normal noise.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed per-item cost.
    pub intercept: Duration,
    /// Cost per kilobyte of input.
    pub per_kb: Duration,
    /// Sigma of the multiplicative log-normal noise (0 = deterministic).
    pub noise_sigma: f64,
}

impl CostModel {
    /// The GIF distiller (Figure 7): ≈8 ms/KB, high variance.
    pub fn gif() -> Self {
        CostModel {
            intercept: Duration::from_millis(5),
            per_kb: Duration::from_micros(8000),
            noise_sigma: 0.35,
        }
    }

    /// The JPEG distiller: calibrated so 10 KB inputs take ≈43 ms — one
    /// distiller saturates near 23 requests/s (Table 2).
    pub fn jpeg() -> Self {
        CostModel {
            intercept: Duration::from_millis(3),
            per_kb: Duration::from_micros(4000),
            noise_sigma: 0.25,
        }
    }

    /// The HTML munger: "far more efficient" than image distillation.
    pub fn html() -> Self {
        CostModel {
            intercept: Duration::from_millis(1),
            per_kb: Duration::from_micros(600),
            noise_sigma: 0.20,
        }
    }

    /// A cheap text-pass cost (keyword filter, collators).
    pub fn text_pass() -> Self {
        CostModel {
            intercept: Duration::from_micros(500),
            per_kb: Duration::from_micros(200),
            noise_sigma: 0.15,
        }
    }

    /// Encryption-grade per-byte cost (rewebber).
    pub fn crypto() -> Self {
        CostModel {
            intercept: Duration::from_millis(2),
            per_kb: Duration::from_micros(2500),
            noise_sigma: 0.15,
        }
    }

    /// Draws a cost for `input_bytes` of input.
    pub fn sample(&self, input_bytes: u64, rng: &mut Pcg32) -> Duration {
        let kb = input_bytes as f64 / 1024.0;
        let mean = self.intercept.as_secs_f64() + self.per_kb.as_secs_f64() * kb;
        let noise = if self.noise_sigma > 0.0 {
            // Mean-1 multiplicative noise.
            rng.lognormal(-self.noise_sigma * self.noise_sigma / 2.0, self.noise_sigma)
        } else {
            1.0
        };
        Duration::from_secs_f64(mean * noise)
    }

    /// The deterministic mean cost (no noise), for capacity planning.
    pub fn mean(&self, input_bytes: u64) -> Duration {
        let kb = input_bytes as f64 / 1024.0;
        Duration::from_secs_f64(self.intercept.as_secs_f64() + self.per_kb.as_secs_f64() * kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gif_slope_matches_figure_7() {
        let m = CostModel::gif();
        let mut rng = Pcg32::new(7);
        // Empirical slope between 5 KB and 25 KB inputs over many draws.
        let avg = |bytes: u64, rng: &mut Pcg32| {
            (0..20_000)
                .map(|_| m.sample(bytes, rng).as_secs_f64())
                .sum::<f64>()
                / 20_000.0
        };
        let t5 = avg(5 * 1024, &mut rng);
        let t25 = avg(25 * 1024, &mut rng);
        let slope_ms_per_kb = (t25 - t5) * 1000.0 / 20.0;
        assert!(
            (slope_ms_per_kb - 8.0).abs() < 0.8,
            "slope {slope_ms_per_kb} ms/KB"
        );
    }

    #[test]
    fn jpeg_saturates_near_23_rps() {
        let m = CostModel::jpeg();
        let per_req = m.mean(10 * 1024);
        let rps = 1.0 / per_req.as_secs_f64();
        assert!((20.0..27.0).contains(&rps), "{rps} req/s");
    }

    #[test]
    fn variance_is_substantial_for_gif() {
        let m = CostModel::gif();
        let mut rng = Pcg32::new(8);
        let xs: Vec<f64> = (0..10_000)
            .map(|_| m.sample(10 * 1024, &mut rng).as_secs_f64())
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let sd = (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64).sqrt();
        assert!(sd / mean > 0.2, "cv {}", sd / mean);
    }

    #[test]
    fn html_is_far_more_efficient() {
        assert!(CostModel::html().mean(10_240) < CostModel::gif().mean(10_240) / 5);
    }
}
