//! The TranSend metasearch aggregator (§5.1): "an aggregator accepts a
//! search string from a user, queries a number of popular search
//! engines, and collates the top results from each into a single result
//! page" — implemented in the paper in 3 pages of Perl in 2.5 hours,
//! inheriting scalability and fault tolerance from the SNS layer.
//!
//! Inputs are per-engine result pages whose text bodies carry one result
//! per line (`title\turl`). Collation interleaves engines round-robin,
//! deduplicates by URL and keeps the top `max_results`.

use std::collections::BTreeSet;
use std::time::Duration;

use sns_sim::rng::Pcg32;
use sns_tacc::content::{Body, ContentObject};
use sns_tacc::worker::{Aggregator, TaccArgs, TaccError};
use sns_workload::MimeType;

use crate::cost::CostModel;

/// One collated search result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultLine {
    /// Result title.
    pub title: String,
    /// Result URL.
    pub url: String,
    /// Which engine produced it.
    pub engine: String,
}

/// The metasearch collator.
pub struct MetasearchAggregator {
    cost: CostModel,
}

impl MetasearchAggregator {
    /// Creates the aggregator.
    pub fn new() -> Self {
        MetasearchAggregator {
            cost: CostModel::text_pass(),
        }
    }

    fn parse(input: &ContentObject) -> Vec<ResultLine> {
        let Body::Text(t) = &input.body else {
            return Vec::new();
        };
        t.lines()
            .filter_map(|line| {
                let (title, url) = line.split_once('\t')?;
                if title.is_empty() || url.is_empty() {
                    return None;
                }
                Some(ResultLine {
                    title: title.to_string(),
                    url: url.to_string(),
                    engine: input.url.clone(),
                })
            })
            .collect()
    }

    /// Round-robin interleave with URL dedup.
    pub fn collate(engines: &[Vec<ResultLine>], max_results: usize) -> Vec<ResultLine> {
        let mut out = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let longest = engines.iter().map(Vec::len).max().unwrap_or(0);
        for rank in 0..longest {
            for engine in engines {
                if out.len() >= max_results {
                    return out;
                }
                if let Some(r) = engine.get(rank) {
                    if seen.insert(r.url.clone()) {
                        out.push(r.clone());
                    }
                }
            }
        }
        out
    }

    fn render(query: &str, results: &[ResultLine]) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "<html><head><title>Metasearch: {query}</title></head><body><h1>Results for \"{query}\"</h1><ol>\n"
        );
        for r in results {
            let _ = writeln!(
                out,
                "<li><a href=\"{}\">{}</a> <i>({})</i></li>",
                r.url, r.title, r.engine
            );
        }
        out.push_str("</ol></body></html>\n");
        out
    }
}

impl Default for MetasearchAggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator for MetasearchAggregator {
    fn name(&self) -> &'static str {
        "metasearch"
    }

    fn cost(&self, inputs: &[ContentObject], _args: &TaccArgs, rng: &mut Pcg32) -> Duration {
        let total: u64 = inputs.iter().map(|o| o.len()).sum();
        self.cost.sample(total, rng)
    }

    fn aggregate(
        &mut self,
        inputs: &[ContentObject],
        args: &TaccArgs,
        _rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError> {
        let max_results = args.get_f64("max_results", 20.0) as usize;
        let query = args.get("query").unwrap_or("").to_string();
        let engines: Vec<Vec<ResultLine>> = inputs.iter().map(Self::parse).collect();
        let collated = Self::collate(&engines, max_results);
        let mut out = ContentObject::text(
            format!("transend://metasearch?q={query}"),
            MimeType::Html,
            Self::render(&query, &collated),
        );
        out.lineage.push("metasearch".into());
        out.meta
            .insert("results".into(), collated.len().to_string());
        out.meta.insert("engines".into(), inputs.len().to_string());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_page(name: &str, results: &[(&str, &str)]) -> ContentObject {
        let body: String = results.iter().map(|(t, u)| format!("{t}\t{u}\n")).collect();
        ContentObject::text(name, MimeType::Other, body)
    }

    #[test]
    fn interleaves_round_robin_and_dedupes() {
        let a = engine_page("engineA", &[("A1", "http://1"), ("A2", "http://2")]);
        let b = engine_page("engineB", &[("B1", "http://1"), ("B2", "http://3")]);
        let engines = vec![
            MetasearchAggregator::parse(&a),
            MetasearchAggregator::parse(&b),
        ];
        let out = MetasearchAggregator::collate(&engines, 10);
        let urls: Vec<&str> = out.iter().map(|r| r.url.as_str()).collect();
        // http://1 appears once (A wins, being first at rank 0).
        assert_eq!(urls, vec!["http://1", "http://2", "http://3"]);
        assert_eq!(out[0].engine, "engineA");
    }

    #[test]
    fn respects_max_results() {
        let a = engine_page("e", &[("1", "u1"), ("2", "u2"), ("3", "u3"), ("4", "u4")]);
        let engines = vec![MetasearchAggregator::parse(&a)];
        assert_eq!(MetasearchAggregator::collate(&engines, 2).len(), 2);
    }

    #[test]
    fn end_to_end_aggregation() {
        let mut m = MetasearchAggregator::new();
        let mut rng = Pcg32::new(1);
        let inputs = vec![
            engine_page(
                "hotbot",
                &[("Rust lang", "http://rust"), ("Crab", "http://crab")],
            ),
            engine_page("altavista", &[("Rust lang", "http://rust")]),
        ];
        let args = TaccArgs::from_map(
            [("query".to_string(), "rust".to_string())]
                .into_iter()
                .collect(),
        );
        let out = m.aggregate(&inputs, &args, &mut rng).unwrap();
        assert_eq!(out.meta["results"], "2");
        assert_eq!(out.meta["engines"], "2");
        let Body::Text(t) = &out.body else {
            panic!("text")
        };
        assert!(t.contains("Results for \"rust\""));
        assert!(t.contains("http://crab"));
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let page = ContentObject::text("e", MimeType::Other, "no tab here\n\tmissing title\n");
        assert!(MetasearchAggregator::parse(&page).is_empty());
    }
}
