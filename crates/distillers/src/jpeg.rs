//! The JPEG distiller: scaling and low-pass filtering of JPEG images
//! using (in the paper) the off-the-shelf jpeg-6a library (§3.1.6).

use std::time::Duration;

use sns_sim::rng::Pcg32;
use sns_tacc::content::{Body, ContentObject};
use sns_tacc::worker::{TaccArgs, TaccError, TaccWorker};
use sns_workload::MimeType;

use crate::cost::CostModel;

const MIN_OUTPUT: u64 = 256;

/// The JPEG distiller worker.
pub struct JpegDistiller {
    cost: CostModel,
    /// Pathological-input crash probability (0 by default).
    pub crash_prob: f64,
}

impl JpegDistiller {
    /// Creates the distiller with Table 2-calibrated costs (~23 req/s on
    /// 10 KB inputs).
    pub fn new() -> Self {
        JpegDistiller {
            cost: CostModel::jpeg(),
            crash_prob: 0.0,
        }
    }

    /// Enables pathological-input crashes.
    pub fn with_crash_prob(mut self, p: f64) -> Self {
        self.crash_prob = p;
        self
    }
}

impl Default for JpegDistiller {
    fn default() -> Self {
        Self::new()
    }
}

impl TaccWorker for JpegDistiller {
    fn name(&self) -> &'static str {
        "jpeg"
    }

    fn accepts(&self, mime: MimeType) -> bool {
        mime == MimeType::Jpeg
    }

    fn cost(&self, input: &ContentObject, _args: &TaccArgs, rng: &mut Pcg32) -> Duration {
        self.cost.sample(input.len(), rng)
    }

    fn transform(
        &mut self,
        input: &ContentObject,
        args: &TaccArgs,
        rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError> {
        if args.get_bool("poison", false) || rng.chance(self.crash_prob) {
            return Err(TaccError::PathologicalInput);
        }
        let Body::Synthetic { len, width, height } = input.body else {
            return Err(TaccError::Unsupported("jpeg body must be an image".into()));
        };
        let scale = args.get_f64("scale", 2.0).max(1.0);
        let quality = args.get_f64("quality", 25.0).clamp(1.0, 100.0);
        // JPEG re-encoding at reduced quality: sub-linear in quality (the
        // low-pass filter removes high-frequency coefficients).
        let qf = (quality / 100.0).powf(0.6);
        let factor = (qf / (scale * scale)).min(1.0);
        let out_len = ((len as f64 * factor) as u64).max(MIN_OUTPUT).min(len);
        let mut out = input.clone();
        out.body = Body::Synthetic {
            len: out_len,
            width: ((width as f64 / scale).round() as u32).max(1),
            height: ((height as f64 / scale).round() as u32).max(1),
        };
        out.quality *= (quality / 100.0).min(1.0);
        out.lineage.push("jpeg".into());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn args(pairs: &[(&str, &str)]) -> TaccArgs {
        TaccArgs::from_map(
            pairs
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect::<BTreeMap<_, _>>(),
        )
    }

    #[test]
    fn end_to_end_latency_reduction_factor_3_to_5() {
        // §1.1: distillation yields 3-5x end-to-end latency reduction;
        // the dominant term for modem users is bytes transferred, so the
        // size reduction at default settings must be at least ~3-5x.
        let mut d = JpegDistiller::new();
        let mut rng = Pcg32::new(1);
        let input = ContentObject::synthetic("u", MimeType::Jpeg, 12_070);
        let out = d.transform(&input, &args(&[]), &mut rng).unwrap();
        let reduction = input.len() as f64 / out.len() as f64;
        assert!(reduction >= 3.0, "reduction {reduction}x");
        assert_eq!(out.mime, MimeType::Jpeg);
    }

    #[test]
    fn scale_one_quality_100_is_near_identity() {
        let mut d = JpegDistiller::new();
        let mut rng = Pcg32::new(2);
        let input = ContentObject::synthetic("u", MimeType::Jpeg, 10_000);
        let out = d
            .transform(
                &input,
                &args(&[("scale", "1"), ("quality", "100")]),
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.len(), input.len());
    }

    #[test]
    fn cost_is_cheaper_than_gif_distillation() {
        let jd = JpegDistiller::new();
        let gd = crate::gif::GifDistiller::new();
        let input = ContentObject::synthetic("u", MimeType::Jpeg, 10_240);
        let ginput = ContentObject::synthetic("u", MimeType::Gif, 10_240);
        let mut rng = Pcg32::new(3);
        let javg: Duration = (0..1000)
            .map(|_| jd.cost(&input, &args(&[]), &mut rng))
            .sum::<Duration>()
            / 1000;
        let gavg: Duration = (0..1000)
            .map(|_| gd.cost(&ginput, &args(&[]), &mut rng))
            .sum::<Duration>()
            / 1000;
        assert!(javg < gavg, "jpeg {javg:?} vs gif {gavg:?}");
    }

    #[test]
    fn accepts_only_jpeg() {
        let d = JpegDistiller::new();
        assert!(d.accepts(MimeType::Jpeg));
        assert!(!d.accepts(MimeType::Gif));
        assert!(!d.accepts(MimeType::Html));
    }
}
