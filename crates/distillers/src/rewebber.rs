//! The anonymous rewebber's workers (§5.1): "The rewebber's workers
//! perform encryption and decryption … Since encryption and decryption
//! of distinct pages requested by independent users is both
//! computationally intensive and highly parallelizable, this service is
//! a natural fit for our architecture."
//!
//! The transform here is a keyed XOR stream over the text (hex-encoded)
//! — a *stand-in* that exercises the same data flow and CPU cost shape,
//! **not** a cryptographic primitive. The paper's point being reproduced
//! is architectural (parallelisable per-object compute with per-user
//! keys from the profile database), not cryptographic strength.

use std::time::Duration;

use sns_sim::rng::Pcg32;
use sns_tacc::content::{Body, ContentObject};
use sns_tacc::worker::{TaccArgs, TaccError, TaccWorker};
use sns_workload::MimeType;

use crate::cost::CostModel;

fn keystream(key: &str) -> impl Iterator<Item = u8> + '_ {
    // SplitMix-seeded byte stream from the key string.
    let mut state: u64 = key.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    });
    std::iter::from_fn(move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        Some((z ^ (z >> 31)) as u8)
    })
}

fn xor_hex_encode(text: &str, key: &str) -> String {
    let mut out = String::with_capacity(text.len() * 2);
    for (b, k) in text.bytes().zip(keystream(key)) {
        let x = b ^ k;
        out.push_str(&format!("{x:02x}"));
    }
    out
}

fn xor_hex_decode(hex: &str, key: &str) -> Result<String, TaccError> {
    if !hex.len().is_multiple_of(2) {
        return Err(TaccError::Unsupported("odd ciphertext length".into()));
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for (i, k) in (0..hex.len()).step_by(2).zip(keystream(key)) {
        let b = u8::from_str_radix(&hex[i..i + 2], 16)
            .map_err(|_| TaccError::Unsupported("bad hex".into()))?;
        bytes.push(b ^ k);
    }
    String::from_utf8(bytes).map_err(|_| TaccError::Unsupported("not utf-8 plaintext".into()))
}

/// The encrypting worker.
pub struct RewebberEncrypt {
    cost: CostModel,
}

impl RewebberEncrypt {
    /// Creates the worker.
    pub fn new() -> Self {
        RewebberEncrypt {
            cost: CostModel::crypto(),
        }
    }
}

impl Default for RewebberEncrypt {
    fn default() -> Self {
        Self::new()
    }
}

impl TaccWorker for RewebberEncrypt {
    fn name(&self) -> &'static str {
        "rewebber-enc"
    }

    fn accepts(&self, _mime: MimeType) -> bool {
        true
    }

    fn cost(&self, input: &ContentObject, _args: &TaccArgs, rng: &mut Pcg32) -> Duration {
        self.cost.sample(input.len(), rng)
    }

    fn transform(
        &mut self,
        input: &ContentObject,
        args: &TaccArgs,
        _rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError> {
        let key = args.get("key").unwrap_or("default-key");
        let mut out = input.clone();
        match &input.body {
            Body::Text(t) => {
                out.body = Body::Text(xor_hex_encode(t, key));
                out.mime = MimeType::Other;
            }
            Body::Synthetic { len, width, height } => {
                // Binary content: same length, opaque type.
                out.body = Body::Synthetic {
                    len: *len,
                    width: *width,
                    height: *height,
                };
                out.mime = MimeType::Other;
            }
        }
        out.lineage.push("rewebber-enc".into());
        out.meta
            .insert("plaintext-mime".into(), input.mime.as_str().into());
        Ok(out)
    }
}

/// The decrypting worker.
pub struct RewebberDecrypt {
    cost: CostModel,
}

impl RewebberDecrypt {
    /// Creates the worker.
    pub fn new() -> Self {
        RewebberDecrypt {
            cost: CostModel::crypto(),
        }
    }
}

impl Default for RewebberDecrypt {
    fn default() -> Self {
        Self::new()
    }
}

impl TaccWorker for RewebberDecrypt {
    fn name(&self) -> &'static str {
        "rewebber-dec"
    }

    fn accepts(&self, mime: MimeType) -> bool {
        mime == MimeType::Other
    }

    fn cost(&self, input: &ContentObject, _args: &TaccArgs, rng: &mut Pcg32) -> Duration {
        self.cost.sample(input.len(), rng)
    }

    fn transform(
        &mut self,
        input: &ContentObject,
        args: &TaccArgs,
        _rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError> {
        let key = args.get("key").unwrap_or("default-key");
        let mut out = input.clone();
        if let Body::Text(t) = &input.body {
            out.body = Body::Text(xor_hex_decode(t, key)?);
            out.mime = MimeType::Html;
        }
        out.lineage.push("rewebber-dec".into());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(key: &str) -> TaccArgs {
        TaccArgs::from_map([("key".to_string(), key.to_string())].into_iter().collect())
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut enc = RewebberEncrypt::new();
        let mut dec = RewebberDecrypt::new();
        let mut rng = Pcg32::new(1);
        let plain = ContentObject::text("http://secret", MimeType::Html, "<p>hidden page</p>");
        let ct = enc.transform(&plain, &args("k1"), &mut rng).unwrap();
        assert_eq!(ct.mime, MimeType::Other);
        let Body::Text(cipher) = &ct.body else {
            panic!("text ct")
        };
        assert!(!cipher.contains("hidden"));
        let pt = dec.transform(&ct, &args("k1"), &mut rng).unwrap();
        let Body::Text(t) = &pt.body else {
            panic!("text pt")
        };
        assert_eq!(t, "<p>hidden page</p>");
    }

    #[test]
    fn wrong_key_does_not_recover_plaintext() {
        let mut enc = RewebberEncrypt::new();
        let mut dec = RewebberDecrypt::new();
        let mut rng = Pcg32::new(1);
        let plain = ContentObject::text("u", MimeType::Html, "<p>hidden</p>");
        let ct = enc.transform(&plain, &args("k1"), &mut rng).unwrap();
        match dec.transform(&ct, &args("k2"), &mut rng) {
            // Usually invalid UTF-8 → error; if it decodes, it must differ.
            Err(_) => {}
            Ok(pt) => {
                let Body::Text(t) = &pt.body else { panic!() };
                assert_ne!(t, "<p>hidden</p>");
            }
        }
    }

    #[test]
    fn binary_content_keeps_size() {
        let mut enc = RewebberEncrypt::new();
        let mut rng = Pcg32::new(1);
        let img = ContentObject::synthetic("u", MimeType::Jpeg, 9000);
        let ct = enc.transform(&img, &args("k"), &mut rng).unwrap();
        assert_eq!(ct.len(), 9000);
        assert_eq!(ct.meta["plaintext-mime"], "image/jpeg");
    }

    #[test]
    fn garbage_ciphertext_fails_softly() {
        let mut dec = RewebberDecrypt::new();
        let mut rng = Pcg32::new(1);
        let bad = ContentObject::text("u", MimeType::Other, "zz!");
        assert!(matches!(
            dec.transform(&bad, &args("k"), &mut rng),
            Err(TaccError::Unsupported(_))
        ));
    }
}
