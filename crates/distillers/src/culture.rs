//! The Bay Area Culture Page aggregator (§5.1): collates event listings
//! from several cultural pages into one calendar, using "extremely
//! general, layout-independent heuristics … to extract scheduling
//! information". The paper notes the heuristics are wrong 10-20% of the
//! time and that users simply ignore the spurious entries — BASE
//! approximate answers at the application layer.

use std::time::Duration;

use sns_sim::rng::Pcg32;
use sns_tacc::content::{Body, ContentObject};
use sns_tacc::worker::{Aggregator, TaccArgs, TaccError};
use sns_workload::MimeType;

use crate::cost::CostModel;

const MONTHS: [&str; 12] = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// An extracted (possibly spurious) event line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLine {
    /// Month name matched (lowercase).
    pub month: String,
    /// Day-of-month matched.
    pub day: u32,
    /// Surrounding text (the "description").
    pub description: String,
    /// Source URL.
    pub source: String,
}

/// The culture-page aggregator worker.
pub struct CultureAggregator {
    cost: CostModel,
}

impl CultureAggregator {
    /// Creates the aggregator.
    pub fn new() -> Self {
        CultureAggregator {
            cost: CostModel::text_pass(),
        }
    }

    /// Layout-independent date heuristic: a month name followed within a
    /// few tokens by a small number. Intentionally naive — it mirrors
    /// the paper's spurious-match behaviour on non-date text.
    pub fn extract_events(source: &str, text: &str) -> Vec<EventLine> {
        let mut events = Vec::new();
        // Strip tags crudely: replace tag spans with spaces.
        let mut clean = String::with_capacity(text.len());
        let mut in_tag = false;
        for c in text.chars() {
            match c {
                '<' => in_tag = true,
                '>' => in_tag = false,
                c if !in_tag => clean.push(c),
                _ => {}
            }
        }
        let tokens: Vec<&str> = clean.split_whitespace().collect();
        for (i, tok) in tokens.iter().enumerate() {
            let lower = tok
                .trim_matches(|c: char| !c.is_alphanumeric())
                .to_lowercase();
            if !MONTHS.contains(&lower.as_str()) {
                continue;
            }
            // Look ahead a few tokens for a plausible day number.
            for next in tokens.iter().skip(i + 1).take(3) {
                let trimmed = next.trim_matches(|c: char| !c.is_alphanumeric());
                if let Ok(day) = trimmed.parse::<u32>() {
                    if (1..=31).contains(&day) {
                        let lo = i.saturating_sub(4);
                        let hi = (i + 8).min(tokens.len());
                        events.push(EventLine {
                            month: lower.clone(),
                            day,
                            description: tokens[lo..hi].join(" "),
                            source: source.to_string(),
                        });
                        break;
                    }
                }
            }
        }
        events
    }

    fn render(events: &[EventLine]) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "<html><head><title>Culture This Week</title></head><body><h1>Culture This Week</h1><ul>\n",
        );
        for e in events {
            let _ = writeln!(
                out,
                "<li><b>{} {}</b>: {} <i>({})</i></li>",
                e.month, e.day, e.description, e.source
            );
        }
        out.push_str("</ul></body></html>\n");
        out
    }
}

impl Default for CultureAggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregator for CultureAggregator {
    fn name(&self) -> &'static str {
        "culture"
    }

    fn cost(&self, inputs: &[ContentObject], _args: &TaccArgs, rng: &mut Pcg32) -> Duration {
        let total: u64 = inputs.iter().map(|o| o.len()).sum();
        self.cost.sample(total, rng)
    }

    fn aggregate(
        &mut self,
        inputs: &[ContentObject],
        args: &TaccArgs,
        _rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError> {
        let mut events = Vec::new();
        for input in inputs {
            if let Body::Text(t) = &input.body {
                events.extend(Self::extract_events(&input.url, t));
            }
        }
        // Bound by the user's profile (dates of interest → month filter).
        if let Some(month) = args.get("month") {
            let month = month.to_lowercase();
            events.retain(|e| e.month == month);
        }
        let mut out = ContentObject::text(
            "transend://culture-this-week",
            MimeType::Html,
            Self::render(&events),
        );
        out.lineage.push("culture".into());
        out.meta.insert("events".into(), events.len().to_string());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_real_events() {
        let page = "<html><body><p>Symphony gala on January 15 at the hall.</p>\
                    <p>Gallery opening March 3, free for students.</p></body></html>";
        let events = CultureAggregator::extract_events("http://arts", page);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].month, "january");
        assert_eq!(events[0].day, 15);
        assert_eq!(events[1].month, "march");
        assert_eq!(events[1].day, 3);
    }

    #[test]
    fn spurious_matches_happen_and_are_tolerated() {
        // "May 1998" style non-event text triggers the heuristic — the
        // documented 10-20% spurious behaviour.
        let page = "<p>Copyright May 30 Productions Inc.</p>";
        let events = CultureAggregator::extract_events("http://x", page);
        assert_eq!(events.len(), 1, "heuristics are intentionally credulous");
    }

    #[test]
    fn aggregation_collates_and_counts() {
        let mut a = CultureAggregator::new();
        let mut rng = Pcg32::new(1);
        let p1 = ContentObject::text(
            "http://a",
            MimeType::Html,
            "<p>Concert February 7 downtown</p>",
        );
        let p2 = ContentObject::text(
            "http://b",
            MimeType::Html,
            "<p>Play February 9 and reading October 21</p>",
        );
        let out = a
            .aggregate(&[p1, p2], &TaccArgs::default(), &mut rng)
            .unwrap();
        assert_eq!(out.meta["events"], "3");
        let Body::Text(t) = &out.body else {
            panic!("text out")
        };
        assert!(t.contains("february 7"));
        assert!(t.contains("october 21"));
        assert!(t.contains("Culture This Week"));
    }

    #[test]
    fn month_filter_from_profile() {
        let mut a = CultureAggregator::new();
        let mut rng = Pcg32::new(1);
        let p = ContentObject::text(
            "http://a",
            MimeType::Html,
            "<p>One January 5. Two June 6.</p>",
        );
        let args = TaccArgs::from_map(
            [("month".to_string(), "June".to_string())]
                .into_iter()
                .collect(),
        );
        let out = a.aggregate(&[p], &args, &mut rng).unwrap();
        assert_eq!(out.meta["events"], "1");
    }

    #[test]
    fn tags_do_not_confuse_extraction() {
        let page = "<b>January</b> <i>12</i> concert";
        let events = CultureAggregator::extract_events("u", page);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].day, 12);
    }
}
