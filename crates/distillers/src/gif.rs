//! The GIF distiller: GIF→JPEG conversion followed by JPEG degradation
//! (§3.1.6, footnote 3: "the JPEG representation is smaller and faster
//! to operate on for most images, and produces aesthetically superior
//! results").

use std::time::Duration;

use sns_sim::rng::Pcg32;
use sns_tacc::content::{Body, ContentObject};
use sns_tacc::worker::{TaccArgs, TaccError, TaccWorker};
use sns_workload::MimeType;

use crate::cost::CostModel;

/// Smallest output the distiller will produce.
const MIN_OUTPUT: u64 = 256;

/// Quality→size factor: Figure 3's example (scale 2, quality 25) turns
/// 10 KB into 1.5 KB, i.e. total factor 0.15 = (1/2²) · 0.6.
fn quality_factor(quality: f64) -> f64 {
    (0.3 + 0.012 * quality).min(1.0)
}

/// The GIF distiller worker.
pub struct GifDistiller {
    cost: CostModel,
    /// Probability a given input is pathological and crashes the worker
    /// (§3.1.6); 0 by default.
    pub crash_prob: f64,
}

impl GifDistiller {
    /// Creates the distiller with Figure 7 costs.
    pub fn new() -> Self {
        GifDistiller {
            cost: CostModel::gif(),
            crash_prob: 0.0,
        }
    }

    /// Enables pathological-input crashes with the given probability.
    pub fn with_crash_prob(mut self, p: f64) -> Self {
        self.crash_prob = p;
        self
    }
}

impl Default for GifDistiller {
    fn default() -> Self {
        Self::new()
    }
}

impl TaccWorker for GifDistiller {
    fn name(&self) -> &'static str {
        "gif"
    }

    fn accepts(&self, mime: MimeType) -> bool {
        mime == MimeType::Gif
    }

    fn cost(&self, input: &ContentObject, _args: &TaccArgs, rng: &mut Pcg32) -> Duration {
        self.cost.sample(input.len(), rng)
    }

    fn transform(
        &mut self,
        input: &ContentObject,
        args: &TaccArgs,
        rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError> {
        if args.get_bool("poison", false) || rng.chance(self.crash_prob) {
            return Err(TaccError::PathologicalInput);
        }
        let Body::Synthetic { len, width, height } = input.body else {
            return Err(TaccError::Unsupported("gif body must be an image".into()));
        };
        let scale = args.get_f64("scale", 2.0).max(1.0);
        let quality = args.get_f64("quality", 25.0).clamp(1.0, 100.0);
        let qf = quality_factor(quality);
        let factor = qf / (scale * scale);
        let out_len = ((len as f64 * factor) as u64).max(MIN_OUTPUT).min(len);
        let mut out = input.clone();
        out.mime = MimeType::Jpeg; // GIF→JPEG conversion
        out.body = Body::Synthetic {
            len: out_len,
            width: ((width as f64 / scale).round() as u32).max(1),
            height: ((height as f64 / scale).round() as u32).max(1),
        };
        out.quality *= (quality / 100.0).min(1.0);
        out.lineage.push("gif".into());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn args(pairs: &[(&str, &str)]) -> TaccArgs {
        TaccArgs::from_map(
            pairs
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect::<BTreeMap<_, _>>(),
        )
    }

    #[test]
    fn figure_3_size_reduction() {
        // Scale 2, quality 25: 10 KB -> ~1.5 KB.
        let mut d = GifDistiller::new();
        let mut rng = Pcg32::new(1);
        let input = ContentObject::synthetic("u", MimeType::Gif, 10_240);
        let out = d
            .transform(
                &input,
                &args(&[("scale", "2"), ("quality", "25")]),
                &mut rng,
            )
            .unwrap();
        let factor = out.len() as f64 / input.len() as f64;
        assert!((0.10..0.20).contains(&factor), "factor {factor}");
        assert_eq!(out.mime, MimeType::Jpeg, "GIF is converted to JPEG");
        assert!(out.quality < 1.0);
        assert_eq!(out.lineage, vec!["gif"]);
    }

    #[test]
    fn dimensions_scale_down() {
        let mut d = GifDistiller::new();
        let mut rng = Pcg32::new(2);
        let input = ContentObject::synthetic("u", MimeType::Gif, 20_000);
        let Body::Synthetic { width: w0, .. } = input.body else {
            unreachable!()
        };
        let out = d
            .transform(&input, &args(&[("scale", "4")]), &mut rng)
            .unwrap();
        let Body::Synthetic { width: w1, .. } = out.body else {
            panic!("image out")
        };
        assert_eq!(w1, (w0 as f64 / 4.0).round() as u32);
    }

    #[test]
    fn never_grows_and_floors_small_outputs() {
        let mut d = GifDistiller::new();
        let mut rng = Pcg32::new(3);
        let tiny = ContentObject::synthetic("u", MimeType::Gif, 300);
        let out = d.transform(&tiny, &args(&[]), &mut rng).unwrap();
        assert!(out.len() <= 300, "distillation must not grow content");
    }

    #[test]
    fn higher_quality_bigger_output() {
        let mut d = GifDistiller::new();
        let mut rng = Pcg32::new(4);
        let input = ContentObject::synthetic("u", MimeType::Gif, 40_000);
        let lo = d
            .transform(&input, &args(&[("quality", "10")]), &mut rng)
            .unwrap();
        let hi = d
            .transform(&input, &args(&[("quality", "90")]), &mut rng)
            .unwrap();
        assert!(hi.len() > lo.len());
    }

    #[test]
    fn poison_crashes() {
        let mut d = GifDistiller::new();
        let mut rng = Pcg32::new(5);
        let input = ContentObject::synthetic("u", MimeType::Gif, 1000);
        assert!(matches!(
            d.transform(&input, &args(&[("poison", "1")]), &mut rng),
            Err(TaccError::PathologicalInput)
        ));
    }

    #[test]
    fn rejects_text_body() {
        let mut d = GifDistiller::new();
        let mut rng = Pcg32::new(6);
        let input = ContentObject::text("u", MimeType::Gif, "<not an image>");
        assert!(matches!(
            d.transform(&input, &args(&[]), &mut rng),
            Err(TaccError::Unsupported(_))
        ));
    }
}
