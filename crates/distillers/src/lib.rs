//! # sns-distillers — TranSend's datatype-specific workers (§3.1.6) and
//! the §5.1 extension services
//!
//! The paper's three production distillers, plus every example service
//! §5.1 reports building on the architecture:
//!
//! | module | paper counterpart |
//! |---|---|
//! | [`gif`] | GIF→JPEG conversion followed by JPEG degradation |
//! | [`jpeg`] | scaling and low-pass filtering of JPEG images (jpeg-6a) |
//! | [`html`] | the Perl HTML "munger": image-ref markup, links to originals, toolbar |
//! | [`keyword`] | the 10-line keyword-filter aggregator (bold-red highlighting) |
//! | [`culture`] | the Bay Area Culture Page aggregator (heuristic date extraction) |
//! | [`metasearch`] | the TranSend metasearch collator (3 pages of Perl, 2.5 h) |
//! | [`rewebber`] | the anonymous rewebber's encrypt/decrypt workers |
//! | [`pda`] | the PalmPilot thin-client simplifier ("spoon-fed" markup) |
//!
//! Image distillers operate on the synthetic image model (size,
//! dimensions, quality) with costs calibrated to Figure 7 (≈8 ms per
//! input KB for GIF, linear, with the observed high variance; JPEG is
//! "far more efficient" — calibrated so one distiller saturates at
//! ≈23 requests/s on 10 KB inputs as in Table 2). Text workers do real
//! string processing on real markup.

#![warn(missing_docs)]

pub mod cost;
pub mod culture;
pub mod gif;
pub mod html;
pub mod jpeg;
pub mod keyword;
pub mod metasearch;
pub mod pda;
pub mod rewebber;

pub use cost::CostModel;
pub use culture::CultureAggregator;
pub use gif::GifDistiller;
pub use html::HtmlMunger;
pub use jpeg::JpegDistiller;
pub use keyword::KeywordFilter;
pub use metasearch::MetasearchAggregator;
pub use pda::PdaSimplifier;
pub use rewebber::{RewebberDecrypt, RewebberEncrypt};
