//! The thin-client simplifier (§5.1): "Real Web Access for PDAs and
//! Smart Phones" — workers that "output simplified markup and
//! scaled-down images ready to be 'spoon fed' to an extremely simple
//! browser client, given knowledge of the client's screen dimensions and
//! font metrics", so no HTML parsing, layout or image processing is
//! needed client-side.

use std::time::Duration;

use sns_sim::rng::Pcg32;
use sns_tacc::content::{Body, ContentObject};
use sns_tacc::worker::{TaccArgs, TaccError, TaccWorker};
use sns_workload::MimeType;

use crate::cost::CostModel;

/// The PalmPilot-class simplifier worker.
pub struct PdaSimplifier {
    cost: CostModel,
}

impl PdaSimplifier {
    /// Creates the simplifier.
    pub fn new() -> Self {
        PdaSimplifier {
            cost: CostModel::html(),
        }
    }

    /// Strips tags and re-wraps text to the client's line width; images
    /// become `[IMG n]` placeholders listed with target dimensions.
    fn spoon_feed(html: &str, cols: usize, screen_w: u32, screen_h: u32) -> String {
        let mut text = String::with_capacity(html.len());
        let mut images: Vec<String> = Vec::new();
        let mut rest = html;
        // Extract image srcs, replace with placeholders, drop other tags.
        let mut in_tag = false;
        let mut tag_buf = String::new();
        for c in rest.chars() {
            match c {
                '<' => {
                    in_tag = true;
                    tag_buf.clear();
                }
                '>' if in_tag => {
                    in_tag = false;
                    if tag_buf.starts_with("img ") || tag_buf.starts_with("img\t") {
                        let src = tag_buf
                            .split("src=\"")
                            .nth(1)
                            .and_then(|s| s.split('"').next())
                            .unwrap_or("?");
                        images.push(src.to_string());
                        text.push_str(&format!(" [IMG {}] ", images.len()));
                    } else if tag_buf.starts_with('p') || tag_buf.starts_with("br") {
                        text.push('\n');
                    }
                }
                c if in_tag => tag_buf.push(c),
                c => text.push(c),
            }
        }
        rest = "";
        let _ = rest;
        // Re-wrap to `cols` columns (the client does no layout).
        let mut wrapped = String::new();
        for paragraph in text.split('\n') {
            let mut col = 0;
            for word in paragraph.split_whitespace() {
                if col + word.len() + 1 > cols && col > 0 {
                    wrapped.push('\n');
                    col = 0;
                }
                if col > 0 {
                    wrapped.push(' ');
                    col += 1;
                }
                wrapped.push_str(word);
                col += word.len();
            }
            if col > 0 {
                wrapped.push('\n');
            }
        }
        // Image manifest with scaled dimensions.
        if !images.is_empty() {
            wrapped.push_str("--images--\n");
            for (i, src) in images.iter().enumerate() {
                wrapped.push_str(&format!(
                    "{}: {src} @{}x{}\n",
                    i + 1,
                    screen_w.min(160),
                    screen_h.min(160)
                ));
            }
        }
        wrapped
    }
}

impl Default for PdaSimplifier {
    fn default() -> Self {
        Self::new()
    }
}

impl TaccWorker for PdaSimplifier {
    fn name(&self) -> &'static str {
        "pda"
    }

    fn accepts(&self, mime: MimeType) -> bool {
        mime == MimeType::Html
    }

    fn cost(&self, input: &ContentObject, _args: &TaccArgs, rng: &mut Pcg32) -> Duration {
        self.cost.sample(input.len(), rng)
    }

    fn transform(
        &mut self,
        input: &ContentObject,
        args: &TaccArgs,
        _rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError> {
        let Body::Text(html) = &input.body else {
            return Err(TaccError::Unsupported("pda simplifier needs text".into()));
        };
        let cols = args.get_f64("cols", 40.0) as usize;
        let w = args.get_f64("screen_w", 160.0) as u32;
        let h = args.get_f64("screen_h", 160.0) as u32;
        let mut out = input.clone();
        out.body = Body::Text(Self::spoon_feed(html, cols.max(16), w, h));
        out.mime = MimeType::Other; // simplified markup, not HTML
        out.lineage.push("pda".into());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_tags_and_wraps() {
        let mut p = PdaSimplifier::new();
        let mut rng = Pcg32::new(1);
        let html = "<html><body><p>this is a fairly long paragraph of words that must wrap to the tiny screen</p></body></html>";
        let input = ContentObject::text("u", MimeType::Html, html);
        let args = TaccArgs::from_map(
            [("cols".to_string(), "20".to_string())]
                .into_iter()
                .collect(),
        );
        let out = p.transform(&input, &args, &mut rng).unwrap();
        let Body::Text(t) = &out.body else { panic!() };
        assert!(!t.contains('<'));
        assert!(
            t.lines().filter(|l| !l.is_empty()).all(|l| l.len() <= 21),
            "{t}"
        );
    }

    #[test]
    fn images_become_placeholders_with_manifest() {
        let mut p = PdaSimplifier::new();
        let mut rng = Pcg32::new(1);
        let html = r#"<body><p>pic:</p><img src="http://h/a.gif" width="640"><p>done</p></body>"#;
        let input = ContentObject::text("u", MimeType::Html, html);
        let out = p.transform(&input, &TaccArgs::default(), &mut rng).unwrap();
        let Body::Text(t) = &out.body else { panic!() };
        assert!(t.contains("[IMG 1]"));
        assert!(t.contains("--images--"));
        assert!(t.contains("http://h/a.gif @160x160"));
    }

    #[test]
    fn output_is_smaller_for_markup_heavy_pages() {
        let mut p = PdaSimplifier::new();
        let mut rng = Pcg32::new(1);
        let html = format!(
            "<html><head><title>x</title></head><body>{}</body></html>",
            "<div class=\"wrapper\"><span>hi</span></div>".repeat(50)
        );
        let input = ContentObject::text("u", MimeType::Html, html);
        let out = p.transform(&input, &TaccArgs::default(), &mut rng).unwrap();
        assert!(
            out.len() < input.len() / 4,
            "{} vs {}",
            out.len(),
            input.len()
        );
    }
}
