//! The keyword filter (§5.1): "about 10 lines of Perl. It allows users
//! to specify a … expression as customization preference \[which\] is then
//! applied to all HTML before delivery. A simple example filter marks
//! all occurrences of the chosen keywords with large, bold, red
//! typeface."
//!
//! Keywords come from the user's profile (`keywords`, comma-separated),
//! demonstrating TACC customisation: the same worker serves every user
//! with their own terms.

use std::time::Duration;

use sns_sim::rng::Pcg32;
use sns_tacc::content::{Body, ContentObject};
use sns_tacc::worker::{TaccArgs, TaccError, TaccWorker};
use sns_workload::MimeType;

use crate::cost::CostModel;

const MARK_OPEN: &str = r#"<b style="color:red;font-size:large">"#;
const MARK_CLOSE: &str = "</b>";

/// The keyword-highlighting worker.
pub struct KeywordFilter {
    cost: CostModel,
}

impl KeywordFilter {
    /// Creates the filter.
    pub fn new() -> Self {
        KeywordFilter {
            cost: CostModel::text_pass(),
        }
    }

    /// Case-insensitively wraps every occurrence of `needle` in the
    /// marker. Skips text inside tags (between `<` and `>`).
    fn highlight(text: &str, needle: &str) -> (String, usize) {
        if needle.is_empty() {
            return (text.to_string(), 0);
        }
        let lower_text = text.to_lowercase();
        let lower_needle = needle.to_lowercase();
        let mut out = String::with_capacity(text.len());
        let mut hits = 0;
        let mut pos = 0;
        let mut in_tag = false;
        while pos < text.len() {
            let rest = &lower_text[pos..];
            if in_tag {
                match rest.find('>') {
                    Some(i) => {
                        out.push_str(&text[pos..pos + i + 1]);
                        pos += i + 1;
                        in_tag = false;
                    }
                    None => {
                        out.push_str(&text[pos..]);
                        break;
                    }
                }
                continue;
            }
            let next_tag = rest.find('<');
            let next_hit = rest.find(&lower_needle);
            match (next_hit, next_tag) {
                (Some(h), None) => {
                    out.push_str(&text[pos..pos + h]);
                    out.push_str(MARK_OPEN);
                    out.push_str(&text[pos + h..pos + h + needle.len()]);
                    out.push_str(MARK_CLOSE);
                    hits += 1;
                    pos += h + needle.len();
                }
                (Some(h), Some(t)) if h < t => {
                    out.push_str(&text[pos..pos + h]);
                    out.push_str(MARK_OPEN);
                    out.push_str(&text[pos + h..pos + h + needle.len()]);
                    out.push_str(MARK_CLOSE);
                    hits += 1;
                    pos += h + needle.len();
                }
                (_, Some(t)) => {
                    out.push_str(&text[pos..pos + t + 1]);
                    pos += t + 1;
                    in_tag = true;
                }
                (None, None) => {
                    out.push_str(&text[pos..]);
                    break;
                }
            }
        }
        (out, hits)
    }
}

impl Default for KeywordFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl TaccWorker for KeywordFilter {
    fn name(&self) -> &'static str {
        "keyword"
    }

    fn accepts(&self, mime: MimeType) -> bool {
        mime == MimeType::Html
    }

    fn cost(&self, input: &ContentObject, _args: &TaccArgs, rng: &mut Pcg32) -> Duration {
        self.cost.sample(input.len(), rng)
    }

    fn transform(
        &mut self,
        input: &ContentObject,
        args: &TaccArgs,
        _rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError> {
        let Body::Text(html) = &input.body else {
            return Err(TaccError::Unsupported("keyword filter needs text".into()));
        };
        let mut text = html.clone();
        let mut total = 0;
        if let Some(keywords) = args.get("keywords") {
            for kw in keywords.split(',').map(str::trim).filter(|k| !k.is_empty()) {
                let (next, hits) = Self::highlight(&text, kw);
                text = next;
                total += hits;
            }
        }
        let mut out = input.clone();
        out.body = Body::Text(text);
        out.lineage.push("keyword".into());
        out.meta.insert("keyword_hits".into(), total.to_string());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn filter(html: &str, keywords: &str) -> ContentObject {
        let mut f = KeywordFilter::new();
        let mut rng = Pcg32::new(1);
        let args = TaccArgs::from_map(BTreeMap::from([(
            "keywords".to_string(),
            keywords.to_string(),
        )]));
        let input = ContentObject::text("u", MimeType::Html, html);
        f.transform(&input, &args, &mut rng).unwrap()
    }

    fn text_of(o: &ContentObject) -> &str {
        match &o.body {
            Body::Text(t) => t,
            _ => panic!("text body"),
        }
    }

    #[test]
    fn highlights_case_insensitively() {
        let out = filter("<p>Rust and RUST and rust.</p>", "rust");
        let t = text_of(&out);
        assert_eq!(t.matches(MARK_OPEN).count(), 3);
        assert!(t.contains(&format!("{MARK_OPEN}Rust{MARK_CLOSE}")));
        assert!(t.contains(&format!("{MARK_OPEN}RUST{MARK_CLOSE}")));
        assert_eq!(out.meta["keyword_hits"], "3");
    }

    #[test]
    fn does_not_touch_markup() {
        let out = filter("<a href=\"rust.html\">rust</a>", "rust");
        let t = text_of(&out);
        assert!(
            t.contains("href=\"rust.html\""),
            "attribute text must not be highlighted: {t}"
        );
        assert_eq!(t.matches(MARK_OPEN).count(), 1);
    }

    #[test]
    fn multiple_keywords() {
        let out = filter("<p>alpha beta gamma</p>", "alpha, gamma");
        assert_eq!(out.meta["keyword_hits"], "2");
    }

    #[test]
    fn no_keywords_is_identity_text() {
        let mut f = KeywordFilter::new();
        let mut rng = Pcg32::new(1);
        let input = ContentObject::text("u", MimeType::Html, "<p>plain</p>");
        let out = f.transform(&input, &TaccArgs::default(), &mut rng).unwrap();
        assert_eq!(text_of(&out), "<p>plain</p>");
        assert_eq!(out.meta["keyword_hits"], "0");
    }
}
