//! The HTML "munger" (§3.1.6): real markup rewriting.
//!
//! The paper's Perl distiller "marks up inline image references with
//! distillation preferences, adds extra links next to distilled images so
//! that users can retrieve the original content, and adds a 'toolbar' to
//! each page that allows users to control various aspects of TranSend's
//! operation." This implementation performs the same three rewrites on
//! real HTML text.

use std::time::Duration;

use sns_sim::rng::Pcg32;
use sns_tacc::content::{Body, ContentObject};
use sns_tacc::worker::{TaccArgs, TaccError, TaccWorker};
use sns_workload::MimeType;

use crate::cost::CostModel;

/// The toolbar injected after `<body>` (a text stand-in for Figure 4).
pub const TOOLBAR: &str = r#"<div class="transend-toolbar">[TranSend] quality: <a href="?ts-q=10">low</a> <a href="?ts-q=25">med</a> <a href="?ts-q=50">high</a> | <a href="?ts-off=1">originals</a></div>"#;

/// The HTML munger worker.
pub struct HtmlMunger {
    cost: CostModel,
}

impl HtmlMunger {
    /// Creates the munger.
    pub fn new() -> Self {
        HtmlMunger {
            cost: CostModel::html(),
        }
    }

    /// Rewrites one `src="…"` attribute occurrence, returning the new
    /// tag text and whether a rewrite happened.
    fn rewrite_images(html: &str, quality: f64) -> (String, usize) {
        let mut out = String::with_capacity(html.len() + html.len() / 8);
        let mut rewritten = 0;
        let mut rest = html;
        while let Some(tag_start) = rest.find("<img ") {
            let (before, tag_on) = rest.split_at(tag_start);
            out.push_str(before);
            let Some(tag_end) = tag_on.find('>') else {
                // Unterminated tag: emit as-is and stop scanning.
                rest = tag_on;
                break;
            };
            let tag = &tag_on[..=tag_end];
            // Annotate the reference with the distillation preference and
            // add the "retrieve original" link.
            let src = tag
                .split("src=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .unwrap_or("");
            let annotated = if let Some(stripped) = tag.strip_suffix('>') {
                format!("{stripped} data-ts-quality=\"{quality}\">")
            } else {
                tag.to_string()
            };
            out.push_str(&annotated);
            if !src.is_empty() {
                out.push_str(&format!("<a href=\"{src}?ts-original=1\">[original]</a>"));
            }
            rewritten += 1;
            rest = &tag_on[tag_end + 1..];
        }
        out.push_str(rest);
        (out, rewritten)
    }
}

impl Default for HtmlMunger {
    fn default() -> Self {
        Self::new()
    }
}

impl TaccWorker for HtmlMunger {
    fn name(&self) -> &'static str {
        "html"
    }

    fn accepts(&self, mime: MimeType) -> bool {
        mime == MimeType::Html
    }

    fn cost(&self, input: &ContentObject, _args: &TaccArgs, rng: &mut Pcg32) -> Duration {
        self.cost.sample(input.len(), rng)
    }

    fn transform(
        &mut self,
        input: &ContentObject,
        args: &TaccArgs,
        _rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError> {
        let Body::Text(html) = &input.body else {
            return Err(TaccError::Unsupported("html body must be text".into()));
        };
        let quality = args.get_f64("quality", 25.0);
        let (mut munged, n) = Self::rewrite_images(html, quality);
        if args.get_bool("toolbar", true) {
            if let Some(pos) = munged.find("<body>") {
                munged.insert_str(pos + "<body>".len(), TOOLBAR);
            } else {
                munged.insert_str(0, TOOLBAR);
            }
        }
        let mut out = input.clone();
        out.body = Body::Text(munged);
        out.lineage.push("html".into());
        out.meta.insert("images_marked".into(), n.to_string());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_tacc::content::synth_html;
    use std::collections::BTreeMap;

    fn munge(html: &str, pairs: &[(&str, &str)]) -> ContentObject {
        let mut m = HtmlMunger::new();
        let mut rng = Pcg32::new(1);
        let args = TaccArgs::from_map(
            pairs
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect::<BTreeMap<_, _>>(),
        );
        let input = ContentObject::text("http://h/p", MimeType::Html, html);
        m.transform(&input, &args, &mut rng).unwrap()
    }

    #[test]
    fn marks_images_and_adds_original_links() {
        let words: Vec<&str> =
            "one two three four five six seven eight nine ten eleven twelve more words here now"
                .split(' ')
                .collect();
        let html = synth_html("http://h/p", 2, &words);
        let out = munge(&html, &[("quality", "25")]);
        let Body::Text(t) = &out.body else {
            panic!("text out")
        };
        assert_eq!(t.matches("data-ts-quality=\"25\"").count(), 2);
        assert_eq!(t.matches("?ts-original=1\">[original]</a>").count(), 2);
        assert_eq!(out.meta["images_marked"], "2");
    }

    #[test]
    fn toolbar_injected_after_body() {
        let out = munge("<html><body><p>x</p></body></html>", &[]);
        let Body::Text(t) = &out.body else {
            panic!("text out")
        };
        let body_pos = t.find("<body>").unwrap();
        let bar_pos = t.find("transend-toolbar").unwrap();
        assert!(bar_pos > body_pos);
        assert!(bar_pos < t.find("<p>").unwrap());
    }

    #[test]
    fn toolbar_can_be_disabled() {
        let out = munge("<html><body></body></html>", &[("toolbar", "0")]);
        let Body::Text(t) = &out.body else {
            panic!("text out")
        };
        assert!(!t.contains("transend-toolbar"));
    }

    #[test]
    fn pages_without_images_pass_through() {
        let out = munge("<html><body><p>just text</p></body></html>", &[]);
        assert_eq!(out.meta["images_marked"], "0");
        let Body::Text(t) = &out.body else {
            panic!("text out")
        };
        assert!(t.contains("just text"));
    }

    #[test]
    fn unterminated_tag_does_not_panic() {
        let out = munge("<html><body><img src=\"x.gif\"", &[]);
        let Body::Text(t) = &out.body else {
            panic!("text out")
        };
        assert!(t.contains("<img src=\"x.gif\""));
    }
}
