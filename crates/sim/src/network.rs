//! The interconnect abstraction the engine routes messages through.
//!
//! The engine is generic over a [`Network`] implementation so that the same
//! component code can run over an idealised constant-latency fabric (unit
//! tests) or over the full system-area-network model in the `sns-san`
//! crate (bandwidth, queueing, multicast drops, partitions).

use crate::rng::Pcg32;
use crate::time::SimTime;
use crate::ComponentId;
use crate::NodeId;

/// Source or destination of a message: a component pinned to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// Node hosting the component.
    pub node: NodeId,
    /// The component itself.
    pub comp: ComponentId,
}

/// Routing decision for a unicast message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver at the given absolute time.
    At(SimTime),
    /// The network dropped the message (only droppable traffic classes).
    Dropped,
}

/// Traffic class, mirroring the paper's two kinds of SAN traffic.
///
/// * `Reliable` models TCP-like connections: never dropped, but subject to
///   queueing delay (backpressure).
/// * `Datagram` models the unreliable IP multicast used for beacons and
///   load reports: dropped when queues overflow near saturation (§4.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// Flow-controlled, never dropped.
    Reliable,
    /// Best-effort, droppable under saturation.
    Datagram,
}

/// An interconnect model consulted for every message the engine routes.
///
/// Implementations must be deterministic given the same call sequence and
/// RNG stream.
pub trait Network {
    /// Routes one unicast message of `size` bytes; returns when (or
    /// whether) it is delivered.
    fn unicast(
        &mut self,
        now: SimTime,
        rng: &mut Pcg32,
        from: Endpoint,
        to: Endpoint,
        size: u64,
        class: TrafficClass,
    ) -> Delivery;

    /// Routes one multicast message of `size` bytes to `members`; returns a
    /// per-member delivery decision (same order as `members`).
    fn multicast(
        &mut self,
        now: SimTime,
        rng: &mut Pcg32,
        from: Endpoint,
        members: &[Endpoint],
        size: u64,
        class: TrafficClass,
    ) -> Vec<Delivery>;

    /// Informs the model that a node exists (called by the engine when
    /// nodes are added).
    fn register_node(&mut self, node: NodeId);
}

/// A zero-contention fabric with constant one-way latency. Useful for unit
/// tests and for experiments where the interconnect is not under study.
#[derive(Debug, Clone)]
pub struct IdealNetwork {
    /// One-way latency applied to every message.
    pub latency: std::time::Duration,
}

impl IdealNetwork {
    /// Creates an ideal network with the given one-way latency.
    pub fn new(latency: std::time::Duration) -> Self {
        IdealNetwork { latency }
    }
}

impl Default for IdealNetwork {
    fn default() -> Self {
        IdealNetwork::new(std::time::Duration::from_micros(100))
    }
}

impl Network for IdealNetwork {
    fn unicast(
        &mut self,
        now: SimTime,
        _rng: &mut Pcg32,
        _from: Endpoint,
        _to: Endpoint,
        _size: u64,
        _class: TrafficClass,
    ) -> Delivery {
        Delivery::At(now + self.latency)
    }

    fn multicast(
        &mut self,
        now: SimTime,
        _rng: &mut Pcg32,
        _from: Endpoint,
        members: &[Endpoint],
        _size: u64,
        _class: TrafficClass,
    ) -> Vec<Delivery> {
        vec![Delivery::At(now + self.latency); members.len()]
    }

    fn register_node(&mut self, _node: NodeId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ideal_network_is_constant_latency() {
        let mut n = IdealNetwork::new(Duration::from_millis(1));
        let mut rng = Pcg32::new(1);
        let ep = |c| Endpoint {
            node: NodeId(0),
            comp: ComponentId(c),
        };
        let d = n.unicast(
            SimTime::from_secs(1),
            &mut rng,
            ep(1),
            ep(2),
            1_000_000,
            TrafficClass::Reliable,
        );
        assert_eq!(
            d,
            Delivery::At(SimTime::from_secs(1) + Duration::from_millis(1))
        );
        let ds = n.multicast(
            SimTime::ZERO,
            &mut rng,
            ep(1),
            &[ep(2), ep(3)],
            64,
            TrafficClass::Datagram,
        );
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| matches!(d, Delivery::At(_))));
    }
}
