//! Span recording primitives: the part of the tracing substrate the
//! engine itself holds.
//!
//! A [`Tracer`] is a cheaply clonable handle to a shared [`TraceLog`];
//! a disabled tracer is a `None` and costs one branch per emission
//! site, so tracing can stay wired through hot paths permanently. The
//! span *model* (what the SNS layer records, how ids are derived from
//! jobs and requests, export formats) lives in `sns-core::trace`, which
//! re-exports these types; `OBSERVABILITY.md` documents the whole
//! scheme. Names, categories and classes are interned `&'static str`s
//! (the same interner that backs [`crate::stats::MetricKey`]), so a
//! [`SpanRecord`] is `Copy`-sized plain data and recording never
//! allocates beyond the log's `Vec` growth.

use std::sync::{Arc, Mutex, PoisonError};

use crate::time::SimTime;
use crate::ComponentId;

/// Identifies one span. Globally unique within a run: `owner` is the
/// component that allocated the numbering space (the front end for
/// request/job ids, the worker for its queue/service spans), `kind`
/// separates numbering spaces sharing an owner, and `n` is the number
/// within the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId {
    /// Short interned kind tag (`"req"`, `"job"`, `"wq"`, …).
    pub kind: &'static str,
    /// Component owning the numbering space.
    pub owner: ComponentId,
    /// Number within the owner's space for this kind.
    pub n: u64,
}

impl SpanId {
    /// Renders the id in its canonical `kind:c<owner>:<n>` form (the
    /// form used by the JSONL exporter and `OBSERVABILITY.md`).
    pub fn render(&self) -> String {
        format!("{}:c{}:{}", self.kind, self.owner.0, self.n)
    }
}

/// One completed (or instantaneous) span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// Causal parent, if any (`None` marks a tree root).
    pub parent: Option<SpanId>,
    /// Interned span name (`"request"`, `"dispatch"`, `"service"`, …).
    pub name: &'static str,
    /// Interned category (`"fe"`, `"stub"`, `"worker"`, `"monitor"`).
    pub cat: &'static str,
    /// Component the span executed on.
    pub who: ComponentId,
    /// Interned worker-class name, or `""` when not class-addressed.
    pub class: &'static str,
    /// Span start (virtual time in the simulator, time since cluster
    /// start in the threaded runtime).
    pub start: SimTime,
    /// Span end; equal to `start` for instant events.
    pub end: SimTime,
    /// Payload bytes attributed to the span (0 when not applicable).
    pub bytes: u64,
    /// Whether the spanned operation succeeded.
    pub ok: bool,
}

impl SpanRecord {
    /// Span duration (zero for instants).
    pub fn duration(&self) -> std::time::Duration {
        self.end.since(self.start)
    }
}

/// An ordered, append-only collection of spans. Records appear in
/// emission order, which is deterministic per backend (the simulator's
/// event order is seed-reproducible; see `tests/determinism.rs`).
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    spans: Vec<SpanRecord>,
    instants: u64,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends a span.
    pub fn push(&mut self, span: SpanRecord) {
        self.spans.push(span);
    }

    /// Appends an instantaneous event (start == end) under the `"mon"`
    /// id space, numbering it from a log-local counter.
    pub fn push_instant(
        &mut self,
        name: &'static str,
        cat: &'static str,
        who: ComponentId,
        at: SimTime,
    ) {
        self.instants += 1;
        self.spans.push(SpanRecord {
            id: SpanId {
                kind: "mon",
                owner: who,
                n: self.instants,
            },
            parent: None,
            name,
            cat,
            who,
            class: "",
            start: at,
            end: at,
            bytes: 0,
            ok: true,
        });
    }

    /// The recorded spans, in emission order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Head-sampling policy: one keep/skip decision per request (or root
/// job), made once where the request enters the system and carried with
/// it, so every span of a sampled request is kept and every span of a
/// skipped one is dropped — never a half-traced tree.
///
/// The decision is a pure function of `(seed, n)` — a splitmix-style
/// scramble of the request number feeding a fresh [`Pcg32`](crate::rng::Pcg32)
/// stream — so it is independent of event interleaving (sim and rt
/// agree for the same seed) and never draws from any component's RNG
/// (sampled and unsampled runs stay bit-identical in behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampling {
    /// Keep roughly one request in `rate` (`rate <= 1` keeps all).
    pub rate: u32,
    /// Seed of the decision stream (independent of engine seeds).
    pub seed: u64,
}

/// Keep every request (`rate` 1): the exact-tracing default.
impl Default for Sampling {
    fn default() -> Self {
        Sampling::ALL
    }
}

impl Sampling {
    /// Keep every request.
    pub const ALL: Sampling = Sampling { rate: 1, seed: 0 };

    /// Keep roughly one request in `rate`, decided by `seed`.
    pub fn per(rate: u32, seed: u64) -> Self {
        Sampling { rate, seed }
    }

    /// The head decision for request (or root job) number `n`.
    pub fn decide(&self, n: u64) -> bool {
        if self.rate <= 1 {
            return true;
        }
        let key = self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        crate::rng::Pcg32::new(key).below(self.rate as u64) == 0
    }
}

/// A cheaply clonable recording handle. `Tracer::default()` is
/// disabled: emission sites cost a single `Option` branch and no
/// allocation, which keeps the disabled path inside the &lt;2% budget
/// measured by the `trace_overhead` bench.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceLog>>>,
    sampling: Sampling,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer {
            inner: None,
            sampling: Sampling::ALL,
        }
    }

    /// A tracer recording into a fresh shared log (every request kept).
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceLog::new()))),
            sampling: Sampling::ALL,
        }
    }

    /// A recording tracer that head-samples requests per `sampling`.
    pub fn sampled(sampling: Sampling) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceLog::new()))),
            sampling,
        }
    }

    /// Whether spans are being recorded. Emission sites that would do
    /// work to *construct* a span should branch on this first.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This tracer's head-sampling policy ([`Sampling::ALL`] unless
    /// built via [`Tracer::sampled`]).
    pub fn sampling(&self) -> Sampling {
        self.sampling
    }

    /// The head decision for request number `n`: enabled *and* sampled
    /// in. Decision sites store this once per request and gate every
    /// span of the request on the stored bit.
    pub fn decide(&self, n: u64) -> bool {
        self.inner.is_some() && self.sampling.decide(n)
    }

    /// Records a completed span (no-op when disabled).
    pub fn record(&self, span: SpanRecord) {
        if let Some(log) = &self.inner {
            log.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(span);
        }
    }

    /// Records an instantaneous event (no-op when disabled).
    pub fn instant(&self, name: &'static str, cat: &'static str, who: ComponentId, at: SimTime) {
        if let Some(log) = &self.inner {
            log.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_instant(name, cat, who, at);
        }
    }

    /// Snapshot of the log so far (`None` when disabled).
    pub fn snapshot(&self) -> Option<TraceLog> {
        self.inner
            .as_ref()
            .map(|log| log.lock().unwrap_or_else(PoisonError::into_inner).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(n: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId {
                kind: "req",
                owner: ComponentId(3),
                n,
            },
            parent: None,
            name: "request",
            cat: "fe",
            who: ComponentId(3),
            class: "",
            start: SimTime::from_millis(1),
            end: SimTime::from_millis(5),
            bytes: 100,
            ok: true,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(span(1));
        t.instant("x", "monitor", ComponentId(1), SimTime::ZERO);
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn enabled_tracer_shares_one_log_across_clones() {
        let t = Tracer::enabled();
        let u = t.clone();
        t.record(span(1));
        u.record(span(2));
        let log = t.snapshot().expect("enabled");
        assert_eq!(log.len(), 2);
        assert_eq!(log.spans()[1].id.n, 2);
        assert_eq!(
            log.spans()[0].duration(),
            std::time::Duration::from_millis(4)
        );
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_n() {
        let s = Sampling::per(4, 0xfeed);
        let first: Vec<bool> = (0..256).map(|n| s.decide(n)).collect();
        let again: Vec<bool> = (0..256).map(|n| s.decide(n)).collect();
        assert_eq!(first, again, "order/time independent");
        let kept = first.iter().filter(|&&k| k).count();
        assert!(
            (32..=96).contains(&kept),
            "rate 4 keeps roughly a quarter, kept {kept}/256"
        );
        let other = Sampling::per(4, 0xbeef);
        assert_ne!(
            first,
            (0..256).map(|n| other.decide(n)).collect::<Vec<_>>(),
            "different seeds pick different requests"
        );
        assert!(Sampling::ALL.decide(7), "rate 1 keeps everything");
        assert!(Sampling::per(0, 1).decide(7), "rate 0 treated as keep-all");
    }

    #[test]
    fn tracer_decide_combines_enablement_and_sampling() {
        let off = Tracer::disabled();
        assert!(!off.decide(1), "disabled never samples");
        let all = Tracer::enabled();
        assert!(all.decide(1) && all.decide(2));
        assert_eq!(all.sampling(), Sampling::ALL);
        let sampled = Tracer::sampled(Sampling::per(4, 9));
        let kept = (0..64).filter(|&n| sampled.decide(n)).count();
        assert!(kept < 64, "rate 4 skips some requests");
        assert!(kept > 0, "…but not all");
    }

    #[test]
    fn instants_number_from_a_log_local_counter() {
        let t = Tracer::enabled();
        t.instant("a", "monitor", ComponentId(1), SimTime::ZERO);
        t.instant("b", "monitor", ComponentId(1), SimTime::ZERO);
        let log = t.snapshot().expect("enabled");
        assert_eq!(log.spans()[0].id.n, 1);
        assert_eq!(log.spans()[1].id.n, 2);
        assert_eq!(log.spans()[1].start, log.spans()[1].end);
        assert_eq!(log.spans()[0].id.render(), "mon:c1:1");
    }
}
