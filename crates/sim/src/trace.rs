//! Span recording primitives: the part of the tracing substrate the
//! engine itself holds.
//!
//! A [`Tracer`] is a cheaply clonable handle to a shared [`TraceLog`];
//! a disabled tracer is a `None` and costs one branch per emission
//! site, so tracing can stay wired through hot paths permanently. The
//! span *model* (what the SNS layer records, how ids are derived from
//! jobs and requests, export formats) lives in `sns-core::trace`, which
//! re-exports these types; `OBSERVABILITY.md` documents the whole
//! scheme. Names, categories and classes are interned `&'static str`s
//! (the same interner that backs [`crate::stats::MetricKey`]), so a
//! [`SpanRecord`] is `Copy`-sized plain data and recording never
//! allocates beyond the log's `Vec` growth.

use std::sync::{Arc, Mutex, PoisonError};

use crate::time::SimTime;
use crate::ComponentId;

/// Identifies one span. Globally unique within a run: `owner` is the
/// component that allocated the numbering space (the front end for
/// request/job ids, the worker for its queue/service spans), `kind`
/// separates numbering spaces sharing an owner, and `n` is the number
/// within the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId {
    /// Short interned kind tag (`"req"`, `"job"`, `"wq"`, …).
    pub kind: &'static str,
    /// Component owning the numbering space.
    pub owner: ComponentId,
    /// Number within the owner's space for this kind.
    pub n: u64,
}

impl SpanId {
    /// Renders the id in its canonical `kind:c<owner>:<n>` form (the
    /// form used by the JSONL exporter and `OBSERVABILITY.md`).
    pub fn render(&self) -> String {
        format!("{}:c{}:{}", self.kind, self.owner.0, self.n)
    }
}

/// One completed (or instantaneous) span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// Causal parent, if any (`None` marks a tree root).
    pub parent: Option<SpanId>,
    /// Interned span name (`"request"`, `"dispatch"`, `"service"`, …).
    pub name: &'static str,
    /// Interned category (`"fe"`, `"stub"`, `"worker"`, `"monitor"`).
    pub cat: &'static str,
    /// Component the span executed on.
    pub who: ComponentId,
    /// Interned worker-class name, or `""` when not class-addressed.
    pub class: &'static str,
    /// Span start (virtual time in the simulator, time since cluster
    /// start in the threaded runtime).
    pub start: SimTime,
    /// Span end; equal to `start` for instant events.
    pub end: SimTime,
    /// Payload bytes attributed to the span (0 when not applicable).
    pub bytes: u64,
    /// Whether the spanned operation succeeded.
    pub ok: bool,
}

impl SpanRecord {
    /// Span duration (zero for instants).
    pub fn duration(&self) -> std::time::Duration {
        self.end.since(self.start)
    }
}

/// An ordered, append-only collection of spans. Records appear in
/// emission order, which is deterministic per backend (the simulator's
/// event order is seed-reproducible; see `tests/determinism.rs`).
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    spans: Vec<SpanRecord>,
    instants: u64,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends a span.
    pub fn push(&mut self, span: SpanRecord) {
        self.spans.push(span);
    }

    /// Appends an instantaneous event (start == end) under the `"mon"`
    /// id space, numbering it from a log-local counter.
    pub fn push_instant(
        &mut self,
        name: &'static str,
        cat: &'static str,
        who: ComponentId,
        at: SimTime,
    ) {
        self.instants += 1;
        self.spans.push(SpanRecord {
            id: SpanId {
                kind: "mon",
                owner: who,
                n: self.instants,
            },
            parent: None,
            name,
            cat,
            who,
            class: "",
            start: at,
            end: at,
            bytes: 0,
            ok: true,
        });
    }

    /// The recorded spans, in emission order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// A cheaply clonable recording handle. `Tracer::default()` is
/// disabled: emission sites cost a single `Option` branch and no
/// allocation, which keeps the disabled path inside the &lt;2% budget
/// measured by the `trace_overhead` bench.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceLog>>>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer recording into a fresh shared log.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceLog::new()))),
        }
    }

    /// Whether spans are being recorded. Emission sites that would do
    /// work to *construct* a span should branch on this first.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a completed span (no-op when disabled).
    pub fn record(&self, span: SpanRecord) {
        if let Some(log) = &self.inner {
            log.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(span);
        }
    }

    /// Records an instantaneous event (no-op when disabled).
    pub fn instant(&self, name: &'static str, cat: &'static str, who: ComponentId, at: SimTime) {
        if let Some(log) = &self.inner {
            log.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_instant(name, cat, who, at);
        }
    }

    /// Snapshot of the log so far (`None` when disabled).
    pub fn snapshot(&self) -> Option<TraceLog> {
        self.inner
            .as_ref()
            .map(|log| log.lock().unwrap_or_else(PoisonError::into_inner).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(n: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId {
                kind: "req",
                owner: ComponentId(3),
                n,
            },
            parent: None,
            name: "request",
            cat: "fe",
            who: ComponentId(3),
            class: "",
            start: SimTime::from_millis(1),
            end: SimTime::from_millis(5),
            bytes: 100,
            ok: true,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(span(1));
        t.instant("x", "monitor", ComponentId(1), SimTime::ZERO);
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn enabled_tracer_shares_one_log_across_clones() {
        let t = Tracer::enabled();
        let u = t.clone();
        t.record(span(1));
        u.record(span(2));
        let log = t.snapshot().expect("enabled");
        assert_eq!(log.len(), 2);
        assert_eq!(log.spans()[1].id.n, 2);
        assert_eq!(
            log.spans()[0].duration(),
            std::time::Duration::from_millis(4)
        );
    }

    #[test]
    fn instants_number_from_a_log_local_counter() {
        let t = Tracer::enabled();
        t.instant("a", "monitor", ComponentId(1), SimTime::ZERO);
        t.instant("b", "monitor", ComponentId(1), SimTime::ZERO);
        let log = t.snapshot().expect("enabled");
        assert_eq!(log.spans()[0].id.n, 1);
        assert_eq!(log.spans()[1].id.n, 2);
        assert_eq!(log.spans()[1].start, log.spans()[1].end);
        assert_eq!(log.spans()[0].id.render(), "mon:c1:1");
    }
}
