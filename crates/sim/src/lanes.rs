//! Sharded event lanes: conservative parallel simulation across cores.
//!
//! The engine in [`crate::engine`] is single-threaded by design — components
//! hold `Rc` handles and scripts are non-`Send` closures — so it scales with
//! clock speed, not cores. This module adds the classic conservative
//! parallel-discrete-event construction on top of it without touching the
//! engine: the cluster is partitioned into *shards*, each shard owns a whole
//! private [`Sim`] (its own scheduler, RNG stream, stats and network model),
//! and shards only interact through explicitly declared boundary *ports*
//! whose link latency is at least the lookahead window.
//!
//! ```text
//!             ShardedSim (coordinator)
//!   ┌────────────┬─────────────┬────────────┐
//!   │  horizon hₖ│  horizon hₖ │  horizon hₖ│      barrier k
//!   ▼            ▼             ▼            │
//! ┌──────┐    ┌──────┐      ┌──────┐        │
//! │lane 0│    │lane 1│      │lane 2│   run_until(hₖ)
//! │ Sim  │    │ Sim  │      │ Sim  │   on its own thread
//! └──┬───┘    └──┬───┘      └──┬───┘        │
//!    │outbox     │outbox       │outbox      │
//!    ▼            ▼             ▼            │
//!   ┌────────────────────────────────┐      │
//!   │ boundary queue: sort by        │      │
//!   │ (delivery time, src shard, seq)│      │
//!   └──────┬─────────┬───────┬───────┘      │
//!          ▼         ▼       ▼              │
//!      inject_at into destination lanes ────┘  then horizon hₖ₊₁
//! ```
//!
//! Each barrier round advances every lane to the same horizon, drains the
//! cross-shard messages produced during the window, sorts them into one
//! total order and injects them into their destination lanes at
//! `sent_at + latency`. Because the window width never exceeds the boundary
//! latency, a message sent during window *k* is always delivered strictly
//! after horizon *k* — no lane can ever receive an event in its past, which
//! is exactly the conservative-lookahead safety argument.
//!
//! Determinism: the boundary order is total — `(delivery time, source
//! shard, outbox sequence)` is unique per message because the outbox
//! sequence is monotonic per shard — so injection order into every lane is
//! a pure function of the messages, never of thread scheduling. Each lane
//! is a deterministic [`Sim`], so [`ShardedSim::run_parallel`] and
//! [`ShardedSim::run_sequential`] produce byte-identical results, and a
//! one-shard `ShardedSim` reproduces a plain [`Sim`] run exactly (windowed
//! `run_until` dispatches the same events in the same order as one call).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::mpsc;
use std::time::Duration;

use crate::engine::{RunOutcome, Sim, Wire};
use crate::network::Network;
use crate::time::SimTime;
use crate::ComponentId;

/// Identifies one shard (event lane) of a [`ShardedSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// A global cross-shard address. Destination components bind a port via
/// [`Lane::bind`]; senders obtain an [`Uplink`] to it via [`Lane::uplink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u32);

/// One message crossing a shard boundary.
#[derive(Debug, Clone)]
pub struct BoundaryMsg<M> {
    /// Destination port.
    pub port: PortId,
    /// Virtual time the sender handed it to the uplink.
    pub sent_at: SimTime,
    /// Shard it left.
    pub src: ShardId,
    /// Monotonic per-shard outbox sequence (tie-breaker).
    pub seq: u64,
    /// The payload.
    pub msg: M,
}

struct OutboxInner<M> {
    msgs: Vec<(PortId, SimTime, u64, M)>,
    seq: u64,
}

/// A sender handle for one cross-shard port. Clone it into any component
/// on the owning lane; sends are recorded in the lane's outbox and routed
/// at the next barrier.
pub struct Uplink<M> {
    port: PortId,
    outbox: Rc<RefCell<OutboxInner<M>>>,
}

impl<M> Clone for Uplink<M> {
    fn clone(&self) -> Self {
        Uplink {
            port: self.port,
            outbox: Rc::clone(&self.outbox),
        }
    }
}

impl<M> Uplink<M> {
    /// Records a message for cross-shard delivery; it arrives at the bound
    /// component `latency` after `now` (the caller passes `ctx.now()`).
    pub fn send(&self, now: SimTime, msg: M) {
        let mut ob = self.outbox.borrow_mut();
        ob.seq += 1;
        let seq = ob.seq;
        ob.msgs.push((self.port, now, seq, msg));
    }

    /// The port this uplink targets.
    pub fn port(&self) -> PortId {
        self.port
    }
}

type Report<M, N> = Box<dyn FnOnce(&mut Sim<M, N>) -> String>;

/// One shard's runtime: a private [`Sim`] plus its boundary plumbing.
/// Built inside the shard closure passed to [`ShardedSim::add_shard`] and
/// never leaves its worker thread (components may hold `Rc` handles).
pub struct Lane<M, N> {
    sim: Sim<M, N>,
    outbox: Rc<RefCell<OutboxInner<M>>>,
    ingress: BTreeMap<PortId, ComponentId>,
    report: Option<Report<M, N>>,
}

impl<M: Wire + Clone + 'static, N: Network> Lane<M, N> {
    /// Wraps a fully constructed shard simulation.
    pub fn new(sim: Sim<M, N>) -> Self {
        Lane {
            sim,
            outbox: Rc::new(RefCell::new(OutboxInner {
                msgs: Vec::new(),
                seq: 0,
            })),
            ingress: BTreeMap::new(),
            report: None,
        }
    }

    /// The shard's simulation (spawn components, schedule scripts, …).
    pub fn sim(&mut self) -> &mut Sim<M, N> {
        &mut self.sim
    }

    /// Creates a sender handle toward a port owned by some other shard.
    pub fn uplink(&self, port: PortId) -> Uplink<M> {
        Uplink {
            port,
            outbox: Rc::clone(&self.outbox),
        }
    }

    /// Declares that `comp` (on this shard) receives messages addressed to
    /// `port`. Each port has exactly one owner across the whole cluster.
    pub fn bind(&mut self, port: PortId, comp: ComponentId) {
        let prev = self.ingress.insert(port, comp);
        assert!(prev.is_none(), "port {} bound twice on one lane", port.0);
    }

    /// Installs the closure that renders this shard's final report string
    /// after the run (monitor logs, counters — whatever the experiment
    /// compares). Defaults to an empty string.
    pub fn set_report(&mut self, f: impl FnOnce(&mut Sim<M, N>) -> String + 'static) {
        self.report = Some(Box::new(f));
    }

    fn drain(&mut self, src: ShardId) -> Vec<BoundaryMsg<M>> {
        let mut ob = self.outbox.borrow_mut();
        ob.msgs
            .drain(..)
            .map(|(port, sent_at, seq, msg)| BoundaryMsg {
                port,
                sent_at,
                src,
                seq,
                msg,
            })
            .collect()
    }

    fn inject(&mut self, batch: Vec<(SimTime, PortId, M)>) {
        for (at, port, msg) in batch {
            let comp = *self
                .ingress
                .get(&port)
                .unwrap_or_else(|| panic!("no binding for port {}", port.0));
            self.sim.inject_at(at, comp, msg);
        }
    }

    fn finish(mut self) -> (String, u64) {
        let report = match self.report.take() {
            Some(f) => f(&mut self.sim),
            None => String::new(),
        };
        (report, self.sim.events_dispatched())
    }
}

/// Outcome of a sharded run, comparable across drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRun {
    /// Per-shard report strings (shard-id order).
    pub reports: Vec<String>,
    /// Per-shard dispatched-event counts (shard-id order).
    pub events: Vec<u64>,
    /// Cross-shard messages routed during the run.
    pub boundary_routed: u64,
    /// Cross-shard messages whose delivery time fell beyond the horizon
    /// (left undelivered by construction).
    pub boundary_residual: u64,
}

impl ShardRun {
    /// Total events dispatched across all shards.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// One canonical string over everything observable — equal iff two
    /// runs behaved identically.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        for (i, (r, e)) in self.reports.iter().zip(&self.events).enumerate() {
            s.push_str(&format!("shard{i} events={e}\n{r}\n"));
        }
        s.push_str(&format!(
            "routed={} residual={}",
            self.boundary_routed, self.boundary_residual
        ));
        s
    }
}

/// Deterministic boundary-queue router shared by both drivers.
struct Router<M> {
    latency: Duration,
    port_owner: BTreeMap<PortId, usize>,
    pending: Vec<Vec<(SimTime, PortId, M)>>,
    routed: u64,
}

impl<M> Router<M> {
    fn new(latency: Duration, ports_per_shard: &[Vec<PortId>]) -> Self {
        let mut port_owner = BTreeMap::new();
        for (shard, ports) in ports_per_shard.iter().enumerate() {
            for &p in ports {
                let prev = port_owner.insert(p, shard);
                assert!(
                    prev.is_none(),
                    "port {} bound on two shards ({} and {shard})",
                    p.0,
                    prev.unwrap(),
                );
            }
        }
        Router {
            latency,
            port_owner,
            pending: (0..ports_per_shard.len()).map(|_| Vec::new()).collect(),
            routed: 0,
        }
    }

    /// Sorts one round's boundary messages into the total order and
    /// appends them to the destination shards' pending injections.
    fn route(&mut self, mut outgoing: Vec<BoundaryMsg<M>>) {
        // (delivery time, src shard, outbox seq) is unique per message, so
        // this order — and therefore every lane's injection order — is a
        // pure function of the messages, not of thread arrival order.
        outgoing.sort_unstable_by_key(|m| (m.sent_at + self.latency, m.src.0, m.seq));
        for m in outgoing {
            let dest = *self
                .port_owner
                .get(&m.port)
                .unwrap_or_else(|| panic!("message to unbound port {}", m.port.0));
            self.pending[dest].push((m.sent_at + self.latency, m.port, m.msg));
            self.routed += 1;
        }
    }

    fn take(&mut self, shard: usize) -> Vec<(SimTime, PortId, M)> {
        std::mem::take(&mut self.pending[shard])
    }

    fn all_empty(&self) -> bool {
        self.pending.iter().all(Vec::is_empty)
    }

    fn residual(&self) -> u64 {
        self.pending.iter().map(|p| p.len() as u64).sum()
    }
}

type LaneBuild<M, N> = Box<dyn FnOnce(ShardId) -> Lane<M, N> + Send>;

enum Cmd<M> {
    Window {
        inject: Vec<(SimTime, PortId, M)>,
        horizon: SimTime,
    },
    Finish,
}

enum Resp<M> {
    Built {
        shard: usize,
        ports: Vec<PortId>,
    },
    Window {
        outgoing: Vec<BoundaryMsg<M>>,
        idle: bool,
    },
    Finished {
        shard: usize,
        report: String,
        events: u64,
    },
}

/// A cluster simulation partitioned into per-shard event lanes that
/// advance in parallel under conservative lookahead.
///
/// Build shards with [`ShardedSim::add_shard`] — each closure runs on its
/// shard's thread (or inline for the sequential driver), constructs a
/// private [`Sim`] and wires its boundary ports — then run with
/// [`ShardedSim::run_parallel`] or [`ShardedSim::run_sequential`]. Both
/// drivers produce byte-identical [`ShardRun`]s for the same shard
/// closures; the parallel one is just faster on multi-core hosts.
pub struct ShardedSim<M, N> {
    builders: Vec<LaneBuild<M, N>>,
    latency: Duration,
    window: Duration,
}

impl<M: Wire + Clone + Send + 'static, N: Network + 'static> ShardedSim<M, N> {
    /// Creates an empty sharded simulation whose cross-shard links have
    /// the given one-way latency. The lookahead window defaults to the
    /// full latency (the widest safe window).
    pub fn new(latency: Duration) -> Self {
        assert!(latency > Duration::ZERO, "boundary latency must be > 0");
        ShardedSim {
            builders: Vec::new(),
            latency,
            window: latency,
        }
    }

    /// Narrows the lookahead window (barrier step). Must stay in
    /// `(0, latency]` — any wider and a boundary message could land in a
    /// window the destination shard has already executed.
    pub fn with_window(mut self, window: Duration) -> Self {
        assert!(
            window > Duration::ZERO && window <= self.latency,
            "window must be in (0, latency]"
        );
        self.window = window;
        self
    }

    /// Cross-shard link latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Current lookahead window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Number of shards added so far.
    pub fn shards(&self) -> usize {
        self.builders.len()
    }

    /// Adds a shard. The closure receives the shard's id, builds the
    /// shard's entire [`Lane`] (simulation, components, port bindings,
    /// report) and runs on the shard's own thread under the parallel
    /// driver — which is why it must be `Send` even though the lane it
    /// returns is not.
    pub fn add_shard(
        &mut self,
        build: impl FnOnce(ShardId) -> Lane<M, N> + Send + 'static,
    ) -> ShardId {
        let id = ShardId(self.builders.len() as u32);
        self.builders.push(Box::new(build));
        id
    }

    fn horizons(window: Duration, until: SimTime) -> impl Iterator<Item = SimTime> {
        let mut h = SimTime::ZERO;
        std::iter::from_fn(move || {
            if h >= until {
                return None;
            }
            h = h.saturating_add(window).min(until);
            Some(h)
        })
    }

    /// Runs every lane on the calling thread, one window at a time in
    /// shard-id order. The reference semantics: [`ShardedSim::run_parallel`]
    /// must (and does) match it byte for byte.
    pub fn run_sequential(self, until: SimTime) -> ShardRun {
        assert!(until < SimTime::MAX, "sharded runs need a finite horizon");
        let (latency, window) = (self.latency, self.window);
        let mut lanes: Vec<Lane<M, N>> = self
            .builders
            .into_iter()
            .enumerate()
            .map(|(i, b)| b(ShardId(i as u32)))
            .collect();
        let ports: Vec<Vec<PortId>> = lanes
            .iter()
            .map(|l| l.ingress.keys().copied().collect())
            .collect();
        let mut router = Router::new(latency, &ports);
        for horizon in Self::horizons(window, until) {
            let mut outgoing = Vec::new();
            let mut all_idle = true;
            let mut any_input = false;
            for (i, lane) in lanes.iter_mut().enumerate() {
                let inject = router.take(i);
                any_input |= !inject.is_empty();
                lane.inject(inject);
                all_idle &= lane.sim.run_until(horizon) == RunOutcome::QueueEmpty;
                outgoing.extend(lane.drain(ShardId(i as u32)));
            }
            let quiet = outgoing.is_empty();
            router.route(outgoing);
            if all_idle && quiet && !any_input && router.all_empty() {
                break;
            }
        }
        let residual = router.residual();
        let routed = router.routed;
        let (reports, events) = lanes.into_iter().map(Lane::finish).unzip();
        ShardRun {
            reports,
            events,
            boundary_routed: routed,
            boundary_residual: residual,
        }
    }

    /// Runs each lane on its own thread, synchronising at every window
    /// barrier. Byte-identical to [`ShardedSim::run_sequential`] on the
    /// same shard closures: lanes share no state, and the boundary queue's
    /// total order makes every injection independent of thread timing.
    pub fn run_parallel(self, until: SimTime) -> ShardRun {
        assert!(until < SimTime::MAX, "sharded runs need a finite horizon");
        let (latency, window) = (self.latency, self.window);
        let n = self.builders.len();
        let builders = self.builders;
        let (resp_tx, resp_rx) = mpsc::channel::<Resp<M>>();
        std::thread::scope(|scope| {
            let mut cmd_txs = Vec::with_capacity(n);
            for (i, build) in builders.into_iter().enumerate() {
                let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd<M>>();
                cmd_txs.push(cmd_tx);
                let resp_tx = resp_tx.clone();
                scope.spawn(move || {
                    let mut lane = build(ShardId(i as u32));
                    resp_tx
                        .send(Resp::Built {
                            shard: i,
                            ports: lane.ingress.keys().copied().collect(),
                        })
                        .expect("coordinator alive");
                    while let Ok(cmd) = cmd_rx.recv() {
                        match cmd {
                            Cmd::Window { inject, horizon } => {
                                lane.inject(inject);
                                let idle = lane.sim.run_until(horizon) == RunOutcome::QueueEmpty;
                                let outgoing = lane.drain(ShardId(i as u32));
                                resp_tx
                                    .send(Resp::Window { outgoing, idle })
                                    .expect("coordinator alive");
                            }
                            Cmd::Finish => {
                                let (report, events) = lane.finish();
                                resp_tx
                                    .send(Resp::Finished {
                                        shard: i,
                                        report,
                                        events,
                                    })
                                    .expect("coordinator alive");
                                return;
                            }
                        }
                    }
                });
            }
            drop(resp_tx);

            let mut ports: Vec<Vec<PortId>> = vec![Vec::new(); n];
            for _ in 0..n {
                match resp_rx.recv().expect("workers alive") {
                    Resp::Built { shard, ports: p } => ports[shard] = p,
                    _ => unreachable!("first response per shard is Built"),
                }
            }
            let mut router = Router::new(latency, &ports);
            for horizon in Self::horizons(window, until) {
                let mut any_input = false;
                for (i, tx) in cmd_txs.iter().enumerate() {
                    let inject = router.take(i);
                    any_input |= !inject.is_empty();
                    tx.send(Cmd::Window { inject, horizon })
                        .expect("worker alive");
                }
                let mut outgoing = Vec::new();
                let mut all_idle = true;
                for _ in 0..n {
                    match resp_rx.recv().expect("workers alive") {
                        Resp::Window { outgoing: o, idle } => {
                            outgoing.extend(o);
                            all_idle &= idle;
                        }
                        _ => unreachable!("mid-run responses are Window"),
                    }
                }
                let quiet = outgoing.is_empty();
                router.route(outgoing);
                if all_idle && quiet && !any_input && router.all_empty() {
                    break;
                }
            }
            let residual = router.residual();
            let routed = router.routed;
            for tx in &cmd_txs {
                tx.send(Cmd::Finish).expect("worker alive");
            }
            let mut reports = vec![String::new(); n];
            let mut events = vec![0u64; n];
            for _ in 0..n {
                match resp_rx.recv().expect("workers alive") {
                    Resp::Finished {
                        shard,
                        report,
                        events: e,
                    } => {
                        reports[shard] = report;
                        events[shard] = e;
                    }
                    _ => unreachable!("post-run responses are Finished"),
                }
            }
            ShardRun {
                reports,
                events,
                boundary_routed: routed,
                boundary_residual: residual,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Component, Ctx, NodeSpec, SimConfig};
    use crate::network::IdealNetwork;

    #[derive(Clone)]
    struct Tok(u64);
    impl Wire for Tok {
        fn wire_size(&self) -> u64 {
            64
        }
    }

    /// Forwards every token to the next shard via an uplink, counting.
    struct Relay {
        up: Uplink<Tok>,
        limit: u64,
    }
    impl Component<Tok> for Relay {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Tok>, _from: ComponentId, msg: Tok) {
            ctx.stats().incr("relayed", 1);
            if msg.0 < self.limit {
                self.up.send(ctx.now(), Tok(msg.0 + 1));
            }
        }
    }

    fn ring(shards: u32) -> ShardedSim<Tok, IdealNetwork> {
        let mut ss: ShardedSim<Tok, IdealNetwork> = ShardedSim::new(Duration::from_millis(1));
        for s in 0..shards {
            let next = PortId((s + 1) % shards);
            ss.add_shard(move |shard| {
                let sim = Sim::new(
                    SimConfig::new().with_seed(0x100 + u64::from(shard.0)),
                    IdealNetwork::default(),
                );
                let mut lane = Lane::new(sim);
                let node = lane.sim().add_node(NodeSpec::new(1, "dedicated"));
                let up = lane.uplink(next);
                let relay = lane
                    .sim()
                    .spawn(node, Box::new(Relay { up, limit: 500 }), "relay");
                lane.bind(PortId(shard.0), relay);
                if shard.0 == 0 {
                    lane.sim().inject(relay, Tok(0));
                }
                lane.set_report(|sim| format!("relayed={}", sim.stats().counter("relayed")));
                lane
            });
        }
        ss
    }

    #[test]
    fn parallel_matches_sequential() {
        let until = SimTime::from_secs(2);
        let a = ring(3).run_sequential(until);
        let b = ring(3).run_parallel(until);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.boundary_routed > 400, "routed {}", a.boundary_routed);
    }

    #[test]
    fn early_exit_when_everything_drains() {
        // The 500-token chain finishes long before the horizon; the run
        // must stop at the first all-idle barrier instead of spinning
        // through ~an hour of empty windows.
        let run = ring(2).run_sequential(SimTime::from_secs(3600));
        assert_eq!(run.reports.join(","), "relayed=251,relayed=250");
    }

    #[test]
    #[should_panic(expected = "window must be in (0, latency]")]
    fn window_wider_than_latency_rejected() {
        let _ = ShardedSim::<Tok, IdealNetwork>::new(Duration::from_millis(1))
            .with_window(Duration::from_millis(2));
    }
}
