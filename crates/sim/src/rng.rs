//! Deterministic pseudo-random number generation for simulations.
//!
//! The engine deliberately avoids the external `rand` crate: every
//! experiment in this repository must be bit-reproducible from its seed
//! across crate upgrades, so the generator (PCG-32, O'Neill 2014) and all
//! distribution transforms live here, frozen.

/// A 32-bit permuted congruential generator (PCG-XSH-RR).
///
/// State transitions use the 64-bit LCG multiplier from the PCG reference
/// implementation; output is a xorshift-high + random-rotate permutation of
/// the state. The generator is seeded via SplitMix64 so that small or
/// correlated user seeds still produce well-distributed streams.
///
/// # Examples
///
/// ```
/// use sns_sim::rng::Pcg32;
/// let mut a = Pcg32::new(42);
/// let mut b = Pcg32::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

const PCG_MULT: u64 = 6364136223846793005;

/// SplitMix64 step, used for seeding.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Pcg32 {
    /// Creates a generator from a user seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let init_state = splitmix64(&mut sm);
        let init_inc = splitmix64(&mut sm) | 1; // stream selector must be odd
        let mut rng = Pcg32 {
            state: 0,
            inc: init_inc,
            gauss_spare: None,
        };
        rng.state = init_state.wrapping_add(init_inc);
        rng.next_u32();
        rng
    }

    /// Derives an independent child stream; used to give subsystems their
    /// own generators without sharing a sequence.
    pub fn fork(&mut self) -> Pcg32 {
        let seed = self.next_u64();
        Pcg32::new(seed)
    }

    /// Returns the next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]`; safe as a `ln()` argument.
    pub fn f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire rejection; panics if
    /// `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening-multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        -mean * self.f64_open().ln()
    }

    /// Standard normal via Box-Muller (with spare caching).
    pub fn gauss(&mut self) -> f64 {
        if let Some(s) = self.gauss_spare.take() {
            return s;
        }
        let u1 = self.f64_open();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.gauss()
    }

    /// Log-normal parameterised by the underlying normal's `mu`/`sigma`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gauss()).exp()
    }

    /// Bounded Pareto variate on `[lo, hi]` with shape `alpha`.
    pub fn pareto_bounded(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to its weight. Panics on an empty or all-zero slice.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive sum");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Uniformly chooses an element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_seed() {
        let mut a = Pcg32::new(123);
        let mut b = Pcg32::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg32::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = Pcg32::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Pcg32::new(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn gauss_moments() {
        let mut r = Pcg32::new(13);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gauss()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut r = Pcg32::new(17);
        for _ in 0..1000 {
            let i = r.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_proportions() {
        let mut r = Pcg32::new(19);
        let mut counts = [0usize; 3];
        let n = 90_000;
        for _ in 0..n {
            counts[r.weighted(&[1.0, 2.0, 3.0])] += 1;
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(counts[0]) - 1.0 / 6.0).abs() < 0.01);
        assert!((f(counts[1]) - 2.0 / 6.0).abs() < 0.01);
        assert!((f(counts[2]) - 3.0 / 6.0).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg32::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_independent() {
        let mut parent = Pcg32::new(31);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
