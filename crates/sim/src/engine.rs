//! The discrete-event engine: components, nodes, timers, CPU accounting,
//! liveness watches and the run loop.
//!
//! The engine is single-threaded and fully deterministic: events with equal
//! timestamps are delivered in scheduling order (a monotonic sequence
//! number breaks ties), all internal collections iterate in key order, and
//! the only randomness comes from the seeded [`Pcg32`] stream.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::time::Duration;

use crate::network::{Delivery, Endpoint, Network, TrafficClass};
use crate::rng::Pcg32;
use crate::sched::{Scheduler, SchedulerKind};
use crate::stats::StatsHub;
use crate::time::SimTime;
use crate::trace::Tracer;
use crate::{ComponentId, GroupId, NodeId};

/// Engine configuration knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for the engine RNG stream.
    pub seed: u64,
    /// Time from a spawn request until the new component's `on_start` runs
    /// (models fork/exec plus process initialisation).
    pub spawn_latency: Duration,
    /// Time from a component's death until its watchers are notified
    /// (models broken-TCP-connection detection).
    pub death_detect_latency: Duration,
    /// Hard cap on dispatched events (runaway-loop protection).
    pub max_events: u64,
    /// Which pending-event scheduler the run loop pops from. Both kinds
    /// dispatch in bit-identical order; see [`SchedulerKind`].
    pub scheduler: SchedulerKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5eed,
            spawn_latency: Duration::from_millis(300),
            death_detect_latency: Duration::from_millis(50),
            max_events: u64::MAX,
            scheduler: SchedulerKind::default(),
        }
    }
}

impl SimConfig {
    /// Default configuration; chain `with_*` methods to customise.
    ///
    /// ```
    /// use sns_sim::engine::SimConfig;
    /// use sns_sim::sched::SchedulerKind;
    ///
    /// let cfg = SimConfig::new()
    ///     .with_seed(0x517)
    ///     .with_scheduler(SchedulerKind::Wheel)
    ///     .with_max_events(1_000_000);
    /// assert_eq!(cfg.seed, 0x517);
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the engine RNG seed.
    pub fn with_seed(mut self, v: u64) -> Self {
        self.seed = v;
        self
    }

    /// Selects the pending-event scheduler the run loop pops from (both
    /// kinds dispatch in bit-identical order; see [`SchedulerKind`]).
    pub fn with_scheduler(mut self, v: SchedulerKind) -> Self {
        self.scheduler = v;
        self
    }

    /// Sets the spawn-request-to-`on_start` latency.
    pub fn with_spawn_latency(mut self, v: Duration) -> Self {
        self.spawn_latency = v;
        self
    }

    /// Sets the death-to-watcher-notification latency.
    pub fn with_death_detect_latency(mut self, v: Duration) -> Self {
        self.death_detect_latency = v;
        self
    }

    /// Sets the hard cap on dispatched events.
    pub fn with_max_events(mut self, v: u64) -> Self {
        self.max_events = v;
        self
    }
}

/// Anything the engine can route. Messages carry their wire size so the
/// network model can account for bandwidth.
pub trait Wire {
    /// Bytes this message occupies on the wire (headers included).
    fn wire_size(&self) -> u64;
}

/// A simulated process. Implementations hold their own state and react to
/// the engine's callbacks; all interaction with the world goes through the
/// [`Ctx`] handle.
pub trait Component<M> {
    /// Invoked once when the component finishes starting on its node.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Invoked for every delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ComponentId, msg: M);

    /// Invoked when a timer set via [`Ctx::timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}

    /// Invoked when a CPU burst requested via [`Ctx::exec_cpu`] completes.
    fn on_cpu_done(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}

    /// Invoked when a watched peer (see [`Ctx::watch`]) dies.
    fn on_peer_death(&mut self, _ctx: &mut Ctx<'_, M>, _peer: ComponentId) {}

    /// Human-readable kind, used in monitor output and stats keys.
    fn kind(&self) -> &'static str {
        "component"
    }
}

/// Description of a cluster node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Number of CPU cores (parallel `exec_cpu` capacity).
    pub cores: u32,
    /// Free-form pool tag, e.g. `"dedicated"` or `"overflow"`.
    pub tag: String,
}

impl NodeSpec {
    /// Convenience constructor.
    pub fn new(cores: u32, tag: impl Into<String>) -> Self {
        NodeSpec {
            cores,
            tag: tag.into(),
        }
    }
}

#[derive(Debug)]
struct Node {
    alive: bool,
    /// Next-available time per core (virtual finish times).
    cores: Vec<SimTime>,
    tag: String,
}

#[derive(Debug, Clone)]
struct CompMeta {
    node: NodeId,
    alive: bool,
    started: bool,
    kind: &'static str,
}

enum Ev<M> {
    Msg {
        to: ComponentId,
        from: ComponentId,
        msg: M,
    },
    Timer {
        to: ComponentId,
        token: u64,
    },
    CpuDone {
        to: ComponentId,
        token: u64,
    },
    PeerDeath {
        to: ComponentId,
        peer: ComponentId,
    },
    Start {
        to: ComponentId,
    },
    Script(u64),
}

/// A dense arena keyed by the engine's monotonically allocated ids
/// (component, node and group ids start near zero and are never reused).
/// Replaces the `BTreeMap`s on the dispatch hot path: lookups are an
/// index, iteration is a linear scan in id order — the same order the
/// maps iterated in, so swapping them in changes nothing observable.
struct Slab<T> {
    items: Vec<Option<T>>,
}

impl<T> Slab<T> {
    fn new() -> Self {
        Slab { items: Vec::new() }
    }

    fn get(&self, i: usize) -> Option<&T> {
        self.items.get(i).and_then(|s| s.as_ref())
    }

    fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        self.items.get_mut(i).and_then(|s| s.as_mut())
    }

    fn insert(&mut self, i: usize, v: T) {
        if i >= self.items.len() {
            self.items.resize_with(i + 1, || None);
        }
        self.items[i] = Some(v);
    }

    fn get_or_insert_with(&mut self, i: usize, f: impl FnOnce() -> T) -> &mut T {
        if i >= self.items.len() {
            self.items.resize_with(i + 1, || None);
        }
        self.items[i].get_or_insert_with(f)
    }

    fn remove(&mut self, i: usize) -> Option<T> {
        self.items.get_mut(i).and_then(|s| s.take())
    }

    fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.items
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i, v)))
    }

    fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut().filter_map(|s| s.as_mut())
    }
}

/// Everything of the engine that is *not* the component boxes, so that a
/// component handler can hold `&mut Kernel` through its [`Ctx`] while the
/// engine holds the component itself.
pub struct Kernel<M, N> {
    now: SimTime,
    seq: u64,
    events_dispatched: u64,
    queue: Box<dyn Scheduler<Ev<M>>>,
    rng: Pcg32,
    nodes: Slab<Node>,
    groups: Slab<BTreeSet<ComponentId>>,
    watchers: BTreeMap<ComponentId, BTreeSet<ComponentId>>,
    meta: Slab<CompMeta>,
    net: N,
    stats: StatsHub,
    cfg: SimConfig,
    next_comp: u64,
    next_node: u32,
    next_group: u32,
    trace: bool,
    tracer: Tracer,
    /// Reusable endpoint buffer for multicast fan-out.
    mcast_scratch: Vec<Endpoint>,
}

impl<M: Wire + Clone, N: Network> Kernel<M, N> {
    fn schedule(&mut self, at: SimTime, ev: Ev<M>) {
        debug_assert!(at >= self.now, "scheduling into the past");
        self.seq += 1;
        self.queue.push(at, self.seq, ev);
    }

    fn endpoint(&self, comp: ComponentId) -> Option<Endpoint> {
        self.meta
            .get(comp.0 as usize)
            .map(|m| Endpoint { node: m.node, comp })
    }

    fn is_alive(&self, comp: ComponentId) -> bool {
        self.meta.get(comp.0 as usize).is_some_and(|m| m.alive)
    }

    fn do_send(&mut self, from: ComponentId, to: ComponentId, msg: M, class: TrafficClass) {
        let Some(src) = self.endpoint(from) else {
            return;
        };
        let Some(dst) = self.endpoint(to) else {
            self.stats.incr("net.unicast_no_route", 1);
            return;
        };
        let size = msg.wire_size();
        match self
            .net
            .unicast(self.now, &mut self.rng, src, dst, size, class)
        {
            Delivery::At(t) => self.schedule(t, Ev::Msg { to, from, msg }),
            Delivery::Dropped => self.stats.incr("net.unicast_dropped", 1),
        }
    }

    fn do_multicast(&mut self, from: ComponentId, group: GroupId, msg: M, class: TrafficClass) {
        let Some(src) = self.endpoint(from) else {
            return;
        };
        // Fan out into the reusable scratch buffer (no per-call Vecs).
        let mut endpoints = std::mem::take(&mut self.mcast_scratch);
        endpoints.clear();
        if let Some(members) = self.groups.get(group.0 as usize) {
            endpoints.extend(
                members
                    .iter()
                    .filter(|&&c| c != from)
                    .filter_map(|&c| self.endpoint(c)),
            );
        }
        if endpoints.is_empty() {
            self.mcast_scratch = endpoints;
            return;
        }
        let size = msg.wire_size();
        let decisions = self
            .net
            .multicast(self.now, &mut self.rng, src, &endpoints, size, class);
        for (ep, decision) in endpoints.iter().zip(decisions) {
            match decision {
                Delivery::At(t) => self.schedule(
                    t,
                    Ev::Msg {
                        to: ep.comp,
                        from,
                        msg: msg.clone(),
                    },
                ),
                Delivery::Dropped => self.stats.incr("net.multicast_dropped", 1),
            }
        }
        self.mcast_scratch = endpoints;
    }

    /// Occupies one core on `node` for `work`; returns the completion time.
    fn do_exec_cpu(&mut self, comp: ComponentId, work: Duration, token: u64) -> SimTime {
        let node_id = self
            .meta
            .get(comp.0 as usize)
            .expect("component exists")
            .node;
        let node = self.nodes.get_mut(node_id.0 as usize).expect("node exists");
        // Pick the earliest-available core.
        let (idx, avail) = node
            .cores
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, t)| t)
            .expect("node has at least one core");
        let start = avail.max(self.now);
        let fin = start + work;
        node.cores[idx] = fin;
        self.schedule(fin, Ev::CpuDone { to: comp, token });
        fin
    }
}

enum SideEffect<M> {
    Spawn {
        id: ComponentId,
        comp: Box<dyn Component<M>>,
    },
    Kill(ComponentId),
}

/// The handle a component uses to interact with the world during a
/// callback.
pub struct Ctx<'a, M> {
    kernel: &'a mut dyn KernelOps<M>,
    effects: &'a mut Vec<SideEffect<M>>,
    me: ComponentId,
}

/// Object-safe view of [`Kernel`] so `Ctx` need not be generic over the
/// network type.
trait KernelOps<M> {
    fn now(&self) -> SimTime;
    fn rng(&mut self) -> &mut Pcg32;
    fn stats(&mut self) -> &mut StatsHub;
    fn tracer(&self) -> &Tracer;
    fn send(&mut self, from: ComponentId, to: ComponentId, msg: M, class: TrafficClass);
    fn multicast(&mut self, from: ComponentId, group: GroupId, msg: M, class: TrafficClass);
    fn join(&mut self, comp: ComponentId, group: GroupId);
    fn leave(&mut self, comp: ComponentId, group: GroupId);
    fn timer(&mut self, comp: ComponentId, delay: Duration, token: u64);
    fn exec_cpu(&mut self, comp: ComponentId, work: Duration, token: u64) -> SimTime;
    fn watch(&mut self, watcher: ComponentId, peer: ComponentId);
    fn unwatch(&mut self, watcher: ComponentId, peer: ComponentId);
    fn alloc_component(&mut self, node: NodeId, kind: &'static str) -> Option<ComponentId>;
    fn spawn_latency(&self) -> Duration;
    fn node_of(&self, comp: ComponentId) -> Option<NodeId>;
    fn node_tag(&self, node: NodeId) -> Option<String>;
    fn is_alive(&self, comp: ComponentId) -> bool;
    fn node_alive(&self, node: NodeId) -> bool;
    fn nodes_with_tag(&self, tag: &str) -> Vec<NodeId>;
    fn components_on(&self, node: NodeId) -> Vec<ComponentId>;
}

impl<M: Wire + Clone, N: Network> KernelOps<M> for Kernel<M, N> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn rng(&mut self) -> &mut Pcg32 {
        &mut self.rng
    }
    fn stats(&mut self) -> &mut StatsHub {
        &mut self.stats
    }
    fn tracer(&self) -> &Tracer {
        &self.tracer
    }
    fn send(&mut self, from: ComponentId, to: ComponentId, msg: M, class: TrafficClass) {
        self.do_send(from, to, msg, class);
    }
    fn multicast(&mut self, from: ComponentId, group: GroupId, msg: M, class: TrafficClass) {
        self.do_multicast(from, group, msg, class);
    }
    fn join(&mut self, comp: ComponentId, group: GroupId) {
        self.groups
            .get_or_insert_with(group.0 as usize, BTreeSet::new)
            .insert(comp);
    }
    fn leave(&mut self, comp: ComponentId, group: GroupId) {
        if let Some(g) = self.groups.get_mut(group.0 as usize) {
            g.remove(&comp);
        }
    }
    fn timer(&mut self, comp: ComponentId, delay: Duration, token: u64) {
        let at = self.now + delay;
        self.schedule(at, Ev::Timer { to: comp, token });
    }
    fn exec_cpu(&mut self, comp: ComponentId, work: Duration, token: u64) -> SimTime {
        self.do_exec_cpu(comp, work, token)
    }
    fn watch(&mut self, watcher: ComponentId, peer: ComponentId) {
        self.watchers.entry(peer).or_default().insert(watcher);
    }
    fn unwatch(&mut self, watcher: ComponentId, peer: ComponentId) {
        if let Some(w) = self.watchers.get_mut(&peer) {
            w.remove(&watcher);
        }
    }
    fn alloc_component(&mut self, node: NodeId, kind: &'static str) -> Option<ComponentId> {
        if !self.nodes.get(node.0 as usize).is_some_and(|n| n.alive) {
            return None;
        }
        self.next_comp += 1;
        let id = ComponentId(self.next_comp);
        self.meta.insert(
            id.0 as usize,
            CompMeta {
                node,
                alive: true,
                started: false,
                kind,
            },
        );
        let at = self.now + self.cfg.spawn_latency;
        self.schedule(at, Ev::Start { to: id });
        Some(id)
    }
    fn spawn_latency(&self) -> Duration {
        self.cfg.spawn_latency
    }
    fn node_of(&self, comp: ComponentId) -> Option<NodeId> {
        self.meta.get(comp.0 as usize).map(|m| m.node)
    }
    fn node_tag(&self, node: NodeId) -> Option<String> {
        self.nodes.get(node.0 as usize).map(|n| n.tag.clone())
    }
    fn is_alive(&self, comp: ComponentId) -> bool {
        Kernel::is_alive(self, comp)
    }
    fn node_alive(&self, node: NodeId) -> bool {
        self.nodes.get(node.0 as usize).is_some_and(|n| n.alive)
    }
    fn nodes_with_tag(&self, tag: &str) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.alive && n.tag == tag)
            .map(|(id, _)| NodeId(id as u32))
            .collect()
    }
    fn components_on(&self, node: NodeId) -> Vec<ComponentId> {
        self.meta
            .iter()
            .filter(|(_, m)| m.alive && m.node == node)
            .map(|(id, _)| ComponentId(id as u64))
            .collect()
    }
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// This component's id.
    pub fn me(&self) -> ComponentId {
        self.me
    }

    /// The engine RNG stream.
    pub fn rng(&mut self) -> &mut Pcg32 {
        self.kernel.rng()
    }

    /// The shared measurement sink.
    pub fn stats(&mut self) -> &mut StatsHub {
        self.kernel.stats()
    }

    /// The span recorder (disabled by default; see [`Sim::set_tracer`]).
    pub fn tracer(&self) -> &Tracer {
        self.kernel.tracer()
    }

    /// Sends a reliable (TCP-like) unicast message.
    pub fn send(&mut self, to: ComponentId, msg: M) {
        self.kernel.send(self.me, to, msg, TrafficClass::Reliable);
    }

    /// Sends a best-effort datagram unicast message.
    pub fn send_datagram(&mut self, to: ComponentId, msg: M) {
        self.kernel.send(self.me, to, msg, TrafficClass::Datagram);
    }

    /// Multicasts a best-effort datagram to a group (the sender is skipped
    /// even if it is a member).
    pub fn multicast(&mut self, group: GroupId, msg: M) {
        self.kernel
            .multicast(self.me, group, msg, TrafficClass::Datagram);
    }

    /// Joins a multicast group.
    pub fn join(&mut self, group: GroupId) {
        self.kernel.join(self.me, group);
    }

    /// Leaves a multicast group.
    pub fn leave(&mut self, group: GroupId) {
        self.kernel.leave(self.me, group);
    }

    /// Schedules `on_timer(token)` after `delay`.
    pub fn timer(&mut self, delay: Duration, token: u64) {
        self.kernel.timer(self.me, delay, token);
    }

    /// Occupies one CPU core on this node for `work`, then delivers
    /// `on_cpu_done(token)`. Returns the predicted completion time.
    pub fn exec_cpu(&mut self, work: Duration, token: u64) -> SimTime {
        self.kernel.exec_cpu(self.me, work, token)
    }

    /// Registers interest in `peer`'s liveness; `on_peer_death` fires
    /// (after the configured detection latency) when it dies.
    pub fn watch(&mut self, peer: ComponentId) {
        self.kernel.watch(self.me, peer);
    }

    /// Deregisters a liveness watch.
    pub fn unwatch(&mut self, peer: ComponentId) {
        self.kernel.unwatch(self.me, peer);
    }

    /// Spawns a new component on `node` (subject to spawn latency).
    /// Returns `None` if the node is dead or unknown.
    pub fn spawn(
        &mut self,
        node: NodeId,
        comp: Box<dyn Component<M>>,
        kind: &'static str,
    ) -> Option<ComponentId> {
        let id = self.kernel.alloc_component(node, kind)?;
        self.effects.push(SideEffect::Spawn { id, comp });
        Some(id)
    }

    /// Forcibly terminates another component (or this one).
    pub fn kill(&mut self, comp: ComponentId) {
        self.effects.push(SideEffect::Kill(comp));
    }

    /// Terminates this component (clean exit).
    pub fn exit(&mut self) {
        self.effects.push(SideEffect::Kill(self.me));
    }

    /// Node hosting a component, if it exists.
    pub fn node_of(&self, comp: ComponentId) -> Option<NodeId> {
        self.kernel.node_of(comp)
    }

    /// This component's node.
    pub fn my_node(&self) -> NodeId {
        self.kernel.node_of(self.me).expect("self has a node")
    }

    /// Pool tag of a node.
    pub fn node_tag(&self, node: NodeId) -> Option<String> {
        self.kernel.node_tag(node)
    }

    /// Whether a component is currently alive.
    pub fn is_alive(&self, comp: ComponentId) -> bool {
        self.kernel.is_alive(comp)
    }

    /// Whether a node is currently alive.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.kernel.node_alive(node)
    }

    /// All live nodes carrying the given pool tag.
    pub fn nodes_with_tag(&self, tag: &str) -> Vec<NodeId> {
        self.kernel.nodes_with_tag(tag)
    }

    /// All live components on a node.
    pub fn components_on(&self, node: NodeId) -> Vec<ComponentId> {
        self.kernel.components_on(node)
    }

    /// Configured spawn latency (useful for policy timeouts).
    pub fn spawn_latency(&self) -> Duration {
        self.kernel.spawn_latency()
    }
}

struct Slot<M> {
    comp: Option<Box<dyn Component<M>>>,
    /// Messages delivered before `on_start`; flushed at start.
    mailbox: Vec<(ComponentId, M)>,
}

/// Why [`Sim::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached (events may remain beyond it).
    HorizonReached,
    /// The event queue drained before the horizon.
    QueueEmpty,
    /// The configured `max_events` cap was hit.
    EventCapReached,
}

type Script<M, N> = Box<dyn FnOnce(&mut Sim<M, N>)>;

/// The simulation: a cluster of nodes, the components running on them, an
/// interconnect model and a virtual clock.
pub struct Sim<M, N> {
    kernel: Kernel<M, N>,
    components: Slab<Slot<M>>,
    scripts: BTreeMap<u64, Script<M, N>>,
    next_script: u64,
    /// Reusable same-timestamp dispatch batch (run loop arena).
    batch_buf: Vec<(SimTime, u64, Ev<M>)>,
    /// Reusable side-effect buffers for component callbacks.
    effects_pool: Vec<Vec<SideEffect<M>>>,
}

impl<M: Wire + Clone + 'static, N: Network> Sim<M, N> {
    /// Creates a simulation over the given interconnect model.
    pub fn new(cfg: SimConfig, net: N) -> Self {
        let rng = Pcg32::new(cfg.seed);
        let queue = cfg.scheduler.make();
        Sim {
            kernel: Kernel {
                now: SimTime::ZERO,
                seq: 0,
                events_dispatched: 0,
                queue,
                rng,
                nodes: Slab::new(),
                groups: Slab::new(),
                watchers: BTreeMap::new(),
                meta: Slab::new(),
                net,
                stats: StatsHub::new(),
                cfg,
                next_comp: 0,
                next_node: 0,
                next_group: 0,
                trace: false,
                tracer: Tracer::disabled(),
                mcast_scratch: Vec::new(),
            },
            components: Slab::new(),
            scripts: BTreeMap::new(),
            next_script: 0,
            batch_buf: Vec::new(),
            effects_pool: Vec::new(),
        }
    }

    /// Enables verbose event tracing to stderr (debugging aid).
    pub fn set_trace(&mut self, on: bool) {
        self.kernel.trace = on;
    }

    /// Installs a span recorder; components reach it through
    /// [`Ctx::tracer`]. Install an enabled tracer *before* the run and
    /// keep a clone to read the log afterwards.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.kernel.tracer = tracer;
    }

    /// The installed span recorder (disabled unless [`Sim::set_tracer`]
    /// was called with an enabled one).
    pub fn tracer(&self) -> &Tracer {
        &self.kernel.tracer
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// The measurement sink.
    pub fn stats(&self) -> &StatsHub {
        &self.kernel.stats
    }

    /// Mutable access to the measurement sink.
    pub fn stats_mut(&mut self) -> &mut StatsHub {
        &mut self.kernel.stats
    }

    /// The interconnect model (e.g. to reconfigure links or partitions).
    pub fn net_mut(&mut self) -> &mut N {
        &mut self.kernel.net
    }

    /// Read access to the interconnect model.
    pub fn net(&self) -> &N {
        &self.kernel.net
    }

    /// Adds a node to the cluster.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        assert!(spec.cores > 0, "a node needs at least one core");
        let id = NodeId(self.kernel.next_node);
        self.kernel.next_node += 1;
        self.kernel.nodes.insert(
            id.0 as usize,
            Node {
                alive: true,
                cores: vec![SimTime::ZERO; spec.cores as usize],
                tag: spec.tag,
            },
        );
        self.kernel.net.register_node(id);
        id
    }

    /// Allocates a fresh multicast group id.
    pub fn create_group(&mut self) -> GroupId {
        let id = GroupId(self.kernel.next_group);
        self.kernel.next_group += 1;
        self.kernel.groups.insert(id.0 as usize, BTreeSet::new());
        id
    }

    /// Spawns a component immediately (no spawn latency); intended for
    /// initial cluster construction. `on_start` runs at the current time.
    pub fn spawn(
        &mut self,
        node: NodeId,
        comp: Box<dyn Component<M>>,
        kind: &'static str,
    ) -> ComponentId {
        self.spawn_delayed(node, comp, kind, Duration::ZERO)
            .expect("spawn on dead node during setup")
    }

    /// Spawns a component with an explicit start delay. Returns `None` if
    /// the node is dead.
    pub fn spawn_delayed(
        &mut self,
        node: NodeId,
        comp: Box<dyn Component<M>>,
        kind: &'static str,
        delay: Duration,
    ) -> Option<ComponentId> {
        if !self
            .kernel
            .nodes
            .get(node.0 as usize)
            .is_some_and(|n| n.alive)
        {
            return None;
        }
        self.kernel.next_comp += 1;
        let id = ComponentId(self.kernel.next_comp);
        self.kernel.meta.insert(
            id.0 as usize,
            CompMeta {
                node,
                alive: true,
                started: false,
                kind,
            },
        );
        let at = self.kernel.now + delay;
        self.kernel.schedule(at, Ev::Start { to: id });
        self.components.insert(
            id.0 as usize,
            Slot {
                comp: Some(comp),
                mailbox: Vec::new(),
            },
        );
        Some(id)
    }

    /// Schedules a closure over the whole simulation at an absolute time
    /// (fault-injection scripts, load changes, measurements mid-run).
    pub fn at(&mut self, t: SimTime, f: impl FnOnce(&mut Sim<M, N>) + 'static) {
        assert!(t >= self.kernel.now, "scheduling a script into the past");
        self.next_script += 1;
        let id = self.next_script;
        self.scripts.insert(id, Box::new(f));
        self.kernel.schedule(t, Ev::Script(id));
    }

    /// Injects a message from "outside" the cluster directly into a
    /// component's queue at the current time (no network transit).
    pub fn inject(&mut self, to: ComponentId, msg: M) {
        self.kernel.schedule(
            self.kernel.now,
            Ev::Msg {
                to,
                from: ComponentId::EXTERNAL,
                msg,
            },
        );
    }

    /// Injects a message from "outside" the cluster at an absolute future
    /// time (no network transit). The sharded driver uses this to place
    /// cross-shard boundary messages at their precomputed delivery times;
    /// harnesses can use it to pre-load a whole arrival schedule.
    pub fn inject_at(&mut self, at: SimTime, to: ComponentId, msg: M) {
        assert!(at >= self.kernel.now, "injecting into the past");
        self.kernel.schedule(
            at,
            Ev::Msg {
                to,
                from: ComponentId::EXTERNAL,
                msg,
            },
        );
    }

    /// Kills a component immediately; watchers are notified after the
    /// detection latency.
    pub fn kill_component(&mut self, comp: ComponentId) {
        self.do_kill(comp);
    }

    /// Kills a node and every component on it.
    pub fn kill_node(&mut self, node: NodeId) {
        let victims: Vec<ComponentId> = self
            .kernel
            .meta
            .iter()
            .filter(|(_, m)| m.alive && m.node == node)
            .map(|(id, _)| ComponentId(id as u64))
            .collect();
        for v in victims {
            self.do_kill(v);
        }
        if let Some(n) = self.kernel.nodes.get_mut(node.0 as usize) {
            n.alive = false;
        }
    }

    /// Brings a previously killed node back (empty, cores idle).
    pub fn revive_node(&mut self, node: NodeId) {
        let now = self.kernel.now;
        if let Some(n) = self.kernel.nodes.get_mut(node.0 as usize) {
            n.alive = true;
            for c in &mut n.cores {
                *c = now;
            }
        }
    }

    /// Whether a component is currently alive.
    pub fn is_alive(&self, comp: ComponentId) -> bool {
        self.kernel.is_alive(comp)
    }

    /// Node hosting a component.
    pub fn node_of(&self, comp: ComponentId) -> Option<NodeId> {
        self.kernel.meta.get(comp.0 as usize).map(|m| m.node)
    }

    /// All live components of a given kind (as reported by
    /// [`Component::kind`]).
    pub fn components_of_kind(&self, kind: &str) -> Vec<ComponentId> {
        self.kernel
            .meta
            .iter()
            .filter(|(_, m)| m.alive && m.kind == kind)
            .map(|(id, _)| ComponentId(id as u64))
            .collect()
    }

    /// All live components hosted on a node.
    pub fn components_on_node(&self, node: NodeId) -> Vec<ComponentId> {
        self.kernel
            .meta
            .iter()
            .filter(|(_, m)| m.alive && m.node == node)
            .map(|(id, _)| ComponentId(id as u64))
            .collect()
    }

    /// All live nodes with a given tag.
    pub fn nodes_with_tag(&self, tag: &str) -> Vec<NodeId> {
        self.kernel
            .nodes
            .iter()
            .filter(|(_, n)| n.alive && n.tag == tag)
            .map(|(id, _)| NodeId(id as u32))
            .collect()
    }

    /// All live node ids, in id order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.kernel
            .nodes
            .iter()
            .filter(|(_, n)| n.alive)
            .map(|(id, _)| NodeId(id as u32))
            .collect()
    }

    /// All nodes carrying a given tag — including dead ones — with their
    /// liveness flag. Fault injectors use this to find revival targets.
    pub fn nodes_with_tag_all(&self, tag: &str) -> Vec<(NodeId, bool)> {
        self.kernel
            .nodes
            .iter()
            .filter(|(_, n)| n.tag == tag)
            .map(|(id, n)| (NodeId(id as u32), n.alive))
            .collect()
    }

    /// Whether a node is currently alive.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.kernel
            .nodes
            .get(node.0 as usize)
            .is_some_and(|n| n.alive)
    }

    /// Schedules a repeating closure at `start`, `start + period`, … up to
    /// and including `until` (periodic probes, samplers, watchdogs). Note
    /// that pending repetitions keep the event queue non-empty, so pair
    /// this with [`Sim::run_until`] rather than an unbounded [`Sim::run`].
    pub fn every_until(
        &mut self,
        start: SimTime,
        period: Duration,
        until: SimTime,
        f: impl FnMut(&mut Sim<M, N>) + 'static,
    ) where
        N: 'static,
    {
        assert!(period > Duration::ZERO, "zero-period repeating script");
        type Script<M, N> = Box<dyn FnMut(&mut Sim<M, N>)>;
        fn arm<M: Wire + Clone + 'static, N: Network + 'static>(
            sim: &mut Sim<M, N>,
            at: SimTime,
            period: Duration,
            until: SimTime,
            mut f: Script<M, N>,
        ) {
            if at > until {
                return;
            }
            sim.at(at, move |s| {
                f(s);
                arm(s, at + period, period, until, f);
            });
        }
        arm(self, start.max(self.kernel.now), period, until, Box::new(f));
    }

    fn do_kill(&mut self, comp: ComponentId) {
        let Some(m) = self.kernel.meta.get_mut(comp.0 as usize) else {
            return;
        };
        if !m.alive {
            return;
        }
        m.alive = false;
        self.components.remove(comp.0 as usize);
        self.kernel.stats.incr("sim.deaths", 1);
        // Notify watchers after the detection latency.
        let watchers: Vec<ComponentId> = self
            .kernel
            .watchers
            .remove(&comp)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        let at = self.kernel.now + self.kernel.cfg.death_detect_latency;
        for w in watchers {
            if self.kernel.is_alive(w) {
                self.kernel
                    .schedule(at, Ev::PeerDeath { to: w, peer: comp });
            }
        }
        // Remove from any groups.
        for g in self.kernel.groups.values_mut() {
            g.remove(&comp);
        }
    }

    /// Runs until the horizon; returns why the loop stopped. The clock
    /// always ends at exactly `horizon` unless the event cap was hit.
    ///
    /// Same-timestamp events are popped as one batch and dispatched in
    /// seq order; events scheduled *during* the batch carry higher seqs
    /// than everything already batched, so the delivered order is
    /// identical to popping one event at a time.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let mut batch = std::mem::take(&mut self.batch_buf);
        let outcome = loop {
            let Some((at, _)) = self.kernel.queue.peek() else {
                // Advance to a finite horizon; an "infinite" run leaves the
                // clock at the last dispatched event.
                if horizon != SimTime::MAX {
                    self.kernel.now = horizon.max(self.kernel.now);
                }
                break RunOutcome::QueueEmpty;
            };
            if at > horizon {
                self.kernel.now = horizon;
                break RunOutcome::HorizonReached;
            }
            if self.kernel.events_dispatched >= self.kernel.cfg.max_events {
                break RunOutcome::EventCapReached;
            }
            // Never batch past the event cap, so EventCapReached fires at
            // exactly the same point it would without batching.
            let budget =
                usize::try_from(self.kernel.cfg.max_events - self.kernel.events_dispatched)
                    .unwrap_or(usize::MAX);
            batch.clear();
            self.kernel.queue.pop_batch(&mut batch, budget);
            for (at, _, ev) in batch.drain(..) {
                self.kernel.now = at;
                self.kernel.events_dispatched += 1;
                self.dispatch(ev);
            }
        };
        self.batch_buf = batch;
        outcome
    }

    /// Runs until the queue drains (or the event cap hits).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Number of events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.kernel.events_dispatched
    }

    fn dispatch(&mut self, ev: Ev<M>) {
        match ev {
            Ev::Script(id) => {
                if let Some(f) = self.scripts.remove(&id) {
                    f(self);
                }
            }
            Ev::Start { to } => {
                if !self.kernel.is_alive(to) {
                    return;
                }
                if let Some(m) = self.kernel.meta.get_mut(to.0 as usize) {
                    m.started = true;
                }
                self.with_component(to, |comp, ctx| comp.on_start(ctx));
                // Flush messages that arrived before start, then hand the
                // drained buffer back to the slot for reuse.
                let mut pending: Vec<(ComponentId, M)> = self
                    .components
                    .get_mut(to.0 as usize)
                    .map(|s| std::mem::take(&mut s.mailbox))
                    .unwrap_or_default();
                for (from, msg) in pending.drain(..) {
                    if !self.kernel.is_alive(to) {
                        break;
                    }
                    self.with_component(to, |comp, ctx| comp.on_message(ctx, from, msg));
                }
                if let Some(slot) = self.components.get_mut(to.0 as usize) {
                    if slot.mailbox.is_empty() {
                        slot.mailbox = pending;
                    }
                }
            }
            Ev::Msg { to, from, msg } => {
                if !self.kernel.is_alive(to) {
                    self.kernel.stats.incr("net.delivered_to_dead", 1);
                    return;
                }
                let started = self
                    .kernel
                    .meta
                    .get(to.0 as usize)
                    .is_some_and(|m| m.started);
                if !started {
                    if let Some(slot) = self.components.get_mut(to.0 as usize) {
                        slot.mailbox.push((from, msg));
                    }
                    return;
                }
                self.with_component(to, |comp, ctx| comp.on_message(ctx, from, msg));
            }
            Ev::Timer { to, token } => {
                if self.kernel.is_alive(to) {
                    self.with_component(to, |comp, ctx| comp.on_timer(ctx, token));
                }
            }
            Ev::CpuDone { to, token } => {
                if self.kernel.is_alive(to) {
                    self.with_component(to, |comp, ctx| comp.on_cpu_done(ctx, token));
                }
            }
            Ev::PeerDeath { to, peer } => {
                if self.kernel.is_alive(to) {
                    self.with_component(to, |comp, ctx| comp.on_peer_death(ctx, peer));
                }
            }
        }
    }

    fn with_component(
        &mut self,
        id: ComponentId,
        f: impl FnOnce(&mut Box<dyn Component<M>>, &mut Ctx<'_, M>),
    ) {
        let Some(slot) = self.components.get_mut(id.0 as usize) else {
            return;
        };
        let Some(mut comp) = slot.comp.take() else {
            // Re-entrant dispatch to the same component cannot happen in a
            // single-threaded engine; a missing box means it is mid-kill.
            return;
        };
        let mut effects = self.effects_pool.pop().unwrap_or_default();
        {
            let mut ctx = Ctx {
                kernel: &mut self.kernel,
                effects: &mut effects,
                me: id,
            };
            f(&mut comp, &mut ctx);
        }
        // Reinstall unless the component killed itself.
        let mut self_killed = false;
        for e in &effects {
            if let SideEffect::Kill(victim) = e {
                if *victim == id {
                    self_killed = true;
                }
            }
        }
        if !self_killed {
            if let Some(slot) = self.components.get_mut(id.0 as usize) {
                slot.comp = Some(comp);
            }
        }
        // Apply side effects in order, then return the buffer to the pool.
        for e in effects.drain(..) {
            match e {
                SideEffect::Spawn { id, comp } => {
                    self.components.insert(
                        id.0 as usize,
                        Slot {
                            comp: Some(comp),
                            mailbox: Vec::new(),
                        },
                    );
                }
                SideEffect::Kill(victim) => self.do_kill(victim),
            }
        }
        self.effects_pool.push(effects);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::IdealNetwork;

    #[derive(Clone, Debug, PartialEq)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
    }

    impl Wire for TestMsg {
        fn wire_size(&self) -> u64 {
            64
        }
    }

    struct Echo;
    impl Component<TestMsg> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, from: ComponentId, msg: TestMsg) {
            if let TestMsg::Ping(n) = msg {
                ctx.send(from, TestMsg::Pong(n));
            }
        }
        fn kind(&self) -> &'static str {
            "echo"
        }
    }

    struct Pinger {
        target: ComponentId,
        sent: u32,
    }
    impl Component<TestMsg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
            for i in 0..self.sent {
                ctx.send(self.target, TestMsg::Ping(i));
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _from: ComponentId, msg: TestMsg) {
            if let TestMsg::Pong(n) = msg {
                ctx.stats().incr("pongs", 1);
                ctx.stats().observe("pong_value", n as f64);
            }
        }
    }

    fn small_sim() -> Sim<TestMsg, IdealNetwork> {
        Sim::new(SimConfig::default(), IdealNetwork::default())
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let n1 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let echo = sim.spawn(n0, Box::new(Echo), "echo");
        sim.spawn(
            n1,
            Box::new(Pinger {
                target: echo,
                sent: 5,
            }),
            "pinger",
        );
        sim.run();
        assert_eq!(sim.stats().counter("pongs"), 5);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = small_sim();
            let n0 = sim.add_node(NodeSpec::new(2, "dedicated"));
            let echo = sim.spawn(n0, Box::new(Echo), "echo");
            sim.spawn(
                n0,
                Box::new(Pinger {
                    target: echo,
                    sent: 100,
                }),
                "pinger",
            );
            sim.run();
            (sim.now(), sim.events_dispatched())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn kill_stops_delivery_and_notifies_watchers() {
        struct Watcher {
            peer: ComponentId,
        }
        impl Component<TestMsg> for Watcher {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.watch(self.peer);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
            fn on_peer_death(&mut self, ctx: &mut Ctx<'_, TestMsg>, peer: ComponentId) {
                ctx.stats().incr("deaths_seen", 1);
                assert_eq!(peer, self.peer);
            }
        }
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let echo = sim.spawn(n0, Box::new(Echo), "echo");
        sim.spawn(n0, Box::new(Watcher { peer: echo }), "watcher");
        sim.at(SimTime::from_secs(1), move |s| s.kill_component(echo));
        sim.at(SimTime::from_secs(2), move |s| {
            s.inject(echo, TestMsg::Ping(9))
        });
        sim.run();
        assert_eq!(sim.stats().counter("deaths_seen"), 1);
        assert_eq!(sim.stats().counter("net.delivered_to_dead"), 1);
        assert!(!sim.is_alive(echo));
    }

    #[test]
    fn node_kill_takes_components_down() {
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let echo = sim.spawn(n0, Box::new(Echo), "echo");
        sim.at(SimTime::from_millis(10), move |s| s.kill_node(n0));
        sim.run();
        assert!(!sim.is_alive(echo));
        assert!(sim.nodes_with_tag("dedicated").is_empty());
        // Spawning on a dead node fails.
        assert!(sim
            .spawn_delayed(n0, Box::new(Echo), "echo", Duration::ZERO)
            .is_none());
    }

    #[test]
    fn cpu_cores_serialize_work() {
        struct Cruncher;
        impl Component<TestMsg> for Cruncher {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                // Two 100 ms bursts on a single-core node must finish at
                // 100 ms and 200 ms.
                let t1 = ctx.exec_cpu(Duration::from_millis(100), 1);
                let t2 = ctx.exec_cpu(Duration::from_millis(100), 2);
                assert_eq!(t1, SimTime::from_millis(100));
                assert_eq!(t2, SimTime::from_millis(200));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
            fn on_cpu_done(&mut self, ctx: &mut Ctx<'_, TestMsg>, token: u64) {
                ctx.stats().incr("cpu_done", 1);
                ctx.stats().observe("cpu_token", token as f64);
            }
        }
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        sim.spawn(n0, Box::new(Cruncher), "cruncher");
        sim.run();
        assert_eq!(sim.stats().counter("cpu_done"), 2);
        assert_eq!(sim.now(), SimTime::from_millis(200));
    }

    #[test]
    fn multicore_runs_in_parallel() {
        struct Cruncher;
        impl Component<TestMsg> for Cruncher {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                let t1 = ctx.exec_cpu(Duration::from_millis(100), 1);
                let t2 = ctx.exec_cpu(Duration::from_millis(100), 2);
                assert_eq!(t1, SimTime::from_millis(100));
                assert_eq!(t2, SimTime::from_millis(100));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        }
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(2, "dedicated"));
        sim.spawn(n0, Box::new(Cruncher), "cruncher");
        sim.run();
        assert_eq!(sim.now(), SimTime::from_millis(100));
    }

    #[test]
    fn multicast_reaches_members_not_sender() {
        struct Member;
        impl Component<TestMsg> for Member {
            fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {
                ctx.stats().incr("mcast_received", 1);
            }
        }
        struct Caster {
            group: GroupId,
        }
        impl Component<TestMsg> for Caster {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.join(self.group);
                ctx.multicast(self.group, TestMsg::Ping(1));
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {
                ctx.stats().incr("sender_received_own", 1);
            }
        }
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let g = sim.create_group();
        struct Joiner {
            group: GroupId,
        }
        impl Component<TestMsg> for Joiner {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.join(self.group);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, f: ComponentId, m: TestMsg) {
                Member.on_message(ctx, f, m);
            }
        }
        sim.spawn(n0, Box::new(Joiner { group: g }), "member");
        sim.spawn(n0, Box::new(Joiner { group: g }), "member");
        // Caster starts after members joined (same-time ordering is by
        // spawn order, so give it a tiny delay to be explicit).
        sim.spawn_delayed(
            n0,
            Box::new(Caster { group: g }),
            "caster",
            Duration::from_millis(1),
        );
        sim.run();
        assert_eq!(sim.stats().counter("mcast_received"), 2);
        assert_eq!(sim.stats().counter("sender_received_own"), 0);
    }

    #[test]
    fn spawn_from_component_has_latency() {
        struct Parent {
            node: NodeId,
        }
        impl Component<TestMsg> for Parent {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.spawn(self.node, Box::new(Echo), "echo");
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        }
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        sim.spawn(n0, Box::new(Parent { node: n0 }), "parent");
        sim.run();
        // Default spawn latency is 300 ms; the child's Start event is the
        // last thing dispatched.
        assert_eq!(sim.now(), SimTime::from_millis(300));
        assert_eq!(sim.components_of_kind("echo").len(), 1);
    }

    #[test]
    fn messages_before_start_are_buffered() {
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let echo = sim
            .spawn_delayed(n0, Box::new(Echo), "echo", Duration::from_secs(1))
            .unwrap();
        struct Probe {
            target: ComponentId,
        }
        impl Component<TestMsg> for Probe {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.send(self.target, TestMsg::Ping(7));
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _: ComponentId, msg: TestMsg) {
                assert_eq!(msg, TestMsg::Pong(7));
                ctx.stats().incr("late_pong", 1);
            }
        }
        sim.spawn(n0, Box::new(Probe { target: echo }), "probe");
        sim.run();
        assert_eq!(sim.stats().counter("late_pong"), 1);
        assert!(sim.now() >= SimTime::from_secs(1));
    }

    #[test]
    fn revived_node_accepts_new_spawns() {
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        sim.at(SimTime::from_millis(10), move |s| s.kill_node(n0));
        sim.at(SimTime::from_millis(20), move |s| {
            assert!(s
                .spawn_delayed(n0, Box::new(Echo), "echo", Duration::ZERO)
                .is_none());
            s.revive_node(n0);
            assert!(s
                .spawn_delayed(n0, Box::new(Echo), "echo", Duration::ZERO)
                .is_some());
        });
        sim.run();
        assert_eq!(sim.components_of_kind("echo").len(), 1);
        assert_eq!(sim.nodes_with_tag("dedicated"), vec![n0]);
    }

    #[test]
    fn leave_group_stops_multicasts() {
        struct Leaver {
            group: GroupId,
        }
        impl Component<TestMsg> for Leaver {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.join(self.group);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {
                ctx.stats().incr("leaver_got", 1);
                ctx.leave(self.group);
            }
        }
        struct Caster {
            group: GroupId,
        }
        impl Component<TestMsg> for Caster {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Duration::from_millis(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, t: u64) {
                ctx.multicast(self.group, TestMsg::Ping(t as u32));
                if t < 3 {
                    ctx.timer(Duration::from_millis(10), t + 1);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        }
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let g = sim.create_group();
        sim.spawn(n0, Box::new(Leaver { group: g }), "leaver");
        sim.spawn(n0, Box::new(Caster { group: g }), "caster");
        sim.run();
        // Four multicasts sent, but the leaver left after the first.
        assert_eq!(sim.stats().counter("leaver_got"), 1);
    }

    #[test]
    fn unwatch_suppresses_death_notification() {
        struct Fickle {
            peer: ComponentId,
        }
        impl Component<TestMsg> for Fickle {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.watch(self.peer);
                ctx.unwatch(self.peer);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
            fn on_peer_death(&mut self, ctx: &mut Ctx<'_, TestMsg>, _: ComponentId) {
                ctx.stats().incr("unexpected_death_event", 1);
            }
        }
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let echo = sim.spawn(n0, Box::new(Echo), "echo");
        sim.spawn(n0, Box::new(Fickle { peer: echo }), "fickle");
        sim.at(SimTime::from_secs(1), move |s| s.kill_component(echo));
        sim.run();
        assert_eq!(sim.stats().counter("unexpected_death_event"), 0);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let echo = sim.spawn(n0, Box::new(Echo), "echo");
        for i in 0..10 {
            let at = SimTime::from_secs(i);
            sim.at(at, move |s| s.inject(echo, TestMsg::Ping(i as u32)));
        }
        let outcome = sim.run_until(SimTime::from_secs(5));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        let outcome = sim.run();
        assert_eq!(outcome, RunOutcome::QueueEmpty);
    }

    #[test]
    fn every_until_repeats_and_stops() {
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let _ = n0;
        sim.every_until(
            SimTime::from_secs(1),
            Duration::from_secs(1),
            SimTime::from_secs(5),
            |s| s.stats_mut().incr("ticks", 1),
        );
        sim.run_until(SimTime::from_secs(10));
        // Fires at 1, 2, 3, 4, 5 — inclusive of the bound, then stops.
        assert_eq!(sim.stats().counter("ticks"), 5);
    }

    #[test]
    fn node_introspection_tracks_liveness() {
        let mut sim = small_sim();
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        let n1 = sim.add_node(NodeSpec::new(1, "dedicated"));
        assert_eq!(sim.node_ids(), vec![n0, n1]);
        assert!(sim.node_alive(n0));
        sim.at(SimTime::from_millis(10), move |s| s.kill_node(n0));
        sim.run();
        assert_eq!(sim.node_ids(), vec![n1]);
        assert!(!sim.node_alive(n0));
        assert_eq!(
            sim.nodes_with_tag_all("dedicated"),
            vec![(n0, false), (n1, true)]
        );
    }

    #[test]
    fn event_cap_halts() {
        struct Looper;
        impl Component<TestMsg> for Looper {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
                ctx.timer(Duration::from_nanos(1), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, _: u64) {
                ctx.timer(Duration::from_nanos(1), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TestMsg>, _: ComponentId, _: TestMsg) {}
        }
        let mut sim: Sim<TestMsg, IdealNetwork> = Sim::new(
            SimConfig {
                max_events: 1000,
                ..Default::default()
            },
            IdealNetwork::default(),
        );
        let n0 = sim.add_node(NodeSpec::new(1, "dedicated"));
        sim.spawn(n0, Box::new(Looper), "looper");
        assert_eq!(sim.run(), RunOutcome::EventCapReached);
    }
}
